// Benchmark harness: one testing.B target per table and figure in the
// paper's evaluation (regenerating the series via internal/figures),
// plus ablation benches for the design choices DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure benches run the Quick workloads so a full pass stays fast;
// `go run ./cmd/zht-figures` (without -quick) produces the
// full-size series recorded in EXPERIMENTS.md.
package zht_test

import (
	"fmt"
	"testing"
	"time"

	"zht"
	"zht/internal/core"
	"zht/internal/figures"
	"zht/internal/sim"
	"zht/internal/transport"
	"zht/internal/wire"
)

// benchFigure wraps one figure generator as a benchmark and reports
// the series through b.Log so `-bench -v` shows the regenerated rows.
func benchFigure(b *testing.B, gen func(figures.Options) (*figures.Series, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s, err := gen(figures.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s.Render())
		}
	}
}

func BenchmarkFig01GPFSCreate(b *testing.B)        { benchFigure(b, figures.Fig01GPFS) }
func BenchmarkTab01Features(b *testing.B)          { benchFigure(b, figures.Tab01Features) }
func BenchmarkFig04Partitions(b *testing.B)        { benchFigure(b, figures.Fig04Partitions) }
func BenchmarkFig05Bootstrap(b *testing.B)         { benchFigure(b, figures.Fig05Bootstrap) }
func BenchmarkFig06NoVoHT(b *testing.B)            { benchFigure(b, figures.Fig06NoVoHT) }
func BenchmarkFig07Latency(b *testing.B)           { benchFigure(b, figures.Fig07Latency) }
func BenchmarkFig08ClusterLatency(b *testing.B)    { benchFigure(b, figures.Fig08ClusterLatency) }
func BenchmarkFig09Throughput(b *testing.B)        { benchFigure(b, figures.Fig09Throughput) }
func BenchmarkFig10ClusterThroughput(b *testing.B) { benchFigure(b, figures.Fig10ClusterThroughput) }
func BenchmarkFig11Efficiency(b *testing.B)        { benchFigure(b, figures.Fig11Efficiency) }
func BenchmarkFig12Replication(b *testing.B)       { benchFigure(b, figures.Fig12Replication) }
func BenchmarkFig13InstancesLatency(b *testing.B)  { benchFigure(b, figures.Fig13InstancesLatency) }
func BenchmarkFig14InstancesThroughput(b *testing.B) {
	benchFigure(b, figures.Fig14InstancesThroughput)
}
func BenchmarkFig15Migration(b *testing.B)        { benchFigure(b, figures.Fig15Migration) }
func BenchmarkFig16FusionFS(b *testing.B)         { benchFigure(b, figures.Fig16FusionFS) }
func BenchmarkFig17IStore(b *testing.B)           { benchFigure(b, figures.Fig17IStore) }
func BenchmarkFig18Matrix(b *testing.B)           { benchFigure(b, figures.Fig18Matrix) }
func BenchmarkFig19MatrixEfficiency(b *testing.B) { benchFigure(b, figures.Fig19MatrixEfficiency) }

// ---------------------------------------------------------------
// Ablation benches (DESIGN.md §3): direct measurements of the design
// choices, one op per iteration so ns/op is the op latency.
// ---------------------------------------------------------------

// AblationServerMode: event-driven vs spawn-per-request server
// architecture (§III.D — the paper measured the epoll redesign at 3x).
func BenchmarkAblationServerMode(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    transport.ServerMode
	}{{"event-driven", transport.EventDriven}, {"spawn-per-request", transport.SpawnPerRequest}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			h := func(req *wire.Request) *wire.Response {
				// The request (and the frame its Value aliases) is
				// recycled when this handler returns; echo a copy.
				return &wire.Response{Status: wire.StatusOK, Value: append([]byte(nil), req.Value...)}
			}
			srv, err := transport.ListenTCP("127.0.0.1:0", h, mode.m)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c := transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
			defer c.Close()
			req := &wire.Request{Op: wire.OpInsert, Key: "key-0000000001", Value: make([]byte, 132)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call(srv.Addr(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// AblationConnCache: TCP with vs without the LRU connection cache
// (§III.F — caching "makes TCP work almost as fast as UDP").
func BenchmarkAblationConnCache(b *testing.B) {
	h := func(req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	}
	srv, err := transport.ListenTCP("127.0.0.1:0", h, transport.EventDriven)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "dial-per-op"
		}
		b.Run(name, func(b *testing.B) {
			c := transport.NewTCPClient(transport.TCPClientOptions{ConnCache: cached})
			defer c.Close()
			req := &wire.Request{Op: wire.OpPing}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call(srv.Addr(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// AblationReplication: replica count and sync-vs-async acknowledged
// write latency (§IV.F).
func BenchmarkAblationReplication(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		replicas int
		sync     bool
	}{
		{"r0", 0, false},
		{"r1-async", 1, false},
		{"r2-async", 2, false},
		{"r1-sync", 1, true},
		{"r2-sync", 2, true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			c := zht.Config{NumPartitions: 256, Replicas: cfg.replicas,
				SyncReplication: cfg.sync, RetryBase: time.Millisecond}
			d, _, err := zht.BootstrapInproc(c, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			cl, err := d.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 132)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Insert(fmt.Sprintf("k%09d", i), val); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d.Drain()
		})
	}
}

// AblationMigrationVsRehash: moving a whole partition image vs
// re-inserting (rehashing) every key/value pair one by one (§III.C:
// "Moving an entire partition is significantly more efficient than
// rehashing many key/value pairs").
func BenchmarkAblationMigrationVsRehash(b *testing.B) {
	const keysPerPartition = 2000
	setup := func(b *testing.B) (*core.Deployment, *core.Client) {
		cfg := core.Config{NumPartitions: 4, Replicas: 0, RetryBase: time.Millisecond}
		d, _, err := core.BootstrapInproc(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		c, err := d.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		val := make([]byte, 132)
		for i := 0; i < 4*keysPerPartition; i++ {
			if err := c.Insert(fmt.Sprintf("key-%09d", i), val); err != nil {
				b.Fatal(err)
			}
		}
		return d, c
	}
	b.Run("partition-move", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d, _ := setup(b)
			b.StartTimer()
			// A join migrates whole partitions.
			if _, err := d.Join(core.Endpoint{Addr: fmt.Sprintf("j-%d", i), Node: "jn"}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			d.Close()
		}
	})
	b.Run("rehash-all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d, c := setup(b)
			b.StartTimer()
			// The rehash alternative: read and re-insert every pair
			// (what a DHT without fixed partitions pays on joins).
			for k := 0; k < 4*keysPerPartition; k++ {
				key := fmt.Sprintf("key-%09d", k)
				v, err := c.Lookup(key)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Insert(key, v); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d.Close()
		}
	})
}

// AblationHashFunctions is covered in internal/hashing benches; this
// target measures the end-to-end effect of the hash choice on ops.
func BenchmarkAblationHashChoice(b *testing.B) {
	for _, h := range []string{"lookup3", "fnv1a", "jenkins", "fnv1a32x"} {
		h := h
		b.Run(h, func(b *testing.B) {
			cfg := zht.Config{NumPartitions: 256, HashName: h, RetryBase: time.Millisecond}
			d, _, err := zht.BootstrapInproc(cfg, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			c, err := d.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 132)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert(fmt.Sprintf("k%09d", i), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// AppendVsInsert checks the §V.A micro-benchmark claim: "the append
// operation is at least as fast as inserts, if not faster, even under
// concurrent appends to the same key/value pair" — the property that
// lets FusionFS update shared directories without distributed locks.
func BenchmarkAppendVsInsertSameKey(b *testing.B) {
	cfg := zht.Config{NumPartitions: 256, Replicas: 0, RetryBase: time.Millisecond}
	d, _, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.Run("insert-distinct-keys", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			c, err := d.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			i := 0
			for pb.Next() {
				if err := c.Insert(fmt.Sprintf("ins-%p-%d", c, i), []byte("entry")); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("append-same-key", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			c, err := d.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			for pb.Next() {
				if err := c.Append("shared-directory", []byte("entry")); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// AblationBroadcast measures full dissemination time of the
// spanning-tree broadcast primitive (§VI, implemented) on a network
// with per-hop latency: the tree completes in O(log N) rounds, so
// doubling the cluster should far less than double the time.
func BenchmarkAblationBroadcast(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := zht.Config{NumPartitions: 256, RetryBase: time.Millisecond}
			d, reg, err := zht.BootstrapInproc(cfg, n)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			reg.SetLatency(func(string) time.Duration { return 200 * time.Microsecond })
			c, err := d.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			instances := d.Instances()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("bcast-%06d", i)
				if err := c.Broadcast(key, []byte("v")); err != nil {
					b.Fatal(err)
				}
				// Wait for full dissemination (sleep while polling:
				// a hard spin would starve the forwarding goroutines
				// on small GOMAXPROCS).
				for {
					all := true
					for _, in := range instances {
						if _, ok := in.BroadcastValue(key); !ok {
							all = false
							break
						}
					}
					if all {
						break
					}
					time.Sleep(20 * time.Microsecond)
				}
			}
		})
	}
}

// SimulatorThroughput benches the two simulator engines themselves.
func BenchmarkSimulator(b *testing.B) {
	b.Run("analytic-1M", func(b *testing.B) {
		p := sim.DefaultParams(1<<20, 4)
		for i := 0; i < b.N; i++ {
			if _, err := sim.Analytic(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("des-1024", func(b *testing.B) {
		p := sim.DefaultParams(1024, 1)
		for i := 0; i < b.N; i++ {
			if _, err := sim.DiscreteEvent(p, 0.05, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// EndToEndOps is the headline micro-benchmark: acknowledged op
// latency through the full stack (client → wire → transport → server
// → NoVoHT) for each transport.
func BenchmarkEndToEndOps(b *testing.B) {
	cfg := zht.Config{NumPartitions: 1024, Replicas: 0, RetryBase: time.Millisecond}
	d, _, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 132)
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := c.Insert(fmt.Sprintf("i%09d", i), val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lookup", func(b *testing.B) {
		c.Insert("hot-key-000001", val)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Lookup("hot-key-000001"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := c.Append(fmt.Sprintf("a%06d", i%1000), []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remove", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			c.Insert(fmt.Sprintf("r%09d", i), val)
		}
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Remove(fmt.Sprintf("r%09d", i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
