package zht_test

import (
	"fmt"
	"testing"

	"zht"
	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Hot-path allocation budgets, enforced by TestHotPathAllocBudget
// (run via `make bench-allocs`, which `make verify` includes). The
// budgets are the analytical floor of the pooled request path plus
// zero slack, so any new per-op allocation on the loopback TCP path
// fails the gate:
//
//   - Lookup = 2 allocs/op: the client's response frame becomes the
//     application-owned value (one make per op, by design — the value
//     outlives the transport), and the server materializes the key as
//     a Go string (decode cannot alias a string into the frame).
//   - Insert = 2 allocs/op: the server key string as above; mutation
//     acks carry no payload, so the client reuses its read frame. The
//     second slot is headroom for the runtime's occasional timer and
//     channel internals rather than a budgeted allocation.
//   - Batched insert = 2 allocs per sub-op: the envelope's per-op
//     decode (key strings, slice headers for the grouped apply)
//     amortized across the batch.
//
// See DESIGN.md §11 for the ownership rules that make the rest of the
// path allocation-free, and EXPERIMENTS.md for measured numbers.
const (
	lookupAllocBudget     = 2
	insertAllocBudget     = 2
	batchPerOpAllocBudget = 2
	allocBenchBatch       = 64 // sub-ops per batched-insert envelope
	allocBenchKeys        = 512
	allocBenchValueBytes  = 132 // the paper's micro-benchmark value size
)

// quorumLookupAllocBudget is the gate for the QUORUM read path at
// Replicas=1 (two instances on loopback TCP, copies=2). Quorum reads
// are client-coordinated fan-out, so the floor is structurally higher
// than the zero-hop ONE lookup and is paid per read, not per copy:
//
//   - the two response values: each answering copy's value is copied
//     out of its transport frame into application-owned memory
//     (2 allocs; same "value outlives the transport" rule as the ONE
//     lookup's single alloc),
//   - the fan-out scaffolding: the targets slice, the buffered votes
//     channel, and one goroutine per copy (the goroutine closures and
//     their stacks' escape-analysis spill),
//   - the replica leg's request struct and the per-call backoff state
//     (the ONE path reuses its routed-call scratch; the direct
//     replica call cannot),
//   - the server-side key strings on both instances (one per copy, as
//     in the ONE budget).
//
// Measured: 12 allocs/op steady-state. The budget adds slack for the
// runtime's occasional channel/timer internals under the fan-out's
// goroutine churn rather than for any budgeted allocation; the gate
// exists to catch structural regressions (a per-op table copy, an
// unpooled frame), not single-alloc noise on a path that is
// deliberately 2 RPCs + 2 goroutines per call.
const quorumLookupAllocBudget = 16

// benchTCPClient boots a single-instance deployment on loopback TCP —
// the configuration the alloc budgets are defined against — with every
// background allocator disabled: no replicas, no anti-entropy, no
// gossip, no op-deadline timers, no metrics. Keys are pre-inserted so
// insert benchmarks measure the overwrite path (a steady-state store
// neither grows nor allocates).
func benchTCPClient(tb testing.TB) (*zht.Client, []string, func()) {
	tb.Helper()
	cfg := zht.Config{
		NumPartitions:  64,
		Replicas:       0,
		OpDeadline:     -1, // disable: deadline timers cost allocations
		GossipCooldown: -1,
		AntiEntropy:    -1,
	}
	caller := zht.NewTCPCaller()
	hs := &zht.HandlerSwitch{}
	ln, err := zht.ListenTCP("127.0.0.1:0", hs.Handle)
	if err != nil {
		tb.Fatal(err)
	}
	eps := []zht.Endpoint{{Addr: ln.Addr(), Node: "n0"}}
	d, err := zht.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		hs.Set(h)
		return nopListener{addr}, nil
	}, caller)
	if err != nil {
		ln.Close()
		tb.Fatal(err)
	}
	c, err := zht.NewClientFromSeed(cfg, eps[0].Addr, caller)
	if err != nil {
		d.Close()
		ln.Close()
		tb.Fatal(err)
	}
	keys := make([]string, allocBenchKeys)
	val := make([]byte, allocBenchValueBytes)
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc-key-%06d", i)
		if err := c.Insert(keys[i], val); err != nil {
			tb.Fatal(err)
		}
	}
	cleanup := func() {
		d.Close()
		ln.Close()
		caller.Close()
	}
	return c, keys, cleanup
}

// benchTCPQuorumClient boots a TWO-instance deployment on loopback
// TCP with Replicas:1 — the smallest topology where a QUORUM read
// actually fans out (owner + one replica, need both). Background
// allocators are disabled as in benchTCPClient; keys are pre-inserted
// at ALL so both copies answer FOUND with equal versions (the
// steady state: no read-repair legs fire).
func benchTCPQuorumClient(tb testing.TB) (*zht.Client, []string, func()) {
	tb.Helper()
	cfg := zht.Config{
		NumPartitions:  64,
		Replicas:       1,
		OpDeadline:     -1,
		GossipCooldown: -1,
		AntiEntropy:    -1,
	}
	caller := zht.NewTCPCaller()
	const n = 2
	var (
		lns []transport.Listener
		hss []*zht.HandlerSwitch
		eps []zht.Endpoint
	)
	for i := 0; i < n; i++ {
		hs := &zht.HandlerSwitch{}
		ln, err := zht.ListenTCP("127.0.0.1:0", hs.Handle)
		if err != nil {
			tb.Fatal(err)
		}
		lns = append(lns, ln)
		hss = append(hss, hs)
		eps = append(eps, zht.Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("n%d", i)})
	}
	d, err := zht.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i := range eps {
			if eps[i].Addr == addr {
				hss[i].Set(h)
			}
		}
		return nopListener{addr}, nil
	}, caller)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := zht.NewClientFromSeed(cfg, eps[0].Addr, caller)
	if err != nil {
		d.Close()
		tb.Fatal(err)
	}
	keys := make([]string, allocBenchKeys)
	val := make([]byte, allocBenchValueBytes)
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc-key-%06d", i)
		if err := c.InsertWith(keys[i], val, zht.ConsistencyAll); err != nil {
			tb.Fatal(err)
		}
	}
	cleanup := func() {
		d.Close()
		for _, ln := range lns {
			ln.Close()
		}
		caller.Close()
	}
	return c, keys, cleanup
}

func benchQuorumLookupAllocs(c *zht.Client, keys []string) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.LookupWith(keys[i%len(keys)], zht.ConsistencyQuorum); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchLookupAllocs(c *zht.Client, keys []string) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Lookup(keys[i%len(keys)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchInsertAllocs(c *zht.Client, keys []string) func(b *testing.B) {
	val := make([]byte, allocBenchValueBytes)
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Insert(keys[i%len(keys)], val); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchBatchInsertAllocs(c *zht.Client, keys []string) func(b *testing.B) {
	val := make([]byte, allocBenchValueBytes)
	ops := make([]core.BatchOp, allocBenchBatch)
	for i := range ops {
		ops[i] = core.BatchOp{Op: wire.OpInsert, Key: keys[i%len(keys)], Value: val}
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rs, err := c.Batch(ops)
			if err != nil {
				b.Fatal(err)
			}
			for j := range rs {
				if rs[j].Err != nil {
					b.Fatal(rs[j].Err)
				}
			}
		}
	}
}

// BenchmarkHotPathAllocs measures the end-to-end loopback TCP path the
// alloc gate budgets: run with -benchmem to see allocs/op.
func BenchmarkHotPathAllocs(b *testing.B) {
	c, keys, cleanup := benchTCPClient(b)
	defer cleanup()
	b.Run("lookup", benchLookupAllocs(c, keys))
	b.Run("insert", benchInsertAllocs(c, keys))
	b.Run("batch-insert", benchBatchInsertAllocs(c, keys))
	qc, qkeys, qcleanup := benchTCPQuorumClient(b)
	defer qcleanup()
	b.Run("quorum-lookup", benchQuorumLookupAllocs(qc, qkeys))
}

// TestHotPathAllocBudget is the allocs/op regression gate (`make
// bench-allocs`): it benchmarks the loopback hot path in-process and
// fails if any op exceeds its budget. Skipped under the race detector
// (instrumentation allocates) and in -short runs.
func TestHotPathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc budgets are meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("alloc gate needs full benchmark iterations")
	}
	c, keys, cleanup := benchTCPClient(t)
	defer cleanup()

	// Warm the pools and the connection cache before measuring: the
	// first operations populate freelists, grow the demux map, and
	// dial the mux connection, all of which allocate once.
	for i := 0; i < 2*allocBenchKeys; i++ {
		if _, err := c.Lookup(keys[i%len(keys)]); err != nil {
			t.Fatal(err)
		}
	}

	check := func(name string, got, budget float64) {
		t.Logf("%s: %.2f allocs/op (budget %.0f)", name, got, budget)
		if got > budget {
			t.Errorf("%s exceeds alloc budget: %.2f > %.0f allocs/op", name, got, budget)
		}
	}
	r := testing.Benchmark(benchLookupAllocs(c, keys))
	check("lookup", float64(r.AllocsPerOp()), lookupAllocBudget)
	r = testing.Benchmark(benchInsertAllocs(c, keys))
	check("insert", float64(r.AllocsPerOp()), insertAllocBudget)
	r = testing.Benchmark(benchBatchInsertAllocs(c, keys))
	perOp := float64(r.AllocsPerOp()) / allocBenchBatch
	check("batch-insert", perOp, batchPerOpAllocBudget)

	// The QUORUM read path has its own (structurally higher) floor —
	// see quorumLookupAllocBudget for the breakdown. Benchmarked on a
	// separate two-instance deployment: fan-out needs a replica.
	qc, qkeys, qcleanup := benchTCPQuorumClient(t)
	defer qcleanup()
	for i := 0; i < 2*allocBenchKeys; i++ {
		if _, err := qc.LookupWith(qkeys[i%len(qkeys)], zht.ConsistencyQuorum); err != nil {
			t.Fatal(err)
		}
	}
	r = testing.Benchmark(benchQuorumLookupAllocs(qc, qkeys))
	check("quorum-lookup", float64(r.AllocsPerOp()), quorumLookupAllocBudget)
}
