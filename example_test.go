package zht_test

import (
	"errors"
	"fmt"

	"zht"
)

// Example shows the library quick start: an in-process deployment and
// the four basic operations.
func Example() {
	cfg := zht.Config{NumPartitions: 256, Replicas: 1}
	d, _, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		panic(err)
	}
	defer d.Close()

	c, err := d.NewClient()
	if err != nil {
		panic(err)
	}
	c.Insert("/file", []byte("metadata"))
	v, _ := c.Lookup("/file")
	fmt.Println(string(v))
	c.Remove("/file")
	_, err = c.Lookup("/file")
	fmt.Println(errors.Is(err, zht.ErrNotFound))
	// Output:
	// metadata
	// true
}

// ExampleClient_Append shows lock-free concurrent modification: the
// operation FusionFS uses for shared-directory updates.
func ExampleClient_Append() {
	d, _, err := zht.BootstrapInproc(zht.Config{NumPartitions: 64}, 2)
	if err != nil {
		panic(err)
	}
	defer d.Close()
	c, _ := d.NewClient()

	c.Append("/dir", []byte("a.txt;"))
	c.Append("/dir", []byte("b.txt;"))
	v, _ := c.Lookup("/dir")
	fmt.Println(string(v))
	// Output:
	// a.txt;b.txt;
}

// ExampleClient_Cas shows the compare-and-swap extension used by
// schedulers for atomic state transitions.
func ExampleClient_Cas() {
	d, _, err := zht.BootstrapInproc(zht.Config{NumPartitions: 64}, 2)
	if err != nil {
		panic(err)
	}
	defer d.Close()
	c, _ := d.NewClient()

	c.Cas("job", nil, []byte("queued")) // expect-absent create
	if _, err := c.Cas("job", []byte("queued"), []byte("running")); err == nil {
		v, _ := c.Lookup("job")
		fmt.Println(string(v))
	}
	// A stale transition fails.
	_, err = c.Cas("job", []byte("queued"), []byte("done"))
	fmt.Println(errors.Is(err, zht.ErrCasMismatch))
	// Output:
	// running
	// true
}

// ExampleDeployment_Join shows dynamic membership: a node joining a
// live deployment takes over half the most-loaded node's partitions.
func ExampleDeployment_Join() {
	d, _, err := zht.BootstrapInproc(zht.Config{NumPartitions: 64}, 2)
	if err != nil {
		panic(err)
	}
	defer d.Close()
	c, _ := d.NewClient()
	c.Insert("survives", []byte("the move"))

	if _, err := d.Join(zht.Endpoint{Addr: "node-3", Node: "rack1/node3"}); err != nil {
		panic(err)
	}
	fmt.Println(d.Size())
	v, _ := c.Lookup("survives")
	fmt.Println(string(v))
	// Output:
	// 3
	// the move
}
