# Developer entry points. The repo is plain `go` otherwise; these
# targets just pin the invocations CI and contributors should use.

GO ?= go

.PHONY: build test verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static checks plus the full test
# suite (including the chaos soak) under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
