# Developer entry points. The repo is plain `go` otherwise; these
# targets just pin the invocations CI and contributors should use.

GO ?= go

.PHONY: build test verify bench clean docs-check fmt-check bench-smoke storage-smoke repair-smoke churn-smoke consistency-smoke tenant-smoke bench-allocs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt'd.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# docs-check keeps the prose honest: every package has a godoc
# comment, doc code blocks only reference real CLI flags, and every
# registered metric name is catalogued in OBSERVABILITY.md.
docs-check:
	$(GO) run ./internal/tools/docscheck

# bench-smoke is the batching regression gate: a 30s-capped loopback
# TCP run that fails unless `-batch` beats lockstep by the required
# ratio (see cmd/zht-bench -smoke).
bench-smoke:
	timeout 30 $(GO) run ./cmd/zht-bench -smoke

# storage-smoke is the crash-recovery gate: a randomized loop that
# tears the write-ahead log mid-commit via the chaos fault hooks,
# reopens the store, and checks that every acknowledged mutation
# survived (see internal/tools/storagesmoke). Seeds are printed, so a
# failure is replayable with -seed.
storage-smoke:
	timeout 60 $(GO) run ./internal/tools/storagesmoke

# repair-smoke is the replica-convergence gate: a randomized loop
# that partitions a replica away mid-load, heals it, and requires
# digest equality across replicas plus zero lost acked writes (see
# internal/tools/repairsmoke). Seeds are printed, so a failure is
# replayable with -seed.
repair-smoke:
	timeout 60 $(GO) run ./internal/tools/repairsmoke

# churn-smoke is the elastic-membership gate: a randomized loop that
# scales a loaded deployment up and back down (one iteration with the
# manager's delta broadcast suppressed, so gossip alone must converge
# the ring), and requires zero lost acked writes, epoch agreement,
# digest convergence, and evidence that data moved through the
# throttled migration engine (see internal/tools/churnsmoke). Seeds
# are printed, so a failure is replayable with -seed.
churn-smoke:
	timeout 90 $(GO) run ./internal/tools/churnsmoke

# consistency-smoke is the tunable-consistency gate: a randomized
# loop of sequential QUORUM write+read pairs through a replica
# partition and a node crash, requiring read-your-writes on every
# acked write, enforced quorum refusals while the replica is
# unreachable, and zero lost acked writes (see
# internal/tools/consistencysmoke). Seeds are printed, so a failure
# is replayable with -seed.
consistency-smoke:
	timeout 60 $(GO) run ./internal/tools/consistencysmoke

# tenant-smoke is the multi-tenancy gate: a randomized loop that
# floods one quota-capped tenant while pacing another, and requires
# the capped tenant to be shed at the admission gate, the in-quota
# tenant to run loss- and shed-free, namespace isolation between the
# two, and TTL expiry + reaping to hold end to end (see
# internal/tools/tenantsmoke). Seeds are printed, so a failure is
# replayable with -seed.
tenant-smoke:
	timeout 60 $(GO) run ./internal/tools/tenantsmoke

# bench-allocs is the hot-path allocation gate: it benchmarks the
# loopback TCP request path in-process and fails if Lookup, Insert, or
# batched Insert exceeds its allocs/op budget (the budget constants and
# their analytical derivation live at the top of allocs_test.go). Run
# without -race: the race detector's instrumentation allocates, so the
# gate skips itself under it.
bench-allocs:
	timeout 120 $(GO) test -run TestHotPathAllocBudget -count=1 -v .

# verify is the pre-merge gate: formatting and docs checks, static
# analysis, the full test suite (including the chaos soaks) under the
# race detector, the hot-path allocation gate, and the batching +
# crash-recovery + replica-repair + elastic-membership +
# tunable-consistency + multi-tenancy smoke runs.
verify: fmt-check docs-check
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) bench-allocs
	$(MAKE) bench-smoke
	$(MAKE) storage-smoke
	$(MAKE) repair-smoke
	$(MAKE) churn-smoke
	$(MAKE) consistency-smoke
	$(MAKE) tenant-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
