# Developer entry points. The repo is plain `go` otherwise; these
# targets just pin the invocations CI and contributors should use.

GO ?= go

.PHONY: build test verify bench clean docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# docs-check keeps the prose honest: every package has a godoc
# comment, doc code blocks only reference real CLI flags, and every
# registered metric name is catalogued in OBSERVABILITY.md.
docs-check:
	$(GO) run ./internal/tools/docscheck

# verify is the pre-merge gate: static checks plus the full test
# suite (including the chaos soak) under the race detector.
verify: docs-check
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
