package zht_test

import (
	"errors"
	"fmt"
	"testing"

	"zht"
	"zht/internal/transport"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow
// end to end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := zht.Config{NumPartitions: 256, Replicas: 1}
	d, _, err := zht.BootstrapInproc(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("/dir/file", []byte("meta")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Lookup("/dir/file")
	if err != nil || string(v) != "meta" {
		t.Fatalf("Lookup = %q %v", v, err)
	}
	if err := c.Append("/dir", []byte("file;")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/dir/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("/dir/file"); !errors.Is(err, zht.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

// TestPublicAPIOverTCP runs a two-instance TCP deployment with a
// remote-seeded client, the way cmd/zht-server and cmd/zht-client
// deploy ZHT across machines.
func TestPublicAPIOverTCP(t *testing.T) {
	cfg := zht.Config{NumPartitions: 64, Replicas: 0}
	caller := zht.NewTCPCaller()
	defer caller.Close()

	var switches []*zht.HandlerSwitch
	var eps []zht.Endpoint
	for i := 0; i < 2; i++ {
		hs := &zht.HandlerSwitch{}
		ln, err := zht.ListenTCP("127.0.0.1:0", hs.Handle)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		switches = append(switches, hs)
		eps = append(eps, zht.Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("n%d", i)})
	}
	d, err := zht.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return nopListener{addr}, nil
			}
		}
		return nil, fmt.Errorf("no listener for %s", addr)
	}, caller)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c, err := zht.NewClientFromSeed(cfg, eps[0].Addr, caller)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Lookup(k); err != nil || string(v) != "v" {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
}

type nopListener struct{ addr string }

func (l nopListener) Addr() string { return l.addr }
func (l nopListener) Close() error { return nil }
