module zht

go 1.22
