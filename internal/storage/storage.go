// Package storage defines the pluggable storage-engine boundary of a
// ZHT instance: the KV interface every partition store implements,
// the durability modes a write-ahead log can offer, and the
// engine-agnostic partition snapshot format used by data migration.
//
// The paper treats the per-partition store as a swappable component —
// NoVoHT is "the default storage", with BerkeleyDB and KyotoCabinet
// evaluated as alternatives (§III.I, Figure 6) — but the seed
// implementation hard-wired consumers to the concrete NoVoHT type.
// This package is the seam: internal/core, internal/figures, and the
// baselines consume only KV, so replication and durability policy can
// change without touching the routing layer.
//
// Durability levels follow the classic group-commit design: a single
// WAL writer coalesces concurrently submitted records into one
// buffered write and (per mode) one fsync, acknowledging each caller
// only once its record's durability level is satisfied.
package storage

import (
	"errors"
	"fmt"
)

// KV is one partition store. Implementations must be safe for
// concurrent use by multiple goroutines.
type KV interface {
	// Put stores val under key, replacing any existing value.
	Put(key string, val []byte) error
	// PutIfAbsent stores val only when key is not present; it
	// reports whether the store was modified.
	PutIfAbsent(key string, val []byte) (bool, error)
	// Get returns a copy of the value stored under key.
	Get(key string) ([]byte, bool, error)
	// Remove deletes key, reporting whether it was present.
	Remove(key string) (bool, error)
	// Append concatenates val to the value under key, creating the
	// key when absent (ZHT's fourth basic operation).
	Append(key string, val []byte) error
	// Cas atomically replaces the value under key with newVal when
	// the current value equals oldVal (nil oldVal = "expect absent").
	// It returns the value observed when the swap fails.
	Cas(key string, oldVal, newVal []byte) (bool, []byte, error)
	// Len reports the number of keys stored.
	Len() int
	// ForEach calls fn for every pair; fn must not mutate the store.
	ForEach(fn func(key string, val []byte) error) error
	// Sync flushes buffered state and fsyncs backing storage.
	Sync() error
	// Stats returns a snapshot of store statistics.
	Stats() Stats
	// Close flushes durable state and closes the store.
	Close() error
}

// ScratchGetter is an optional KV extension for allocation-free
// reads: GetAppend appends the value stored under key to dst (a
// caller-owned scratch buffer) instead of allocating a fresh copy per
// read. It returns dst — possibly grown — alongside the same
// presence/error results as Get; on a miss or error dst is returned
// unmodified. Engines that can copy a value straight out of their
// shard under its read lock should implement it; consumers
// type-assert and fall back to Get.
type ScratchGetter interface {
	GetAppend(dst []byte, key string) ([]byte, bool, error)
}

// VersionedKV is an optional KV extension for stores that persist a
// version stamp alongside each value. Tunable consistency needs it:
// replicas resolve concurrent writes last-writer-wins on the version,
// and quorum reads compare versions across copies. Versions are
// opaque uint64s ordered by numeric comparison (internal/core stamps
// them from a hybrid logical clock); version 0 means "unversioned"
// and loses to any stamped write. Engines that cannot persist the
// stamp simply do not implement the interface; consumers type-assert
// and fall back to the unversioned methods (degrading to
// blind-overwrite semantics, today's behavior).
type VersionedKV interface {
	// PutV stores val under key with the given version,
	// unconditionally replacing any existing value and version.
	PutV(key string, val []byte, ver uint64) error
	// PutLWW stores (val, ver) only when ver is strictly newer than
	// the stored version (absent = version 0 when the key predates
	// versioning, loses to any ver > 0; a missing key always loses).
	// It reports whether the store was modified: false means the
	// stored value is at least as new and was kept.
	PutLWW(key string, val []byte, ver uint64) (bool, error)
	// RemoveLWW deletes key only when ver is strictly newer than the
	// stored version, reporting whether the key was removed. Removing
	// an absent key reports false with no error.
	RemoveLWW(key string, ver uint64) (bool, error)
	// GetV is Get plus the stored version (0 for pre-versioning
	// records).
	GetV(key string) (val []byte, ver uint64, found bool, err error)
	// GetAppendV is GetAppend plus the stored version.
	GetAppendV(dst []byte, key string) (val []byte, ver uint64, found bool, err error)
	// ForEachV calls fn for every pair with its version; fn must not
	// mutate the store.
	ForEachV(fn func(key string, val []byte, ver uint64) error) error
}

// Stats is a point-in-time snapshot of a store's internals.
type Stats struct {
	// Keys is the number of live keys.
	Keys int
	// Resident is how many values are held in memory (the rest are
	// evicted to their on-disk image).
	Resident int
	// LogBytes is the current log length, including superseded
	// records not yet compacted away.
	LogBytes int64
	// DeadBytes is the portion of LogBytes owned by superseded
	// records (reclaimed by the next compaction).
	DeadBytes int64
	// Mutations counts mutations since the last compaction.
	Mutations int
	// Persistent reports whether the store is backed by a log file.
	Persistent bool
	// Shards is the store's internal lock-shard count (1 for
	// unsharded engines).
	Shards int
}

// Durability selects how much of the write-ahead log's durability a
// mutation must reach before it is acknowledged. The zero value is
// Async — the seed store's behavior — so existing configurations are
// unchanged.
type Durability int

const (
	// DurabilityAsync hands the record to the WAL writer and returns
	// immediately: data reaches the OS promptly (surviving process
	// crashes) but no fsync is issued, so power loss can lose the
	// tail. This matches the paper's measured ~3µs persistence cost.
	DurabilityAsync Durability = iota
	// DurabilityNone disables persistence entirely: the store is
	// volatile and any configured log path is ignored (the paper's
	// "NoVoHT no persistence" configuration).
	DurabilityNone
	// DurabilityGroup acknowledges a mutation only after its record
	// is fsynced, amortizing each fsync across every record the
	// group-commit batch coalesced.
	DurabilityGroup
	// DurabilitySync acknowledges a mutation only after its record
	// got its own fsync — one fsync per operation, the mode group
	// commit exists to beat.
	DurabilitySync
)

// String returns the flag spelling of d.
func (d Durability) String() string {
	switch d {
	case DurabilityNone:
		return "none"
	case DurabilityAsync:
		return "async"
	case DurabilityGroup:
		return "group"
	case DurabilitySync:
		return "sync"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// ParseDurability parses a -durability flag value.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "none":
		return DurabilityNone, nil
	case "", "async":
		return DurabilityAsync, nil
	case "group":
		return DurabilityGroup, nil
	case "sync":
		return DurabilitySync, nil
	}
	return 0, fmt.Errorf("storage: unknown durability mode %q (want none, async, group, or sync)", s)
}

// Fault injects storage-level failures for crash-recovery testing
// (see internal/chaos for scripted implementations). A WAL consults
// the hook before touching the file; a returned error marks the WAL
// broken — exactly as if the process died mid-commit — and every
// subsequent or waiting operation fails.
type Fault interface {
	// BeforeWrite is consulted before appending n bytes to the log.
	// It returns how many of those bytes actually reach the file
	// (keep < n models a torn write) and the error to inject; a nil
	// error must return keep == n.
	BeforeWrite(n int) (keep int, err error)
	// BeforeSync is consulted before an fsync; a non-nil error makes
	// the fsync fail (the records it would have hardened stay
	// unacknowledged).
	BeforeSync() error
}

// ErrBroken reports an operation on a store whose WAL failed (a
// crash-injection fault or a real I/O error); the store is read-only
// garbage at that point and must be reopened from its log.
var ErrBroken = errors.New("storage: write-ahead log is broken")
