package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Export and Import move a whole partition image between nodes. ZHT's
// partition migration (paper §III.C "Data Migration") moves entire
// partitions — "as easy as moving a file" — instead of rehashing
// key/value pairs. The stream format is engine-agnostic: any KV can
// produce or consume it, so a migration can even move a partition
// between different storage engines.

// ExportMagic precedes every export stream.
var ExportMagic = []byte("NOVOEXP1")

// Stream record framing: a pair record is tag 1 followed by uvarint
// key and value lengths, the key, the value, and a CRC32 of all of
// the preceding bytes; tag 0 marks a clean end of stream. Tag 2 is a
// versioned pair: identical, plus a version-stamp uvarint between the
// value length and the key. Versioned sources emit tag 2 only for
// pairs with a non-zero stamp, so an unversioned store's stream is
// byte-identical to the pre-versioning format.
const (
	expPair  = 1
	expEnd   = 0
	expPairV = 2
)

var errBadExportRecord = errors.New("storage: bad export record checksum")

// Export writes a self-contained snapshot of kv to w. When kv
// persists version stamps (VersionedKV), they travel with the pairs
// so an import applies last-writer-wins correctly.
func Export(w io.Writer, kv KV) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(ExportMagic); err != nil {
		return err
	}
	var err error
	if vkv, ok := kv.(VersionedKV); ok {
		err = vkv.ForEachV(func(key string, val []byte, ver uint64) error {
			return writeExportRecord(bw, key, val, ver)
		})
	} else {
		err = kv.ForEach(func(key string, val []byte) error {
			return writeExportRecord(bw, key, val, 0)
		})
	}
	if err != nil {
		return err
	}
	if err := bw.WriteByte(expEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// Import loads pairs from an Export stream into kv, replacing values
// for keys that already exist. Versioned pairs land through PutV when
// kv supports it (preserving the stamp for later LWW resolution);
// otherwise the stamp is dropped and the pair imported plain. It
// returns the number of pairs imported.
func Import(r io.Reader, kv KV) (int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(ExportMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("storage: import: %w", err)
	}
	if string(magic) != string(ExportMagic) {
		return 0, errors.New("storage: import: bad magic")
	}
	vkv, _ := kv.(VersionedKV)
	count := 0
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return count, fmt.Errorf("storage: import: missing terminator: %w", err)
		}
		if tag == expEnd {
			return count, nil
		}
		if tag != expPair && tag != expPairV {
			return count, errors.New("storage: import: unexpected record type")
		}
		key, val, ver, err := readExportRecord(br, tag)
		if err != nil {
			return count, fmt.Errorf("storage: import: %w", err)
		}
		if ver > 0 && vkv != nil {
			err = vkv.PutV(key, val, ver)
		} else {
			err = kv.Put(key, val)
		}
		if err != nil {
			return count, err
		}
		count++
	}
}

// writeExportRecord appends one pair record to w, as a versioned
// record when ver is non-zero.
func writeExportRecord(w *bufio.Writer, key string, val []byte, ver uint64) error {
	var hdr [1 + 3*binary.MaxVarintLen64]byte
	hdr[0] = expPair
	if ver > 0 {
		hdr[0] = expPairV
	}
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	if ver > 0 {
		n += binary.PutUvarint(hdr[n:], ver)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:n])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, chunk := range [][]byte{hdr[:n], []byte(key), val, sum[:]} {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	return nil
}

// readExportRecord reads the body of one pair record whose tag byte
// has already been consumed; versioned records yield their stamp,
// plain pairs ver 0.
func readExportRecord(r *bufio.Reader, tag byte) (string, []byte, uint64, error) {
	crc := crc32.NewIEEE()
	crc.Write([]byte{tag})
	klen, err := readUvarint(r, crc)
	if err != nil {
		return "", nil, 0, err
	}
	vlen, err := readUvarint(r, crc)
	if err != nil {
		return "", nil, 0, err
	}
	var ver uint64
	if tag == expPairV {
		if ver, err = readUvarint(r, crc); err != nil {
			return "", nil, 0, err
		}
	}
	if klen > 1<<20 || vlen > 1<<30 {
		return "", nil, 0, errBadExportRecord
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", nil, 0, err
	}
	crc.Write(kb)
	val := make([]byte, vlen)
	if _, err := io.ReadFull(r, val); err != nil {
		return "", nil, 0, err
	}
	crc.Write(val)
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return "", nil, 0, err
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return "", nil, 0, errBadExportRecord
	}
	return string(kb), val, ver, nil
}

func readUvarint(r *bufio.Reader, crc io.Writer) (uint64, error) {
	var v uint64
	var shift int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		crc.Write([]byte{b})
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, errBadExportRecord
		}
	}
}
