package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Export and Import move a whole partition image between nodes. ZHT's
// partition migration (paper §III.C "Data Migration") moves entire
// partitions — "as easy as moving a file" — instead of rehashing
// key/value pairs. The stream format is engine-agnostic: any KV can
// produce or consume it, so a migration can even move a partition
// between different storage engines.

// ExportMagic precedes every export stream.
var ExportMagic = []byte("NOVOEXP1")

// Stream record framing: a pair record is tag 1 followed by uvarint
// key and value lengths, the key, the value, and a CRC32 of all of
// the preceding bytes; tag 0 marks a clean end of stream.
const (
	expPair = 1
	expEnd  = 0
)

var errBadExportRecord = errors.New("storage: bad export record checksum")

// Export writes a self-contained snapshot of kv to w.
func Export(w io.Writer, kv KV) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(ExportMagic); err != nil {
		return err
	}
	err := kv.ForEach(func(key string, val []byte) error {
		return writeExportRecord(bw, key, val)
	})
	if err != nil {
		return err
	}
	if err := bw.WriteByte(expEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// Import loads pairs from an Export stream into kv, replacing values
// for keys that already exist. It returns the number of pairs
// imported.
func Import(r io.Reader, kv KV) (int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(ExportMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("storage: import: %w", err)
	}
	if string(magic) != string(ExportMagic) {
		return 0, errors.New("storage: import: bad magic")
	}
	count := 0
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return count, fmt.Errorf("storage: import: missing terminator: %w", err)
		}
		if tag == expEnd {
			return count, nil
		}
		if tag != expPair {
			return count, errors.New("storage: import: unexpected record type")
		}
		key, val, err := readExportRecord(br, tag)
		if err != nil {
			return count, fmt.Errorf("storage: import: %w", err)
		}
		if err := kv.Put(key, val); err != nil {
			return count, err
		}
		count++
	}
}

// writeExportRecord appends one pair record to w.
func writeExportRecord(w *bufio.Writer, key string, val []byte) error {
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = expPair
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:n])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, chunk := range [][]byte{hdr[:n], []byte(key), val, sum[:]} {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	return nil
}

// readExportRecord reads the body of one pair record whose tag byte
// has already been consumed.
func readExportRecord(r *bufio.Reader, tag byte) (string, []byte, error) {
	crc := crc32.NewIEEE()
	crc.Write([]byte{tag})
	klen, err := readUvarint(r, crc)
	if err != nil {
		return "", nil, err
	}
	vlen, err := readUvarint(r, crc)
	if err != nil {
		return "", nil, err
	}
	if klen > 1<<20 || vlen > 1<<30 {
		return "", nil, errBadExportRecord
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", nil, err
	}
	crc.Write(kb)
	val := make([]byte, vlen)
	if _, err := io.ReadFull(r, val); err != nil {
		return "", nil, err
	}
	crc.Write(val)
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return "", nil, err
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return "", nil, errBadExportRecord
	}
	return string(kb), val, nil
}

func readUvarint(r *bufio.Reader, crc io.Writer) (uint64, error) {
	var v uint64
	var shift int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		crc.Write([]byte{b})
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, errBadExportRecord
		}
	}
}
