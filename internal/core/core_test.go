package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

func testCfg() Config {
	return Config{NumPartitions: 64, Replicas: 2, RetryBase: time.Millisecond}
}

func startDeployment(t *testing.T, cfg Config, n int) (*Deployment, *transport.Registry, *Client) {
	t.Helper()
	d, reg, err := BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return d, reg, c
}

func TestBasicOps(t *testing.T) {
	_, _, c := startDeployment(t, testCfg(), 4)
	if err := c.Insert("file1", []byte("meta1")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Lookup("file1")
	if err != nil || string(v) != "meta1" {
		t.Fatalf("Lookup = %q %v", v, err)
	}
	if err := c.Insert("file1", []byte("meta2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Lookup("file1"); string(v) != "meta2" {
		t.Errorf("overwrite: %q", v)
	}
	if err := c.Remove("file1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("file1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup removed key: %v", err)
	}
	if err := c.Remove("file1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestManyKeysSpreadAcrossInstances(t *testing.T) {
	d, _, c := startDeployment(t, Config{NumPartitions: 64, Replicas: 0}, 8)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%06d", i), []byte(fmt.Sprintf("val-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, in := range d.Instances() {
		k := in.LocalKeys()
		if k == 0 {
			t.Errorf("instance %s holds no keys; distribution broken", in.ID())
		}
		total += k
	}
	if total != n {
		t.Errorf("total stored keys = %d, want %d (no replicas)", total, n)
	}
	for i := 0; i < n; i += 97 {
		v, err := c.Lookup(fmt.Sprintf("key-%06d", i))
		if err != nil || string(v) != fmt.Sprintf("val-%06d", i) {
			t.Fatalf("key-%06d = %q %v", i, v, err)
		}
	}
}

func TestInsertIfAbsent(t *testing.T) {
	_, _, c := startDeployment(t, testCfg(), 2)
	if err := c.InsertIfAbsent("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertIfAbsent("k", []byte("v2")); !errors.Is(err, ErrExists) {
		t.Errorf("second conditional insert: %v", err)
	}
	if v, _ := c.Lookup("k"); string(v) != "v1" {
		t.Errorf("value clobbered: %q", v)
	}
}

func TestAppendAcrossClients(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 4)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := c.Append("shared-dir", []byte{byte('a' + w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c, _ := d.NewClient()
	v, err := c.Lookup("shared-dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != workers*per {
		t.Fatalf("append lost data: %d bytes, want %d", len(v), workers*per)
	}
	counts := map[byte]int{}
	for _, b := range v {
		counts[b]++
	}
	for w := 0; w < workers; w++ {
		if counts[byte('a'+w)] != per {
			t.Errorf("client %d contributed %d, want %d", w, counts[byte('a'+w)], per)
		}
	}
}

func TestCas(t *testing.T) {
	_, _, c := startDeployment(t, testCfg(), 4)
	if _, err := c.Cas("task", nil, []byte("queued")); err != nil {
		t.Fatal(err)
	}
	cur, err := c.Cas("task", []byte("wrong"), []byte("x"))
	if !errors.Is(err, ErrCasMismatch) || string(cur) != "queued" {
		t.Fatalf("cas mismatch = %q %v", cur, err)
	}
	if _, err := c.Cas("task", []byte("queued"), []byte("running")); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Lookup("task"); string(v) != "running" {
		t.Errorf("after cas: %q", v)
	}
	// Expect-absent on present key.
	if _, err := c.Cas("task", nil, []byte("y")); !errors.Is(err, ErrCasMismatch) {
		t.Errorf("expect-absent on present: %v", err)
	}
}

func TestCasContention(t *testing.T) {
	d, _, c := startDeployment(t, testCfg(), 4)
	if _, err := c.Cas("counter", nil, []byte("0")); err != nil {
		t.Fatal(err)
	}
	const workers, incr = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, _ := d.NewClient()
			for i := 0; i < incr; i++ {
				for {
					cur, err := cl.Lookup("counter")
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(string(cur), "%d", &n)
					_, err = cl.Cas("counter", cur, []byte(fmt.Sprintf("%d", n+1)))
					if err == nil {
						break
					}
					if !errors.Is(err, ErrCasMismatch) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _ := c.Lookup("counter")
	if string(v) != fmt.Sprintf("%d", workers*incr) {
		t.Errorf("counter = %q, want %d (CAS must linearize)", v, workers*incr)
	}
}

func TestReplicationPlacesCopies(t *testing.T) {
	d, _, c := startDeployment(t, testCfg(), 4)
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	total := 0
	for _, in := range d.Instances() {
		total += in.LocalKeys()
	}
	// 2 replicas on 4 nodes: every key stored 3 times.
	if total != 3*n {
		t.Errorf("total copies = %d, want %d", total, 3*n)
	}
}

func TestWrongOwnerLazyRefresh(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 0, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 2)
	// Stale client: built before a join changes ownership.
	stale, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("k-before", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Join(Endpoint{Addr: "zht-joined", Node: "node-joined"}); err != nil {
		t.Fatal(err)
	}
	// The stale client must transparently recover via WrongOwner +
	// table refresh for keys now owned by the new instance.
	oldEpoch := stale.Table().Epoch
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("post-join-%04d", i)
		if err := stale.Insert(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if v, err := stale.Lookup(k); err != nil || string(v) != "x" {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
	if stale.Table().Epoch <= oldEpoch {
		t.Error("stale client never refreshed its table")
	}
}

func TestFailoverServesFromReplica(t *testing.T) {
	d, reg, c := startDeployment(t, testCfg(), 4)
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	victim := d.Instance(1)
	reg.SetDown(victim.Addr(), true)

	// Every key must remain readable (replicas answer for the dead
	// primary) and writable.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := c.Lookup(k)
		if err != nil || string(v) != fmt.Sprintf("val-%04d", i) {
			t.Fatalf("%s after failure = %q %v", k, v, err)
		}
	}
	if err := c.Insert("post-failure", []byte("ok")); err != nil {
		t.Fatalf("write after failure: %v", err)
	}
	// The failure must have been broadcast: other instances see the
	// victim as failed.
	tab := d.Instance(0).Table()
	idx := tab.IndexOf(victim.ID())
	if tab.Status[idx] != ring.Failed {
		t.Errorf("victim status on peer = %v, want failed", tab.Status[idx])
	}
}

func TestReplicaRebuildAfterFailure(t *testing.T) {
	d, reg, c := startDeployment(t, testCfg(), 4)
	const n = 120
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	victim := d.Instance(2)
	lost := victim.LocalKeys()
	if lost == 0 {
		t.Fatal("victim held no keys; test is vacuous")
	}
	reg.SetDown(victim.Addr(), true)
	// Trigger detection via a write.
	if err := c.Insert("trigger", []byte("x")); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	// Replication level must be restored: each key has 3 copies on
	// the 3 surviving instances (minus the victim's copies).
	total := 0
	for _, in := range d.Instances() {
		if in == victim {
			continue
		}
		total += in.LocalKeys()
	}
	// n keys * 3 copies + trigger*3 = full level on survivors.
	want := 3 * (n + 1)
	if total < want {
		t.Errorf("copies on survivors = %d, want >= %d (rebuild incomplete)", total, want)
	}
}

func TestDynamicJoinMovesPartitionsNotKeys(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 0, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 2)
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("v%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := map[string]int{}
	for _, in := range d.Instances() {
		before[string(in.ID())] = in.LocalKeys()
	}
	joined, err := d.Join(Endpoint{Addr: "zht-new", Node: "node-new"})
	if err != nil {
		t.Fatal(err)
	}
	if joined.LocalKeys() == 0 {
		t.Error("joined instance received no data")
	}
	// All data remains reachable.
	c2, _ := d.NewClient()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, err := c2.Lookup(k)
		if err != nil || string(v) != fmt.Sprintf("v%05d", i) {
			t.Fatalf("%s after join = %q %v", k, v, err)
		}
	}
	// Partition count: the most-loaded instance gave up half its 32.
	tab := joined.Table()
	if got := len(tab.PartitionsOf(tab.IndexOf(joined.ID()))); got != 16 {
		t.Errorf("joined instance owns %d partitions, want 16", got)
	}
}

func TestJoinUnderLoad(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 0, RetryBase: time.Millisecond}
	d, _, _ := startDeployment(t, cfg, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var opErrs sync.Map
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				opErrs.Store("client", err)
				return
			}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("w%d-%06d", w, i)
				if err := c.Insert(k, []byte("v")); err != nil {
					opErrs.Store(k, err)
					return
				}
				if _, err := c.Lookup(k); err != nil {
					opErrs.Store(k+"/lookup", err)
					return
				}
				i++
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	for j := 0; j < 3; j++ {
		if _, err := d.Join(Endpoint{Addr: fmt.Sprintf("zht-live-%d", j), Node: fmt.Sprintf("node-live-%d", j)}); err != nil {
			t.Errorf("join %d under load: %v", j, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	opErrs.Range(func(k, v any) bool {
		t.Errorf("op %v failed during live join: %v", k, v)
		return true
	})
}

func TestPlannedDeparture(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 0, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 4)
	const n = 400
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("v%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Depart(1); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Errorf("size after departure = %d", d.Size())
	}
	c2, _ := d.NewClient()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, err := c2.Lookup(k)
		if err != nil || string(v) != fmt.Sprintf("v%05d", i) {
			t.Fatalf("%s after departure = %q %v", k, v, err)
		}
	}
}

func TestBroadcastReachesAllInstances(t *testing.T) {
	d, _, c := startDeployment(t, testCfg(), 16)
	if err := c.Broadcast("config/version", []byte("42")); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	deadline := time.Now().Add(2 * time.Second)
	for _, in := range d.Instances() {
		for {
			if v, ok := in.BroadcastValue("config/version"); ok {
				if string(v) != "42" {
					t.Errorf("instance %s got %q", in.ID(), v)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("instance %s never received broadcast", in.ID())
			}
			time.Sleep(time.Millisecond)
			d.Drain()
		}
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NumPartitions: 16, Replicas: 0, DataDir: dir, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 2)
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	table := d.Instance(0).Table()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same table, same data dir, fresh registry. The paper:
	// "the entire state of ZHT could be loaded from local persistent
	// storage".
	reg := transport.NewRegistry()
	caller := reg.NewClient()
	var instances []*Instance
	for i, m := range table.Instances {
		inst, err := NewInstance(cfg, m, table, caller)
		if err != nil {
			t.Fatal(err)
		}
		defer inst.Close()
		if _, err := reg.Listen(table.Instances[i].Addr, inst.Handle); err != nil {
			t.Fatal(err)
		}
		instances = append(instances, inst)
	}
	c2, err := NewClient(cfg, table, caller)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := c2.Lookup(k)
		if err != nil || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("%s after restart = %q %v", k, v, err)
		}
	}
}

func TestClientFromSeed(t *testing.T) {
	d, reg, _ := startDeployment(t, testCfg(), 3)
	c, err := NewClientFromSeed(testCfg(), d.Instance(2).Addr(), reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Lookup("k"); err != nil || string(v) != "v" {
		t.Fatalf("lookup via seeded client: %q %v", v, err)
	}
	if _, err := NewClientFromSeed(testCfg(), "no-such-endpoint", reg.NewClient()); err == nil {
		t.Error("seeding from dead endpoint succeeded")
	}
}

func TestLocalClientSharesTable(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 0, RetryBase: time.Millisecond}
	d, _, _ := startDeployment(t, cfg, 2)
	lc, err := d.NewLocalClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := lc.Lookup("k"); err != nil || string(v) != "v" {
		t.Fatalf("local client lookup = %q %v", v, err)
	}
	epochBefore := lc.Table().Epoch
	// A join updates the instance's table; the shared client must see
	// the new epoch with no refresh of its own.
	if _, err := d.Join(Endpoint{Addr: "zht-shared-join", Node: "n-shared"}); err != nil {
		t.Fatal(err)
	}
	if lc.Table().Epoch <= epochBefore {
		t.Error("shared client did not observe the instance's table update")
	}
	// Ops keep working against the post-join layout.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("lc-%03d", i)
		if err := lc.Insert(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := lc.Lookup(k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHandlerRejectsUnknownOp(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 1)
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpNop})
	if resp.Status != wire.StatusError {
		t.Errorf("nop handled: %v", resp.Status)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := BootstrapInproc(Config{NumPartitions: 0}, 1); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, _, err := BootstrapInproc(Config{NumPartitions: 8, Replicas: -1}, 1); err == nil {
		t.Error("negative replicas accepted")
	}
	if _, _, err := BootstrapInproc(Config{NumPartitions: 8, HashName: "nope"}, 1); err == nil {
		t.Error("unknown hash accepted")
	}
	if _, _, err := BootstrapInproc(Config{NumPartitions: 2}, 8); err == nil {
		t.Error("more instances than partitions accepted")
	}
}

func TestOverTCP(t *testing.T) {
	cfg := Config{NumPartitions: 16, Replicas: 1, RetryBase: time.Millisecond}
	caller := transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
	defer caller.Close()
	// Bind ephemeral TCP listeners first to learn the addresses.
	var lns []*transport.TCPServer
	var switches []*HandlerSwitch
	eps := make([]Endpoint, 3)
	for i := range eps {
		hs := &HandlerSwitch{}
		ln, err := transport.ListenTCP("127.0.0.1:0", hs.Handle, transport.EventDriven)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns = append(lns, ln)
		switches = append(switches, hs)
		eps[i] = Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("tcp-node-%d", i)}
	}
	d, err := Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return nopListener{addr}, nil
			}
		}
		return nil, fmt.Errorf("no pre-bound listener for %s", addr)
	}, caller)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("tcp-key-%03d", i)
		if err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Lookup(k); err != nil || string(v) != "v" {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
	if err := c.Append("tcp-dir", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

type nopListener struct{ addr string }

func (l nopListener) Addr() string { return l.addr }
func (l nopListener) Close() error { return nil }
