package core

import (
	"fmt"
	"sync"
	"time"

	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Deployment bootstraps and manages a set of ZHT instances over any
// transport. It plays the role of the batch scheduler handing the
// node list to every participant at job start (§III.C static
// bootstrap): every instance begins with the complete membership
// table and no global communication is required.

// ListenFunc binds a handler to an address, returning the running
// listener. The transport packages provide natural implementations.
type ListenFunc func(addr string, h transport.Handler) (transport.Listener, error)

// Endpoint names where one instance should live.
type Endpoint struct {
	Addr string // transport address to bind
	Node string // physical node identifier (for replica placement)
	// Coord is the node's position in the machine's 3D torus. When
	// Config.NetworkAware is set, bootstrap orders the ring by
	// Z-order over these coordinates so ring neighbours — which hold
	// each other's replicas — are also network neighbours (the
	// paper's future-work network-aware topology, §VI).
	Coord [3]int
}

// HandlerSwitch lets an address be bound before its instance exists
// (needed by Join: peers may contact the newcomer the moment the
// membership delta lands).
type HandlerSwitch struct {
	mu sync.RWMutex
	h  transport.Handler
}

// Handle dispatches to the installed handler. Before installation it
// answers Busy, not a terminal error: the window between binding the
// address and installing the instance is transient (a join in
// progress), so callers should re-route or retry after a short hint
// rather than fail the operation.
func (hs *HandlerSwitch) Handle(req *wire.Request) *wire.Response {
	hs.mu.RLock()
	h := hs.h
	hs.mu.RUnlock()
	if h == nil {
		return &wire.Response{
			Status:     wire.StatusBusy,
			Err:        "core: instance still bootstrapping",
			RetryAfter: uint64(2 * time.Millisecond),
		}
	}
	return h(req)
}

// Set installs the handler.
func (hs *HandlerSwitch) Set(h transport.Handler) {
	hs.mu.Lock()
	hs.h = h
	hs.mu.Unlock()
}

// Deployment is a running group of instances sharing one membership
// table lineage.
type Deployment struct {
	cfg    Config
	listen ListenFunc
	caller transport.Caller

	mu        sync.Mutex
	instances []*Instance
	listeners []transport.Listener
}

// Bootstrap starts one instance per endpoint with a fresh, evenly
// partitioned membership table.
func Bootstrap(cfg Config, eps []Endpoint, listen ListenFunc, caller transport.Caller) (*Deployment, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.NetworkAware {
		coords := make(map[string][3]int, len(eps))
		for _, ep := range eps {
			coords[ep.Addr] = ep.Coord
		}
		eps = append([]Endpoint(nil), eps...)
		members := make([]ring.Instance, len(eps))
		for i, ep := range eps {
			members[i] = ring.Instance{ID: ring.InstanceID(ep.Addr), Addr: ep.Addr, Node: ep.Node}
		}
		ring.SortNetworkAware(members, func(in ring.Instance) [3]int { return coords[in.Addr] })
		for i, m := range members {
			eps[i] = Endpoint{Addr: m.Addr, Node: m.Node, Coord: coords[m.Addr]}
		}
	}
	members := make([]ring.Instance, len(eps))
	for i, ep := range eps {
		members[i] = ring.Instance{
			ID:   ring.InstanceID(fmt.Sprintf("zht-%04d", i)),
			Addr: ep.Addr,
			Node: ep.Node,
		}
	}
	table, err := ring.New(cfg.NumPartitions, members)
	if err != nil {
		return nil, err
	}
	d := &Deployment{cfg: cfg, listen: listen, caller: caller}
	for i, m := range members {
		inst, err := NewInstance(cfg, m, table, caller)
		if err != nil {
			d.Close()
			return nil, err
		}
		ln, err := listen(eps[i].Addr, inst.Handle)
		if err != nil {
			inst.Close()
			d.Close()
			return nil, fmt.Errorf("core: bind %s: %w", eps[i].Addr, err)
		}
		d.mu.Lock()
		d.instances = append(d.instances, inst)
		d.listeners = append(d.listeners, ln)
		d.mu.Unlock()
	}
	return d, nil
}

// InprocEndpoints builds n endpoints named zht-<i>, one per simulated
// physical node.
func InprocEndpoints(n int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{Addr: fmt.Sprintf("zht-%04d", i), Node: fmt.Sprintf("node-%04d", i)}
	}
	return eps
}

// BootstrapInproc starts n instances on a fresh in-process registry.
// When cfg.Metrics is set, the transport's server- and caller-side
// instruments are wired to it as well.
func BootstrapInproc(cfg Config, n int) (*Deployment, *transport.Registry, error) {
	reg := transport.NewRegistry()
	if cfg.Metrics != nil {
		reg.SetMetrics(cfg.Metrics)
	}
	d, err := Bootstrap(cfg, InprocEndpoints(n), func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h, transport.WithServerMetrics(cfg.Metrics))
	}, reg.NewClient())
	if err != nil {
		return nil, nil, err
	}
	return d, reg, nil
}

// Instances returns the running instances (bootstrap + joined).
func (d *Deployment) Instances() []*Instance {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*Instance(nil), d.instances...)
}

// Instance returns the i'th instance.
func (d *Deployment) Instance(i int) *Instance {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.instances[i]
}

// Size reports the number of running instances.
func (d *Deployment) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.instances)
}

// NewClient builds a client seeded from the first instance's current
// table.
func (d *Deployment) NewClient() (*Client, error) {
	d.mu.Lock()
	if len(d.instances) == 0 {
		d.mu.Unlock()
		return nil, fmt.Errorf("core: empty deployment")
	}
	t := d.instances[0].Table()
	d.mu.Unlock()
	return NewClient(d.cfg, t, d.caller)
}

// NewLocalClient builds a client sharing instance i's membership
// table (the paper's 1:1 client:server deployment, §III.C).
func (d *Deployment) NewLocalClient(i int) (*Client, error) {
	d.mu.Lock()
	if i < 0 || i >= len(d.instances) {
		d.mu.Unlock()
		return nil, fmt.Errorf("core: no instance %d", i)
	}
	in := d.instances[i]
	d.mu.Unlock()
	return NewLocalClient(in, d.caller)
}

// Join adds a new instance at ep, migrating partitions live.
func (d *Deployment) Join(ep Endpoint) (*Instance, error) {
	d.mu.Lock()
	if len(d.instances) == 0 {
		d.mu.Unlock()
		return nil, fmt.Errorf("core: empty deployment")
	}
	seed := d.instances[0].Addr()
	n := len(d.instances)
	d.mu.Unlock()

	var hs HandlerSwitch
	ln, err := d.listen(ep.Addr, hs.Handle)
	if err != nil {
		return nil, err
	}
	newcomer := ring.Instance{
		ID:   ring.InstanceID(fmt.Sprintf("zht-join-%04d-%s", n, ep.Addr)),
		Addr: ep.Addr,
		Node: ep.Node,
	}
	inst, err := Join(d.cfg, newcomer, seed, d.caller, func(i *Instance) { hs.Set(i.Handle) })
	if err != nil {
		ln.Close()
		return nil, err
	}
	d.mu.Lock()
	d.instances = append(d.instances, inst)
	d.listeners = append(d.listeners, ln)
	d.mu.Unlock()
	return inst, nil
}

// Depart performs a planned departure of instance i and stops it.
func (d *Deployment) Depart(i int) error {
	d.mu.Lock()
	if i < 0 || i >= len(d.instances) {
		d.mu.Unlock()
		return fmt.Errorf("core: no instance %d", i)
	}
	inst := d.instances[i]
	ln := d.listeners[i]
	d.mu.Unlock()
	if err := Depart(inst); err != nil {
		return err
	}
	inst.Drain()
	d.mu.Lock()
	for j, x := range d.instances {
		if x == inst {
			d.instances = append(d.instances[:j], d.instances[j+1:]...)
			d.listeners = append(d.listeners[:j], d.listeners[j+1:]...)
			break
		}
	}
	d.mu.Unlock()
	if err := ln.Close(); err != nil {
		return err
	}
	return inst.Close()
}

// Drain waits for asynchronous work on every instance.
func (d *Deployment) Drain() {
	for _, in := range d.Instances() {
		in.Drain()
	}
}

// Close stops all listeners and instances.
func (d *Deployment) Close() error {
	d.mu.Lock()
	lns := d.listeners
	ins := d.instances
	d.listeners = nil
	d.instances = nil
	d.mu.Unlock()
	var firstErr error
	for _, ln := range lns {
		if err := ln.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, in := range ins {
		if err := in.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
