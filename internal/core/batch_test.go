package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/wire"
)

func TestBatchMixedOps(t *testing.T) {
	_, _, c := startDeployment(t, testCfg(), 4)
	if err := c.Insert("pre", []byte("old")); err != nil {
		t.Fatal(err)
	}
	ops := []BatchOp{
		{Op: wire.OpInsert, Key: "a", Value: []byte("va")},
		{Op: wire.OpLookup, Key: "pre"},
		{Op: wire.OpInsert, Key: "b", Value: []byte("vb")},
		{Op: wire.OpLookup, Key: "absent"},
		{Op: wire.OpAppend, Key: "a", Value: []byte("+1")},
		{Op: wire.OpLookup, Key: "a"},
		{Op: wire.OpRemove, Key: "b"},
		{Op: wire.OpLookup, Key: "b"},
	}
	res, err := c.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(res), len(ops))
	}
	for i, wantErr := range []error{nil, nil, nil, ErrNotFound, nil, nil, nil, ErrNotFound} {
		if !errors.Is(res[i].Err, wantErr) && !(wantErr == nil && res[i].Err == nil) {
			t.Fatalf("op %d: err = %v, want %v", i, res[i].Err, wantErr)
		}
	}
	if string(res[1].Value) != "old" {
		t.Errorf("lookup pre = %q", res[1].Value)
	}
	// Same-key ops applied in input order: insert then append.
	if string(res[5].Value) != "va+1" {
		t.Errorf("lookup a = %q, want va+1", res[5].Value)
	}
}

func TestBatchRejectsUnsupportedOp(t *testing.T) {
	_, _, c := startDeployment(t, testCfg(), 2)
	if _, err := c.Batch([]BatchOp{{Op: wire.OpCas, Key: "k"}}); err == nil {
		t.Fatal("batch accepted an unsupported op")
	}
}

func TestBatchEmpty(t *testing.T) {
	_, _, c := startDeployment(t, testCfg(), 2)
	res, err := c.Batch(nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch: %v %v", res, err)
	}
}

// seqApply executes one BatchOp through the single-op client API,
// producing the result Batch must match.
func seqApply(c *Client, op BatchOp) BatchResult {
	switch op.Op {
	case wire.OpInsert:
		return BatchResult{Err: c.Insert(op.Key, op.Value)}
	case wire.OpLookup:
		v, err := c.Lookup(op.Key)
		return BatchResult{Value: v, Err: err}
	case wire.OpRemove:
		return BatchResult{Err: c.Remove(op.Key)}
	case wire.OpAppend:
		return BatchResult{Err: c.Append(op.Key, op.Value)}
	}
	return BatchResult{Err: fmt.Errorf("bad op")}
}

// TestBatchEquivalenceRandomizedAcrossMigration drives a randomized
// mixed-op workload through Batch on one deployment and through
// sequential single ops on an identical twin, asserting every per-op
// result is byte-identical — while a live migration (a node joining
// and pulling partitions) crosses the batched run midway.
func TestBatchEquivalenceRandomizedAcrossMigration(t *testing.T) {
	cfg := testCfg()
	dA, _, cA := startDeployment(t, cfg, 4) // batched, with migration
	_, _, cB := startDeployment(t, cfg, 4)  // sequential reference

	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("eq-key-%02d", i)
	}
	randOps := func(n int) []BatchOp {
		ops := make([]BatchOp, n)
		for i := range ops {
			op := BatchOp{Key: keys[rng.Intn(len(keys))]}
			switch rng.Intn(4) {
			case 0:
				op.Op = wire.OpInsert
				op.Value = []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
			case 1:
				op.Op = wire.OpLookup
			case 2:
				op.Op = wire.OpRemove
			case 3:
				op.Op = wire.OpAppend
				op.Value = []byte(fmt.Sprintf("+%d", rng.Intn(10)))
			}
			ops[i] = op
		}
		return ops
	}

	const rounds = 30
	joinDone := make(chan error, 1)
	for round := 0; round < rounds; round++ {
		if round == rounds/3 {
			go func() {
				_, err := dA.Join(Endpoint{Addr: "zht-join-eq", Node: "node-join-eq"})
				joinDone <- err
			}()
		}
		ops := randOps(32)
		resA, err := cA.Batch(ops)
		if err != nil {
			t.Fatalf("round %d: batch: %v", round, err)
		}
		for i, op := range ops {
			resB := seqApply(cB, op)
			if (resA[i].Err == nil) != (resB.Err == nil) || (resB.Err != nil && !errors.Is(resA[i].Err, errTarget(resB.Err))) {
				t.Fatalf("round %d op %d (%s %q): batch err %v, sequential err %v",
					round, i, op.Op, op.Key, resA[i].Err, resB.Err)
			}
			if !bytes.Equal(resA[i].Value, resB.Value) {
				t.Fatalf("round %d op %d (%s %q): batch value %q, sequential value %q",
					round, i, op.Op, op.Key, resA[i].Value, resB.Value)
			}
		}
	}
	if err := <-joinDone; err != nil {
		t.Fatalf("join during batched run: %v", err)
	}
	// Final state equivalence: every key reads back byte-identical.
	for _, k := range keys {
		vA, errA := cA.Lookup(k)
		vB, errB := cB.Lookup(k)
		if (errA == nil) != (errB == nil) || !bytes.Equal(vA, vB) {
			t.Fatalf("final state for %q: batched %q/%v, sequential %q/%v", k, vA, errA, vB, errB)
		}
	}
}

// errTarget maps a reference error to the sentinel Batch results are
// matched against with errors.Is.
func errTarget(err error) error {
	for _, sentinel := range []error{ErrNotFound, ErrExists, ErrCasMismatch, ErrUnavailable} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}

// TestBatchReplicationCoalesced verifies that batched mutations reach
// the replicas: after a batch insert and a drain, every key must be
// stored 1+Replicas times across the deployment.
func TestBatchReplicationCoalesced(t *testing.T) {
	cfg := Config{NumPartitions: 32, Replicas: 1, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 4)
	const n = 64
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{Op: wire.OpInsert, Key: fmt.Sprintf("rep-%03d", i), Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	res, err := c.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	d.Drain()
	total := 0
	for _, in := range d.Instances() {
		total += in.LocalKeys()
	}
	if total != n*2 {
		t.Fatalf("stored copies = %d, want %d (primary + 1 replica each)", total, n*2)
	}
}

// TestBatchSurvivesFailedNode verifies the straggler path: a batch
// against a table pointing at a dead node must re-route and settle
// every sub-op.
func TestBatchSurvivesFailedNode(t *testing.T) {
	cfg := testCfg()
	cfg.OpRetries = 1
	cfg.OpDeadline = 5 * time.Second
	d, reg, c := startDeployment(t, cfg, 4)
	if err := c.Insert("pre-fail", []byte("v")); err != nil {
		t.Fatal(err)
	}
	reg.SetDown(d.Instance(1).Addr(), true)
	ops := make([]BatchOp, 40)
	for i := range ops {
		ops[i] = BatchOp{Op: wire.OpInsert, Key: fmt.Sprintf("bf-%02d", i), Value: []byte("v")}
	}
	res, err := c.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d after node failure: %v", i, r.Err)
		}
	}
}

// TestSyncReplicationErrorsCounted covers the satellite fix: a failed
// synchronous replication leg (single-op and batched) must increment
// zht.core.replica.sync_errors instead of vanishing silently.
func TestSyncReplicationErrorsCounted(t *testing.T) {
	mreg := metrics.NewRegistry()
	// WriteLevel One: the first replica leg is still attempted
	// synchronously (and its failure counted), but the ack does not
	// depend on it — the scenario writes into a dead replica on purpose.
	cfg := Config{
		NumPartitions: 32, Replicas: 1, RetryBase: time.Millisecond,
		WriteLevel: wire.ConsistencyOne, Metrics: mreg,
	}
	d, reg, c := startDeployment(t, cfg, 3)
	counter := mreg.Counter("zht.core.replica.sync_errors")

	// Find a key whose primary is alive but whose first replica is the
	// node we take down.
	table := d.Instance(0).Table()
	victim := d.Instance(2)
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("sync-err-%d", i)
		p := table.Partition(d.Instance(0).hashf(key))
		reps := table.ReplicasOf(p, 1)
		if table.OwnerOf(p).ID != victim.ID() && len(reps) == 1 && reps[0].ID == victim.ID() {
			break
		}
	}
	reg.SetDown(victim.Addr(), true)

	if err := c.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got := counter.Value(); got < 1 {
		t.Fatalf("sync_errors = %d after failed single-op sync leg, want >= 1", got)
	}
	before := counter.Value()
	res, err := c.Batch([]BatchOp{{Op: wire.OpInsert, Key: key, Value: []byte("v2")}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("batch insert: %v %v", err, res)
	}
	if got := counter.Value(); got <= before {
		t.Fatalf("sync_errors = %d after failed batched sync leg, want > %d", got, before)
	}
}

// TestFailoverServeWithTwoFailedNodes is the regression test for
// firstAliveReplica: with the partition's owner AND the next node
// clockwise both failed, the first alive successor must elect itself
// and serve — even in a Replicas=0 deployment, where the old code
// (ReplicasOf with a zero count, no status scan) returned nothing and
// rejected the valid failover serve with WrongOwner.
func TestFailoverServeWithTwoFailedNodes(t *testing.T) {
	cfg := Config{NumPartitions: 16, Replicas: 0, RetryBase: time.Millisecond}
	d, _, _ := startDeployment(t, cfg, 5)
	base := d.Instance(0).Table()

	// Pick any partition and fail its owner, then the resulting first
	// failover candidate — two failed nodes.
	p := 0
	nt := base.Clone()
	nt.Status[nt.Owner[p]] = ring.Failed
	firstCand := nt.ReplicasOf(p, 1)
	if len(firstCand) == 0 {
		t.Fatal("no failover candidate in 5-node ring")
	}
	nt.Status[nt.IndexOf(firstCand[0].ID)] = ring.Failed
	secondCand := nt.ReplicasOf(p, 1)
	if len(secondCand) == 0 {
		t.Fatal("no second failover candidate")
	}
	nt.Epoch = base.Epoch + 1

	var serving *Instance
	for _, in := range d.Instances() {
		if in.ID() == secondCand[0].ID {
			serving = in
		}
	}
	if serving == nil {
		t.Fatal("second candidate not in deployment")
	}
	if resp := serving.Handle(&wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(nt)}); resp.Status != wire.StatusOK {
		t.Fatalf("table adoption: %s %s", resp.Status, resp.Err)
	}
	if got := serving.firstAliveReplica(serving.Table(), p); got != serving.ID() {
		t.Fatalf("firstAliveReplica = %q, want self %q (two failed nodes skipped)", got, serving.ID())
	}

	// Find a key in partition p and serve it on the failover node.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("ff-%d", i)
		if base.Partition(serving.hashf(key)) == p {
			break
		}
	}
	if resp := serving.Handle(&wire.Request{Op: wire.OpInsert, Key: key, Value: []byte("v")}); resp.Status != wire.StatusOK {
		t.Fatalf("failover serve rejected: %s %s", resp.Status, resp.Err)
	}
	if resp := serving.Handle(&wire.Request{Op: wire.OpLookup, Key: key}); resp.Status != wire.StatusOK || string(resp.Value) != "v" {
		t.Fatalf("failover read-back: %s %q", resp.Status, resp.Value)
	}
}
