package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"zht/internal/ring"
	"zht/internal/wire"
)

// Server side of the batched request path: one OpBatch envelope
// carries N sub-operations, and the instance amortizes the per-request
// cost — migration gate, ownership check, partition locks, replication
// round trips — across every sub-op that lands on the same partition.
// This is the apply-loop half of the pipeline the paper's
// connection-caching ablation (§III.F) motivates at the transport
// level: once messages are cheap to carry, the next win is making each
// message carry more work.

// tagPool and groupPool recycle the grouping scratch handleBatch uses
// per envelope: composite (partition<<32 | index) tags, and the index
// slice handed to applyBatchPartition (which only iterates it — the
// slice never outlives the call).
var (
	tagPool   = sync.Pool{New: func() any { return new([]int64) }}
	groupPool = sync.Pool{New: func() any { return new([]int) }}
)

// handleBatch serves an OpBatch envelope: decode the sub-requests,
// group them by partition, apply each partition's group under a single
// lock acquisition, and pack the sub-responses (input order) into the
// envelope response.
func (in *Instance) handleBatch(req *wire.Request) *wire.Response {
	subs, err := wire.DecodeOps(req.Aux)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: "core: bad batch: " + err.Error()}
	}
	resps := make([]*wire.Response, len(subs))

	// Group sub-op indices by partition, preserving input order within
	// each group (same key → same partition → same group, so per-key
	// ordering matches sequential execution). Each KV sub-op gets a
	// composite (partition, index) tag; sorting the tags clusters each
	// partition's ops contiguously, and the index in the low bits keeps
	// the order within a partition stable. Tag and group scratch come
	// from pools so grouping allocates nothing — a map of per-partition
	// slices cost nearly an allocation per sub-op. Partitions are
	// visited in ascending order (groups hold disjoint locks and
	// release them before the next group, so visiting order is
	// correctness-neutral); non-partition ops dispatch immediately so
	// their position relative to same-batch KV ops is irrelevant.
	tp := tagPool.Get().(*[]int64)
	tags := (*tp)[:0]
	// Admission releases collected for admitted KV sub-ops; every one
	// is called when the envelope finishes.
	var releases []func()
	defer func() {
		for _, rel := range releases {
			rel()
		}
	}()
	for i, s := range subs {
		var p int
		switch s.Op {
		case wire.OpInsert, wire.OpLookup, wire.OpRemove, wire.OpAppend, wire.OpCas:
			// Each KV sub-op passes the same admission and size gates as
			// handleKV: a shed or oversized slot gets its verdict here
			// and never joins a partition group, so one over-quota
			// tenant's slots cannot ride a well-behaved tenant's batch.
			if s.Flags&(wire.FlagNoReplicate|wire.FlagReplicaRead) == 0 {
				if in.tooLarge(s) {
					resps[i] = statusResp(wire.StatusTooLarge)
					continue
				}
				if in.cfg.Admission != nil {
					release, retry, ok := in.cfg.Admission.Admit(s.Key, len(s.Value))
					if !ok {
						r := statusResp(wire.StatusBusy)
						r.RetryAfter = uint64(retry)
						resps[i] = r
						continue
					}
					releases = append(releases, release)
				}
			}
			in.mu.RLock()
			p = in.table.Partition(in.hashf(s.Key))
			in.mu.RUnlock()
		case wire.OpReplicate:
			// Batched replication legs apply in input order — the order
			// the primary applied them — via the ordinary replicate
			// handler; grouping would buy nothing (no locks, no fan-out).
			resps[i] = in.handleReplicate(s)
			continue
		default:
			resps[i] = in.Handle(s)
			continue
		}
		tags = append(tags, int64(p)<<32|int64(i))
	}
	slices.Sort(tags)
	gp := groupPool.Get().(*[]int)
	idxs := (*gp)[:0]
	for k := 0; k < len(tags); {
		p := int(tags[k] >> 32)
		idxs = idxs[:0]
		for ; k < len(tags) && int(tags[k]>>32) == p; k++ {
			idxs = append(idxs, int(tags[k]&0xffffffff))
		}
		in.applyBatchPartition(p, subs, idxs, resps)
	}
	*gp = idxs[:0]
	groupPool.Put(gp)
	*tp = tags[:0]
	tagPool.Put(tp)
	// Sub-responses carry the epoch piggyback too: batch transports
	// unpack the envelope, so the envelope's own stamp is not visible
	// to the batch client.
	epoch := in.Epoch()
	for _, r := range resps {
		if r != nil && r.Epoch == 0 {
			r.Epoch = epoch
		}
	}
	env := wire.NewBatchResponse(resps)
	// The envelope now carries everything; sub-requests and
	// sub-responses go back to their pools (applyBatchPartition fans
	// routing verdicts out as per-slot copies, so each slot is
	// released exactly once).
	wire.ReleaseOps(subs)
	wire.ReleaseResponses(resps)
	return env
}

// applyBatchPartition runs one partition's sub-ops through the same
// admission sequence as handleKV — migration gate, post-gate ownership
// check, store resolution — but pays it once for the whole group.
// Routing verdicts (WrongOwner, Migrating, errors) are fanned out to
// every sub-op in the group: ops for one partition route all-or-
// nothing, so the client re-routes them together. Mutations hold their
// keys' mutation stripes once across the group, and replication of
// the successful mutations is coalesced into one batched OpReplicate
// per replica.
func (in *Instance) applyBatchPartition(p int, subs []*wire.Request, idxs []int, resps []*wire.Response) {
	// fan writes a distinct pooled copy of r to every slot in the
	// group: handleBatch releases each slot independently, so slots
	// must never share one *Response. The copies may share r's Table
	// backing — releasing a Response never frees Table.
	fan := func(r *wire.Response) {
		for _, i := range idxs {
			resps[i] = r.ShallowCopy()
		}
	}

	// Migration gate + op lock, exactly as handleKV.
	lock := in.opLock(p)
	for {
		if resp := in.migrationGate(p); resp != nil {
			fan(resp)
			return
		}
		lock.RLock()
		if in.isMigrating(p) {
			lock.RUnlock()
			continue
		}
		break
	}
	defer lock.RUnlock()

	// Ownership on a post-gate snapshot (see handleKV for why).
	in.mu.RLock()
	table := in.table
	ownerIdx := table.Owner[p]
	owner := table.Instances[ownerIdx]
	ownerFailed := table.Status[ownerIdx] != ring.Alive
	in.mu.RUnlock()
	if owner.ID != in.self.ID {
		if !(ownerFailed && in.firstAliveReplica(table, p) == in.self.ID) {
			fan(&wire.Response{Status: wire.StatusWrongOwner, Table: ring.EncodeTable(table)})
			return
		}
	}

	s, err := in.store(p)
	if err != nil {
		fan(&wire.Response{Status: wire.StatusError, Err: err.Error()})
		return
	}

	// Lock the mutation stripes of every key the group mutates, in
	// ascending stripe order (concurrent envelopes acquire in the same
	// order, so they cannot deadlock), and hold them across apply +
	// replication: same key → same stripe, so per-key replica order
	// still matches apply order, while groups touching disjoint keys
	// overlap — feeding the store's group-commit WAL whole batches.
	var stripes []int
	seen := make(map[int]bool)
	for _, i := range idxs {
		if in.mutates(subs[i]) {
			st := int(in.hashf(subs[i].Key) % uint64(len(in.mutLocks)))
			if !seen[st] {
				seen[st] = true
				stripes = append(stripes, st)
			}
		}
	}
	sort.Ints(stripes)
	for _, st := range stripes {
		in.mutLocks[st].Lock()
		defer in.mutLocks[st].Unlock()
	}
	// applied collects the sub-ops whose mutation succeeded, in apply
	// order — the order replicas must see them in — alongside the
	// version each was stamped with and, where the leg value differs
	// from the request's (appends), the full value the legs carry.
	var applied []int
	var vers []uint64
	var legVals [][]byte
	for _, i := range idxs {
		if !in.mutates(subs[i]) {
			resps[i] = in.applyKV(s, subs[i])
			continue
		}
		ver := in.clock.Next()
		r, legVal := in.applyPrimary(s, subs[i], ver)
		resps[i] = r
		if r.Status != wire.StatusOK {
			if legVal != nil {
				wire.PutBuffer(legVal)
			}
			continue
		}
		applied = append(applied, i)
		vers = append(vers, ver)
		legVals = append(legVals, legVal)
	}
	if len(applied) == 0 {
		return
	}
	acked, copies := in.replicateBatch(table, p, subs, applied, vers, legVals)
	for j, i := range applied {
		if legVals[j] != nil {
			wire.PutBuffer(legVals[j])
		}
		// Each sub-op's own write level is enforced against the acks
		// the shared envelope fan-out collected: an envelope ack means
		// that replica applied the whole group, so per-sub-op acks are
		// identical and only the demanded level differs.
		if need := in.writeLevel(subs[i]).Acks(copies); need > 1 {
			in.met.quorumWrites.Inc()
			if acked+1 < need {
				resps[i].Status = wire.StatusError
				resps[i].Err = fmt.Sprintf("core: quorum not met (%d/%d acks)", acked+1, need)
			}
		}
	}
}

// replicateBatch pushes a partition's successful mutations along the
// replica chain as one batched OpReplicate envelope per replica
// instead of one round trip per mutation. Envelopes go synchronously
// (via CallBatch) to as many replicas as the strictest write level in
// the group demands — an envelope ack counts only when every leg in
// it succeeded — and through the per-destination async FIFO to the
// rest; a single envelope enqueued there preserves the queue's
// per-key ordering guarantee unchanged. Returns the envelope acks
// collected and the copy count levels resolve against, so the caller
// can enforce each sub-op's own level.
func (in *Instance) replicateBatch(table *ring.Table, p int, subs []*wire.Request, applied []int, vers []uint64, legVals [][]byte) (acked, copies int) {
	reps := table.ReplicasOf(p, in.cfg.Replicas)
	copies = 1
	for _, r := range reps {
		if r.ID != in.self.ID {
			copies++
		}
	}
	if copies == 1 {
		return 0, copies
	}
	syncNeed := 0
	for _, i := range applied {
		if n := in.writeLevel(subs[i]).Acks(copies) - 1; n > syncNeed {
			syncNeed = n
		}
	}
	fwds := make([]wire.Request, len(applied))
	for j, i := range applied {
		fwds[j] = replicaFwd(p, subs[i], vers[j], legVals[j])
	}
	first := true
	for _, r := range reps {
		if r.ID == in.self.ID {
			continue
		}
		legs := make([]*wire.Request, len(fwds))
		// As in replicate(): the first replica's envelope is always
		// synchronous; the level only decides how many acks matter.
		if first || acked < syncNeed {
			first = false
			for j := range fwds {
				f := fwds[j]
				f.Flags |= wire.FlagSyncReplica
				legs[j] = &f
			}
			// As in replicate(): failed legs are counted and handed to
			// hinted handoff for replay; an open breaker skips the
			// transport attempt for a peer already known dead.
			if !in.rbrk.allow(r.Addr) {
				in.met.syncErrors.Add(int64(len(legs)))
				for _, l := range legs {
					in.hintLeg(r.Addr, l)
				}
				continue
			}
			rs, err := in.caller.CallBatch(r.Addr, legs)
			if err != nil {
				in.rbrk.failure(r.Addr)
				in.met.syncErrors.Add(int64(len(legs)))
				for _, l := range legs {
					in.hintLeg(r.Addr, l)
				}
				continue
			}
			in.rbrk.success(r.Addr)
			allOK := true
			for j, resp := range rs {
				if resp.Status != wire.StatusOK {
					allOK = false
					in.met.syncErrors.Inc()
					if j < len(legs) {
						in.hintLeg(r.Addr, legs[j])
					}
				}
			}
			if allOK && len(rs) == len(legs) {
				acked++
			}
			continue
		}
		for j := range fwds {
			f := fwds[j]
			f.Value = append([]byte(nil), f.Value...)
			f.Aux = append([]byte(nil), f.Aux...)
			legs[j] = &f
		}
		in.enqueueAsync(r.Addr, wire.NewBatchRequest(legs))
	}
	return acked, copies
}
