// Package core implements ZHT proper: the zero-hop distributed hash
// table's instance server, client, and manager (paper §III).
//
// An Instance serves a set of partitions, each backed by a NoVoHT
// store. A Client holds the full membership table and routes every
// request directly to the owning instance — zero hops — refreshing the
// table lazily when a server reports it stale. The Manager role
// orchestrates membership changes: dynamic joins (with partition
// migration), planned departures, and failure handling with replica
// failover and re-replication.
package core

import (
	"errors"
	"time"

	"zht/internal/hashing"
	"zht/internal/metrics"
	"zht/internal/storage"
	"zht/internal/wire"
)

// Config holds deployment-wide parameters shared by every instance
// and client.
type Config struct {
	// NumPartitions is n, the fixed partition count — also the
	// ceiling on deployment size (§III.B). It never changes after
	// bootstrap.
	NumPartitions int
	// Replicas is the number of replicas per partition in addition
	// to the primary. The first replica is updated synchronously,
	// the rest asynchronously (§III.J).
	Replicas int
	// SyncReplication forces every replica (not only the first) to
	// be updated synchronously. Deprecated: it survives as a legacy
	// alias for WriteLevel = wire.ConsistencyAll (the replication
	// ablation still sets it); prefer WriteLevel.
	SyncReplication bool
	// WriteLevel is the default write consistency: how many copies
	// (primary + replicas) must acknowledge a mutation before the
	// client sees success (DESIGN.md §12). Zero (ConsistencyDefault)
	// means Quorum — or All when SyncReplication is set. Clients and
	// instances resolve per-request overrides against this default.
	WriteLevel wire.Consistency
	// ReadLevel is the default read consistency: how many copies a
	// lookup consults before answering, resolving conflicts
	// newest-version-wins. Zero (ConsistencyDefault) means One — the
	// owner's copy, today's zero-hop read.
	ReadLevel wire.Consistency
	// HashName selects the ring hash function (see hashing.ByName);
	// empty selects the default.
	HashName string
	// DataDir, when non-empty, persists each partition to
	// DataDir/p<ID>.log via NoVoHT. Empty keeps all partitions in
	// memory (the Blue Gene/P nodes used ramdisks).
	DataDir string
	// MaxMemValuesPerPartition bounds resident values per partition
	// store (NoVoHT's memory-footprint control). 0 = unbounded.
	MaxMemValuesPerPartition int
	// Durability selects the write-ahead-log acknowledgement level
	// for every partition store (see storage.Durability). The zero
	// value is async — buffered writes, the seed behavior;
	// storage.DurabilityNone makes every partition volatile even
	// when DataDir is set.
	Durability storage.Durability
	// OpRetries is how many times a client retries an unreachable
	// instance (with exponential backoff) before declaring it failed.
	// 0 means DefaultOpRetries.
	OpRetries int
	// RetryBase is the first backoff delay; the delay doubles per
	// retry up to RetryMax, and each sleep is full-jitter randomized
	// so concurrent clients do not synchronize retry storms.
	// 0 means DefaultRetryBase.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff delay.
	// 0 means DefaultRetryMax.
	RetryMax time.Duration
	// OpDeadline bounds one client operation end to end: all of its
	// transport retries, table refreshes, redirects, and replica
	// failovers share this single time budget (propagated to servers
	// via wire.Request.Budget) instead of compounding their own
	// timeouts. Past it the operation fails with ErrUnavailable.
	// 0 means DefaultOpDeadline; negative disables the deadline.
	OpDeadline time.Duration
	// BreakerThreshold is how many consecutive transport failures to
	// one endpoint trip its circuit breaker; while open, calls to
	// that endpoint fail fast instead of burning OpRetries×RetryBase
	// per operation. 0 means DefaultBreakerThreshold; negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before
	// admitting a half-open probe. 0 means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// AntiEntropy is the period of the instance's replica anti-entropy
	// loop: each tick, every partition this instance replicates is
	// digest-synced against the partition's authority (owner, or first
	// alive replica when the owner is down) and divergent leaf ranges
	// are pulled (DESIGN.md §9). It also gates read-repair on failover
	// reads. 0 disables the loop entirely (the seed behavior):
	// replicas then converge only through write-time legs, hinted
	// handoff, and failure-triggered rebuilds.
	AntiEntropy time.Duration
	// HandoffCap bounds each destination's hinted-handoff queue of
	// undeliverable replication legs; at the bound further legs are
	// dropped (counted by zht.repair.handoff.dropped) and left for
	// anti-entropy to repair. 0 means DefaultHandoffCap; negative
	// disables handoff (failed legs are discarded immediately).
	HandoffCap int
	// GossipCooldown is the minimum interval between gossip catch-up
	// pulls when piggybacked epochs reveal a stale membership table
	// (DESIGN.md §10). 0 means DefaultGossipCooldown; negative
	// disables gossip-driven membership entirely (epochs still ride
	// the wire, but staleness only heals through broadcasts and
	// StatusWrongOwner refreshes — the pre-gossip behavior).
	GossipCooldown time.Duration
	// GossipOnly suppresses the manager's best-effort delta broadcast
	// to bystander instances: only instances gaining partitions hear
	// the commit directly, and everyone else converges through the
	// epoch piggyback. Used by the chaos suite to prove gossip alone
	// reaches epoch agreement.
	GossipOnly bool
	// MigrateRate caps migration streaming throughput per transfer in
	// bytes/second, so a join or departure cannot starve foreground
	// traffic. 0 means DefaultMigrateRate; negative removes the cap.
	MigrateRate int
	// MigrateLeavesPerPull is how many Merkle leaves one migration
	// pull round-trip moves (out of repair.Leaves per partition);
	// smaller values yield finer-grained throttling. 0 means
	// DefaultMigrateLeavesPerPull.
	MigrateLeavesPerPull int
	// Metrics, when non-nil, receives every client-, instance-, and
	// store-level measurement (latency histograms, retry/shed/breaker
	// counters — see OBSERVABILITY.md for the catalogue). Nil disables
	// metrics at near-zero cost: instruments degrade to nil pointers
	// whose methods no-op.
	Metrics *metrics.Registry
	// NetworkAware orders the bootstrap ring by the endpoints' torus
	// coordinates (Z-order) so that replica traffic — which flows to
	// ring neighbours — stays network-local (§VI future work,
	// implemented).
	NetworkAware bool
	// Admission, when non-nil, gates every client-facing KV request
	// (single ops and batch sub-ops) before it is served; over-quota
	// requests are shed with wire.StatusBusy plus the hook's
	// RetryAfter hint. Internal traffic (replication legs, replica
	// reads, migration) bypasses it. See AdmissionHook and
	// internal/tenant.
	Admission AdmissionHook
	// MaxKeyLen / MaxValueLen bound the payloads the write path
	// accepts (Insert/Append/Cas; Append is checked per-op, not
	// against the accumulated value). Oversized requests are rejected
	// with wire.StatusTooLarge, a terminal verdict. 0 = unbounded,
	// the pre-gateway behavior.
	MaxKeyLen   int
	MaxValueLen int
}

// Defaults for Config zero values.
const (
	DefaultOpRetries        = 3
	DefaultRetryBase        = 2 * time.Millisecond
	DefaultRetryMax         = 100 * time.Millisecond
	DefaultOpDeadline       = 10 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 250 * time.Millisecond
	DefaultHandoffCap       = 1024
	DefaultGossipCooldown   = 25 * time.Millisecond
	DefaultMigrateRate      = 8 << 20 // 8 MiB/s
	// DefaultMigrateLeavesPerPull moves an eighth of a partition's
	// Merkle leaves per round-trip.
	DefaultMigrateLeavesPerPull = 8
)

func (c *Config) fill() error {
	if c.NumPartitions <= 0 {
		return errors.New("core: NumPartitions must be positive")
	}
	if c.Replicas < 0 {
		return errors.New("core: Replicas must be non-negative")
	}
	if c.WriteLevel > wire.ConsistencyAll || c.ReadLevel > wire.ConsistencyAll {
		return errors.New("core: unknown consistency level")
	}
	if c.WriteLevel == wire.ConsistencyDefault {
		c.WriteLevel = wire.ConsistencyQuorum
		if c.SyncReplication {
			c.WriteLevel = wire.ConsistencyAll
		}
	}
	if c.ReadLevel == wire.ConsistencyDefault {
		c.ReadLevel = wire.ConsistencyOne
	}
	if hashing.ByName(c.HashName) == nil {
		return errors.New("core: unknown hash function " + c.HashName)
	}
	if c.OpRetries == 0 {
		c.OpRetries = DefaultOpRetries
	}
	if c.RetryBase == 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax == 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = c.RetryBase
	}
	if c.OpDeadline == 0 {
		c.OpDeadline = DefaultOpDeadline
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.HandoffCap == 0 {
		c.HandoffCap = DefaultHandoffCap
	}
	if c.AntiEntropy < 0 {
		c.AntiEntropy = 0
	}
	if c.GossipCooldown == 0 {
		c.GossipCooldown = DefaultGossipCooldown
	}
	if c.MigrateRate == 0 {
		c.MigrateRate = DefaultMigrateRate
	}
	if c.MigrateLeavesPerPull <= 0 {
		c.MigrateLeavesPerPull = DefaultMigrateLeavesPerPull
	}
	if c.MaxKeyLen < 0 || c.MaxValueLen < 0 {
		return errors.New("core: size limits must be non-negative")
	}
	return nil
}

// hash returns the configured hash function.
func (c *Config) hash() hashing.Func { return hashing.ByName(c.HashName) }
