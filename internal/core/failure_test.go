package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Additional failure-path and protocol-edge tests.

func TestWritesDuringFailoverReachReplicas(t *testing.T) {
	d, reg, c := startDeployment(t, testCfg(), 4)
	victim := d.Instance(0)
	reg.SetDown(victim.Addr(), true)
	// Writes keyed to land anywhere must all succeed and be
	// replicated at the survivors.
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("fw-%04d", i), []byte("v")); err != nil {
			t.Fatalf("write %d during failover: %v", i, err)
		}
	}
	d.Drain()
	for i := 0; i < n; i++ {
		v, err := c.Lookup(fmt.Sprintf("fw-%04d", i))
		if err != nil || string(v) != "v" {
			t.Fatalf("read-back %d: %q %v", i, v, err)
		}
	}
}

func TestFalseFailureReportRejected(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 3)
	// Accuse a perfectly healthy instance: the manager must ping it
	// and reject the report.
	accused := d.Instance(1)
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpReport, Key: string(accused.ID())})
	if resp.Status != wire.StatusError {
		t.Fatalf("false report accepted: %v", resp.Status)
	}
	tab := d.Instance(0).Table()
	if tab.Status[tab.IndexOf(accused.ID())] != ring.Alive {
		t.Error("healthy instance marked failed")
	}
}

func TestReportUnknownInstance(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 2)
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpReport, Key: "ghost-instance"})
	if resp.Status != wire.StatusError {
		t.Errorf("report for unknown instance: %v", resp.Status)
	}
}

func TestDuplicateFailureReportIdempotent(t *testing.T) {
	d, reg, c := startDeployment(t, testCfg(), 4)
	victim := d.Instance(3)
	reg.SetDown(victim.Addr(), true)
	if err := c.Insert("trigger", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A second report for the same instance returns OK + the
	// already-updated table instead of failing.
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpReport, Key: string(victim.ID())})
	if resp.Status != wire.StatusOK {
		t.Fatalf("duplicate report: %v %s", resp.Status, resp.Err)
	}
	if resp.Table == nil {
		t.Error("duplicate report should carry the current table")
	}
}

func TestEpochDivergenceFullTableFallback(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 3)
	// Hand instance 2 a delta from a far-future epoch: it must
	// reject it, and then accept a full table with a higher epoch.
	in2 := d.Instance(2)
	badDelta := ring.Delta{FromEpoch: 99}
	resp := in2.Handle(&wire.Request{Op: wire.OpDelta, Aux: ring.EncodeDelta(badDelta)})
	if resp.Status != wire.StatusError {
		t.Fatalf("stale delta accepted: %v", resp.Status)
	}
	future := in2.Table()
	future.Epoch = 50
	resp = in2.Handle(&wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(future)})
	if resp.Status != wire.StatusOK {
		t.Fatalf("full-table fallback rejected: %v %s", resp.Status, resp.Err)
	}
	if in2.Epoch() != 50 {
		t.Errorf("epoch after fallback = %d, want 50", in2.Epoch())
	}
	// An older full table must NOT regress the epoch.
	old := in2.Table()
	old.Epoch = 7
	in2.Handle(&wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(old)})
	if in2.Epoch() != 50 {
		t.Errorf("epoch regressed to %d", in2.Epoch())
	}
}

func TestDeltaGarbagePayload(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 1)
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpDelta, Aux: []byte("junk")})
	if resp.Status != wire.StatusError {
		t.Errorf("garbage delta accepted: %v", resp.Status)
	}
}

func TestMigrateBadPartition(t *testing.T) {
	d, _, _ := startDeployment(t, testCfg(), 2)
	for _, p := range []int64{-1, 1 << 40} {
		resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpMigrate, Partition: p})
		if resp.Status != wire.StatusError {
			t.Errorf("partition %d accepted: %v", p, resp.Status)
		}
	}
}

func TestMigratePullFromNonOwner(t *testing.T) {
	d, _, _ := startDeployment(t, Config{NumPartitions: 64, RetryBase: time.Millisecond}, 2)
	// Ask instance 1 for a partition instance 0 owns.
	tab := d.Instance(0).Table()
	p0 := tab.PartitionsOf(0)[0]
	resp := d.Instance(1).Handle(&wire.Request{Op: wire.OpMigrate, Partition: int64(p0), Key: "thief"})
	if resp.Status != wire.StatusWrongOwner {
		t.Errorf("pull from non-owner: %v", resp.Status)
	}
	if resp.Table == nil {
		t.Error("WrongOwner response should carry the table")
	}
}

func TestMigrateAbortRollsBack(t *testing.T) {
	cfg := Config{NumPartitions: 16, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 2)
	in0 := d.Instance(0)
	tab := in0.Table()
	p := tab.PartitionsOf(0)[0]
	// Start a pull (locks the partition), then abort it: the owner
	// must resume serving the partition itself.
	resp := in0.Handle(&wire.Request{Op: wire.OpMigrate, Partition: int64(p), Key: "joiner-addr"})
	if resp.Status != wire.StatusOK {
		t.Fatalf("pull failed: %v %s", resp.Status, resp.Err)
	}
	abort := in0.Handle(&wire.Request{Op: wire.OpMigrate, Partition: int64(p), Aux: []byte("abort")})
	if abort.Status != wire.StatusOK {
		t.Fatalf("abort failed: %v", abort.Status)
	}
	// Ops for that partition must work again (rolled back, still owner).
	// Find a key landing in partition p.
	key := keyForPartition(t, cfg, tab, p)
	if err := c.Insert(key, []byte("post-abort")); err != nil {
		t.Fatalf("insert after abort: %v", err)
	}
	if v, err := c.Lookup(key); err != nil || string(v) != "post-abort" {
		t.Fatalf("lookup after abort: %q %v", v, err)
	}
}

func TestDoublePullRejected(t *testing.T) {
	d, _, _ := startDeployment(t, Config{NumPartitions: 16, RetryBase: time.Millisecond}, 2)
	in0 := d.Instance(0)
	p := in0.Table().PartitionsOf(0)[0]
	if r := in0.Handle(&wire.Request{Op: wire.OpMigrate, Partition: int64(p), Key: "a"}); r.Status != wire.StatusOK {
		t.Fatalf("first pull: %v", r.Status)
	}
	if r := in0.Handle(&wire.Request{Op: wire.OpMigrate, Partition: int64(p), Key: "b"}); r.Status != wire.StatusError {
		t.Fatalf("concurrent second pull accepted: %v", r.Status)
	}
	// Clean up the lock.
	in0.Handle(&wire.Request{Op: wire.OpMigrate, Partition: int64(p), Aux: []byte("abort")})
}

// keyForPartition brute-forces a key hashing into partition p.
func keyForPartition(t *testing.T, cfg Config, tab *ring.Table, p int) string {
	t.Helper()
	hashf := cfg.hash()
	for i := 0; i < 1_000_000; i++ {
		k := fmt.Sprintf("probe-%07d", i)
		if tab.Partition(hashf(k)) == p {
			return k
		}
	}
	t.Fatal("no key found for partition")
	return ""
}

func TestHandlerSwitchBeforeBind(t *testing.T) {
	var hs HandlerSwitch
	resp := hs.Handle(&wire.Request{Op: wire.OpPing})
	// Bootstrapping is transient, so the unbound switch must answer
	// with a retriable Busy (plus a retry hint), not a terminal error.
	if resp.Status != wire.StatusBusy {
		t.Errorf("unbound switch served a request: %v", resp.Status)
	}
	if resp.RetryAfter == 0 {
		t.Error("bootstrapping Busy response carries no RetryAfter hint")
	}
	hs.Set(func(req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	})
	if resp := hs.Handle(&wire.Request{Op: wire.OpPing}); resp.Status != wire.StatusOK {
		t.Errorf("bound switch failed: %v", resp.Status)
	}
}

func TestBroadcastSurvivesFailedInterior(t *testing.T) {
	d, reg, c := startDeployment(t, testCfg(), 8)
	// Fail one instance; mark it in the table so the tree skips it.
	victim := d.Instance(3)
	reg.SetDown(victim.Addr(), true)
	if err := c.Insert("detect", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Broadcast("news", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	got := 0
	for time.Now().Before(deadline) {
		d.Drain()
		got = 0
		for _, in := range d.Instances() {
			if in == victim {
				continue
			}
			if _, ok := in.BroadcastValue("news"); ok {
				got++
			}
		}
		if got == 7 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got != 7 {
		t.Errorf("broadcast reached %d/7 alive instances", got)
	}
}

func TestUDPDeploymentEndToEnd(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 1, RetryBase: time.Millisecond}
	caller := transport.NewUDPClient(transport.UDPClientOptions{Timeout: 2 * time.Second})
	defer caller.Close()
	var lns []transport.Listener
	var switches []*HandlerSwitch
	eps := make([]Endpoint, 3)
	for i := range eps {
		hs := &HandlerSwitch{}
		ln, err := transport.ListenUDP("127.0.0.1:0", hs.Handle)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns = append(lns, ln)
		switches = append(switches, hs)
		eps[i] = Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("udp-n%d", i)}
	}
	d, err := Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return nopListener{addr}, nil
			}
		}
		return nil, errors.New("unbound")
	}, caller)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("udp-%d-%02d", w, i)
				if err := c.Insert(k, []byte("v")); err != nil {
					t.Errorf("%s: %v", k, err)
					return
				}
				if v, err := c.Lookup(k); err != nil || string(v) != "v" {
					t.Errorf("%s = %q %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDepartureRestoresReplicationLevel(t *testing.T) {
	// A planned departure removes every replica copy the departing
	// node held; the surviving owners must rebuild so each key is
	// again stored 1+Replicas times.
	cfg := Config{NumPartitions: 64, Replicas: 1, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 4)
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Sprintf("dep-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	if err := d.Depart(2); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	total := 0
	for _, in := range d.Instances() {
		total += in.LocalKeys()
	}
	if total < 2*n {
		t.Errorf("copies after departure = %d, want >= %d (replication level restored)", total, 2*n)
	}
}

func TestJoinSeedUnreachable(t *testing.T) {
	reg := transport.NewRegistry()
	_, err := Join(testCfg(), ring.Instance{ID: "x", Addr: "x", Node: "x"},
		"no-such-seed", reg.NewClient(), func(*Instance) {})
	if err == nil {
		t.Error("join with dead seed succeeded")
	}
}

func TestDepartLastInstanceFails(t *testing.T) {
	d, _, _ := startDeployment(t, Config{NumPartitions: 8, RetryBase: time.Millisecond}, 1)
	if err := d.Depart(0); err == nil {
		t.Error("departing the only instance succeeded")
	}
}

func TestLocalAndPartitionKeyAccounting(t *testing.T) {
	d, _, c := startDeployment(t, Config{NumPartitions: 8, RetryBase: time.Millisecond}, 1)
	for i := 0; i < 50; i++ {
		c.Insert(fmt.Sprintf("acct-%02d", i), []byte("v"))
	}
	in := d.Instance(0)
	if in.LocalKeys() != 50 {
		t.Errorf("LocalKeys = %d", in.LocalKeys())
	}
	sum := 0
	for p := 0; p < 8; p++ {
		sum += in.PartitionKeys(p)
	}
	if sum != 50 {
		t.Errorf("per-partition sum = %d", sum)
	}
	if in.PartitionKeys(999) != 0 {
		t.Error("unknown partition reports keys")
	}
}
