package core

import (
	"fmt"
	"testing"
	"time"
)

// TestLargeDeployment boots 512 instances in one process — the scale
// regime the paper's HEC-Cluster evaluation covers — and checks that
// bootstrap, routing, and failure handling all behave.
func TestLargeDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("large deployment")
	}
	const n = 512
	cfg := Config{NumPartitions: 4096, Replicas: 1, RetryBase: time.Millisecond}
	start := time.Now()
	d, reg, err := BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	bootstrap := time.Since(start)
	t.Logf("bootstrap of %d instances: %s", n, bootstrap.Round(time.Millisecond))
	if bootstrap > 30*time.Second {
		t.Errorf("bootstrap took %s", bootstrap)
	}

	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// Spread keys over the whole ring.
	const keys = 2000
	for i := 0; i < keys; i++ {
		if err := c.Insert(fmt.Sprintf("big-%06d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Zero-hop property: exactly one network call per op (no
	// forwarding, no table refreshes) once the table is current.
	before := reg.Calls()
	const probes = 500
	for i := 0; i < probes; i++ {
		if _, err := c.Lookup(fmt.Sprintf("big-%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	callsPerOp := float64(reg.Calls()-before) / probes
	if callsPerOp > 1.01 {
		t.Errorf("lookups averaged %.2f network calls; zero-hop routing should need exactly 1", callsPerOp)
	}

	// Kill one instance; the deployment absorbs it.
	victim := d.Instance(137)
	reg.SetDown(victim.Addr(), true)
	if err := c.Insert("post-large-failure", []byte("v")); err != nil {
		t.Fatalf("write after failure at scale: %v", err)
	}
}

// TestZeroHopCallCount pins the headline routing property at small
// scale: after warmup, every read costs exactly one network call.
func TestZeroHopCallCount(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 0, RetryBase: time.Millisecond}
	d, reg, c := startDeployment(t, cfg, 8)
	_ = d
	for i := 0; i < 100; i++ {
		if err := c.Insert(fmt.Sprintf("zh-%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := reg.Calls()
	for i := 0; i < 100; i++ {
		if _, err := c.Lookup(fmt.Sprintf("zh-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Calls() - before; got != 100 {
		t.Errorf("100 lookups used %d network calls; want exactly 100 (zero hops)", got)
	}
}
