package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"zht/internal/metrics"
	"zht/internal/repair"
	"zht/internal/wire"
)

// TestHandoffReplaysDroppedSyncLeg is the hinted-handoff regression
// test: a replication leg that fails while the replica peer is down
// must be queued and replayed — not dropped — so the replica converges
// once the peer is reachable again, without any anti-entropy loop.
func TestHandoffReplaysDroppedSyncLeg(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{
		NumPartitions: 16, Replicas: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		BreakerCooldown: 10 * time.Millisecond,
		// ONE: the write must ack via the primary alone while the sole
		// replica is down; the failed (still-synchronous) first leg is
		// what feeds hinted handoff here.
		WriteLevel: wire.ConsistencyOne,
		Metrics:    mreg,
	}
	d, reg, c := startDeployment(t, cfg, 3)

	// A key whose owner is alive and whose sole replica is the victim.
	table := d.Instance(0).Table()
	victim := d.Instance(1)
	var key string
	var p int
	for i := 0; ; i++ {
		key = fmt.Sprintf("handoff-%d", i)
		p = table.Partition(d.Instance(0).hashf(key))
		reps := table.ReplicasOf(p, 1)
		if table.OwnerOf(p).ID != victim.ID() && len(reps) == 1 && reps[0].ID == victim.ID() {
			break
		}
	}
	var owner *Instance
	for _, in := range d.Instances() {
		if in.ID() == table.OwnerOf(p).ID {
			owner = in
		}
	}

	reg.SetDown(victim.Addr(), true)
	if err := c.Insert(key, []byte("survives-outage")); err != nil {
		t.Fatalf("insert with replica down must still ack via primary: %v", err)
	}
	if got := mreg.Counter("zht.repair.handoff.queued").Value(); got < 1 {
		t.Fatalf("handoff.queued = %d after failed sync leg, want >= 1", got)
	}
	if reflect.DeepEqual(owner.PartitionDigest(p), victim.PartitionDigest(p)) {
		t.Fatal("replica digest already equals primary while the leg is undelivered")
	}

	reg.SetDown(victim.Addr(), false)
	deadline := time.Now().Add(5 * time.Second)
	for !reflect.DeepEqual(owner.PartitionDigest(p), victim.PartitionDigest(p)) {
		if time.Now().After(deadline) {
			t.Fatalf("dropped leg never replayed: owner %v, replica %v",
				owner.PartitionDigest(p), victim.PartitionDigest(p))
		}
		time.Sleep(time.Millisecond)
	}
	if v, ok, err := storeGet(victim, p, key); err != nil || !ok || string(v) != "survives-outage" {
		t.Fatalf("replica store after replay: %q %v %v", v, ok, err)
	}
	if got := mreg.Counter("zht.repair.handoff.replayed").Value(); got < 1 {
		t.Fatalf("handoff.replayed = %d after recovery, want >= 1", got)
	}
}

// storeGet reads a key straight out of an instance's partition store.
func storeGet(in *Instance, p int, key string) ([]byte, bool, error) {
	s, err := in.store(p)
	if err != nil {
		return nil, false, err
	}
	return s.Get(key)
}

// TestReplicaDivergenceCounted covers the satellite fix: a replica
// apply whose outcome disagrees with the primary's (here: a remove
// for a key the replica never got) is still normalized to OK, but the
// race must now bump zht.core.replica.divergence instead of passing
// silently.
func TestReplicaDivergenceCounted(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{NumPartitions: 4, Replicas: 1, Metrics: mreg}
	d, _, _ := startDeployment(t, cfg, 2)

	in := d.Instance(0)
	resp := in.Handle(&wire.Request{
		Op: wire.OpReplicate, Partition: 0, Key: "never-inserted",
		Aux:   []byte{byte(wire.OpRemove)},
		Flags: wire.FlagNoReplicate,
	})
	if resp.Status != wire.StatusOK {
		t.Fatalf("replica remove race must normalize to OK, got %v %s", resp.Status, resp.Err)
	}
	if got := mreg.Counter("zht.core.replica.divergence").Value(); got != 1 {
		t.Fatalf("divergence = %d, want 1", got)
	}
}

// TestAntiEntropyRepairsOverflowedHandoff drives more failed legs than
// the handoff cap can hold: the overflow is counted as dropped, and
// the anti-entropy loop — not handoff replay — closes the remaining
// gap after the peer heals.
func TestAntiEntropyRepairsOverflowedHandoff(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{
		NumPartitions: 8, Replicas: 1,
		HandoffCap:  4, // overflow after 4 queued legs per destination
		AntiEntropy: 25 * time.Millisecond,
		RetryBase:   time.Millisecond, RetryMax: 4 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
		// ONE: every write targets a dead sole replica; the test needs
		// them acked so the overflow + anti-entropy path is what heals.
		WriteLevel: wire.ConsistencyOne,
		Metrics:    mreg,
	}
	d, reg, c := startDeployment(t, cfg, 2)

	// With two nodes every partition's sole replica is the other node;
	// down node 1 and write enough keys owned by node 0 to overflow
	// its handoff queue.
	victim := d.Instance(1)
	reg.SetDown(victim.Addr(), true)
	table := d.Instance(0).Table()
	keys := 0
	for i := 0; keys < 20 && i < 10000; i++ {
		key := fmt.Sprintf("overflow-%d", i)
		p := table.Partition(d.Instance(0).hashf(key))
		if table.OwnerOf(p).ID != d.Instance(0).ID() {
			continue
		}
		if err := c.Insert(key, []byte("v")); err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
		keys++
	}
	if got := mreg.Counter("zht.repair.handoff.dropped").Value(); got < 1 {
		t.Fatalf("handoff.dropped = %d after %d legs with cap 4, want >= 1", got, keys)
	}

	reg.SetDown(victim.Addr(), false)
	converged := func() bool {
		for p := 0; p < cfg.NumPartitions; p++ {
			if !reflect.DeepEqual(d.Instance(0).PartitionDigest(p), victim.PartitionDigest(p)) {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			t.Fatal("replica never converged after handoff overflow + heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := mreg.Counter("zht.repair.digest_syncs").Value(); got < 1 {
		t.Fatalf("digest_syncs = %d after anti-entropy convergence, want >= 1", got)
	}
	if got := mreg.Counter("zht.repair.ranges_pulled").Value(); got < 1 {
		t.Fatalf("ranges_pulled = %d after anti-entropy convergence, want >= 1", got)
	}
}

// TestRepairOpsOverWire exercises OpDigest and OpRepairPull as a peer
// would: digest fetch, divergent-leaf pull, and push-apply.
func TestRepairOpsOverWire(t *testing.T) {
	cfg := Config{NumPartitions: 4, Replicas: 1}
	d, _, _ := startDeployment(t, cfg, 2)
	a, b := d.Instance(0), d.Instance(1)

	// Seed partition 2 of a directly (bypassing routing).
	sa, err := a.store(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Put("alpha", []byte("1")); err != nil {
		t.Fatal(err)
	}

	resp := a.Handle(&wire.Request{Op: wire.OpDigest, Partition: 2})
	if resp.Status != wire.StatusOK {
		t.Fatalf("digest: %v %s", resp.Status, resp.Err)
	}
	if resp2 := a.Handle(&wire.Request{Op: wire.OpDigest, Partition: 99}); resp2.Status != wire.StatusError {
		t.Fatal("out-of-range partition digest must error")
	}

	// b pulls every leaf from a and applies: contents converge.
	all := make([]int, 0, repair.Leaves)
	for l := 0; l < repair.Leaves; l++ {
		all = append(all, l)
	}
	pull := a.Handle(&wire.Request{Op: wire.OpRepairPull, Partition: 2, Aux: repair.EncodeLeafSet(all)})
	if pull.Status != wire.StatusOK {
		t.Fatalf("pull: %v %s", pull.Status, pull.Err)
	}
	push := b.Handle(&wire.Request{Op: wire.OpRepairPull, Partition: 2, Aux: repair.EncodeLeafSet(all), Value: pull.Value})
	if push.Status != wire.StatusOK {
		t.Fatalf("push-apply: %v %s", push.Status, push.Err)
	}
	if v, ok, err := storeGet(b, 2, "alpha"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("pair did not transfer: %q %v %v", v, ok, err)
	}
	if !reflect.DeepEqual(a.PartitionDigest(2), b.PartitionDigest(2)) {
		t.Fatal("digests differ after full-leaf transfer")
	}

	// Push-apply also deletes stale keys absent from the authority.
	sb, err := b.store(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Put("stale", []byte("x")); err != nil {
		t.Fatal(err)
	}
	push = b.Handle(&wire.Request{Op: wire.OpRepairPull, Partition: 2, Aux: repair.EncodeLeafSet(all), Value: pull.Value})
	if push.Status != wire.StatusOK {
		t.Fatalf("second push-apply: %v %s", push.Status, push.Err)
	}
	if _, ok, _ := storeGet(b, 2, "stale"); ok {
		t.Fatal("stale key survived leaf replacement")
	}
}
