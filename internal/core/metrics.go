package core

import (
	"zht/internal/metrics"
	"zht/internal/wire"
)

// clientMetrics holds the client-side instruments, pre-resolved at
// construction so the hot path never touches the registry map. With
// metrics disabled (nil registry) every field is nil and recording
// degrades to nil-checks; latency timing is additionally sampled
// (one op in metrics.SampleEvery) and skipped entirely when allLat
// is nil, so untimed ops never read the clock.
type clientMetrics struct {
	ops         *metrics.Counter   // zht.client.ops
	retries     *metrics.Counter   // zht.client.retries
	busyRetries *metrics.Counter   // zht.client.busy_retries
	wrongOwner  *metrics.Counter   // zht.client.wrong_owner
	unavailable *metrics.Counter   // zht.client.unavailable
	fastfails   *metrics.Counter   // zht.client.breaker.fastfails
	batches     *metrics.Counter   // zht.client.batches
	batchSize   *metrics.Histogram // zht.client.batch.size
	// quorumReads counts lookups the client fanned out to replicas
	// for newest-version-wins resolution (ReadLevel Quorum/All);
	// staleReadsRepaired counts those fan-outs that observed at least
	// one copy older than the winner and queued an async read-repair
	// of it (DESIGN.md §12).
	quorumReads        *metrics.Counter // zht.consistency.quorum_reads
	staleReadsRepaired *metrics.Counter // zht.consistency.stale_reads_repaired
	allLat             *metrics.Histogram
	opLat              map[wire.Op]*metrics.Histogram
}

func newClientMetrics(reg *metrics.Registry) clientMetrics {
	m := clientMetrics{
		ops:                reg.Counter("zht.client.ops"),
		retries:            reg.Counter("zht.client.retries"),
		busyRetries:        reg.Counter("zht.client.busy_retries"),
		wrongOwner:         reg.Counter("zht.client.wrong_owner"),
		unavailable:        reg.Counter("zht.client.unavailable"),
		fastfails:          reg.Counter("zht.client.breaker.fastfails"),
		batches:            reg.Counter("zht.client.batches"),
		batchSize:          reg.Histogram("zht.client.batch.size"),
		quorumReads:        reg.Counter("zht.consistency.quorum_reads"),
		staleReadsRepaired: reg.Counter("zht.consistency.stale_reads_repaired"),
		allLat:             reg.Histogram("zht.client.op.all.latency_ns"),
	}
	if reg != nil {
		m.opLat = map[wire.Op]*metrics.Histogram{
			wire.OpInsert: reg.Histogram("zht.client.op.insert.latency_ns"),
			wire.OpLookup: reg.Histogram("zht.client.op.lookup.latency_ns"),
			wire.OpRemove: reg.Histogram("zht.client.op.remove.latency_ns"),
			wire.OpAppend: reg.Histogram("zht.client.op.append.latency_ns"),
			wire.OpCas:    reg.Histogram("zht.client.op.cas.latency_ns"),
		}
	}
	return m
}

// instanceMetrics holds the server-side core instruments. Nil fields
// (metrics disabled) degrade to no-ops.
type instanceMetrics struct {
	// syncErrors counts synchronous replication legs that failed —
	// transport errors or non-OK statuses from the first replica (or
	// any replica under SyncReplication). Each failed leg is a window
	// where primary and secondary have diverged until the next replica
	// rebuild repairs it; a non-zero rate means reads served by a
	// failover replica may be stale.
	syncErrors *metrics.Counter // zht.core.replica.sync_errors
	// divergence counts replica applies whose outcome disagreed with
	// the primary's (NotFound/CasMismatch/Exists tolerated and
	// normalized to OK): each one is a pair where this replica's state
	// had drifted from the apply order the primary saw. Non-zero with
	// repair disabled means silent drift; with repair enabled the
	// anti-entropy loop re-converges it.
	divergence *metrics.Counter // zht.core.replica.divergence
	// repBreakerTrips / repBreakerOpen mirror the client breaker
	// instruments for the instance's replication breaker: an open
	// circuit short-circuits replication legs to a dead peer straight
	// into hinted handoff instead of paying a transport timeout per
	// mutation.
	repBreakerTrips *metrics.Counter // zht.core.replica.breaker.trips
	repBreakerOpen  *metrics.Gauge   // zht.core.replica.breaker.open

	// Consistency instruments (DESIGN.md §12; see OBSERVABILITY.md
	// "Consistency"). quorumWrites counts mutations the owner
	// coordinated at Quorum or All (i.e. success waited on replica
	// acks, not just the owner's copy); versionConflicts counts
	// replica applies rejected by the last-writer-wins compare (a
	// stale leg arriving after a newer write — expected under
	// reordering, never data loss).
	quorumWrites     *metrics.Counter // zht.consistency.quorum_writes
	versionConflicts *metrics.Counter // zht.consistency.version_conflicts

	// Anti-entropy instruments (see OBSERVABILITY.md "Repair").
	digestSyncs     *metrics.Counter // zht.repair.digest_syncs
	rangesPulled    *metrics.Counter // zht.repair.ranges_pulled
	readRepairs     *metrics.Counter // zht.repair.read_repairs
	handoffQueued   *metrics.Counter // zht.repair.handoff.queued
	handoffReplayed *metrics.Counter // zht.repair.handoff.replayed
	handoffDropped  *metrics.Counter // zht.repair.handoff.dropped

	// Membership instruments (DESIGN.md §10; the gossip service
	// registers the zht.membership.gossip pull/advance counters and
	// zht.membership.stale_detected itself).
	epoch            *metrics.Gauge   // zht.membership.epoch
	gossipFullTables *metrics.Counter // zht.membership.gossip.full_tables

	// Tenancy instruments (DESIGN.md §13). expiredReads counts lookups
	// that found a TTL envelope past its expiry and answered NotFound
	// (lazy expiry); reaped counts expired pairs the anti-entropy-tick
	// reaper deleted from local stores.
	expiredReads *metrics.Counter // zht.tenant.expired_reads
	reaped       *metrics.Counter // zht.tenant.reaped

	// Migration engine instruments (throttled streaming rebalance).
	migPartitions *metrics.Counter // zht.migrate.partitions
	migPairs      *metrics.Counter // zht.migrate.pairs
	migBytes      *metrics.Counter // zht.migrate.bytes
	migRounds     *metrics.Counter // zht.migrate.rounds
	migCutovers   *metrics.Counter // zht.migrate.cutovers
	migAborts     *metrics.Counter // zht.migrate.aborts
	migThrottleNs *metrics.Counter // zht.migrate.throttle_ns
}

func newInstanceMetrics(reg *metrics.Registry) instanceMetrics {
	return instanceMetrics{
		syncErrors:       reg.Counter("zht.core.replica.sync_errors"),
		divergence:       reg.Counter("zht.core.replica.divergence"),
		repBreakerTrips:  reg.Counter("zht.core.replica.breaker.trips"),
		repBreakerOpen:   reg.Gauge("zht.core.replica.breaker.open"),
		quorumWrites:     reg.Counter("zht.consistency.quorum_writes"),
		versionConflicts: reg.Counter("zht.consistency.version_conflicts"),

		digestSyncs:     reg.Counter("zht.repair.digest_syncs"),
		rangesPulled:    reg.Counter("zht.repair.ranges_pulled"),
		readRepairs:     reg.Counter("zht.repair.read_repairs"),
		handoffQueued:   reg.Counter("zht.repair.handoff.queued"),
		handoffReplayed: reg.Counter("zht.repair.handoff.replayed"),
		handoffDropped:  reg.Counter("zht.repair.handoff.dropped"),

		epoch:            reg.Gauge("zht.membership.epoch"),
		gossipFullTables: reg.Counter("zht.membership.gossip.full_tables"),

		expiredReads: reg.Counter("zht.tenant.expired_reads"),
		reaped:       reg.Counter("zht.tenant.reaped"),

		migPartitions: reg.Counter("zht.migrate.partitions"),
		migPairs:      reg.Counter("zht.migrate.pairs"),
		migBytes:      reg.Counter("zht.migrate.bytes"),
		migRounds:     reg.Counter("zht.migrate.rounds"),
		migCutovers:   reg.Counter("zht.migrate.cutovers"),
		migAborts:     reg.Counter("zht.migrate.aborts"),
		migThrottleNs: reg.Counter("zht.migrate.throttle_ns"),
	}
}
