package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Client side of the batched request path. Batch keeps the zero-hop
// property of single ops — every sub-op is routed from the local
// membership table with no forwarding — while amortizing per-message
// cost: sub-ops for one destination travel as a single OpBatch
// envelope, and envelopes for different destinations fly concurrently
// over the multiplexed transport.

// BatchOp is one operation in a Client.Batch call.
type BatchOp struct {
	// Op must be OpInsert, OpLookup, OpRemove, or OpAppend.
	Op    wire.Op
	Key   string
	Value []byte // payload for Insert/Append; ignored for Lookup/Remove
}

// BatchResult is the outcome of the BatchOp at the same index.
type BatchResult struct {
	// Value is the looked-up value (Lookup only).
	Value []byte
	// Err is nil on success, or the same error vocabulary single ops
	// use (ErrNotFound, ErrUnavailable, ...).
	Err error
}

// Batch executes a mixed set of operations, returning one result per
// op in input order. Sub-ops are grouped by owning instance from the
// local table (zero hops) and each group is issued as one batched
// envelope, all groups concurrently; the whole batch shares one
// OpDeadline budget under the existing breaker/backoff machinery.
// Sub-ops the fast path could not settle — WrongOwner after a
// membership change, an in-flight migration, an unreachable
// destination — are re-routed individually through the same routing
// loop single ops use, after adopting any fresher table the servers
// answered with.
//
// Ops on the same key preserve their input order (same key, same
// partition, same envelope, applied in order server-side), so per-key
// results are identical to issuing the ops sequentially. Ordering
// across different keys is not defined, exactly as it is not for
// concurrent single ops.
func (c *Client) Batch(ops []BatchOp) ([]BatchResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	for _, op := range ops {
		switch op.Op {
		case wire.OpInsert, wire.OpLookup, wire.OpRemove, wire.OpAppend:
		default:
			return nil, fmt.Errorf("zht: batch: unsupported op %s", op.Op)
		}
	}
	reqs := make([]*wire.Request, len(ops))
	for i, op := range ops {
		r := wire.GetRequest()
		r.Op, r.Key, r.Value = op.Op, op.Key, op.Value
		reqs[i] = r
	}
	defer func() {
		wire.ReleaseOps(reqs)
	}()
	c.metrics.batches.Inc()
	c.metrics.batchSize.Observe(int64(len(ops)))
	c.metrics.ops.Add(int64(len(ops)))

	var deadline time.Time
	if c.cfg.OpDeadline > 0 {
		deadline = time.Now().Add(c.cfg.OpDeadline)
	}

	results := make([]BatchResult, len(ops))
	settled := make([]bool, len(ops))

	// Group sub-op indices by destination address: the partition's
	// owner, or its first alive replica when the owner is marked
	// failed. Keys with no route from this snapshot fall through to
	// the per-op path, which owns failover reporting.
	table := c.snapshot()
	groups := make(map[string][]int)
	for i, r := range reqs {
		p := table.Partition(c.hashf(r.Key))
		idx := table.Owner[p]
		target := table.Instances[idx]
		if table.Status[idx] != ring.Alive {
			reps := table.ReplicasOf(p, maxInt(c.cfg.Replicas, 1))
			if len(reps) == 0 {
				continue
			}
			target = reps[0]
		}
		groups[target.Addr] = append(groups[target.Addr], i)
	}

	// One envelope per destination, all destinations concurrently.
	// Each goroutine writes only its own disjoint result slots.
	var wg sync.WaitGroup
	for addr, idxs := range groups {
		wg.Add(1)
		go func(addr string, idxs []int) {
			defer wg.Done()
			// Groups partition the index space, so stamping the epoch
			// on the shared sub-requests is race-free: each request
			// belongs to exactly one group.
			sub := make([]*wire.Request, len(idxs))
			for j, i := range idxs {
				reqs[i].Epoch = table.Epoch
				sub[j] = reqs[i]
			}
			rs, err := c.callBatchWithBackoff(addr, sub, deadline)
			if err != nil {
				return // destination down: stragglers re-route below
			}
			for j, resp := range rs {
				i := idxs[j]
				switch resp.Status {
				case wire.StatusWrongOwner:
					c.metrics.wrongOwner.Inc()
					if t, terr := ring.DecodeTable(resp.Table); terr == nil {
						c.adoptTable(t)
					}
				case wire.StatusMigrating, wire.StatusBusy:
					// Straggler path follows the redirect / backs off.
				default:
					err, _ := statusToErr(reqs[i].Op, resp)
					results[i] = BatchResult{Value: resp.Value, Err: err}
					settled[i] = true
				}
				wire.PutResponse(resp)
			}
		}(addr, idxs)
	}
	wg.Wait()

	// Re-route whatever the fast path left unsettled, one op at a
	// time in input order, under the batch's remaining budget. The
	// per-op loop handles table refresh, migration redirects, replica
	// failover, and failure reporting.
	for i := range reqs {
		if settled[i] {
			continue
		}
		resp, err := c.doRoutedDeadline(reqs[i], deadline)
		if errors.Is(err, ErrUnavailable) {
			c.metrics.unavailable.Inc()
		}
		r := BatchResult{Err: err}
		if resp != nil {
			r.Value = resp.Value
			wire.PutResponse(resp)
		}
		results[i] = r
	}
	return results, nil
}

// callBatchWithBackoff is callWithBackoff for a batched envelope: the
// same per-endpoint circuit breaker, full-jitter retries for
// unreachable destinations, and busy-retry handling, with the
// remaining deadline budget restamped on every sub-request each
// attempt. A shed envelope comes back as StatusBusy fanned out to
// every sub-slot, so "all sub-responses busy" is the batch analogue of
// a single busy response and is retried here without tripping the
// breaker.
func (c *Client) callBatchWithBackoff(addr string, reqs []*wire.Request, deadline time.Time) ([]*wire.Response, error) {
	var lastErr error
	for i := 0; ; i++ {
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				if lastErr == nil {
					lastErr = transport.ErrTimeout
				}
				return nil, lastErr
			}
			for _, r := range reqs {
				r.Budget = uint64(rem)
			}
		}
		if !c.breaker.allow(addr) {
			c.metrics.fastfails.Inc()
			return nil, fmt.Errorf("%w: %s", ErrCircuitOpen, addr)
		}
		rs, err := c.caller.CallBatch(addr, reqs)
		if err == nil {
			c.breaker.success(addr)
			c.observeEpoch(addr, maxRespEpoch(rs))
			allBusy := len(rs) > 0
			for _, r := range rs {
				if r.Status != wire.StatusBusy {
					allBusy = false
					break
				}
			}
			if !allBusy || i >= c.cfg.OpRetries {
				return rs, nil
			}
			c.metrics.busyRetries.Inc()
			d := c.backoff(i)
			// Sub-responses can carry distinct hints (per-tenant
			// admission sheds each slot with its own bucket's wait);
			// honoring anything less than the largest would retry the
			// whole envelope into a still-closed gate.
			for _, r := range rs {
				if hint := time.Duration(r.RetryAfter); hint > d {
					d = hint
				}
			}
			c.sleepBounded(d, deadline)
			continue
		}
		c.breaker.failure(addr)
		lastErr = err
		if i >= c.cfg.OpRetries {
			return nil, lastErr
		}
		c.metrics.retries.Inc()
		c.sleepBounded(c.backoff(i), deadline)
	}
}
