package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"zht/internal/metrics"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Tests for the robustness layer: per-endpoint circuit breaker,
// StatusBusy retry handling, and the end-to-end operation deadline.

func TestBreakerTripAndRecover(t *testing.T) {
	reg := metrics.NewRegistry()
	trips := reg.Counter("zht.client.breaker.trips")
	openG := reg.Gauge("zht.client.breaker.open")
	b := newBreaker(3, 50*time.Millisecond, trips, openG)
	const ep = "node-1"
	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.allow(ep) {
			t.Fatalf("closed circuit rejected call after %d failures", i)
		}
		b.failure(ep)
	}
	if !b.allow(ep) {
		t.Fatal("circuit opened before the threshold")
	}
	b.failure(ep) // third consecutive failure: trips
	if b.allow(ep) {
		t.Fatal("open circuit admitted a call before the cooldown")
	}
	if trips.Value() != 1 || openG.Value() != 1 {
		t.Fatalf("after trip: trips=%d open=%d, want 1/1", trips.Value(), openG.Value())
	}
	// Other endpoints are independent.
	if !b.allow("node-2") {
		t.Fatal("unrelated endpoint rejected")
	}
	// Half-open: after the cooldown exactly one probe gets through.
	time.Sleep(60 * time.Millisecond)
	if !b.allow(ep) {
		t.Fatal("no probe admitted after cooldown")
	}
	if b.allow(ep) {
		t.Fatal("second concurrent probe admitted in half-open state")
	}
	// Failed probe: re-opens and restarts the cooldown.
	b.failure(ep)
	if b.allow(ep) {
		t.Fatal("admitted immediately after a failed probe")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow(ep) {
		t.Fatal("no probe after the restarted cooldown")
	}
	// Successful probe closes the circuit fully.
	b.success(ep)
	for i := 0; i < 3; i++ {
		if !b.allow(ep) {
			t.Fatal("closed circuit rejected after success")
		}
	}
	// A failed probe re-opens without re-counting a trip; the final
	// success closed the circuit, so the open gauge returns to zero.
	if trips.Value() != 1 {
		t.Fatalf("trips = %d, want 1 (re-open after failed probe must not re-count)", trips.Value())
	}
	if openG.Value() != 0 {
		t.Fatalf("open gauge = %d, want 0 after recovery", openG.Value())
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Millisecond, nil, nil)
	if b != nil {
		t.Fatal("negative threshold should disable the breaker")
	}
	// nil breaker: every method is a safe no-op that admits.
	for i := 0; i < 10; i++ {
		b.failure("x")
	}
	if !b.allow("x") {
		t.Fatal("nil breaker rejected a call")
	}
	b.success("x")
}

// busyFirst answers the first k calls with StatusBusy (as an
// overloaded server's admission gate would) and then delegates.
type busyFirst struct {
	inner     transport.Caller
	remaining atomic.Int64
	busySent  atomic.Int64
}

func (b *busyFirst) Call(addr string, req *wire.Request) (*wire.Response, error) {
	if b.remaining.Add(-1) >= 0 {
		b.busySent.Add(1)
		return &wire.Response{Status: wire.StatusBusy, Seq: req.Seq, RetryAfter: uint64(time.Millisecond)}, nil
	}
	return b.inner.Call(addr, req)
}

func (b *busyFirst) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	return transport.EnvelopeCallBatch(b, addr, reqs)
}

func (b *busyFirst) Close() error { return b.inner.Close() }

func TestClientRetriesThroughBusy(t *testing.T) {
	d, reg, _ := startDeployment(t, testCfg(), 3)
	shim := &busyFirst{inner: reg.NewClient()}
	shim.remaining.Store(3)
	c, err := NewClient(testCfg(), d.Instance(0).Table(), shim)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("busy-key", []byte("v")); err != nil {
		t.Fatalf("insert through transient overload: %v", err)
	}
	if n := shim.busySent.Load(); n != 3 {
		t.Fatalf("client saw %d busy responses, want 3", n)
	}
	v, err := c.Lookup("busy-key")
	if err != nil || string(v) != "v" {
		t.Fatalf("read-back: %q %v", v, err)
	}
}

func TestBusyDoesNotTripBreaker(t *testing.T) {
	d, reg, _ := startDeployment(t, testCfg(), 3)
	shim := &busyFirst{inner: reg.NewClient()}
	shim.remaining.Store(8) // well past BreakerThreshold
	cfg := testCfg()
	cfg.BreakerThreshold = 2
	c, err := NewClient(cfg, d.Instance(0).Table(), shim)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("busy-key-2", []byte("v")); err != nil {
		t.Fatalf("insert through sustained overload: %v", err)
	}
	// A busy server is alive: no circuit may be open.
	for _, in := range d.Instances() {
		if !c.breaker.allow(in.Addr()) {
			t.Fatalf("busy responses tripped the breaker for %s", in.Addr())
		}
	}
}

func TestOpDeadlineBoundsSlowDeployment(t *testing.T) {
	cfg := testCfg()
	cfg.OpDeadline = 100 * time.Millisecond
	cfg.OpRetries = 10 // would take seconds without the deadline
	d, reg, c := startDeployment(t, cfg, 3)
	_ = d
	// Every hop — including retries and failover probes — crawls.
	reg.SetLatency(func(dst string) time.Duration { return 250 * time.Millisecond })
	defer reg.SetLatency(nil)
	start := time.Now()
	err := c.Insert("slow-key", []byte("v"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	// One deadline for the whole op, not per attempt: 100ms budget
	// plus one in-flight 250ms call and scheduling slack.
	if elapsed > 2*time.Second {
		t.Fatalf("op with a 100ms deadline took %v", elapsed)
	}
}

func TestOpDeadlinePropagatesBudget(t *testing.T) {
	d, reg, _ := startDeployment(t, testCfg(), 3)
	var sawBudget atomic.Bool
	shim := callerFunc(func(addr string, req *wire.Request) (*wire.Response, error) {
		if req.Budget > 0 && time.Duration(req.Budget) <= DefaultOpDeadline {
			sawBudget.Store(true)
		}
		return reg.NewClient().Call(addr, req)
	})
	c, err := NewClient(testCfg(), d.Instance(0).Table(), shim)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("budget-key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !sawBudget.Load() {
		t.Fatal("client calls carried no Budget despite OpDeadline being set")
	}
}

type callerFunc func(addr string, req *wire.Request) (*wire.Response, error)

func (f callerFunc) Call(addr string, req *wire.Request) (*wire.Response, error) {
	return f(addr, req)
}
func (f callerFunc) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	return transport.EnvelopeCallBatch(f, addr, reqs)
}
func (f callerFunc) Close() error { return nil }

func TestCircuitOpensOnDeadEndpointAndOpsFailFast(t *testing.T) {
	cfg := Config{NumPartitions: 8, Replicas: 0, RetryBase: time.Millisecond,
		OpRetries: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
		OpDeadline: 2 * time.Second}
	d, reg, c := startDeployment(t, cfg, 1)
	addr := d.Instance(0).Addr()
	reg.SetDown(addr, true)
	// Burn through enough failed ops to trip the endpoint's circuit.
	for i := 0; i < 3; i++ {
		if err := c.Insert(fmt.Sprintf("dead-%d", i), []byte("v")); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("op %d against dead single node: %v", i, err)
		}
	}
	if c.breaker.allow(addr) {
		t.Fatal("circuit still closed after repeated transport failures")
	}
	// With the circuit open, ops fail fast — no backoff sleeps, no
	// transport attempts.
	start := time.Now()
	err := c.Insert("fast-fail", []byte("v"))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("open-circuit op took %v, want fail-fast", el)
	}
	// Recovery: node returns, cooldown elapses, probe closes circuit.
	reg.SetDown(addr, false)
	c.breaker.success(addr) // stand in for cooldown expiry in test time
	c.reviveLocally(d.Instance(0).ID())
	if err := c.Insert("revived", []byte("v")); err != nil {
		t.Fatalf("op after recovery: %v", err)
	}
}

func TestBackoffIsCappedAndJittered(t *testing.T) {
	cfg := testCfg()
	cfg.RetryBase = 4 * time.Millisecond
	cfg.RetryMax = 16 * time.Millisecond
	d, reg, _ := startDeployment(t, cfg, 1)
	_ = d
	c, err := NewClient(cfg, d.Instance(0).Table(), reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		for attempt := 0; attempt < 12; attempt++ {
			got := c.backoff(attempt)
			if got <= 0 {
				t.Fatalf("backoff(%d) = %v, want positive", attempt, got)
			}
			if got > cfg.RetryMax {
				t.Fatalf("backoff(%d) = %v exceeds cap %v", attempt, got, cfg.RetryMax)
			}
			ceil := cfg.RetryBase << uint(attempt)
			if ceil > cfg.RetryMax || ceil <= 0 {
				ceil = cfg.RetryMax
			}
			if got > ceil {
				t.Fatalf("backoff(%d) = %v exceeds exponential ceiling %v", attempt, got, ceil)
			}
			seen[got] = true
		}
	}
	// Full jitter: values must actually vary, or concurrent clients
	// would synchronize their retry storms.
	if len(seen) < 20 {
		t.Fatalf("backoff produced only %d distinct values over 2400 draws", len(seen))
	}
}

func TestPerClientRNGsDiverge(t *testing.T) {
	// The seeding bug this guards against: two clients created in the
	// same UnixNano tick shared identical jitter streams.
	d, reg, _ := startDeployment(t, testCfg(), 1)
	c1, err := NewClient(testCfg(), d.Instance(0).Table(), reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(testCfg(), d.Instance(0).Table(), reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	const draws = 32
	for i := 0; i < draws; i++ {
		if c1.backoff(8) == c2.backoff(8) {
			same++
		}
	}
	if same == draws {
		t.Fatal("two clients produced identical backoff streams: RNG seeds collided")
	}
}
