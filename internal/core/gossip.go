package core

import (
	"zht/internal/gossip"
	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Gossip-driven membership (DESIGN.md §10): instances and clients
// piggyback their ring epoch on normal traffic. Whoever observes a
// newer epoch pulls the missing deltas (wire.OpDeltaPull) from the
// peer it just talked to, replaying them from the peer's delta log —
// or adopting the peer's full table when the log no longer covers the
// gap. The manager's delta broadcast remains as a best-effort latency
// hint; correctness no longer depends on it reaching every node.

// epochCaller wraps an instance's transport so every outgoing request
// carries the instance's epoch and every response's epoch feeds the
// gossip staleness detector. Requests that already carry an epoch (a
// client's, forwarded through replication) keep it: any epoch is a
// valid staleness probe, and the origin's is at most as fresh as ours.
type epochCaller struct {
	inner transport.Caller
	in    *Instance
}

func (e *epochCaller) stamp(req *wire.Request) *wire.Request {
	if req.Epoch != 0 {
		return req
	}
	r2 := *req
	r2.Epoch = e.in.Epoch()
	return &r2
}

func (e *epochCaller) Call(addr string, req *wire.Request) (*wire.Response, error) {
	resp, err := e.inner.Call(addr, e.stamp(req))
	if err == nil {
		e.in.observePeerEpoch(addr, resp.Epoch)
	}
	return resp, err
}

func (e *epochCaller) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	stamped := make([]*wire.Request, len(reqs))
	for i, r := range reqs {
		stamped[i] = e.stamp(r)
	}
	resps, err := e.inner.CallBatch(addr, stamped)
	if err == nil {
		e.in.observePeerEpoch(addr, maxRespEpoch(resps))
	}
	return resps, err
}

func (e *epochCaller) Close() error { return e.inner.Close() }

// maxRespEpoch returns the freshest epoch piggybacked on a batch of
// sub-responses.
func maxRespEpoch(resps []*wire.Response) uint64 {
	var max uint64
	for _, r := range resps {
		if r != nil && r.Epoch > max {
			max = r.Epoch
		}
	}
	return max
}

// observePeerEpoch feeds one piggybacked epoch into the gossip
// service; addr may be empty when the observation came from an inbound
// request whose sender is unknown.
func (in *Instance) observePeerEpoch(addr string, peerEpoch uint64) {
	in.gossip.Observe(addr, peerEpoch)
}

// gossipPeers lists the alive peers this instance can pull membership
// state from.
func (in *Instance) gossipPeers() []string {
	t := in.tableRef()
	out := make([]string, 0, len(t.Instances))
	for i, p := range t.Instances {
		if p.ID != in.self.ID && t.Status[i] == ring.Alive {
			out = append(out, p.Addr)
		}
	}
	return out
}

// handleDeltaPull answers a peer's catch-up request: the ordered delta
// frames covering [req.Epoch, ours) when the delta log retains them,
// the full table otherwise.
func (in *Instance) handleDeltaPull(req *wire.Request) *wire.Response {
	cur := in.tableRef()
	if req.Epoch >= cur.Epoch {
		return &wire.Response{Status: wire.StatusOK, Value: gossip.EncodeDeltas(nil)}
	}
	if frames, ok := in.deltaLog.Since(req.Epoch, cur.Epoch); ok {
		return &wire.Response{Status: wire.StatusOK, Value: gossip.EncodeDeltas(frames)}
	}
	in.met.gossipFullTables.Inc()
	return &wire.Response{Status: wire.StatusOK, Value: gossip.EncodeFullTable(ring.EncodeTable(cur))}
}

// gossipPull fetches membership state from addr and applies it,
// reporting whether the local epoch advanced. It is the Pull callback
// of the instance's gossip service.
func (in *Instance) gossipPull(addr string) bool {
	resp, err := in.caller.Call(addr, &wire.Request{Op: wire.OpDeltaPull, Epoch: in.Epoch()})
	if err != nil || resp.Status != wire.StatusOK {
		return false
	}
	frames, tableEnc, err := gossip.DecodePull(resp.Value)
	if err != nil {
		return false
	}
	if tableEnc != nil {
		t, err := ring.DecodeTable(tableEnc)
		if err != nil {
			return false
		}
		return in.adoptTableIfNewer(t)
	}
	advanced := false
	for _, f := range frames {
		d, err := ring.DecodeDelta(f)
		if err != nil {
			break
		}
		if d.FromEpoch < in.Epoch() {
			continue // already applied (raced another update)
		}
		if _, err := in.applyDelta(d, f); err != nil {
			break // gap or concurrent change; a later round re-pulls
		}
		advanced = true
	}
	return advanced
}

// applyDelta applies a membership delta on top of the current table,
// records its encoded frame for peers' catch-up pulls, and reconciles
// local state with the new table. Every delta path — broadcast
// receipt, manager apply, gossip replay — funnels through here so the
// delta log never misses an epoch this instance advanced through.
func (in *Instance) applyDelta(d ring.Delta, frame []byte) (*ring.Table, error) {
	in.mu.Lock()
	nt, err := in.table.Apply(d)
	if err != nil {
		in.mu.Unlock()
		return nil, err
	}
	old := in.table
	in.table = nt
	in.mu.Unlock()
	in.deltaLog.Record(d.FromEpoch, frame)
	in.met.epoch.Set(int64(nt.Epoch))
	in.afterTableChange(old, nt)
	return nt, nil
}

// adoptTableIfNewer replaces the local table when t is strictly newer,
// reporting whether it did. Adoption skips epochs, leaving a gap in
// the delta log on purpose: peers behind the gap must fetch the full
// table too.
func (in *Instance) adoptTableIfNewer(t *ring.Table) bool {
	in.mu.Lock()
	if t.Epoch <= in.table.Epoch {
		in.mu.Unlock()
		return false
	}
	old := in.table
	in.table = t
	in.mu.Unlock()
	in.met.epoch.Set(int64(t.Epoch))
	in.afterTableChange(old, t)
	return true
}

// Client-side gossip: a standalone client (no co-located instance)
// runs its own pull service so a stale table heals from any response,
// not only from a StatusWrongOwner rejection. Shared clients forward
// observations to their instance, the authoritative table holder.

// observeEpoch feeds a piggybacked response epoch into the client's
// staleness detector.
func (c *Client) observeEpoch(addr string, peerEpoch uint64) {
	if c.shared != nil {
		c.shared.observePeerEpoch(addr, peerEpoch)
		return
	}
	c.gossip.Observe(addr, peerEpoch)
}

// gossipPeers lists alive instances the client can pull from.
func (c *Client) gossipPeers() []string {
	t := c.snapshot()
	out := make([]string, 0, len(t.Instances))
	for i, p := range t.Instances {
		if t.Status[i] == ring.Alive {
			out = append(out, p.Addr)
		}
	}
	return out
}

// gossipPull fetches membership state from addr into the client's
// table, reporting whether its epoch advanced.
func (c *Client) gossipPull(addr string) bool {
	before := c.snapshot().Epoch
	resp, err := c.caller.Call(addr, &wire.Request{Op: wire.OpDeltaPull, Epoch: before})
	if err != nil || resp.Status != wire.StatusOK {
		return false
	}
	frames, tableEnc, err := gossip.DecodePull(resp.Value)
	if err != nil {
		return false
	}
	if tableEnc != nil {
		t, err := ring.DecodeTable(tableEnc)
		if err != nil {
			return false
		}
		c.adoptTable(t)
		return c.snapshot().Epoch > before
	}
	for _, f := range frames {
		d, err := ring.DecodeDelta(f)
		if err != nil {
			break
		}
		c.mu.Lock()
		if d.FromEpoch < c.table.Epoch {
			c.mu.Unlock()
			continue
		}
		nt, err := c.table.Apply(d)
		if err != nil {
			c.mu.Unlock()
			break
		}
		c.table = nt
		c.mu.Unlock()
	}
	return c.snapshot().Epoch > before
}
