package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"zht/internal/gossip"
	"zht/internal/hashing"
	"zht/internal/novoht"
	"zht/internal/repair"
	"zht/internal/ring"
	"zht/internal/storage"
	"zht/internal/tenant"
	"zht/internal/transport"
	"zht/internal/wire"
)

// migrationTimeout bounds how long a partition stays locked waiting
// for the membership delta that completes its migration; past it the
// migration is considered failed and queued requests get errors
// (paper §III.C: on migration failure, discard queued requests and
// report errors, rolling back to the consistent state).
const migrationTimeout = 10 * time.Second

// Instance is one ZHT server process: it owns a set of partitions,
// holds replica stores for its ring neighbours, answers client
// requests, and plays the manager role in membership changes.
type Instance struct {
	cfg   Config
	self  ring.Instance
	hashf hashing.Func
	// clock stamps every replicated mutation with a version for
	// last-writer-wins resolution across replicas (DESIGN.md §12) and
	// observes stamps on incoming legs so local stamps always order
	// after everything already applied.
	clock *hlc

	mu    sync.RWMutex // guards table
	table *ring.Table
	// deltaLog retains the trailing membership deltas this instance
	// applied, serving peers' gossip catch-up pulls (wire.OpDeltaPull).
	deltaLog *ring.DeltaLog
	// gossip pulls missing membership state when piggybacked epochs
	// reveal staleness; nil when Config.GossipCooldown is negative.
	gossip *gossip.Service

	smu    sync.Mutex // guards stores
	stores map[int]storage.KV

	pmu   sync.Mutex // guards parts
	parts map[int]*partState
	// opLocks serialize partition exports against in-flight KV
	// applications (striped; a migration takes the write side after
	// marking the partition migrating, draining appliers so the
	// exported image includes every acknowledged write).
	opLocks [64]sync.RWMutex
	// mutLocks serialize each KEY's mutation+replication pair
	// (striped by key hash): without it, two concurrent writes to one
	// key could reach the secondary replica in the opposite order
	// from the primary's apply order and diverge permanently.
	// Striping by key rather than by partition lets mutations of
	// different keys overlap inside one partition store, which is
	// what feeds the store's group-commit WAL more than one record
	// per fsync. Lookups bypass these locks entirely.
	mutLocks [64]sync.Mutex

	bmu   sync.Mutex // guards bcast
	bcast map[string][]byte

	caller  transport.Caller
	met     instanceMetrics
	asyncWG sync.WaitGroup
	closed  chan struct{}
	closeMu sync.Mutex

	// asyncQ holds one FIFO per destination for asynchronous
	// replication legs: async replication is weakly consistent in
	// *when* it applies, but must preserve per-key mutation order or
	// replicas would diverge permanently (an insert overtaking the
	// append that followed it).
	aqMu   sync.Mutex
	asyncQ map[string]chan *wire.Request

	// rbrk is the replication-side circuit breaker: once a replica
	// peer stops answering, further legs to it skip the transport
	// attempt and go straight to hinted handoff, so a dead peer costs
	// the primary nothing per mutation. Handoff replay shares the same
	// breaker state — a successful replay closes the circuit.
	rbrk *breaker
	// handoff buffers undeliverable replication legs for replay
	// (DESIGN.md §9); nil when Config.HandoffCap is negative.
	handoff *repair.Handoff
	// loopWG tracks the anti-entropy loop and read-repair goroutines;
	// Close waits for it after closing `closed` so no repair work
	// races store shutdown.
	loopWG sync.WaitGroup
	// rrLast rate-limits read-repair to one scheduled round per
	// partition per anti-entropy period.
	rrMu   sync.Mutex
	rrLast map[int]time.Time
}

// partState tracks a partition's migration lifecycle on the node
// giving it away. While migrating, requests queue on done.
type partState struct {
	migrating bool
	done      chan struct{}
	redirect  string // new owner address once complete; empty = failed
	ok        bool
}

// NewInstance creates an instance. self must already appear in table.
// caller is the transport the instance uses for server-to-server
// communication (replication, migration, delta broadcast).
func NewInstance(cfg Config, self ring.Instance, table *ring.Table, caller transport.Caller) (*Instance, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if table.IndexOf(self.ID) < 0 {
		return nil, fmt.Errorf("core: instance %q not in membership table", self.ID)
	}
	in := &Instance{
		cfg:      cfg,
		self:     self,
		hashf:    cfg.hash(),
		clock:    newHLC(self.ID),
		table:    table.Clone(),
		deltaLog: ring.NewDeltaLog(0),
		stores:   make(map[int]storage.KV),
		parts:    make(map[int]*partState),
		bcast:    make(map[string][]byte),
		met:      newInstanceMetrics(cfg.Metrics),
		closed:   make(chan struct{}),
		asyncQ:   make(map[string]chan *wire.Request),
		rrLast:   make(map[int]time.Time),
	}
	// Every server-to-server call flows through the epoch piggyback
	// wrapper: outgoing requests carry our epoch, incoming responses
	// feed the gossip staleness detector.
	in.caller = &epochCaller{inner: caller, in: in}
	in.met.epoch.Set(int64(in.table.Epoch))
	if cfg.GossipCooldown >= 0 {
		in.gossip, _ = gossip.New(gossip.Options{
			Epoch:    in.Epoch,
			Pull:     in.gossipPull,
			Peers:    in.gossipPeers,
			Cooldown: cfg.GossipCooldown,
			Metrics:  cfg.Metrics,
		})
	}
	in.rbrk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
		in.met.repBreakerTrips, in.met.repBreakerOpen)
	if cfg.HandoffCap > 0 {
		in.handoff = repair.NewHandoff(repair.HandoffOptions{
			Cap:      cfg.HandoffCap,
			Base:     cfg.RetryBase,
			Max:      maxDuration(cfg.RetryMax, time.Second),
			Send:     in.replaySend,
			Queued:   in.met.handoffQueued,
			Replayed: in.met.handoffReplayed,
			Dropped:  in.met.handoffDropped,
		})
	}
	if cfg.AntiEntropy > 0 {
		in.loopWG.Add(1)
		go in.antiEntropyLoop()
	}
	return in, nil
}

// enqueueAsync appends an async replication leg to the destination's
// FIFO, starting its worker on first use. Ordering per destination is
// preserved; Drain waits for completion.
func (in *Instance) enqueueAsync(addr string, req *wire.Request) {
	select {
	case <-in.closed:
		return
	default:
	}
	in.aqMu.Lock()
	q, ok := in.asyncQ[addr]
	if !ok {
		q = make(chan *wire.Request, 4096)
		in.asyncQ[addr] = q
		go func() {
			for r := range q {
				// An undeliverable async leg moves to hinted handoff
				// instead of being dropped; an open breaker routes it
				// there without paying the transport timeout, which
				// also keeps this FIFO from backing up behind a dead
				// peer.
				if !in.rbrk.allow(addr) {
					in.hintLeg(addr, r)
					in.releaseAsyncLeg(r)
					in.asyncWG.Done()
					continue
				}
				if _, err := in.caller.Call(addr, r); err != nil {
					in.rbrk.failure(addr)
					in.hintLeg(addr, r)
				} else {
					in.rbrk.success(addr)
				}
				in.releaseAsyncLeg(r)
				in.asyncWG.Done()
			}
		}()
	}
	in.aqMu.Unlock()
	in.asyncWG.Add(1)
	select {
	case q <- req:
	case <-in.closed:
		in.asyncWG.Done()
	}
}

// releaseAsyncLeg recycles a consumed async-queue entry. Only batched
// envelopes are pooled (replicateBatch builds them with
// wire.NewBatchRequest); single legs are ordinary heap requests the
// GC owns.
func (in *Instance) releaseAsyncLeg(r *wire.Request) {
	if r.Op == wire.OpBatch {
		wire.ReleaseBatchRequest(r)
	}
}

// ID returns the instance's ring UUID.
func (in *Instance) ID() ring.InstanceID { return in.self.ID }

// Addr returns the instance's transport address.
func (in *Instance) Addr() string { return in.self.Addr }

// Table returns a snapshot of the instance's membership table.
func (in *Instance) Table() *ring.Table {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.table.Clone()
}

// tableRef returns the current published table without cloning.
// Published tables are immutable; callers must not modify it.
func (in *Instance) tableRef() *ring.Table {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.table
}

// Epoch returns the instance's current membership epoch.
func (in *Instance) Epoch() uint64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.table.Epoch
}

// store returns (creating on demand) the NoVoHT store backing
// partition p on this instance.
func (in *Instance) store(p int) (storage.KV, error) {
	in.smu.Lock()
	defer in.smu.Unlock()
	if s, ok := in.stores[p]; ok {
		return s, nil
	}
	opts := novoht.Options{
		MaxMemValues: in.cfg.MaxMemValuesPerPartition,
		Durability:   in.cfg.Durability,
		Metrics:      in.cfg.Metrics,
	}
	if in.cfg.DataDir != "" {
		opts.Path = filepath.Join(in.cfg.DataDir, fmt.Sprintf("%s-p%06d.log", in.self.ID, p))
	}
	if opts.Path == "" || opts.Durability == storage.DurabilityNone {
		opts.MaxMemValues = 0 // memory bound requires a persistent log
	}
	s, err := novoht.Open(opts)
	if err != nil {
		return nil, err
	}
	// Every partition store is wrapped in a repair.Tracked digest
	// maintainer: primary applies, replica applies, and migration
	// imports all flow through the same KV value, so the Merkle digest
	// stays current on every path (rebuilt from ForEach on open).
	tr, err := repair.Track(s)
	if err != nil {
		s.Close()
		return nil, err
	}
	in.stores[p] = tr
	return tr, nil
}

// Handle implements transport.Handler: the single entry point for
// every request this instance receives. It wraps the dispatch with
// the gossip epoch exchange — a newer epoch on the request triggers a
// catch-up pull, and every response carries our epoch back.
func (in *Instance) Handle(req *wire.Request) *wire.Response {
	if req.Epoch > in.Epoch() {
		// The sender knows a newer ring than we do; we cannot reach it
		// by address, so pull from fallback peers.
		in.gossip.Observe("", req.Epoch)
	}
	resp := in.handle(req)
	if resp.Epoch == 0 {
		resp.Epoch = in.Epoch()
	}
	return resp
}

// handle dispatches one request to its op handler.
func (in *Instance) handle(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpInsert, wire.OpLookup, wire.OpRemove, wire.OpAppend, wire.OpCas:
		return in.handleKV(req)
	case wire.OpBatch:
		return in.handleBatch(req)
	case wire.OpReplicate:
		return in.handleReplicate(req)
	case wire.OpMembership:
		return in.handleMembership()
	case wire.OpDelta:
		return in.handleDelta(req)
	case wire.OpMigrate:
		return in.handleMigrate(req)
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpReport:
		return in.handleReport(req)
	case wire.OpBroadcast:
		return in.handleBroadcast(req)
	case wire.OpDigest:
		return in.handleDigest(req)
	case wire.OpRepairPull:
		return in.handleRepairPull(req)
	case wire.OpDeltaPull:
		return in.handleDeltaPull(req)
	}
	return &wire.Response{Status: wire.StatusError, Err: "core: unsupported op " + req.Op.String()}
}

// handleKV serves the four basic operations plus CAS.
func (in *Instance) handleKV(req *wire.Request) *wire.Response {
	// Client-facing traffic passes the admission and size gates;
	// internal legs (NoReplicate forwards, replica reads) bypass both —
	// shedding a replication leg would turn an overload verdict into a
	// durability gap, and internal values (TTL envelopes) may
	// legitimately exceed the user-facing payload bound.
	if req.Flags&(wire.FlagNoReplicate|wire.FlagReplicaRead) == 0 {
		if in.tooLarge(req) {
			return statusResp(wire.StatusTooLarge)
		}
		if in.cfg.Admission != nil {
			release, retry, ok := in.cfg.Admission.Admit(req.Key, len(req.Value))
			if !ok {
				resp := statusResp(wire.StatusBusy)
				resp.RetryAfter = uint64(retry)
				return resp
			}
			defer release()
		}
	}
	h := in.hashf(req.Key)
	// The partition index depends only on NumPartitions, which is
	// immutable, so it can be computed from any table snapshot.
	in.mu.RLock()
	p := in.table.Partition(h)
	in.mu.RUnlock()

	// Replica reads bypass ownership and the migration gate: a quorum
	// read's coordinator is asking THIS node for its local copy of the
	// pair (plus its version stamp), explicitly not for the
	// authoritative answer. Serve whatever is stored — possibly stale,
	// that is the point — and never instantiate a store for a
	// partition this node holds nothing of.
	if req.Op == wire.OpLookup && req.Flags&wire.FlagReplicaRead != 0 {
		s := in.storeIfPresent(p)
		if s == nil {
			return statusResp(wire.StatusNotFound)
		}
		return in.applyKV(s, req)
	}

	// Migration gate: if this partition is being given away, queue
	// until the move resolves (paper queues requests during
	// migration and answers with a redirect). The op lock's read
	// side is held across gate re-check and application so an
	// export cannot slip between them and lose an acknowledged
	// write.
	lock := in.opLock(p)
	for {
		if resp := in.migrationGate(p); resp != nil {
			return resp
		}
		lock.RLock()
		if in.isMigrating(p) {
			lock.RUnlock()
			continue // a migration began while we acquired the lock
		}
		break
	}
	defer lock.RUnlock()

	// Ownership must be evaluated on a table snapshot taken AFTER the
	// gate: a request racing a just-completed migration would
	// otherwise pass the gate, then consult a pre-migration table and
	// apply a write to a partition that has already moved away.
	in.mu.RLock()
	table := in.table
	ownerIdx := table.Owner[p]
	owner := table.Instances[ownerIdx]
	ownerFailed := table.Status[ownerIdx] != ring.Alive
	in.mu.RUnlock()

	if owner.ID != in.self.ID {
		// Failover service: a replica answers for a failed primary
		// (§III.H — queries for data on the failed node are answered
		// by the replicas).
		if !(ownerFailed && in.firstAliveReplica(table, p) == in.self.ID) {
			return &wire.Response{Status: wire.StatusWrongOwner, Table: ring.EncodeTable(table)}
		}
		if req.Op == wire.OpLookup {
			// Read-repair: a failover read means this replica is the
			// partition's acting authority; schedule a digest compare
			// against the other replicas so stale ranges heal without
			// waiting for the next anti-entropy tick.
			in.scheduleReadRepair(table, p)
		}
	}

	s, err := in.store(p)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	if !in.mutates(req) {
		return in.applyKV(s, req)
	}
	ml := &in.mutLocks[h%uint64(len(in.mutLocks))]
	ml.Lock()
	defer ml.Unlock()
	// Replicated mutations are version-stamped so replicas resolve
	// reordered legs last-writer-wins instead of diverging, then
	// fanned out at the request's write level: success is withheld
	// until Acks(copies) copies (local apply counts as one) hold the
	// write.
	ver := in.clock.Next()
	resp, legVal := in.applyPrimary(s, req, ver)
	if resp.Status != wire.StatusOK {
		return resp
	}
	level := in.writeLevel(req)
	acked, copies := in.replicate(table, p, req, ver, legVal, level)
	if legVal != nil {
		// Every leg has copied or finished with the scratch by now
		// (sync legs completed, async legs and handoff hold copies).
		wire.PutBuffer(legVal)
	}
	if need := level.Acks(copies); need > 1 {
		in.met.quorumWrites.Inc()
		if acked+1 < need {
			// The local apply is NOT rolled back: the write exists on
			// fewer copies than the level demands, and anti-entropy or
			// handoff replay will finish spreading it. The error tells
			// the client its durability contract was not met, not that
			// the write vanished (DESIGN.md §12).
			resp.Status = wire.StatusError
			resp.Err = fmt.Sprintf("core: quorum not met (%d/%d acks)", acked+1, need)
		}
	}
	return resp
}

// writeLevel resolves the effective write consistency for one
// request: its own Consistency field when set, the deployment default
// otherwise.
func (in *Instance) writeLevel(req *wire.Request) wire.Consistency {
	if req.Consistency != wire.ConsistencyDefault {
		return req.Consistency
	}
	return in.cfg.WriteLevel
}

// storeIfPresent returns partition p's store only if this instance
// already holds one, never creating it.
func (in *Instance) storeIfPresent(p int) storage.KV {
	in.smu.Lock()
	defer in.smu.Unlock()
	return in.stores[p]
}

// applyPrimary applies a replicated mutation to the owner's store,
// stamping the stored pair with ver. It returns the response plus the
// value the replica legs must carry when it differs from req.Value
// (append legs carry the full concatenated value: with versions,
// appends replicate as whole-value inserts so a replica that missed
// an earlier leg converges to the primary's bytes instead of
// appending onto a different base). Falls back to the unversioned
// applyKV when the store does not persist stamps.
func (in *Instance) applyPrimary(s storage.KV, req *wire.Request, ver uint64) (*wire.Response, []byte) {
	vkv, ok := s.(storage.VersionedKV)
	if !ok {
		return in.applyKV(s, req), nil
	}
	switch req.Op {
	case wire.OpInsert:
		if req.Flags&wire.FlagIfAbsent != 0 {
			// The per-key mutation stripe is held: check-then-put is
			// atomic with respect to every other writer of this key. An
			// expired TTL envelope counts as absent — lazy expiry must
			// not block a fresh add (memcached `add` semantics).
			if v, _, found, err := vkv.GetV(req.Key); err != nil {
				return errResp(err), nil
			} else if found && !tenant.Expired(v) {
				return statusResp(wire.StatusExists), nil
			}
		}
		if err := vkv.PutV(req.Key, req.Value, ver); err != nil {
			return errResp(err), nil
		}
		return statusResp(wire.StatusOK), nil
	case wire.OpRemove:
		// The owner is the serialization point (mutation stripe), so
		// the local delete is unconditional; ver rides the replica
		// legs, where RemoveLWW refuses to delete a newer write.
		ok, err := s.Remove(req.Key)
		if err != nil {
			return errResp(err), nil
		}
		if !ok {
			return statusResp(wire.StatusNotFound), nil
		}
		return statusResp(wire.StatusOK), nil
	case wire.OpAppend:
		buf := wire.GetBuffer()
		old, _, _, err := vkv.GetAppendV(buf, req.Key)
		if err != nil {
			wire.PutBuffer(old)
			return errResp(err), nil
		}
		full := append(old, req.Value...)
		if err := vkv.PutV(req.Key, full, ver); err != nil {
			wire.PutBuffer(full)
			return errResp(err), nil
		}
		// full escapes into the replica legs (copied per leg by
		// replicate); recycle the scratch afterwards is unsafe since
		// legs alias it — the fan-out copies before returning, so the
		// buffer is released there via legVal ownership passing back.
		return statusResp(wire.StatusOK), full
	case wire.OpCas:
		// CAS semantics (nil-vs-empty expectations, current-value
		// reporting) live in the store; re-stamp the winner rather
		// than re-implementing them here. The extra PutV is off the
		// hot path — CAS is the rare op — and keeps behavior
		// byte-identical to the engine's.
		resp := in.applyKV(s, req)
		if resp.Status == wire.StatusOK {
			if err := vkv.PutV(req.Key, req.Value, ver); err != nil {
				wire.PutResponse(resp)
				return errResp(err), nil
			}
		}
		return resp, nil
	}
	return in.applyKV(s, req), nil
}

func (in *Instance) opLock(p int) *sync.RWMutex { return &in.opLocks[p%len(in.opLocks)] }

// tooLarge screens client requests against the deployment-wide
// payload bounds (Config.MaxKeyLen/MaxValueLen; 0 = unbounded). Only
// ops that grow state are screened: Lookup and Remove of an oversized
// key are harmless and must stay able to read/delete pairs written
// before a limit was tightened. Append is bounded per-op — the
// accumulated value can still grow past MaxValueLen across appends,
// which is documented in DESIGN.md §13.
func (in *Instance) tooLarge(req *wire.Request) bool {
	if in.cfg.MaxKeyLen == 0 && in.cfg.MaxValueLen == 0 {
		return false
	}
	switch req.Op {
	case wire.OpInsert, wire.OpAppend, wire.OpCas:
	default:
		return false
	}
	if in.cfg.MaxKeyLen > 0 && len(req.Key) > in.cfg.MaxKeyLen {
		return true
	}
	return in.cfg.MaxValueLen > 0 && len(req.Value) > in.cfg.MaxValueLen
}

// mutates reports whether req is a mutation this instance must push
// along the replica chain.
func (in *Instance) mutates(req *wire.Request) bool {
	return req.Op != wire.OpLookup && req.Flags&wire.FlagNoReplicate == 0 && in.cfg.Replicas > 0
}

func (in *Instance) isMigrating(p int) bool {
	in.pmu.Lock()
	defer in.pmu.Unlock()
	ps := in.parts[p]
	return ps != nil && ps.migrating
}

// exportPartition snapshots partition p with the op lock held so the
// image contains every acknowledged write.
func (in *Instance) exportPartition(p int) ([]byte, error) {
	s, err := in.store(p)
	if err != nil {
		return nil, err
	}
	lock := in.opLock(p)
	lock.Lock()
	defer lock.Unlock()
	var img bytes.Buffer
	if err := storage.Export(&img, s); err != nil {
		return nil, err
	}
	return img.Bytes(), nil
}

// statusResp draws a pooled response carrying just a status; the
// transport writer recycles it after encoding (see transport.Handler).
func statusResp(st wire.Status) *wire.Response {
	r := wire.GetResponse()
	r.Status = st
	return r
}

// errResp draws a pooled StatusError response.
func errResp(err error) *wire.Response {
	r := wire.GetResponse()
	r.Status = wire.StatusError
	r.Err = err.Error()
	return r
}

// applyKV executes one KV op against a store. Shared by the primary
// path and the replica path so both stay byte-identical. Responses
// are pooled; ownership passes to the caller (ultimately the
// transport writer, which recycles them after encoding). Lookups are
// TTL-aware: a value whose tenant envelope has expired answers
// NotFound (lazy expiry, DESIGN.md §13) — the pair itself is deleted
// later by the anti-entropy reaper, never on the read path.
func (in *Instance) applyKV(s storage.KV, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpInsert:
		if req.Flags&wire.FlagIfAbsent != 0 {
			ok, err := s.PutIfAbsent(req.Key, req.Value)
			if err != nil {
				return errResp(err)
			}
			if !ok {
				// Occupied — but an expired TTL envelope counts as
				// absent (lazy expiry): overwrite it. Only the occupied
				// path pays the extra Get. On the unreplicated path no
				// mutation stripe is held, so two concurrent adds racing
				// an expired pair can both succeed — same class of
				// benign race as concurrent adds on a truly absent key.
				if v, found, gerr := s.Get(req.Key); gerr == nil && found && tenant.Expired(v) {
					if perr := s.Put(req.Key, req.Value); perr != nil {
						return errResp(perr)
					}
					return statusResp(wire.StatusOK)
				}
				return statusResp(wire.StatusExists)
			}
			return statusResp(wire.StatusOK)
		}
		if err := s.Put(req.Key, req.Value); err != nil {
			return errResp(err)
		}
		return statusResp(wire.StatusOK)
	case wire.OpLookup:
		// Copy-reduced read: stores that support scratch-buffer reads
		// copy the value once, shard to pooled buffer, and the buffer
		// rides the response back to the pool after encoding. Versioned
		// stores additionally return the pair's stamp — quorum-read
		// coordinators resolve copies newest-version-wins.
		if vg, ok := s.(storage.VersionedKV); ok {
			buf := wire.GetBuffer()
			v, ver, found, err := vg.GetAppendV(buf, req.Key)
			if err != nil {
				wire.PutBuffer(v)
				return errResp(err)
			}
			if !found || len(v) == 0 {
				wire.PutBuffer(v)
				if !found {
					return statusResp(wire.StatusNotFound)
				}
				resp := statusResp(wire.StatusOK)
				resp.Version = ver
				return resp
			}
			if tenant.Expired(v) {
				wire.PutBuffer(v)
				in.met.expiredReads.Inc()
				return statusResp(wire.StatusNotFound)
			}
			resp := statusResp(wire.StatusOK)
			resp.SetPooledValue(v)
			resp.Version = ver
			return resp
		}
		if ag, ok := s.(storage.ScratchGetter); ok {
			buf := wire.GetBuffer()
			v, found, err := ag.GetAppend(buf, req.Key)
			if err != nil {
				wire.PutBuffer(v)
				return errResp(err)
			}
			if !found || len(v) == 0 {
				wire.PutBuffer(v)
				if !found {
					return statusResp(wire.StatusNotFound)
				}
				return statusResp(wire.StatusOK)
			}
			if tenant.Expired(v) {
				wire.PutBuffer(v)
				in.met.expiredReads.Inc()
				return statusResp(wire.StatusNotFound)
			}
			resp := statusResp(wire.StatusOK)
			resp.SetPooledValue(v)
			return resp
		}
		v, ok, err := s.Get(req.Key)
		if err != nil {
			return errResp(err)
		}
		if !ok {
			return statusResp(wire.StatusNotFound)
		}
		if tenant.Expired(v) {
			in.met.expiredReads.Inc()
			return statusResp(wire.StatusNotFound)
		}
		resp := statusResp(wire.StatusOK)
		resp.Value = v
		return resp
	case wire.OpRemove:
		ok, err := s.Remove(req.Key)
		if err != nil {
			return errResp(err)
		}
		if !ok {
			return statusResp(wire.StatusNotFound)
		}
		return statusResp(wire.StatusOK)
	case wire.OpAppend:
		if err := s.Append(req.Key, req.Value); err != nil {
			return errResp(err)
		}
		return statusResp(wire.StatusOK)
	case wire.OpCas:
		// FlagIfAbsent marks "expect absent"; otherwise Aux is the
		// expected current value (nil Aux = expect empty value,
		// since the wire layer normalizes empty to nil).
		var old []byte
		if req.Flags&wire.FlagIfAbsent == 0 {
			old = req.Aux
			if old == nil {
				old = []byte{}
			}
		}
		swapped, cur, err := s.Cas(req.Key, old, req.Value)
		if err != nil {
			return errResp(err)
		}
		if !swapped {
			resp := statusResp(wire.StatusCasMismatch)
			resp.Value = cur
			return resp
		}
		return statusResp(wire.StatusOK)
	}
	r := statusResp(wire.StatusError)
	r.Err = "core: bad kv op"
	return r
}

// replicate pushes a mutation along the replica chain at the given
// write level. Legs are synchronous until enough acks are in hand to
// meet the level (local apply counts as the first ack), the rest
// asynchronous — so Quorum reproduces the seed's
// first-replica-sync/rest-async shape and All is every leg sync, the
// old SyncReplication ablation. A failed sync leg promotes the next
// replica in ring order to synchronous (straggler promotion): the
// level counts acks, not positions. Returns the replica acks actually
// collected and the number of copies (self + alive replicas) the
// level was resolved against.
func (in *Instance) replicate(table *ring.Table, p int, req *wire.Request, ver uint64, legVal []byte, level wire.Consistency) (acked, copies int) {
	reps := table.ReplicasOf(p, in.cfg.Replicas)
	copies = 1
	for _, r := range reps {
		if r.ID != in.self.ID {
			copies++
		}
	}
	syncNeed := level.Acks(copies) - 1
	fwd := replicaFwd(p, req, ver, legVal)
	first := true
	for _, r := range reps {
		if r.ID == in.self.ID {
			continue
		}
		// The first replica leg is synchronous at every level — the
		// paper's strongly-paired primary/secondary (§III.J) — so even
		// ONE keeps an eagerly consistent second copy; the level only
		// decides how many acks success WAITS on.
		if first || acked < syncNeed {
			first = false
			f := fwd
			f.Flags |= wire.FlagSyncReplica
			// A failed sync leg is a consistency gap until repaired —
			// count it, then hand the leg to hinted handoff so the gap
			// closes when the peer answers again instead of persisting
			// until the next full rebuild. An open replication breaker
			// (peer already known dead) skips the transport attempt
			// entirely: the dead peer costs nothing per mutation.
			if !in.rbrk.allow(r.Addr) {
				in.met.syncErrors.Inc()
				in.hintLeg(r.Addr, &f)
				continue
			}
			resp, err := in.caller.Call(r.Addr, &f)
			if err != nil {
				in.rbrk.failure(r.Addr)
				in.met.syncErrors.Inc()
				in.hintLeg(r.Addr, &f)
				continue
			}
			in.rbrk.success(r.Addr)
			if resp.Status != wire.StatusOK {
				in.met.syncErrors.Inc()
				in.hintLeg(r.Addr, &f)
				continue
			}
			acked++
			continue
		}
		f := fwd
		f.Value = append([]byte(nil), fwd.Value...)
		f.Aux = append([]byte(nil), fwd.Aux...)
		in.enqueueAsync(r.Addr, &f)
	}
	return acked, copies
}

// replicaFwd rewrites a successful primary mutation into the
// OpReplicate message pushed to the partition's replicas, carrying the
// version the primary stamped. A successful CAS is replicated as a
// plain insert of the new value: the decision was already made at the
// primary, and re-running the comparison on a replica whose async
// state lags could diverge. Conditional inserts likewise, and
// versioned appends too — legVal is the full post-append value, so a
// replica that missed an earlier leg still converges to the primary's
// bytes (the LWW compare needs whole-value legs to be meaningful).
func replicaFwd(p int, req *wire.Request, ver uint64, legVal []byte) wire.Request {
	fwd := *req
	fwd.Op = wire.OpReplicate
	fwd.Version = ver
	innerOp, innerAux := req.Op, req.Aux
	switch req.Op {
	case wire.OpCas:
		innerOp, innerAux = wire.OpInsert, nil
	case wire.OpAppend:
		if ver > 0 {
			innerOp, innerAux = wire.OpInsert, nil
		}
	}
	if legVal != nil {
		fwd.Value = legVal
	}
	fwd.Flags &^= wire.FlagIfAbsent
	fwd.Aux = encodeReplicaAux(innerOp, innerAux)
	fwd.Partition = int64(p)
	fwd.Flags |= wire.FlagNoReplicate
	return fwd
}

// encodeReplicaAux packs the original op (and CAS expectation) into
// the Aux field of an OpReplicate message.
func encodeReplicaAux(op wire.Op, origAux []byte) []byte {
	out := make([]byte, 1+len(origAux))
	out[0] = byte(op)
	copy(out[1:], origAux)
	return out
}

// handleReplicate applies a forwarded mutation to the local replica
// store for the partition.
func (in *Instance) handleReplicate(req *wire.Request) *wire.Response {
	if len(req.Aux) < 1 {
		return &wire.Response{Status: wire.StatusError, Err: "core: replicate without op"}
	}
	inner := *req
	inner.Op = wire.Op(req.Aux[0])
	inner.Aux = req.Aux[1:]
	if len(inner.Aux) == 0 {
		inner.Aux = nil
	}
	s, err := in.store(int(req.Partition))
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	// Versioned legs resolve last-writer-wins: a stale leg (reordered
	// behind a newer write on the sync/async seam, or replayed from
	// handoff after the key moved on) is rejected by the version
	// compare instead of clobbering the newer state. The clock
	// observes every incoming stamp so this node's next local write
	// orders after everything it has applied.
	if req.Version > 0 {
		in.clock.Observe(req.Version)
		vkv, ok := s.(storage.VersionedKV)
		if !ok {
			return &wire.Response{Status: wire.StatusError, Err: "core: versioned leg on unversioned store"}
		}
		var applied bool
		switch inner.Op {
		case wire.OpInsert:
			applied, err = vkv.PutLWW(inner.Key, inner.Value, req.Version)
		case wire.OpRemove:
			applied, err = vkv.RemoveLWW(inner.Key, req.Version)
		default:
			return &wire.Response{Status: wire.StatusError, Err: "core: bad versioned replica op " + inner.Op.String()}
		}
		if err != nil {
			return errResp(err)
		}
		if !applied {
			in.met.versionConflicts.Inc()
		}
		return statusResp(wire.StatusOK)
	}
	resp := in.applyKV(s, &inner)
	// Unversioned replicas tolerate NotFound (a remove may race ahead
	// of the insert it follows on the async path) — but each tolerated
	// race is a pair whose replica state disagreed with the primary's
	// apply order, so count it: silent drift should be observable even
	// with the repair loop disabled.
	if resp.Status == wire.StatusNotFound || resp.Status == wire.StatusCasMismatch || resp.Status == wire.StatusExists {
		in.met.divergence.Inc()
		resp.Status = wire.StatusOK
	}
	return resp
}

// handleMembership returns the current table.
func (in *Instance) handleMembership() *wire.Response {
	in.mu.RLock()
	enc := ring.EncodeTable(in.table)
	in.mu.RUnlock()
	return &wire.Response{Status: wire.StatusOK, Table: enc}
}

// handleDelta applies an incremental membership update (or adopts a
// full table when Aux carries one). On epoch mismatch for a delta the
// caller receives an error and is expected to fall back to sending
// its full table.
func (in *Instance) handleDelta(req *wire.Request) *wire.Response {
	if d, err := ring.DecodeDelta(req.Aux); err == nil {
		if _, err := in.applyDelta(d, req.Aux); err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error(),
				Table: ring.EncodeTable(in.tableRef())}
		}
		return &wire.Response{Status: wire.StatusOK}
	}
	t, err := ring.DecodeTable(req.Aux)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: "core: delta payload is neither delta nor table"}
	}
	in.adoptTableIfNewer(t) // an older table is a no-op: already current
	return &wire.Response{Status: wire.StatusOK}
}

// afterTableChange reconciles local state with a new table: completes
// outgoing migrations whose partitions moved away, and rebuilds
// replicas for partitions this instance just inherited from a failed
// node.
func (in *Instance) afterTableChange(old, nt *ring.Table) {
	myOld := old.IndexOf(in.self.ID)
	myNew := nt.IndexOf(in.self.ID)
	// A node failing (or departing) in this update means every
	// partition that kept a copy — primary or replica — on it lost
	// redundancy; the paper's manager "initiates a rebuilding of the
	// replicas, specifically increasing replication on all partitions
	// stored on the failed physical node". Each current owner
	// re-pushes its partitions.
	nodeFailed := false
	for i := range old.Status {
		if old.Status[i] == ring.Alive && i < len(nt.Status) && nt.Status[i] != ring.Alive {
			nodeFailed = true
			break
		}
	}
	for p := 0; p < nt.NumPartitions; p++ {
		ownedBefore := myOld >= 0 && old.Owner[p] == myOld
		ownedNow := myNew >= 0 && nt.Owner[p] == myNew
		if ownedBefore && !ownedNow {
			// Outgoing migration completed: release queued requests
			// with a redirect to the new owner.
			in.completeMigration(p, nt.OwnerOf(p).Addr, true)
		}
		if ownedNow && nodeFailed && in.cfg.Replicas > 0 {
			in.rebuildReplicas(nt, p)
		}
	}
}

// rebuildReplicas pushes a full image of partition p to every replica
// in the new replica set, asynchronously.
func (in *Instance) rebuildReplicas(table *ring.Table, p int) {
	in.asyncWG.Add(1)
	go func() {
		defer in.asyncWG.Done()
		s, err := in.store(p)
		if err != nil {
			return
		}
		var img bytes.Buffer
		if err := storage.Export(&img, s); err != nil {
			return
		}
		for _, r := range table.ReplicasOf(p, in.cfg.Replicas) {
			if r.ID == in.self.ID {
				continue
			}
			in.caller.Call(r.Addr, &wire.Request{
				Op: wire.OpMigrate, Partition: int64(p),
				Flags: wire.FlagNoReplicate, Aux: img.Bytes(),
			})
		}
	}()
}

// handleMigrate serves both migration directions:
//
//   - pull (Aux empty): the requester (a joining node, named by Key)
//     asks for partition p; we lock p, export its image, and keep the
//     partition locked until the membership delta confirms the move.
//   - push (Aux = image): we import the image into our local store
//     (used for departures and replica rebuilds).
func (in *Instance) handleMigrate(req *wire.Request) *wire.Response {
	p := int(req.Partition)
	if p < 0 || p >= in.cfg.NumPartitions {
		return &wire.Response{Status: wire.StatusError, Err: "core: bad partition"}
	}
	if len(req.Aux) > 0 {
		if string(req.Aux) == "abort" {
			in.completeMigration(p, "", false)
			return &wire.Response{Status: wire.StatusOK}
		}
		if string(req.Aux) == string(migrateLockMarker) {
			return in.handleMigrateLock(p)
		}
		s, err := in.store(p)
		if err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		if _, err := storage.Import(bytes.NewReader(req.Aux), s); err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		return &wire.Response{Status: wire.StatusOK}
	}
	// Pull: verify ownership.
	in.mu.RLock()
	table := in.table
	ownsIt := table.OwnerOf(p).ID == in.self.ID
	in.mu.RUnlock()
	if !ownsIt {
		return &wire.Response{Status: wire.StatusWrongOwner, Table: ring.EncodeTable(table)}
	}
	if !in.beginMigration(p) {
		return &wire.Response{Status: wire.StatusError, Err: "core: partition already migrating"}
	}
	img, err := in.exportPartition(p)
	if err != nil {
		in.completeMigration(p, "", false)
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	resp := &wire.Response{Status: wire.StatusOK, Value: img}
	in.migrationWatchdog(p)
	return resp
}

// handleMigrateLock serves the streaming path's cutover request: the
// incoming owner has already streamed the partition's content and now
// asks us to stop serving it. We begin the migration (new requests
// queue behind the gate), drain in-flight appliers by cycling the op
// lock, and reply — the requester then runs its locked final sync and
// commits the delta, which resolves the queued requests with
// redirects. No image travels; content moved through repair pulls.
func (in *Instance) handleMigrateLock(p int) *wire.Response {
	in.mu.RLock()
	table := in.table
	ownsIt := table.OwnerOf(p).ID == in.self.ID
	in.mu.RUnlock()
	if !ownsIt {
		return &wire.Response{Status: wire.StatusWrongOwner, Table: ring.EncodeTable(table)}
	}
	if !in.beginMigration(p) {
		return &wire.Response{Status: wire.StatusError, Err: "core: partition already migrating"}
	}
	// Drain: anyone holding the op lock in read mode finished applying
	// (and replicating) once we can take it exclusively.
	l := in.opLock(p)
	l.Lock()
	l.Unlock() //nolint:staticcheck // cycle, not critical section
	in.migrationWatchdog(p)
	return &wire.Response{Status: wire.StatusOK}
}

// migrationWatchdog fails an open migration on partition p if the
// confirming delta never arrives, so queued requests are not stuck
// forever.
func (in *Instance) migrationWatchdog(p int) {
	go func() {
		timer := time.NewTimer(migrationTimeout)
		defer timer.Stop()
		in.pmu.Lock()
		ps := in.parts[p]
		in.pmu.Unlock()
		if ps == nil {
			return
		}
		select {
		case <-ps.done:
		case <-timer.C:
			in.completeMigration(p, "", false)
		case <-in.closed:
		}
	}()
}

// beginMigration locks partition p for an outgoing move; it reports
// false when a migration is already in flight.
func (in *Instance) beginMigration(p int) bool {
	in.pmu.Lock()
	defer in.pmu.Unlock()
	ps := in.parts[p]
	if ps != nil && ps.migrating {
		return false
	}
	in.parts[p] = &partState{migrating: true, done: make(chan struct{})}
	return true
}

// completeMigration resolves a pending outgoing migration. ok=true
// publishes redirect to the queued requests; ok=false discards them
// with errors (the paper's rollback path).
func (in *Instance) completeMigration(p int, redirect string, ok bool) {
	in.pmu.Lock()
	ps := in.parts[p]
	if ps == nil || !ps.migrating {
		in.pmu.Unlock()
		return
	}
	ps.migrating = false
	ps.redirect = redirect
	ps.ok = ok
	close(ps.done)
	if !ok {
		delete(in.parts, p) // rolled back: we still own the partition
	}
	in.pmu.Unlock()
}

// migrationGate returns nil when partition p is serveable; otherwise
// it blocks on an in-flight migration and returns the queued verdict,
// or returns a redirect when p has already moved away.
func (in *Instance) migrationGate(p int) *wire.Response {
	in.pmu.Lock()
	ps := in.parts[p]
	var wasMigrating bool
	var done chan struct{}
	if ps != nil {
		wasMigrating = ps.migrating
		done = ps.done
	}
	in.pmu.Unlock()
	if ps == nil {
		return nil
	}
	if wasMigrating {
		select {
		case <-done:
		case <-time.After(migrationTimeout + time.Second):
			return &wire.Response{Status: wire.StatusError, Err: "core: migration stuck"}
		case <-in.closed:
			return &wire.Response{Status: wire.StatusError, Err: "core: instance closed"}
		}
	}
	in.pmu.Lock()
	redirect, ok, migrating := ps.redirect, ps.ok, ps.migrating
	in.pmu.Unlock()
	if migrating {
		return &wire.Response{Status: wire.StatusError, Err: "core: migration restarted"}
	}
	if !ok {
		if redirect == "" && in.ownsNow(p) {
			// Migration rolled back; serve normally.
			return nil
		}
		return &wire.Response{Status: wire.StatusError, Err: "core: migration failed"}
	}
	if in.ownsNow(p) {
		// ok=true is only ever recorded after the table flipped
		// ownership away, so owning p again means ownership has since
		// RETURNED (the receiver itself departed and handed the
		// partition back before any request arrived here). The
		// redirect points at the former receiver — likely gone — so
		// drop the stale record and serve normally.
		in.pmu.Lock()
		delete(in.parts, p)
		in.pmu.Unlock()
		return nil
	}
	// Migration complete and our table reflects it: new arrivals get
	// WrongOwner + the fresh table so zero-hop routing is restored
	// (redirects serve only the requests that queued during the move).
	in.pmu.Lock()
	delete(in.parts, p)
	in.pmu.Unlock()
	return nil
}

func (in *Instance) ownsNow(p int) bool {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.table.OwnerOf(p).ID == in.self.ID
}

// firstAliveReplica returns the instance ID of partition p's first
// Alive replica, or empty. The replica count is floored at 1 — the
// same floor the client's failover routing and handleReport's
// PlanFailure use — so a Replicas=0 deployment can still elect a
// failover target instead of rejecting every request for a dead
// owner's partitions. The explicit Status scan guards against table
// snapshots where a listed replica has since been marked failed:
// electing a dead replica would both reject this node's valid
// failover serve and point clients at a node that cannot answer.
func (in *Instance) firstAliveReplica(table *ring.Table, p int) ring.InstanceID {
	reps := table.ReplicasOf(p, maxInt(in.cfg.Replicas, 1))
	for _, r := range reps {
		idx := table.IndexOf(r.ID)
		if idx >= 0 && table.Status[idx] == ring.Alive {
			return r.ID
		}
	}
	return ""
}

// handleReport processes a failure report: verify the accused is
// really unreachable, then fail it over and broadcast the update
// (manager role, §III.C unplanned departures).
func (in *Instance) handleReport(req *wire.Request) *wire.Response {
	accused := ring.InstanceID(req.Key)
	in.mu.RLock()
	table := in.table
	idx := table.IndexOf(accused)
	in.mu.RUnlock()
	if idx < 0 {
		return &wire.Response{Status: wire.StatusError, Err: "core: report for unknown instance"}
	}
	if table.Status[idx] != ring.Alive {
		// Already handled; return the fresher table.
		return &wire.Response{Status: wire.StatusOK, Table: ring.EncodeTable(table)}
	}
	// Verify: a single ping with the transport's timeout. The client
	// already retried with exponential backoff before reporting.
	if accused != in.self.ID {
		if resp, err := in.caller.Call(table.Instances[idx].Addr, &wire.Request{Op: wire.OpPing}); err == nil && resp.Status == wire.StatusOK {
			return &wire.Response{Status: wire.StatusError, Err: "core: accused instance is alive"}
		}
	}
	d, err := table.PlanFailure(accused, maxInt(in.cfg.Replicas, 1))
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	nt, err := in.applyAndBroadcast(d)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	return &wire.Response{Status: wire.StatusOK, Table: ring.EncodeTable(nt)}
}

// applyAndBroadcast applies a delta locally and pushes it to every
// other alive instance, falling back to the full table for instances
// whose epoch diverged.
func (in *Instance) applyAndBroadcast(d ring.Delta) (*ring.Table, error) {
	nt, err := in.applyDelta(d, ring.EncodeDelta(d))
	if err != nil {
		return nil, err
	}
	in.broadcastDelta(nt, d)
	return nt, nil
}

// broadcastDelta sends the delta to all alive peers; on epoch
// mismatch it retries with the full table. Under GossipOnly the
// fan-out shrinks to the instances the delta reassigns partitions to
// (they must hear the commit to release migration state promptly);
// everyone else converges through the epoch piggyback instead.
func (in *Instance) broadcastDelta(nt *ring.Table, d ring.Delta) {
	encD := ring.EncodeDelta(d)
	encT := ring.EncodeTable(nt)
	var gaining map[ring.InstanceID]bool
	if in.cfg.GossipOnly {
		gaining = make(map[ring.InstanceID]bool, len(d.Reassign))
		for _, id := range d.Reassign {
			gaining[id] = true
		}
	}
	for i, peer := range nt.Instances {
		if peer.ID == in.self.ID || nt.Status[i] != ring.Alive {
			continue
		}
		if in.cfg.GossipOnly && !gaining[peer.ID] {
			continue
		}
		resp, err := in.caller.Call(peer.Addr, &wire.Request{Op: wire.OpDelta, Aux: encD})
		if err == nil && resp.Status == wire.StatusOK {
			continue
		}
		in.caller.Call(peer.Addr, &wire.Request{Op: wire.OpDelta, Aux: encT})
	}
}

// handleBroadcast stores the pair locally and forwards it down the
// spanning tree (future-work broadcast primitive, implemented). The
// tree is a binary tree over ring indices relabeled so the origin
// (req.Partition) is the root.
func (in *Instance) handleBroadcast(req *wire.Request) *wire.Response {
	in.bmu.Lock()
	in.bcast[req.Key] = append([]byte(nil), req.Value...)
	in.bmu.Unlock()

	in.mu.RLock()
	table := in.table
	in.mu.RUnlock()
	n := len(table.Instances)
	origin := int(req.Partition)
	if origin < 0 || origin >= n {
		return &wire.Response{Status: wire.StatusError, Err: "core: bad broadcast origin"}
	}
	myIdx := table.IndexOf(in.self.ID)
	if myIdx < 0 {
		return &wire.Response{Status: wire.StatusError, Err: "core: not a member"}
	}
	pos := (myIdx - origin + n) % n
	for _, childPos := range []int{2*pos + 1, 2*pos + 2} {
		if childPos >= n {
			continue
		}
		childIdx := (origin + childPos) % n
		if table.Status[childIdx] != ring.Alive {
			continue
		}
		fwd := *req
		fwd.Hop = req.Hop + 1
		fwd.Value = append([]byte(nil), req.Value...)
		addr := table.Instances[childIdx].Addr
		in.asyncWG.Add(1)
		go func() {
			defer in.asyncWG.Done()
			in.caller.Call(addr, &fwd)
		}()
	}
	return &wire.Response{Status: wire.StatusOK}
}

// BroadcastValue returns the locally delivered broadcast value for
// key, if any (used by tests and examples to observe dissemination).
func (in *Instance) BroadcastValue(key string) ([]byte, bool) {
	in.bmu.Lock()
	defer in.bmu.Unlock()
	v, ok := in.bcast[key]
	return v, ok
}

// Drain waits for in-flight asynchronous work (replication legs,
// broadcast forwards, replica rebuilds) to finish.
func (in *Instance) Drain() { in.asyncWG.Wait() }

// Close flushes and closes all partition stores.
func (in *Instance) Close() error {
	in.closeMu.Lock()
	select {
	case <-in.closed:
		in.closeMu.Unlock()
		return nil
	default:
		close(in.closed)
	}
	in.closeMu.Unlock()
	in.gossip.Close() // before async drain: a pull can spawn async work
	in.asyncWG.Wait()
	in.loopWG.Wait()   // anti-entropy + read-repair exit on closed
	in.handoff.Close() // after asyncWG: async workers enqueue here
	in.aqMu.Lock()
	for _, q := range in.asyncQ {
		close(q) // workers exit after draining (queues are empty post-Wait)
	}
	in.asyncQ = make(map[string]chan *wire.Request)
	in.aqMu.Unlock()
	in.smu.Lock()
	defer in.smu.Unlock()
	var firstErr error
	for _, s := range in.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LocalKeys reports the number of keys across all local partition
// stores (owned + replicas).
func (in *Instance) LocalKeys() int {
	in.smu.Lock()
	defer in.smu.Unlock()
	n := 0
	for _, s := range in.stores {
		n += s.Len()
	}
	return n
}

// PartitionKeys reports keys stored locally for one partition.
func (in *Instance) PartitionKeys(p int) int {
	in.smu.Lock()
	defer in.smu.Unlock()
	s, ok := in.stores[p]
	if !ok {
		return 0
	}
	return s.Len()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
