package core

import (
	"bytes"
	"errors"
	"time"

	"zht/internal/repair"
	"zht/internal/ring"
	"zht/internal/storage"
	"zht/internal/tenant"
	"zht/internal/wire"
)

// Instance-side half of the replica anti-entropy subsystem
// (DESIGN.md §9). internal/repair owns the mechanisms — digests, the
// handoff queue, payload codecs — and this file owns the policy:
// which peer is a partition's authority, when to digest-sync, what a
// failover read schedules, and how a divergent leaf's contents are
// replaced.

// hintLeg queues one undeliverable replication leg for hinted-handoff
// replay. The leg is cloned (its Value/Aux may alias a transport
// decode buffer that dies with the request) and its propagated
// deadline budget is cleared: the budget belonged to the client
// operation that spawned the leg, which was acknowledged long before
// the replay will run.
func (in *Instance) hintLeg(addr string, req *wire.Request) {
	if in.handoff == nil {
		return
	}
	c := *req
	c.Value = append([]byte(nil), req.Value...)
	c.Aux = append([]byte(nil), req.Aux...)
	c.Budget = 0
	in.handoff.Enqueue(addr, &c)
}

// errReplayBusy keeps a StatusBusy replay leg queued: the peer is
// alive but shedding, so back off and try again.
var errReplayBusy = errors.New("core: handoff replay shed by peer")

// replaySend delivers one handoff leg. Transport errors feed the
// replication breaker (the replay goroutine doubles as the circuit's
// half-open probe); any decoded response consumes the leg except
// StatusBusy — an answering peer has applied (or durably rejected)
// the mutation, and anti-entropy covers rejects.
func (in *Instance) replaySend(addr string, req *wire.Request) error {
	resp, err := in.caller.Call(addr, req)
	if err != nil {
		in.rbrk.failure(addr)
		return err
	}
	in.rbrk.success(addr)
	if resp.Status == wire.StatusBusy {
		return errReplayBusy
	}
	return nil
}

// digestFor returns partition p's maintained digest, creating the
// (empty) store when absent.
func (in *Instance) digestFor(p int) (*repair.Digest, error) {
	s, err := in.store(p)
	if err != nil {
		return nil, err
	}
	return s.(*repair.Tracked).Digest(), nil
}

// digestIfPresent returns p's digest without creating a store: peers
// probing partitions this instance holds nothing for get the empty
// digest rather than forcing an allocation.
func (in *Instance) digestIfPresent(p int) *repair.Digest {
	in.smu.Lock()
	defer in.smu.Unlock()
	if s, ok := in.stores[p]; ok {
		return s.(*repair.Tracked).Digest()
	}
	return nil
}

// PartitionDigest returns the repair digest leaves for partition p's
// local store (all zeros when no store exists). Tests and the
// repair-smoke gate compare these across replicas to assert
// convergence.
func (in *Instance) PartitionDigest(p int) []uint64 {
	if d := in.digestIfPresent(p); d != nil {
		return d.Snapshot()
	}
	return make([]uint64, repair.Leaves)
}

// handleDigest serves wire.OpDigest: the partition's digest snapshot.
func (in *Instance) handleDigest(req *wire.Request) *wire.Response {
	p := int(req.Partition)
	if p < 0 || p >= in.cfg.NumPartitions {
		return &wire.Response{Status: wire.StatusError, Err: "core: bad partition"}
	}
	var leaves []uint64
	if d := in.digestIfPresent(p); d != nil {
		leaves = d.Snapshot()
	} else {
		leaves = make([]uint64, repair.Leaves)
	}
	return &wire.Response{Status: wire.StatusOK, Value: repair.EncodeDigest(leaves)}
}

// handleRepairPull serves wire.OpRepairPull in both directions:
//
//   - pull (Value empty): answer with this store's pairs in the
//     requested leaves — the authority side of an anti-entropy sync.
//   - push (Value = encoded pairs): replace the requested leaves'
//     local contents with the authoritative set — the replica side of
//     read-repair.
func (in *Instance) handleRepairPull(req *wire.Request) *wire.Response {
	p := int(req.Partition)
	if p < 0 || p >= in.cfg.NumPartitions {
		return &wire.Response{Status: wire.StatusError, Err: "core: bad partition"}
	}
	leaves, err := repair.DecodeLeafSet(req.Aux)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	if len(req.Value) > 0 {
		pairs, err := repair.DecodePairs(req.Value)
		if err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		// FlagWholesale distinguishes a live owner's complete image
		// (migration pushes — absentees may be deleted) from an acting
		// authority's best-effort push (read-repair — upsert only).
		if err := in.applyLeafContent(p, leaves, pairs, req.Flags&wire.FlagWholesale != 0); err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		return &wire.Response{Status: wire.StatusOK}
	}
	pairs, err := in.collectLeafPairs(p, leaves)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	return &wire.Response{Status: wire.StatusOK, Value: repair.EncodePairs(pairs)}
}

// collectLeafPairs snapshots the local pairs falling in the given
// leaves of partition p, with their version stamps: repair transfers
// must carry versions or the receiver's LWW compare would treat
// authoritative pairs as unordered.
func (in *Instance) collectLeafPairs(p int, leaves []int) ([]repair.Pair, error) {
	s, err := in.store(p)
	if err != nil {
		return nil, err
	}
	want := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		want[l] = true
	}
	var pairs []repair.Pair
	err = s.(*repair.Tracked).ForEachV(func(k string, v []byte, ver uint64) error {
		if want[repair.LeafOf(k)] {
			pairs = append(pairs, repair.Pair{Key: k, Value: append([]byte(nil), v...), Ver: ver})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// applyLeafContent converges the given leaves of partition p toward
// the authoritative pair set, version-aware in both directions
// (DESIGN.md §12):
//
//   - Upserts apply last-writer-wins: a local pair newer than the
//     authority's copy is kept (the authority's digest predates a
//     write this replica already holds — repair must never replace
//     newer with older), and unversioned authority pairs never
//     clobber a versioned local pair.
//   - Local keys the authority lacks are deleted only when wholesale
//     is set — the pair set is a live owner's complete image, so an
//     absent key was removed (removes carry no tombstones) — or when
//     the local pair is unversioned (legacy wholesale-replace
//     behavior). A VERSIONED local extra under a non-wholesale sync
//     (authority is itself a failover replica) is kept: it may be an
//     acked write the acting authority missed, and deleting it could
//     drop the write from its last copy. The cost is bounded
//     divergence — the leaf re-pulls each round until the true owner
//     returns or re-replication rebuilds the set.
//
// Applied versions feed the instance clock so local stamps order
// after everything repair installed.
func (in *Instance) applyLeafContent(p int, leaves []int, pairs []repair.Pair, wholesale bool) error {
	s, err := in.store(p)
	if err != nil {
		return err
	}
	tr := s.(*repair.Tracked)
	want := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		want[l] = true
	}
	auth := make(map[string]repair.Pair, len(pairs))
	for _, pr := range pairs {
		if want[repair.LeafOf(pr.Key)] {
			auth[pr.Key] = pr
		}
	}
	type staleKey struct {
		key string
		ver uint64
	}
	var stale []staleKey
	if err := tr.ForEachV(func(k string, _ []byte, ver uint64) error {
		if want[repair.LeafOf(k)] {
			if _, ok := auth[k]; !ok {
				stale = append(stale, staleKey{k, ver})
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for _, sk := range stale {
		if !wholesale && sk.ver > 0 {
			continue
		}
		if _, err := tr.Remove(sk.key); err != nil {
			return err
		}
	}
	for k, pr := range auth {
		if pr.Ver > 0 {
			if _, err := tr.PutLWW(k, pr.Value, pr.Ver); err != nil {
				return err
			}
			in.clock.Observe(pr.Ver)
			continue
		}
		cur, curVer, ok, err := tr.GetV(k)
		if err != nil {
			return err
		}
		if ok && (curVer > 0 || bytes.Equal(cur, pr.Value)) {
			continue
		}
		if err := tr.Put(k, pr.Value); err != nil {
			return err
		}
	}
	return nil
}

// repairAuthority returns the instance whose copy of partition p is
// authoritative for repair: the owner while it is alive, else the
// first alive replica (the same election handleKV's failover serve
// and the client's failover routing use, so reads and repair agree on
// who is canonical). Returns nil when nobody alive holds p.
func (in *Instance) repairAuthority(table *ring.Table, p int) (ring.Instance, bool) {
	idx := table.Owner[p]
	if table.Status[idx] == ring.Alive {
		return table.Instances[idx], true
	}
	id := in.firstAliveReplica(table, p)
	if id == "" {
		return ring.Instance{}, false
	}
	i := table.IndexOf(id)
	if i < 0 {
		return ring.Instance{}, false
	}
	return table.Instances[i], true
}

// holdsReplica reports whether this instance is in partition p's
// replica set.
func (in *Instance) holdsReplica(table *ring.Table, p int) bool {
	for _, r := range table.ReplicasOf(p, in.cfg.Replicas) {
		if r.ID == in.self.ID {
			return true
		}
	}
	return false
}

// antiEntropyLoop periodically digest-syncs every partition this
// instance replicates against the partition's authority, bounding how
// long any divergence — dropped legs past the handoff cap, races the
// divergence counter records, faults internal/chaos injects — can
// persist.
func (in *Instance) antiEntropyLoop() {
	defer in.loopWG.Done()
	tick := time.NewTicker(in.cfg.AntiEntropy)
	defer tick.Stop()
	for {
		select {
		case <-in.closed:
			return
		case <-tick.C:
		}
		// The TTL reaper rides the same tick (DESIGN.md §13): reaping
		// before the digest sync means a round never re-pulls ranges
		// whose only divergence was expired pairs this node still held.
		// Unlike the round below, the reaper also runs at Replicas=0 —
		// expiry is a single-copy concern too.
		in.reapExpired()
		in.antiEntropyRound()
	}
}

// reapExpired sweeps every local partition store (owned + replica)
// and deletes pairs whose TTL envelope has expired, so lazily-expired
// reads eventually become reclaimed space. Each node reaps on its own
// wall clock; replicas that have not reaped yet can re-propagate an
// expired pair through anti-entropy until their own sweep deletes it
// — the documented lazy-expiry anomaly (DESIGN.md §13). Reads never
// see the stale copy either way: the expiry check runs on every
// lookup.
func (in *Instance) reapExpired() {
	nowMs := time.Now().UnixMilli()
	in.smu.Lock()
	stores := make([]storage.KV, 0, len(in.stores))
	for _, s := range in.stores {
		stores = append(stores, s)
	}
	in.smu.Unlock()
	for _, s := range stores {
		var dead []string
		s.ForEach(func(key string, val []byte) error {
			if tenant.ExpiredAt(val, nowMs) {
				dead = append(dead, key)
			}
			return nil
		})
		for _, key := range dead {
			if ok, err := s.Remove(key); err == nil && ok {
				in.met.reaped.Inc()
			}
		}
	}
}

// antiEntropyRound runs one sweep: partitions are grouped by
// authority address and each group's digest probes ride one batched
// envelope (CallBatch), so a sweep costs one round trip per peer plus
// one pull per divergent partition.
func (in *Instance) antiEntropyRound() {
	if in.cfg.Replicas <= 0 {
		return
	}
	table := in.tableRef()
	if myIdx := table.IndexOf(in.self.ID); myIdx < 0 || table.Status[myIdx] != ring.Alive {
		return
	}
	targets := make(map[string][]int)
	for p := 0; p < table.NumPartitions; p++ {
		auth, ok := in.repairAuthority(table, p)
		if !ok || auth.ID == in.self.ID {
			continue
		}
		if !in.holdsReplica(table, p) {
			continue
		}
		targets[auth.Addr] = append(targets[auth.Addr], p)
	}
	for addr, ps := range targets {
		in.digestSync(addr, ps)
	}
}

// digestSync compares local digests for ps against the authority at
// addr and pulls divergent leaves. Errors are dropped: the next tick
// retries, and an unreachable authority is the failure detector's
// problem, not this loop's.
func (in *Instance) digestSync(addr string, ps []int) {
	reqs := make([]*wire.Request, len(ps))
	for i, p := range ps {
		reqs[i] = &wire.Request{Op: wire.OpDigest, Partition: int64(p)}
	}
	resps, err := in.caller.CallBatch(addr, reqs)
	if err != nil || len(resps) != len(ps) {
		return
	}
	for i, p := range ps {
		if resps[i].Status != wire.StatusOK {
			continue
		}
		remote, err := repair.DecodeDigest(resps[i].Value)
		if err != nil {
			continue
		}
		local, err := in.digestFor(p)
		if err != nil {
			continue
		}
		in.met.digestSyncs.Inc()
		diff := repair.DiffLeaves(local.Snapshot(), remote)
		if len(diff) == 0 {
			continue
		}
		in.pullLeaves(addr, p, diff)
	}
}

// pullLeaves fetches the authoritative contents of the given leaves
// and converges the local ranges toward them. The sync is wholesale
// (local absentees deleted) only when the authority is the
// partition's live owner — the one node whose image is complete.
func (in *Instance) pullLeaves(addr string, p int, leaves []int) {
	resp, err := in.caller.Call(addr, &wire.Request{
		Op: wire.OpRepairPull, Partition: int64(p),
		Aux: repair.EncodeLeafSet(leaves),
	})
	if err != nil || resp.Status != wire.StatusOK {
		return
	}
	pairs, err := repair.DecodePairs(resp.Value)
	if err != nil {
		return
	}
	table := in.tableRef()
	idx := table.Owner[p]
	wholesale := table.Status[idx] == ring.Alive && table.Instances[idx].Addr == addr
	if err := in.applyLeafContent(p, leaves, pairs, wholesale); err == nil {
		in.met.rangesPulled.Add(int64(len(leaves)))
	}
}

// scheduleReadRepair asynchronously repairs partition p's other
// replicas from this instance — the acting authority serving a
// failover read — at most once per anti-entropy period per partition.
// Disabled (like the loop) when AntiEntropy is zero, so failover
// reads in repair-less deployments behave exactly as before.
func (in *Instance) scheduleReadRepair(table *ring.Table, p int) {
	if in.cfg.AntiEntropy <= 0 || in.cfg.Replicas <= 0 {
		return
	}
	now := time.Now()
	in.rrMu.Lock()
	if now.Sub(in.rrLast[p]) < in.cfg.AntiEntropy {
		in.rrMu.Unlock()
		return
	}
	in.rrLast[p] = now
	in.rrMu.Unlock()
	select {
	case <-in.closed:
		return
	default:
	}
	in.loopWG.Add(1)
	go func() {
		defer in.loopWG.Done()
		in.readRepair(table, p)
	}()
}

// readRepair pushes this instance's (authoritative) divergent leaf
// contents of partition p to every other alive replica: compare
// digests behind the response, then OpRepairPull-push only what
// differs.
func (in *Instance) readRepair(table *ring.Table, p int) {
	in.met.readRepairs.Inc()
	local, err := in.digestFor(p)
	if err != nil {
		return
	}
	for _, r := range table.ReplicasOf(p, in.cfg.Replicas) {
		if r.ID == in.self.ID {
			continue
		}
		if idx := table.IndexOf(r.ID); idx < 0 || table.Status[idx] != ring.Alive {
			continue
		}
		resp, err := in.caller.Call(r.Addr, &wire.Request{Op: wire.OpDigest, Partition: int64(p)})
		if err != nil || resp.Status != wire.StatusOK {
			continue
		}
		remote, err := repair.DecodeDigest(resp.Value)
		if err != nil {
			continue
		}
		diff := repair.DiffLeaves(local.Snapshot(), remote)
		if len(diff) == 0 {
			continue
		}
		pairs, err := in.collectLeafPairs(p, diff)
		if err != nil {
			continue
		}
		in.caller.Call(r.Addr, &wire.Request{
			Op: wire.OpRepairPull, Partition: int64(p),
			Aux: repair.EncodeLeafSet(diff), Value: repair.EncodePairs(pairs),
		})
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
