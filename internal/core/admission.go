package core

import "time"

// AdmissionHook is the per-request admission gate an instance
// consults before serving client-facing KV traffic (single ops and
// batch sub-ops). It exists for policy layered ABOVE the node's own
// transport inflight bound — per-tenant quotas and weighted shares
// (internal/tenant.Admission implements it structurally) — so the
// core stays tenancy-agnostic.
//
// Admit is called with the request's key (which may carry a tenant
// namespace prefix) and payload size in bytes. ok=false sheds the
// request with wire.StatusBusy and retryAfter as the client backoff
// hint; ok=true admits it, and release (never nil then) must be
// called exactly once when the request finishes.
//
// Internal traffic — replication legs, replica reads for quorum
// fan-outs, migration — bypasses the hook: shedding a leg would turn
// an overload verdict into a durability gap.
type AdmissionHook interface {
	Admit(key string, cost int) (release func(), retryAfter time.Duration, ok bool)
}
