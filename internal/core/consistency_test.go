package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSecondaryStrongConsistency verifies the paper's consistency
// model (§III.J): "The ZHT primary replica and secondary replica are
// strongly consistent" — the first replication leg is synchronous, so
// the moment a mutation is acknowledged, the secondary already holds
// it. Remaining replicas are asynchronous and only eventually
// consistent.
func TestSecondaryStrongConsistency(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 2, RetryBase: time.Millisecond}
	d, _, c := startDeployment(t, cfg, 4)
	byID := map[string]*Instance{}
	for _, in := range d.Instances() {
		byID[string(in.ID())] = in
	}
	tab := d.Instance(0).Table()
	hashf := cfg.hash()

	const n = 100
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("strong-%04d", i)
		if err := c.Insert(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		// Immediately after the ack — no Drain — the secondary (first
		// replica) must hold the key.
		p := tab.Partition(hashf(key))
		reps := tab.ReplicasOf(p, 2)
		if len(reps) < 2 {
			t.Fatalf("partition %d has %d replicas", p, len(reps))
		}
		secondary := byID[string(reps[0].ID)]
		s, err := secondary.store(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get(key); !ok {
			t.Fatalf("secondary missing %s immediately after ack (strong consistency violated)", key)
		}
	}
	// The tertiary replica is async: after Drain it must converge.
	d.Drain()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("strong-%04d", i)
		p := tab.Partition(hashf(key))
		reps := tab.ReplicasOf(p, 2)
		tertiary := byID[string(reps[1].ID)]
		s, err := tertiary.store(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get(key); !ok {
			t.Fatalf("tertiary missing %s after drain (eventual consistency violated)", key)
		}
	}
}

// TestConcurrentOverwritesConverge races many writers on a single hot
// key: after quiescing, every replica must hold exactly the primary's
// final value (mutation+replication must be ordered per partition).
func TestConcurrentOverwritesConverge(t *testing.T) {
	cfg := Config{NumPartitions: 16, Replicas: 2, RetryBase: time.Millisecond}
	d, _, _ := startDeployment(t, cfg, 4)
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				if err := c.Insert("hot", []byte(fmt.Sprintf("w%d-r%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d.Drain()
	c, _ := d.NewClient()
	want, err := c.Lookup("hot")
	if err != nil {
		t.Fatal(err)
	}
	tab := d.Instance(0).Table()
	p := tab.Partition(cfg.hash()("hot"))
	byID := map[string]*Instance{}
	for _, in := range d.Instances() {
		byID[string(in.ID())] = in
	}
	for _, r := range tab.ReplicasOf(p, 2) {
		s, err := byID[string(r.ID)].store(p)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, _ := s.Get("hot")
		if !ok || string(got) != string(want) {
			t.Fatalf("replica %s holds %q, primary holds %q (ordering violated)", r.ID, got, want)
		}
	}
}

// TestReplicaChainUnderConcurrentMutations hammers one partition from
// many clients and checks full convergence of all three copies.
func TestReplicaChainUnderConcurrentMutations(t *testing.T) {
	cfg := Config{NumPartitions: 16, Replicas: 2, RetryBase: time.Millisecond}
	d, _, _ := startDeployment(t, cfg, 4)
	const workers, per = 6, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("conv-w%d-%03d", w, i)
				if err := c.Insert(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := c.Append(k, []byte("+tail")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	d.Drain()
	// Every copy of every key must agree with the primary's value.
	tab := d.Instance(0).Table()
	hashf := cfg.hash()
	byID := map[string]*Instance{}
	for _, in := range d.Instances() {
		byID[string(in.ID())] = in
	}
	c, _ := d.NewClient()
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			k := fmt.Sprintf("conv-w%d-%03d", w, i)
			want, err := c.Lookup(k)
			if err != nil {
				t.Fatalf("%s: %v", k, err)
			}
			p := tab.Partition(hashf(k))
			for _, r := range tab.ReplicasOf(p, 2) {
				s, err := byID[string(r.ID)].store(p)
				if err != nil {
					t.Fatal(err)
				}
				got, ok, _ := s.Get(k)
				if !ok || string(got) != string(want) {
					t.Fatalf("replica %s diverged on %s: %q vs %q", r.ID, k, got, want)
				}
			}
		}
	}
}
