package core

import (
	"fmt"

	"zht/internal/repair"
	"zht/internal/wire"
)

// Throttled streaming migration (DESIGN.md §10): instead of moving a
// partition as one unthrottled whole-partition image while requests
// queue, membership changes stream its contents in bounded leaf
// chunks — reusing the repair subsystem's Merkle digests and leaf
// transfer codec — while the old owner keeps serving. Multi-round
// digest catch-up shrinks the divergence the live traffic reopens;
// only the final sync runs behind the migration lock, so the
// unavailability window covers the residue of one round, not the
// whole partition.

// migrateCatchupRounds bounds the unlocked digest catch-up passes one
// streaming transfer runs before cutover. Whatever divergence survives
// (sustained write pressure on the moving partition) is closed by the
// locked final sync.
const migrateCatchupRounds = 5

// migrateLockMarker is the OpMigrate Aux that asks the current owner
// to lock a partition for cutover: begin the migration (queue new
// requests), drain in-flight appliers, and hold until the membership
// delta — or the watchdog — resolves the move. Unlike the legacy pull
// path it carries no image back; the requester streams content
// through repair pulls instead.
var migrateLockMarker = []byte("lock")

// migratePull streams partition p from the owner at src into the
// local store: one full pass over all Merkle leaves in chunks of
// MigrateLeavesPerPull, then unlocked digest catch-up rounds. src
// keeps serving throughout; thr caps the transfer rate. A non-nil
// error aborts the join.
func (in *Instance) migratePull(src string, p int, thr *repair.Throttle) error {
	if err := in.pullLeafChunks(src, p, allLeaves(), thr); err != nil {
		return err
	}
	for r := 0; r < migrateCatchupRounds; r++ {
		diff, err := in.migrateDiff(src, p)
		if err != nil {
			return err
		}
		if len(diff) == 0 {
			return nil
		}
		in.met.migRounds.Inc()
		if err := in.pullLeafChunks(src, p, diff, thr); err != nil {
			return err
		}
	}
	return nil // residue closes in the locked final sync
}

// migrateFinalPull converges partition p against the now-quiesced
// owner at src: one digest diff, one unthrottled pull of whatever
// divergence the live traffic left. Runs inside the cutover window, so
// it is deliberately not rate-limited.
func (in *Instance) migrateFinalPull(src string, p int) error {
	diff, err := in.migrateDiff(src, p)
	if err != nil {
		return err
	}
	if len(diff) == 0 {
		return nil
	}
	return in.pullLeafChunks(src, p, diff, nil)
}

// migratePush is migratePull with the roles reversed: the departing
// owner streams partition p into dst, which passively applies leaf
// content. Same full pass + catch-up round structure.
func (in *Instance) migratePush(dst string, p int, thr *repair.Throttle) error {
	if err := in.pushLeafChunks(dst, p, allLeaves(), thr); err != nil {
		return err
	}
	for r := 0; r < migrateCatchupRounds; r++ {
		diff, err := in.migrateDiff(dst, p)
		if err != nil {
			return err
		}
		if len(diff) == 0 {
			return nil
		}
		in.met.migRounds.Inc()
		if err := in.pushLeafChunks(dst, p, diff, thr); err != nil {
			return err
		}
	}
	return nil
}

// migrateFinalPush converges dst's copy of partition p after this
// instance locked and drained it; unthrottled for the same reason as
// migrateFinalPull.
func (in *Instance) migrateFinalPush(dst string, p int) error {
	diff, err := in.migrateDiff(dst, p)
	if err != nil {
		return err
	}
	if len(diff) == 0 {
		return nil
	}
	return in.pushLeafChunks(dst, p, diff, nil)
}

// migrateDiff returns the Merkle leaves of partition p where the
// local store and the peer at addr diverge.
func (in *Instance) migrateDiff(addr string, p int) ([]int, error) {
	resp, err := in.caller.Call(addr, &wire.Request{Op: wire.OpDigest, Partition: int64(p)})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, fmt.Errorf("core: digest of partition %d from %s: %s", p, addr, resp.Err)
	}
	remote, err := repair.DecodeDigest(resp.Value)
	if err != nil {
		return nil, err
	}
	local, err := in.digestFor(p)
	if err != nil {
		return nil, err
	}
	return repair.DiffLeaves(local.Snapshot(), remote), nil
}

// pullLeafChunks fetches the given leaves of partition p from addr in
// chunks of MigrateLeavesPerPull, replacing local leaf contents
// wholesale; thr (nil = unlimited) paces the transfer by response
// bytes.
func (in *Instance) pullLeafChunks(addr string, p int, leaves []int, thr *repair.Throttle) error {
	for _, ls := range leafChunks(leaves, in.cfg.MigrateLeavesPerPull) {
		resp, err := in.caller.Call(addr, &wire.Request{
			Op: wire.OpRepairPull, Partition: int64(p),
			Aux: repair.EncodeLeafSet(ls),
		})
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("core: pull partition %d leaves from %s: %s", p, addr, resp.Err)
		}
		thr.Take(len(resp.Value))
		pairs, err := repair.DecodePairs(resp.Value)
		if err != nil {
			return err
		}
		// The source holds the partition locked (or is its live owner
		// mid-stream): its leaf image is complete, so the pull is
		// wholesale — local absentees are deleted.
		if err := in.applyLeafContent(p, ls, pairs, true); err != nil {
			return err
		}
		in.met.migBytes.Add(int64(len(resp.Value)))
		in.met.migPairs.Add(int64(len(pairs)))
	}
	return nil
}

// pushLeafChunks sends the given leaves of partition p to addr in
// chunks, as repair pushes the receiver applies wholesale.
func (in *Instance) pushLeafChunks(addr string, p int, leaves []int, thr *repair.Throttle) error {
	for _, ls := range leafChunks(leaves, in.cfg.MigrateLeavesPerPull) {
		pairs, err := in.collectLeafPairs(p, ls)
		if err != nil {
			return err
		}
		enc := repair.EncodePairs(pairs)
		thr.Take(len(enc))
		resp, err := in.caller.Call(addr, &wire.Request{
			Op: wire.OpRepairPull, Partition: int64(p),
			Aux: repair.EncodeLeafSet(ls), Value: enc,
			// The pusher is the partition's owner giving it away: its
			// image is complete, so the receiver may delete absentees.
			Flags: wire.FlagWholesale,
		})
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("core: push partition %d leaves to %s: %s", p, addr, resp.Err)
		}
		in.met.migBytes.Add(int64(len(enc)))
		in.met.migPairs.Add(int64(len(pairs)))
	}
	return nil
}

// allLeaves lists every Merkle leaf index of a partition.
func allLeaves() []int {
	out := make([]int, repair.Leaves)
	for i := range out {
		out[i] = i
	}
	return out
}

// leafChunks splits a leaf set into transfer-sized chunks.
func leafChunks(leaves []int, size int) [][]int {
	if size <= 0 || size > repair.Leaves {
		size = repair.Leaves
	}
	var out [][]int
	for i := 0; i < len(leaves); i += size {
		end := i + size
		if end > len(leaves) {
			end = len(leaves)
		}
		out = append(out, leaves[i:end])
	}
	return out
}
