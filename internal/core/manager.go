package core

import (
	"bytes"
	"fmt"

	"zht/internal/ring"
	"zht/internal/storage"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Manager-role orchestration: dynamic joins and planned departures
// (paper §III.C). Failure handling lives in instance.go
// (handleReport) because any instance's manager can receive a report.

// Join admits a new instance into a running deployment:
//
//  1. check out a membership table from the seed (a "random physical
//     node" in the paper),
//  2. plan the join: relieve the most-loaded instance of half its
//     partitions,
//  3. pull those partitions' contents (whole-partition moves, no
//     rehashing),
//  4. broadcast the incremental membership update; the relieved
//     instance releases its queued requests with redirects when the
//     delta lands.
//
// The newcomer's handler must already be reachable at newcomer.Addr
// before Join is called (use a HandlerSwitch to bind the address
// first); peers start sending it traffic the moment the delta
// broadcast lands. Join retries with a fresh table when it loses an
// epoch race with a concurrent membership change.
func Join(cfg Config, newcomer ring.Instance, seedAddr string, caller transport.Caller, bind func(*Instance)) (*Instance, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		inst, err := joinOnce(cfg, newcomer, seedAddr, caller, bind)
		if err == nil {
			return inst, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: join failed: %w", lastErr)
}

func joinOnce(cfg Config, newcomer ring.Instance, seedAddr string, caller transport.Caller, bind func(*Instance)) (*Instance, error) {
	resp, err := caller.Call(seedAddr, &wire.Request{Op: wire.OpMembership})
	if err != nil {
		return nil, fmt.Errorf("fetch table from seed: %w", err)
	}
	table, err := ring.DecodeTable(resp.Table)
	if err != nil {
		return nil, fmt.Errorf("bad table from seed: %w", err)
	}
	delta, parts, err := table.PlanJoin(newcomer)
	if err != nil {
		return nil, err
	}
	nt, err := table.Apply(delta)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(cfg, newcomer, nt, caller)
	if err != nil {
		return nil, err
	}
	bind(inst)

	// Pull each partition from the instance being relieved. The
	// giver locks the partition and queues requests until the delta
	// confirms the move.
	giver := table.OwnerOf(pickFirst(parts, table))
	abort := func() {
		for _, p := range parts {
			caller.Call(giver.Addr, &wire.Request{
				Op: wire.OpMigrate, Partition: int64(p), Aux: []byte("abort"),
			})
		}
		inst.Close()
	}
	for _, p := range parts {
		mresp, err := caller.Call(giver.Addr, &wire.Request{
			Op: wire.OpMigrate, Partition: int64(p), Key: newcomer.Addr,
		})
		if err != nil || mresp.Status != wire.StatusOK {
			abort()
			return nil, fmt.Errorf("migrate partition %d from %s: %v %s", p, giver.Addr, err, respErr(mresp))
		}
		s, err := inst.store(p)
		if err != nil {
			abort()
			return nil, err
		}
		if len(mresp.Value) > 0 {
			if _, err := storage.Import(bytes.NewReader(mresp.Value), s); err != nil {
				abort()
				return nil, fmt.Errorf("import partition %d: %w", p, err)
			}
		}
	}

	// Commit: the relieved instance must accept the delta (it
	// releases its queued requests on apply); then broadcast to the
	// rest.
	encD := ring.EncodeDelta(delta)
	if len(parts) > 0 {
		dresp, err := caller.Call(giver.Addr, &wire.Request{Op: wire.OpDelta, Aux: encD})
		if err != nil || dresp.Status != wire.StatusOK {
			abort()
			return nil, fmt.Errorf("giver rejected join delta (epoch race): %v %s", err, respErr(dresp))
		}
	}
	for i, peer := range table.Instances {
		if peer.ID == giver.ID || table.Status[i] != ring.Alive {
			continue
		}
		if r, err := caller.Call(peer.Addr, &wire.Request{Op: wire.OpDelta, Aux: encD}); err != nil || r.Status != wire.StatusOK {
			caller.Call(peer.Addr, &wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(nt)})
		}
	}
	return inst, nil
}

// Depart performs a planned departure (§III.C): the departing
// instance migrates each of its partitions to alive ring neighbours,
// then broadcasts the membership update marking itself Departing.
// The caller should Close the instance afterwards.
func Depart(inst *Instance) error {
	table := inst.Table()
	delta, moves, err := table.PlanDeparture(inst.self.ID)
	if err != nil {
		return err
	}
	// Push every partition image to its receiver while holding the
	// migration lock; queued requests release when the delta is
	// applied locally below.
	for tgtIdx, parts := range moves {
		tgt := table.Instances[tgtIdx]
		for _, p := range parts {
			if !inst.beginMigration(p) {
				return fmt.Errorf("core: partition %d already migrating", p)
			}
			img, err := inst.exportPartition(p)
			if err != nil {
				inst.completeMigration(p, "", false)
				return err
			}
			resp, err := inst.caller.Call(tgt.Addr, &wire.Request{
				Op: wire.OpMigrate, Partition: int64(p), Aux: img,
			})
			if err != nil || resp.Status != wire.StatusOK {
				inst.completeMigration(p, "", false)
				return fmt.Errorf("core: push partition %d to %s: %v %s", p, tgt.Addr, err, respErr(resp))
			}
		}
	}
	// Applying the delta locally flips ownership and releases the
	// queued requests with redirects; then it is broadcast.
	if _, err := inst.applyAndBroadcast(delta); err != nil {
		for _, parts := range moves {
			for _, p := range parts {
				inst.completeMigration(p, "", false)
			}
		}
		return err
	}
	return nil
}

func pickFirst(parts []int, table *ring.Table) int {
	if len(parts) == 0 {
		// Saturated ring: the newcomer takes nothing; any partition
		// works for resolving the giver (unused).
		return 0
	}
	return parts[0]
}

func respErr(r *wire.Response) string {
	if r == nil {
		return ""
	}
	return r.Err
}
