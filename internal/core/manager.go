package core

import (
	"fmt"
	"math/rand"
	"time"

	"zht/internal/repair"
	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Manager-role orchestration: dynamic joins and planned departures
// (paper §III.C). Failure handling lives in instance.go
// (handleReport) because any instance's manager can receive a report.

// Join admits a new instance into a running deployment:
//
//  1. check out a membership table from the seed (a "random physical
//     node" in the paper),
//  2. plan the join: relieve the most-loaded instance of half its
//     partitions,
//  3. stream those partitions' contents in throttled leaf chunks
//     while the relieved instance keeps serving, then lock each
//     partition for a short final sync (no whole-partition pauses,
//     no rehashing),
//  4. broadcast the incremental membership update; the relieved
//     instance releases its queued requests with redirects when the
//     delta lands.
//
// The newcomer's handler must already be reachable at newcomer.Addr
// before Join is called (use a HandlerSwitch to bind the address
// first); peers start sending it traffic the moment the delta
// broadcast lands. Join retries with a fresh table when it loses an
// epoch race with a concurrent membership change, backing off with
// full jitter between attempts so racing joiners do not re-collide.
func Join(cfg Config, newcomer ring.Instance, seedAddr string, caller transport.Caller, bind func(*Instance)) (*Instance, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			d := cfg.RetryBase << uint(attempt-1)
			if d <= 0 || d > cfg.RetryMax {
				d = cfg.RetryMax
			}
			time.Sleep(time.Duration(rand.Int63n(int64(d))) + 1)
		}
		inst, err := joinOnce(cfg, newcomer, seedAddr, caller, bind)
		if err == nil {
			return inst, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: join failed: %w", lastErr)
}

func joinOnce(cfg Config, newcomer ring.Instance, seedAddr string, caller transport.Caller, bind func(*Instance)) (*Instance, error) {
	resp, err := caller.Call(seedAddr, &wire.Request{Op: wire.OpMembership})
	if err != nil {
		return nil, fmt.Errorf("fetch table from seed: %w", err)
	}
	table, err := ring.DecodeTable(resp.Table)
	if err != nil {
		return nil, fmt.Errorf("bad table from seed: %w", err)
	}
	delta, parts, err := table.PlanJoin(newcomer)
	if err != nil {
		return nil, err
	}
	nt, err := table.Apply(delta)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(cfg, newcomer, nt, caller)
	if err != nil {
		return nil, err
	}
	bind(inst)

	// The instance being relieved. Until the commit below lands, it is
	// the only peer that knows the newcomer exists, and the newcomer is
	// in nobody's peer list — so the advanced epoch the newcomer stamps
	// on its pulls cannot propagate early through gossip.
	giver := table.OwnerOf(pickFirst(parts, table))
	thr := repair.NewThrottle(cfg.MigrateRate, inst.met.migThrottleNs)
	abort := func() {
		inst.met.migAborts.Inc()
		for _, p := range parts {
			caller.Call(giver.Addr, &wire.Request{
				Op: wire.OpMigrate, Partition: int64(p), Aux: []byte("abort"),
			})
		}
		inst.Close()
	}

	// Phase 1: stream every partition's contents in throttled leaf
	// chunks while the giver keeps serving (the dual-read window: the
	// giver still owns p at its epoch; the newcomer converges toward
	// the live copy with digest catch-up rounds).
	for _, p := range parts {
		if err := inst.migratePull(giver.Addr, p, thr); err != nil {
			abort()
			return nil, fmt.Errorf("stream partition %d from %s: %w", p, giver.Addr, err)
		}
	}

	// Phase 2: lock each partition on the giver (new requests queue,
	// in-flight appliers drain), then close the residual divergence
	// with one unthrottled final sync.
	for _, p := range parts {
		mresp, err := caller.Call(giver.Addr, &wire.Request{
			Op: wire.OpMigrate, Partition: int64(p), Key: newcomer.Addr, Aux: migrateLockMarker,
		})
		if err != nil || mresp.Status != wire.StatusOK {
			abort()
			return nil, fmt.Errorf("lock partition %d on %s: %v %s", p, giver.Addr, err, respErr(mresp))
		}
		if err := inst.migrateFinalPull(giver.Addr, p); err != nil {
			abort()
			return nil, fmt.Errorf("final sync of partition %d from %s: %w", p, giver.Addr, err)
		}
		inst.met.migPartitions.Inc()
	}

	// Commit: the relieved instance must accept the delta (it
	// releases its queued requests on apply); then broadcast to the
	// rest — unless gossip-only, where bystanders converge through
	// epoch piggybacking instead.
	encD := ring.EncodeDelta(delta)
	if len(parts) > 0 {
		dresp, err := caller.Call(giver.Addr, &wire.Request{Op: wire.OpDelta, Aux: encD})
		if err != nil || dresp.Status != wire.StatusOK {
			abort()
			return nil, fmt.Errorf("giver rejected join delta (epoch race): %v %s", err, respErr(dresp))
		}
	}
	if !cfg.GossipOnly {
		for i, peer := range table.Instances {
			if peer.ID == giver.ID || table.Status[i] != ring.Alive {
				continue
			}
			if r, err := caller.Call(peer.Addr, &wire.Request{Op: wire.OpDelta, Aux: encD}); err != nil || r.Status != wire.StatusOK {
				caller.Call(peer.Addr, &wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(nt)})
			}
		}
	}
	inst.met.migCutovers.Add(int64(len(parts)))
	return inst, nil
}

// Depart performs a planned departure (§III.C): the departing
// instance streams each of its partitions to alive ring neighbours in
// throttled leaf chunks while it keeps serving, then locks each
// partition for a short final sync and broadcasts the membership
// update marking itself Departing. The caller should Close the
// instance afterwards.
func Depart(inst *Instance) error {
	table := inst.Table()
	delta, moves, err := table.PlanDeparture(inst.self.ID)
	if err != nil {
		return err
	}
	thr := repair.NewThrottle(inst.cfg.MigrateRate, inst.met.migThrottleNs)

	// Phase 1: stream while serving. No migration state exists yet, so
	// a failure here needs no rollback — the receivers just hold a
	// stale partial copy their replica digests will reconcile.
	for tgtIdx, parts := range moves {
		tgt := table.Instances[tgtIdx]
		for _, p := range parts {
			if err := inst.migratePush(tgt.Addr, p, thr); err != nil {
				return fmt.Errorf("core: stream partition %d to %s: %w", p, tgt.Addr, err)
			}
		}
	}

	// Phase 2: lock each partition locally (queueing new requests),
	// drain in-flight appliers, and push the residual divergence
	// unthrottled. Queued requests release with redirects when the
	// delta is applied locally below.
	var begun []int
	rollback := func() {
		inst.met.migAborts.Inc()
		for _, p := range begun {
			inst.completeMigration(p, "", false)
		}
	}
	for tgtIdx, parts := range moves {
		tgt := table.Instances[tgtIdx]
		for _, p := range parts {
			if !inst.beginMigration(p) {
				rollback()
				return fmt.Errorf("core: partition %d already migrating", p)
			}
			begun = append(begun, p)
			l := inst.opLock(p)
			l.Lock()
			l.Unlock() //nolint:staticcheck // cycle, not critical section
			if err := inst.migrateFinalPush(tgt.Addr, p); err != nil {
				rollback()
				return fmt.Errorf("core: final sync of partition %d to %s: %w", p, tgt.Addr, err)
			}
			inst.met.migPartitions.Inc()
		}
	}

	// Applying the delta locally flips ownership and releases the
	// queued requests with redirects; then it is broadcast (gossip-only
	// deployments notify just the receiving instances).
	if _, err := inst.applyAndBroadcast(delta); err != nil {
		rollback()
		return err
	}
	inst.met.migCutovers.Add(int64(len(begun)))
	return nil
}

func pickFirst(parts []int, table *ring.Table) int {
	if len(parts) == 0 {
		// Saturated ring: the newcomer takes nothing; any partition
		// works for resolving the giver (unused).
		return 0
	}
	return parts[0]
}

func respErr(r *wire.Response) string {
	if r == nil {
		return ""
	}
	return r.Err
}
