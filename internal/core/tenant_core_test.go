package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/tenant"
	"zht/internal/wire"
)

// Core-side coverage of the tenancy subsystem (DESIGN.md §13): size
// limits, the admission hook, TTL lazy expiry + reaping, and the
// batch busy-hint regression.

func TestSizeLimitsRejectOversized(t *testing.T) {
	cfg := testCfg()
	cfg.MaxKeyLen = 8
	cfg.MaxValueLen = 16
	_, _, c := startDeployment(t, cfg, 3)

	if err := c.Insert("k2345678", bytes.Repeat([]byte("v"), 16)); err != nil {
		t.Fatalf("boundary-sized insert rejected: %v", err)
	}
	if err := c.Insert("key-way-too-long", []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized key: got %v, want ErrTooLarge", err)
	}
	if err := c.Insert("k", bytes.Repeat([]byte("v"), 17)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value: got %v, want ErrTooLarge", err)
	}
	if err := c.Append("k2345678", bytes.Repeat([]byte("v"), 17)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized append: got %v, want ErrTooLarge", err)
	}
	if _, err := c.Cas("k", nil, bytes.Repeat([]byte("v"), 17)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized cas: got %v, want ErrTooLarge", err)
	}
	// Lookup/Remove of an oversized key are NOT screened: pairs written
	// before a limit was tightened must stay readable and deletable.
	if _, err := c.Lookup("key-way-too-long"); !errors.Is(err, ErrNotFound) {
		t.Errorf("oversized-key lookup: got %v, want ErrNotFound", err)
	}
	// The batch path rejects per-slot, leaving siblings untouched.
	rs, err := c.Batch([]BatchOp{
		{Op: wire.OpInsert, Key: "bk", Value: []byte("v")},
		{Op: wire.OpInsert, Key: "bk2", Value: bytes.Repeat([]byte("v"), 17)},
		{Op: wire.OpLookup, Key: "k2345678"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil {
		t.Errorf("in-bounds batch slot failed: %v", rs[0].Err)
	}
	if !errors.Is(rs[1].Err, ErrTooLarge) {
		t.Errorf("oversized batch slot: got %v, want ErrTooLarge", rs[1].Err)
	}
	if rs[2].Err != nil || len(rs[2].Value) != 16 {
		t.Errorf("batch lookup slot = %d bytes, %v", len(rs[2].Value), rs[2].Err)
	}
}

func TestAdmissionHookShedsOverQuota(t *testing.T) {
	treg := tenant.NewRegistry()
	if err := treg.Register(tenant.Tenant{Name: "noisy", Rate: 0.001, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	mreg := metrics.NewRegistry()
	cfg := testCfg()
	cfg.Metrics = mreg
	cfg.Admission = tenant.NewAdmission(treg, tenant.AdmissionOptions{Metrics: mreg})
	d, _, _ := startDeployment(t, cfg, 2)

	// The gate runs ahead of routing, so any instance can be asked
	// directly: first request spends the burst, second is shed with a
	// Busy verdict and a positive backoff hint.
	in := d.Instance(0)
	key := tenant.Prefix("noisy", "k")
	r1 := in.Handle(&wire.Request{Op: wire.OpLookup, Key: key})
	if r1.Status == wire.StatusBusy {
		t.Fatalf("first request shed: %v", r1.Status)
	}
	r2 := in.Handle(&wire.Request{Op: wire.OpLookup, Key: key})
	if r2.Status != wire.StatusBusy {
		t.Fatalf("over-quota request not shed: %v", r2.Status)
	}
	if r2.RetryAfter == 0 {
		t.Error("shed response carries no RetryAfter hint")
	}
	// Internal traffic bypasses the gate even while the bucket is dry.
	r3 := in.Handle(&wire.Request{Op: wire.OpLookup, Key: key, Flags: wire.FlagReplicaRead})
	if r3.Status == wire.StatusBusy {
		t.Error("replica read was charged against the tenant quota")
	}
	// Other tenants are untouched.
	r4 := in.Handle(&wire.Request{Op: wire.OpLookup, Key: "unscoped"})
	if r4.Status == wire.StatusBusy {
		t.Error("default tenant shed by a neighbour's dry bucket")
	}
	if got := mreg.Counter("zht.tenant.shed").Value(); got < 1 {
		t.Errorf("zht.tenant.shed = %d, want >= 1", got)
	}
	// The batch path sheds per-slot: the noisy slot gets Busy, the
	// sibling slot proceeds.
	sub1 := &wire.Request{Op: wire.OpLookup, Key: key}
	sub2 := &wire.Request{Op: wire.OpLookup, Key: "unscoped"}
	env := in.Handle(wire.NewBatchRequest([]*wire.Request{sub1, sub2}))
	brs, err := wire.DecodeResponses(env.Value)
	if err != nil {
		t.Fatal(err)
	}
	if brs[0].Status != wire.StatusBusy {
		t.Errorf("batched over-quota slot = %v, want Busy", brs[0].Status)
	}
	if brs[1].Status == wire.StatusBusy {
		t.Error("batched default-tenant slot shed")
	}
}

func TestTTLLazyExpiryAndReap(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{
		NumPartitions: 16,
		Replicas:      1,
		AntiEntropy:   20 * time.Millisecond,
		RetryBase:     time.Millisecond,
		Metrics:       mreg,
	}
	d, _, c := startDeployment(t, cfg, 2)

	// A live envelope reads back verbatim (unwrapping is the caller's
	// business — core stores envelopes as opaque values).
	live := tenant.Wrap([]byte("fresh"), 7, time.Now().Add(time.Hour))
	if err := c.Insert("ttl-live", live); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("ttl-live")
	if err != nil {
		t.Fatal(err)
	}
	val, flags, _, wrapped := tenant.Unwrap(got)
	if !wrapped || string(val) != "fresh" || flags != 7 {
		t.Fatalf("round-tripped envelope = (%q, %d, %v)", val, flags, wrapped)
	}

	// An expired envelope answers NotFound on read (lazy expiry)...
	if err := c.Insert("ttl-dead", tenant.Wrap([]byte("stale"), 0, time.Now().Add(-time.Second))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("ttl-dead"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired lookup: got %v, want ErrNotFound", err)
	}
	if got := mreg.Counter("zht.tenant.expired_reads").Value(); got < 1 {
		t.Errorf("zht.tenant.expired_reads = %d, want >= 1", got)
	}
	// ...counts as absent for conditional inserts (memcached add)...
	if err := c.InsertIfAbsent("ttl-dead", []byte("reborn")); err != nil {
		t.Fatalf("add over expired pair: %v", err)
	}
	if v, err := c.Lookup("ttl-dead"); err != nil || string(v) != "reborn" {
		t.Fatalf("post-add lookup = %q, %v", v, err)
	}
	// ...and is deleted by the reaper riding the anti-entropy tick.
	if err := c.Insert("ttl-reap", tenant.Wrap([]byte("gone"), 0, time.Now().Add(-time.Second))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mreg.Counter("zht.tenant.reaped").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("reaper never deleted the expired pair")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.Drain()
}

// busyHintCaller sheds the first batch envelope with mixed RetryAfter
// hints — the SMALLEST in slot 0, so the pre-fix code (which honored
// only rs[0]) would sleep far too little — then serves the retry.
type busyHintCaller struct {
	mu         sync.Mutex
	batchCalls int
	small, big time.Duration
}

func (f *busyHintCaller) Call(addr string, req *wire.Request) (*wire.Response, error) {
	return &wire.Response{Status: wire.StatusOK}, nil
}

func (f *busyHintCaller) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	f.mu.Lock()
	f.batchCalls++
	n := f.batchCalls
	f.mu.Unlock()
	rs := make([]*wire.Response, len(reqs))
	if n == 1 {
		for i := range rs {
			hint := f.big
			if i == 0 {
				hint = f.small
			}
			rs[i] = &wire.Response{Status: wire.StatusBusy, RetryAfter: uint64(hint)}
		}
		return rs, nil
	}
	for i := range rs {
		rs[i] = &wire.Response{Status: wire.StatusOK}
	}
	return rs, nil
}

func (f *busyHintCaller) Close() error { return nil }

func TestBatchBusyRetryHonorsMaxHint(t *testing.T) {
	tab, err := ring.New(8, []ring.Instance{{ID: "a", Addr: "a", Node: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	fake := &busyHintCaller{small: time.Millisecond, big: 150 * time.Millisecond}
	c, err := NewClient(Config{
		NumPartitions: 8,
		OpRetries:     2,
		RetryBase:     time.Millisecond,
		RetryMax:      2 * time.Millisecond,
		OpDeadline:    5 * time.Second,
	}, tab, fake)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rs, err := c.Batch([]BatchOp{
		{Op: wire.OpInsert, Key: "h1", Value: []byte("v")},
		{Op: wire.OpInsert, Key: "h2", Value: []byte("v")},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Errorf("slot %d: %v", i, r.Err)
		}
	}
	if fake.batchCalls < 2 {
		t.Fatalf("batch never retried (calls = %d)", fake.batchCalls)
	}
	// The retry must wait at least the LARGEST hint in the shed
	// envelope; honoring only rs[0] (the old bug) would return in ~1ms.
	if elapsed < fake.big {
		t.Errorf("busy retry slept %v, want >= %v (max hint across sub-responses)", elapsed, fake.big)
	}
}
