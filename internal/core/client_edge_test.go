package core

import (
	"errors"
	"testing"
	"time"

	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Edge-path coverage for the client's routing loop and membership
// maintenance.

func TestRefreshMembership(t *testing.T) {
	d, _, c := startDeployment(t, testCfg(), 3)
	before := c.Table().Epoch
	if _, err := d.Join(Endpoint{Addr: "zht-rm-join", Node: "n-rm"}); err != nil {
		t.Fatal(err)
	}
	// Client hasn't touched the moved partitions yet; its table is
	// stale until an explicit refresh.
	if err := c.RefreshMembership(); err != nil {
		t.Fatal(err)
	}
	if c.Table().Epoch <= before {
		t.Error("RefreshMembership did not advance the epoch")
	}
}

func TestRefreshMembershipAllDown(t *testing.T) {
	d, reg, c := startDeployment(t, Config{NumPartitions: 8, RetryBase: time.Millisecond}, 2)
	for _, in := range d.Instances() {
		reg.SetDown(in.Addr(), true)
	}
	if err := c.RefreshMembership(); err == nil {
		t.Error("refresh with whole cluster down succeeded")
	}
}

func TestClientValidation(t *testing.T) {
	reg := transport.NewRegistry()
	tab, _ := ring.New(8, []ring.Instance{{ID: "a", Addr: "a", Node: "a"}})
	if _, err := NewClient(Config{NumPartitions: 0}, tab, reg.NewClient()); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewClient(Config{NumPartitions: 8, HashName: "bogus"}, tab, reg.NewClient()); err == nil {
		t.Error("bogus hash accepted")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	reg := transport.NewRegistry()
	tab, _ := ring.New(8, []ring.Instance{{ID: "a", Addr: "a", Node: "a"}})
	if _, err := NewInstance(Config{NumPartitions: 8}, ring.Instance{ID: "ghost"}, tab, reg.NewClient()); err == nil {
		t.Error("instance not in table accepted")
	}
	if _, err := NewInstance(Config{NumPartitions: -1}, ring.Instance{ID: "a"}, tab, reg.NewClient()); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSingleInstanceTotalFailure(t *testing.T) {
	// With no replicas and the only owner dead, ops must fail with
	// ErrUnavailable rather than hang.
	cfg := Config{NumPartitions: 8, Replicas: 0, RetryBase: time.Millisecond, OpRetries: 1}
	d, reg, c := startDeployment(t, cfg, 1)
	reg.SetDown(d.Instance(0).Addr(), true)
	start := time.Now()
	err := c.Insert("k", []byte("v"))
	if err == nil {
		t.Fatal("insert into dead cluster succeeded")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("error = %v, want ErrUnavailable", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("failure took too long; retry bounding broken")
	}
}

func TestReplicasExhausted(t *testing.T) {
	// Owner and its only replica both dead: the op must error.
	cfg := Config{NumPartitions: 8, Replicas: 1, RetryBase: time.Millisecond, OpRetries: 1}
	d, reg, c := startDeployment(t, cfg, 2)
	// Insert succeeds first so we know the key's owner.
	if err := c.Insert("doomed", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	reg.SetDown(d.Instance(0).Addr(), true)
	reg.SetDown(d.Instance(1).Addr(), true)
	if _, err := c.Lookup("doomed"); err == nil {
		t.Error("lookup with all holders dead succeeded")
	}
}

func TestReviveLocally(t *testing.T) {
	d, _, c := startDeployment(t, testCfg(), 3)
	id := d.Instance(1).ID()
	c.failLocally(id)
	tab := c.Table()
	if tab.Status[tab.IndexOf(id)] != ring.Failed {
		t.Fatal("failLocally had no effect")
	}
	c.reviveLocally(id)
	tab = c.Table()
	if tab.Status[tab.IndexOf(id)] != ring.Alive {
		t.Error("reviveLocally had no effect")
	}
}

func TestTransientGlitchRevives(t *testing.T) {
	// An instance that drops exactly one window of requests and then
	// recovers: the manager's verification ping finds it alive, the
	// report is rejected, and the client keeps using it.
	cfg := Config{NumPartitions: 16, Replicas: 1, RetryBase: time.Millisecond, OpRetries: 0}
	d, reg, c := startDeployment(t, cfg, 2)
	victim := d.Instance(1)
	reg.SetDown(victim.Addr(), true)
	go func() {
		time.Sleep(3 * time.Millisecond)
		reg.SetDown(victim.Addr(), false)
	}()
	// Drive ops until one needs the victim; the report path may see
	// it back alive.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.Insert("glitch-key", []byte("v"))
		tab := c.Table()
		if tab.Status[tab.IndexOf(victim.ID())] == ring.Alive {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Whatever the race outcome, the cluster must still serve ops.
	if err := c.Insert("after-glitch", []byte("v")); err != nil {
		t.Fatalf("op after glitch: %v", err)
	}
}

func TestDeltaHandlerFromPeerInstance(t *testing.T) {
	// firstAliveReplica exercised through failover reads: covered in
	// failure tests; here exercise the OpMembership fetch path used
	// by seeding.
	d, reg, _ := startDeployment(t, testCfg(), 2)
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpMembership})
	if resp.Status != wire.StatusOK || resp.Table == nil {
		t.Fatalf("membership fetch: %v", resp.Status)
	}
	if _, err := ring.DecodeTable(resp.Table); err != nil {
		t.Fatal(err)
	}
	_ = reg
}
