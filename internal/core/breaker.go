package core

import (
	"sync"
	"time"

	"zht/internal/metrics"
)

// breaker is a per-endpoint circuit breaker. Each endpoint's circuit
// moves through the classic three states:
//
//	closed    — calls flow; consecutive transport failures are
//	            counted, any success resets the count.
//	open      — threshold reached: calls fail fast (no transport
//	            attempt, no backoff sleeps) until the cooldown
//	            elapses. This is what stops a dead primary from
//	            costing OpRetries×RetryBase on every operation
//	            before failover.
//	half-open — after the cooldown exactly one probe call is let
//	            through; success closes the circuit, failure
//	            re-opens it and restarts the cooldown.
//
// Only transport-level failures count: a server answering anything —
// including StatusBusy — is alive, so responses never trip the
// breaker. A nil *breaker (disabled) admits everything.
type breaker struct {
	threshold int
	cooldown  time.Duration
	// trips counts closed→open transitions; openG tracks how many
	// circuits are open right now. Both are nil-safe.
	trips *metrics.Counter
	openG *metrics.Gauge

	mu  sync.Mutex
	eps map[string]*circuit
}

type circuit struct {
	fails    int
	open     bool
	openedAt time.Time
	probing  bool
}

// newBreaker builds a breaker; threshold < 0 disables it (nil).
func newBreaker(threshold int, cooldown time.Duration, trips *metrics.Counter, openG *metrics.Gauge) *breaker {
	if threshold < 0 {
		return nil
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		trips:     trips,
		openG:     openG,
		eps:       make(map[string]*circuit),
	}
}

// allow reports whether a call to addr may proceed. In the open
// state it admits a single half-open probe once the cooldown has
// elapsed and rejects everything else.
func (b *breaker) allow(addr string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.eps[addr]
	if c == nil || !c.open {
		return true
	}
	if !c.probing && time.Since(c.openedAt) >= b.cooldown {
		c.probing = true
		return true
	}
	return false
}

// success records a successful call: the circuit closes and the
// failure count resets.
func (b *breaker) success(addr string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if c := b.eps[addr]; c != nil && c.open {
		b.openG.Dec()
	}
	delete(b.eps, addr)
	b.mu.Unlock()
}

// failure records a transport failure to addr, opening the circuit at
// the threshold and re-opening it when a half-open probe fails.
func (b *breaker) failure(addr string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.eps[addr]
	if c == nil {
		c = &circuit{}
		b.eps[addr] = c
	}
	c.fails++
	if c.open {
		// A failed half-open probe restarts the cooldown.
		c.probing = false
		c.openedAt = time.Now()
		return
	}
	if c.fails >= b.threshold {
		c.open = true
		c.probing = false
		c.openedAt = time.Now()
		b.trips.Inc()
		b.openG.Inc()
	}
}
