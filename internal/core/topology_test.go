package core

import (
	"fmt"
	"testing"
	"time"

	"zht/internal/transport"
)

// torusEndpoints lays n endpoints on a cubic torus.
func torusEndpoints(n, side int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{
			Addr:  fmt.Sprintf("zt-%04d", i),
			Node:  fmt.Sprintf("node-%04d", i),
			Coord: [3]int{i % side, (i / side) % side, i / (side * side)},
		}
	}
	return eps
}

func torusDist(a, b [3]int, side int) int {
	d := 0
	for ax := 0; ax < 3; ax++ {
		dd := a[ax] - b[ax]
		if dd < 0 {
			dd = -dd
		}
		if side-dd < dd {
			dd = side - dd
		}
		d += dd
	}
	return d
}

// TestNetworkAwareReplicaLocality verifies the future-work topology
// feature: with NetworkAware bootstrap, replicas (ring successors)
// sit at a smaller mean torus distance from their primaries than with
// arbitrary placement.
func TestNetworkAwareReplicaLocality(t *testing.T) {
	const side = 4 // 64 nodes on a 4x4x4 torus
	const n = side * side * side
	// Scramble the endpoint order so naive bootstrap has no
	// accidental locality.
	eps := torusEndpoints(n, side)
	for i := range eps {
		j := (i * 37) % n
		eps[i], eps[j] = eps[j], eps[i]
	}
	coordOf := map[string][3]int{}
	for _, ep := range eps {
		coordOf[ep.Node] = ep.Coord
	}

	meanReplicaDist := func(aware bool) float64 {
		cfg := Config{NumPartitions: 256, Replicas: 2, NetworkAware: aware, RetryBase: time.Millisecond}
		reg := transport.NewRegistry()
		d, err := Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
			return reg.Listen(addr, h)
		}, reg.NewClient())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		tab := d.Instance(0).Table()
		total, count := 0, 0
		for p := 0; p < tab.NumPartitions; p++ {
			owner := tab.OwnerOf(p)
			for _, r := range tab.ReplicasOf(p, 2) {
				total += torusDist(coordOf[owner.Node], coordOf[r.Node], side)
				count++
			}
		}
		return float64(total) / float64(count)
	}

	naive := meanReplicaDist(false)
	aware := meanReplicaDist(true)
	t.Logf("mean primary→replica torus distance: naive=%.2f aware=%.2f", naive, aware)
	if aware >= naive*0.7 {
		t.Errorf("network-aware placement distance %.2f not clearly below naive %.2f", aware, naive)
	}
}

// TestNetworkAwareStillCorrect runs the basic workload on a
// network-aware deployment.
func TestNetworkAwareStillCorrect(t *testing.T) {
	cfg := Config{NumPartitions: 64, Replicas: 1, NetworkAware: true, RetryBase: time.Millisecond}
	reg := transport.NewRegistry()
	d, err := Bootstrap(cfg, torusEndpoints(8, 2), func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("na-%03d", i)
		if err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Lookup(k); err != nil || string(v) != "v" {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
}
