package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/wire"
)

// keyReplicatedOn finds a key whose partition's owner is NOT victim
// and whose sole replica (Replicas=1 deployments) IS victim, so tests
// can fail exactly the replica leg of a write. Returns the key and its
// partition.
func keyReplicatedOn(t *testing.T, table *ring.Table, in *Instance, victim ring.InstanceID) (string, int) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("cons-%d", i)
		p := table.Partition(in.hashf(key))
		reps := table.ReplicasOf(p, 1)
		if table.OwnerOf(p).ID != victim && len(reps) == 1 && reps[0].ID == victim {
			return key, p
		}
	}
	t.Fatal("no key found with the victim as sole replica")
	return "", 0
}

// TestWriteLevelsAgainstDownReplica pins the write-side quorum math
// at Replicas=1 (copies=2): with the sole replica unreachable but
// still marked Alive, QUORUM and ALL writes must refuse to ack
// (need 2, got 1) while ONE acks via the primary alone — and the
// per-request level must override the deployment default.
func TestWriteLevelsAgainstDownReplica(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{
		NumPartitions: 32, Replicas: 1,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		BreakerCooldown: time.Millisecond,
		WriteLevel:      wire.ConsistencyAll, // deployment default: strictest
		Metrics:         mreg,
	}
	d, reg, c := startDeployment(t, cfg, 3)
	table := d.Instance(0).Table()
	victim := d.Instance(2)
	key, _ := keyReplicatedOn(t, table, d.Instance(0), victim.ID())

	reg.SetDown(victim.Addr(), true)

	// Default resolves to the configured ALL → quorum not met.
	if err := c.Insert(key, []byte("v")); err == nil || !strings.Contains(err.Error(), "quorum not met") {
		t.Fatalf("default(ALL) insert with replica down: err = %v, want quorum-not-met", err)
	}
	if err := c.InsertWith(key, []byte("v"), wire.ConsistencyQuorum); err == nil || !strings.Contains(err.Error(), "quorum not met") {
		t.Fatalf("QUORUM insert with replica down: err = %v, want quorum-not-met", err)
	}
	// Per-request ONE overrides the ALL default and acks via primary.
	if err := c.InsertWith(key, []byte("v1"), wire.ConsistencyOne); err != nil {
		t.Fatalf("ONE insert with replica down: %v", err)
	}
	// Quorum-not-met is an ack refusal, not a rollback: the primary
	// applied before fan-out, so the value reads back.
	if v, err := c.Lookup(key); err != nil || string(v) != "v1" {
		t.Fatalf("read-back after refused acks: %q %v", v, err)
	}
	if got := mreg.Counter("zht.consistency.quorum_writes").Value(); got < 2 {
		t.Fatalf("quorum_writes = %d after two quorum-demanding writes, want >= 2", got)
	}

	// Heal; once the breaker cooldown lapses QUORUM writes ack again.
	reg.SetDown(victim.Addr(), false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.InsertWith(key, []byte("v2"), wire.ConsistencyQuorum)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("QUORUM insert never acked after heal: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestQuorumReadNewestWinsAndRepairs stamps the owner's copy of a key
// with a newer version than its replica holds, then drives a QUORUM
// read: the newest version must win, and the stale replica must be
// repaired asynchronously as a side effect.
func TestQuorumReadNewestWinsAndRepairs(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{
		NumPartitions: 32, Replicas: 1,
		RetryBase: time.Millisecond, Metrics: mreg,
	}
	d, _, c := startDeployment(t, cfg, 3)
	table := d.Instance(0).Table()
	victim := d.Instance(2)
	key, p := keyReplicatedOn(t, table, d.Instance(0), victim.ID())
	var owner *Instance
	for _, in := range d.Instances() {
		if in.ID() == table.OwnerOf(p).ID {
			owner = in
		}
	}

	// Both copies hold v1 (ALL write), then the owner's copy alone
	// advances to v2 via a directly injected newer-versioned replica
	// apply — staleness with no hinted-handoff debt pending, so only
	// read-repair can close it.
	if err := c.InsertWith(key, []byte("v1"), wire.ConsistencyAll); err != nil {
		t.Fatal(err)
	}
	resp := owner.Handle(&wire.Request{
		Op: wire.OpReplicate, Partition: int64(p), Key: key,
		Value: []byte("v2"), Version: owner.clock.Next(),
		Flags: wire.FlagNoReplicate,
		Aux:   encodeReplicaAux(wire.OpInsert, nil),
	})
	if resp.Status != wire.StatusOK {
		t.Fatalf("version bump on owner: %v %s", resp.Status, resp.Err)
	}

	v, err := c.LookupWith(key, wire.ConsistencyQuorum)
	if err != nil || string(v) != "v2" {
		t.Fatalf("QUORUM read = %q %v, want newest copy v2", v, err)
	}
	if got := mreg.Counter("zht.consistency.quorum_reads").Value(); got < 1 {
		t.Fatalf("quorum_reads = %d, want >= 1", got)
	}

	// The stale replica converges through the async read-repair leg.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rv, ok, _ := storeGet(victim, p, key); ok && string(rv) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			rv, ok, rerr := storeGet(victim, p, key)
			t.Fatalf("replica never read-repaired: %q %v %v", rv, ok, rerr)
		}
		time.Sleep(time.Millisecond)
	}
	if got := mreg.Counter("zht.consistency.stale_reads_repaired").Value(); got < 1 {
		t.Fatalf("stale_reads_repaired = %d, want >= 1", got)
	}
}

// TestReplicaLWWIgnoresOlderVersions pins the replica-apply side of
// the versioned protocol: an older-stamped insert or remove must lose
// against a newer local version (counted as a conflict, normalized to
// OK on the wire), while newer stamps win.
func TestReplicaLWWIgnoresOlderVersions(t *testing.T) {
	mreg := metrics.NewRegistry()
	cfg := Config{NumPartitions: 4, Replicas: 1, Metrics: mreg}
	d, _, _ := startDeployment(t, cfg, 2)
	in := d.Instance(0)
	conflicts := mreg.Counter("zht.consistency.version_conflicts")

	apply := func(op wire.Op, val []byte, ver uint64) *wire.Response {
		return in.Handle(&wire.Request{
			Op: wire.OpReplicate, Partition: 0, Key: "lww",
			Value: val, Version: ver, Flags: wire.FlagNoReplicate,
			Aux: encodeReplicaAux(op, nil),
		})
	}

	if r := apply(wire.OpInsert, []byte("new"), 100<<hlcNodeBits); r.Status != wire.StatusOK {
		t.Fatalf("seed insert: %v %s", r.Status, r.Err)
	}
	// Older insert: normalized OK, not applied, conflict counted.
	if r := apply(wire.OpInsert, []byte("old"), 50<<hlcNodeBits); r.Status != wire.StatusOK {
		t.Fatalf("stale insert must normalize to OK: %v %s", r.Status, r.Err)
	}
	if v, ok, _ := storeGet(in, 0, "lww"); !ok || string(v) != "new" {
		t.Fatalf("older insert overwrote newer value: %q %v", v, ok)
	}
	if got := conflicts.Value(); got != 1 {
		t.Fatalf("version_conflicts = %d after stale insert, want 1", got)
	}
	// Older remove: also loses.
	if r := apply(wire.OpRemove, nil, 60<<hlcNodeBits); r.Status != wire.StatusOK {
		t.Fatalf("stale remove: %v %s", r.Status, r.Err)
	}
	if v, ok, _ := storeGet(in, 0, "lww"); !ok || string(v) != "new" {
		t.Fatalf("older remove deleted newer value: %q %v", v, ok)
	}
	if got := conflicts.Value(); got != 2 {
		t.Fatalf("version_conflicts = %d after stale remove, want 2", got)
	}
	// Newer remove wins.
	if r := apply(wire.OpRemove, nil, 200<<hlcNodeBits); r.Status != wire.StatusOK {
		t.Fatalf("newer remove: %v %s", r.Status, r.Err)
	}
	if _, ok, _ := storeGet(in, 0, "lww"); ok {
		t.Fatal("newer-versioned remove did not delete")
	}
}

// TestHLCStamps pins the version clock: stamps are strictly monotonic
// per node, carry the node discriminant in the low bits, and Observe
// ratchets the clock past remotely seen stamps.
func TestHLCStamps(t *testing.T) {
	a := newHLC(ring.InstanceID("node-a"))
	b := newHLC(ring.InstanceID("node-b"))
	if a.node == b.node {
		t.Fatal("distinct instance IDs hashed to the same node bits")
	}
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		v := a.Next()
		if v <= prev {
			t.Fatalf("stamp %d not monotonic: %d after %d", i, v, prev)
		}
		if v&((1<<hlcNodeBits)-1) != a.node {
			t.Fatalf("stamp %x lost node bits %x", v, a.node)
		}
		prev = v
	}
	future := (uint64(time.Now().UnixMilli()) + 1_000_000) << hlcNodeBits
	a.Observe(future)
	if v := a.Next(); v <= future {
		t.Fatalf("Next() = %x did not advance past observed %x", v, future)
	}
}
