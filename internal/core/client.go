package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"zht/internal/hashing"
	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Client is a ZHT client: it holds the complete membership table and
// routes each operation directly to the owning instance (zero hops).
// The table refreshes lazily — only when a server answers
// StatusWrongOwner with a newer table (§III.C "Client Side State") —
// and the client fails over to replicas when it detects a dead
// primary, reporting the failure to a manager (§III.H).
//
// A Client is safe for concurrent use.
type Client struct {
	cfg    Config
	caller transport.Caller
	hashf  hashing.Func

	mu    sync.RWMutex
	table *ring.Table
	// shared, when non-nil, is a co-located instance whose table
	// this client reads instead of its own copy (§III.C 1:1
	// deployment).
	shared *Instance

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Errors returned by client operations.
var (
	// ErrNotFound reports a lookup/remove/append on an absent key.
	ErrNotFound = errors.New("zht: key not found")
	// ErrExists reports a conditional insert on a present key.
	ErrExists = errors.New("zht: key already exists")
	// ErrCasMismatch reports a failed compare-and-swap.
	ErrCasMismatch = errors.New("zht: cas mismatch")
	// ErrUnavailable reports that the owning instance (and its
	// replicas, if any) could not be reached.
	ErrUnavailable = errors.New("zht: partition unavailable")
)

// routeAttempts bounds how many times one operation may re-route
// (table refresh, redirect, failover) before giving up.
const routeAttempts = 8

// NewClient creates a client from a bootstrap membership table.
func NewClient(cfg Config, table *ring.Table, caller transport.Caller) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:    cfg,
		caller: caller,
		hashf:  cfg.hash(),
		table:  table.Clone(),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

// NewLocalClient creates a client that shares the membership table of
// a co-located instance instead of maintaining its own copy — the
// paper's 1:1 deployment optimization (§III.C: "the client could
// share the membership table with a corresponding server on the same
// physical node, to reduce the number of membership tables that need
// to be synchronized"). The client sees the instance's table updates
// immediately; its own lazy refreshes are no-ops against the shared
// view (the instance's broadcasts are authoritative).
func NewLocalClient(in *Instance, caller transport.Caller) (*Client, error) {
	cfg := in.cfg
	c, err := NewClient(cfg, in.Table(), caller)
	if err != nil {
		return nil, err
	}
	c.shared = in
	return c, nil
}

// NewClientFromSeed creates a client by fetching the membership table
// from any live instance.
func NewClientFromSeed(cfg Config, seedAddr string, caller transport.Caller) (*Client, error) {
	resp, err := caller.Call(seedAddr, &wire.Request{Op: wire.OpMembership})
	if err != nil {
		return nil, fmt.Errorf("zht: fetch membership from %s: %w", seedAddr, err)
	}
	t, err := ring.DecodeTable(resp.Table)
	if err != nil {
		return nil, fmt.Errorf("zht: bad membership table from seed: %w", err)
	}
	// The table is authoritative for the partition count; a client
	// misconfigured with a different n would otherwise be rejected
	// for no reason (routing always uses the table's value).
	cfg.NumPartitions = t.NumPartitions
	return NewClient(cfg, t, caller)
}

// snapshot returns the routing table to use for one operation: the
// co-located instance's published table for shared clients, the
// client's own copy otherwise. The result must not be modified.
func (c *Client) snapshot() *ring.Table {
	if c.shared != nil {
		return c.shared.tableRef()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table
}

// Table returns a snapshot of the client's current membership table.
func (c *Client) Table() *ring.Table {
	return c.snapshot().Clone()
}

// Insert stores val under key (unconditional).
func (c *Client) Insert(key string, val []byte) error {
	_, err := c.do(&wire.Request{Op: wire.OpInsert, Key: key, Value: val})
	return err
}

// InsertIfAbsent stores val only when key is absent.
func (c *Client) InsertIfAbsent(key string, val []byte) error {
	_, err := c.do(&wire.Request{Op: wire.OpInsert, Key: key, Value: val, Flags: wire.FlagIfAbsent})
	return err
}

// Lookup returns the value stored under key.
func (c *Client) Lookup(key string) ([]byte, error) {
	resp, err := c.do(&wire.Request{Op: wire.OpLookup, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Remove deletes key.
func (c *Client) Remove(key string) error {
	_, err := c.do(&wire.Request{Op: wire.OpRemove, Key: key})
	return err
}

// Append concatenates val to key's value, creating it when absent.
// Appends from concurrent clients interleave without any distributed
// lock (§III.I).
func (c *Client) Append(key string, val []byte) error {
	_, err := c.do(&wire.Request{Op: wire.OpAppend, Key: key, Value: val})
	return err
}

// Cas atomically replaces key's value with newVal when the current
// value equals oldVal; oldVal == nil means "expect absent". On
// mismatch it returns ErrCasMismatch and the observed value.
func (c *Client) Cas(key string, oldVal, newVal []byte) ([]byte, error) {
	req := &wire.Request{Op: wire.OpCas, Key: key, Value: newVal, Aux: oldVal}
	if oldVal == nil {
		req.Flags = wire.FlagIfAbsent
	}
	resp, err := c.do(req)
	if err != nil {
		if errors.Is(err, ErrCasMismatch) && resp != nil {
			return resp.Value, err
		}
		return nil, err
	}
	return nil, nil
}

// Broadcast delivers key/val to every instance via the spanning-tree
// primitive. It returns once the root instance accepted the message;
// interior forwarding is asynchronous.
func (c *Client) Broadcast(key string, val []byte) error {
	table := c.snapshot()
	// Root the tree at the key's owner so repeated broadcasts spread
	// root load across instances.
	origin := table.Owner[table.Partition(c.hashf(key))]
	resp, err := c.caller.Call(table.Instances[origin].Addr, &wire.Request{
		Op: wire.OpBroadcast, Key: key, Value: val, Partition: int64(origin),
	})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("zht: broadcast: %s", resp.Err)
	}
	return nil
}

// do routes one request: pick the owner from the local table, call
// it, and react to routing feedback (stale table, migration redirect,
// owner failure) until the operation resolves.
func (c *Client) do(req *wire.Request) (*wire.Response, error) {
	h := c.hashf(req.Key)
	var lastErr error
	for attempt := 0; attempt < routeAttempts; attempt++ {
		table := c.snapshot()
		p := table.Partition(h)
		idx := table.Owner[p]
		target := table.Instances[idx]
		targetAlive := table.Status[idx] == ring.Alive

		if !targetAlive {
			// Owner known dead: address the first alive replica.
			reps := table.ReplicasOf(p, maxInt(c.cfg.Replicas, 1))
			if len(reps) == 0 {
				return nil, fmt.Errorf("%w: no alive replica for partition %d", ErrUnavailable, p)
			}
			target = reps[0]
		}

		req.Epoch = table.Epoch
		resp, err := c.callWithBackoff(target.Addr, req)
		if err != nil {
			lastErr = err
			// Exhausted retries: declare the instance failed, tell a
			// random manager, and adopt the resulting table.
			if rerr := c.reportFailure(table, target.ID); rerr != nil {
				return nil, fmt.Errorf("%w: %s unreachable and failover failed: %v", ErrUnavailable, target.Addr, rerr)
			}
			continue
		}
		switch resp.Status {
		case wire.StatusOK:
			return resp, nil
		case wire.StatusNotFound:
			return resp, ErrNotFound
		case wire.StatusExists:
			return resp, ErrExists
		case wire.StatusCasMismatch:
			return resp, ErrCasMismatch
		case wire.StatusWrongOwner:
			if t, err := ring.DecodeTable(resp.Table); err == nil {
				c.adoptTable(t)
			}
			lastErr = fmt.Errorf("zht: wrong owner for %q (epoch %d)", req.Key, table.Epoch)
			continue
		case wire.StatusMigrating:
			if resp.Redirect == "" {
				lastErr = errors.New("zht: partition migrating")
				continue
			}
			// Follow the redirect directly; membership will catch up
			// lazily.
			r2, err := c.callWithBackoff(resp.Redirect, req)
			if err != nil {
				lastErr = err
				continue
			}
			switch r2.Status {
			case wire.StatusOK:
				return r2, nil
			case wire.StatusNotFound:
				return r2, ErrNotFound
			case wire.StatusExists:
				return r2, ErrExists
			case wire.StatusCasMismatch:
				return r2, ErrCasMismatch
			}
			lastErr = fmt.Errorf("zht: redirect to %s answered %s", resp.Redirect, r2.Status)
			continue
		case wire.StatusError:
			return resp, fmt.Errorf("zht: %s failed: %s", req.Op, resp.Err)
		default:
			return resp, fmt.Errorf("zht: unexpected status %s", resp.Status)
		}
	}
	return nil, fmt.Errorf("%w: routing did not converge: %v", ErrUnavailable, lastErr)
}

// callWithBackoff retries an unreachable destination with exponential
// backoff (§III.H: failures are tagged lazily, "using exponential
// back off").
func (c *Client) callWithBackoff(addr string, req *wire.Request) (*wire.Response, error) {
	delay := c.cfg.RetryBase
	var lastErr error
	for i := 0; i <= c.cfg.OpRetries; i++ {
		resp, err := c.caller.Call(addr, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if i < c.cfg.OpRetries {
			time.Sleep(delay)
			delay *= 2
		}
	}
	return nil, lastErr
}

// reportFailure tells a random alive manager that accused is down and
// adopts the table the manager answers with. As a last resort (every
// other instance unreachable — e.g. a single-node deployment) it
// fails the instance in the local table only.
func (c *Client) reportFailure(table *ring.Table, accused ring.InstanceID) error {
	// Mark locally first so subsequent attempts avoid the dead node
	// even before the manager broadcast lands.
	c.failLocally(accused)

	idxs := c.rngPerm(len(table.Instances))
	for _, i := range idxs {
		peer := table.Instances[i]
		if peer.ID == accused || table.Status[i] != ring.Alive {
			continue
		}
		resp, err := c.caller.Call(peer.Addr, &wire.Request{Op: wire.OpReport, Key: string(accused)})
		if err != nil {
			continue
		}
		if resp.Status == wire.StatusOK {
			if t, terr := ring.DecodeTable(resp.Table); terr == nil {
				c.adoptTable(t)
			}
			return nil
		}
		if resp.Status == wire.StatusError && resp.Err == "core: accused instance is alive" {
			// False alarm (transient glitch): undo the local mark.
			c.reviveLocally(accused)
			return nil
		}
	}
	if table.AliveCount() <= 1 {
		return fmt.Errorf("no manager reachable for failure report")
	}
	return nil // local mark stands; broadcast will arrive eventually
}

// failLocally marks an instance failed in the client's table and
// fails its partitions over to first replicas, mirroring what the
// manager will broadcast.
func (c *Client) failLocally(id ring.InstanceID) {
	if c.shared != nil {
		// The shared instance learns through the manager broadcast
		// that reportFailure triggers synchronously.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := c.table.PlanFailure(id, maxInt(c.cfg.Replicas, 1))
	if err != nil {
		return
	}
	if nt, err := c.table.Apply(d); err == nil {
		c.table = nt
	}
}

func (c *Client) reviveLocally(id ring.InstanceID) {
	if c.shared != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.table.IndexOf(id)
	if idx >= 0 {
		// The local table may be a published (shared-immutability)
		// snapshot; mutate a clone.
		nt := c.table.Clone()
		nt.Status[idx] = ring.Alive
		c.table = nt
	}
}

// adoptTable replaces the local table when t is newer; shared clients
// forward it to their co-located instance instead, which is the
// authoritative holder.
func (c *Client) adoptTable(t *ring.Table) {
	if c.shared != nil {
		if t.Epoch > c.shared.Epoch() {
			c.shared.Handle(&wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(t)})
		}
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Epoch > c.table.Epoch {
		c.table = t
	}
}

// RefreshMembership pulls the current table from a random alive
// instance (useful after out-of-band membership changes).
func (c *Client) RefreshMembership() error {
	table := c.snapshot()
	for _, i := range c.rngPerm(len(table.Instances)) {
		if table.Status[i] != ring.Alive {
			continue
		}
		resp, err := c.caller.Call(table.Instances[i].Addr, &wire.Request{Op: wire.OpMembership})
		if err != nil || resp.Status != wire.StatusOK {
			continue
		}
		if t, err := ring.DecodeTable(resp.Table); err == nil {
			c.adoptTable(t)
			return nil
		}
	}
	return errors.New("zht: no instance reachable for membership refresh")
}

func (c *Client) rngPerm(n int) []int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Perm(n)
}
