package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"zht/internal/gossip"
	"zht/internal/hashing"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Client is a ZHT client: it holds the complete membership table and
// routes each operation directly to the owning instance (zero hops).
// The table refreshes lazily — only when a server answers
// StatusWrongOwner with a newer table (§III.C "Client Side State") —
// and the client fails over to replicas when it detects a dead
// primary, reporting the failure to a manager (§III.H).
//
// A Client is safe for concurrent use.
type Client struct {
	cfg     Config
	caller  transport.Caller
	hashf   hashing.Func
	breaker *breaker
	metrics clientMetrics

	mu    sync.RWMutex
	table *ring.Table
	// shared, when non-nil, is a co-located instance whose table
	// this client reads instead of its own copy (§III.C 1:1
	// deployment).
	shared *Instance
	// gossip heals a stale table from piggybacked response epochs
	// (DESIGN.md §10); nil for shared clients (the instance pulls) and
	// when Config.GossipCooldown is negative.
	gossip *gossip.Service

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Errors returned by client operations.
var (
	// ErrNotFound reports a lookup/remove/append on an absent key.
	ErrNotFound = errors.New("zht: key not found")
	// ErrExists reports a conditional insert on a present key.
	ErrExists = errors.New("zht: key already exists")
	// ErrCasMismatch reports a failed compare-and-swap.
	ErrCasMismatch = errors.New("zht: cas mismatch")
	// ErrUnavailable reports that the owning instance (and its
	// replicas, if any) could not be reached, or that the operation's
	// deadline budget ran out before routing converged.
	ErrUnavailable = errors.New("zht: partition unavailable")
	// ErrCircuitOpen reports that an endpoint's circuit breaker is
	// open: recent consecutive transport failures made the client
	// fail fast instead of retrying into a dead node.
	ErrCircuitOpen = errors.New("zht: circuit open")
	// ErrTooLarge reports a key or value rejected by the deployment's
	// size limits (Config.MaxKeyLen/MaxValueLen). Terminal: the same
	// payload can never succeed on retry.
	ErrTooLarge = errors.New("zht: key or value too large")
)

// routeAttempts bounds how many times one operation may re-route
// (table refresh, redirect, failover) before giving up.
const routeAttempts = 8

// NewClient creates a client from a bootstrap membership table.
func NewClient(cfg Config, table *ring.Table, caller transport.Caller) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:    cfg,
		caller: caller,
		hashf:  cfg.hash(),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
			cfg.Metrics.Counter("zht.client.breaker.trips"),
			cfg.Metrics.Gauge("zht.client.breaker.open")),
		metrics: newClientMetrics(cfg.Metrics),
		table:   table.Clone(),
		// Seed from the process-global (randomly seeded) source:
		// time.Now().UnixNano() collides for clients created in the
		// same nanosecond, which would synchronize their retry
		// jitter and permutation streams.
		rng: rand.New(rand.NewSource(rand.Int63())),
	}
	if cfg.GossipCooldown >= 0 {
		c.gossip, _ = gossip.New(gossip.Options{
			Epoch:    func() uint64 { return c.snapshot().Epoch },
			Pull:     c.gossipPull,
			Peers:    c.gossipPeers,
			Cooldown: cfg.GossipCooldown,
			Metrics:  cfg.Metrics,
		})
	}
	return c, nil
}

// NewLocalClient creates a client that shares the membership table of
// a co-located instance instead of maintaining its own copy — the
// paper's 1:1 deployment optimization (§III.C: "the client could
// share the membership table with a corresponding server on the same
// physical node, to reduce the number of membership tables that need
// to be synchronized"). The client sees the instance's table updates
// immediately; its own lazy refreshes are no-ops against the shared
// view (the instance's broadcasts are authoritative).
func NewLocalClient(in *Instance, caller transport.Caller) (*Client, error) {
	cfg := in.cfg
	c, err := NewClient(cfg, in.Table(), caller)
	if err != nil {
		return nil, err
	}
	c.shared = in
	c.gossip = nil // the instance owns staleness healing for shared clients
	return c, nil
}

// NewClientFromSeed creates a client by fetching the membership table
// from any live instance.
func NewClientFromSeed(cfg Config, seedAddr string, caller transport.Caller) (*Client, error) {
	resp, err := caller.Call(seedAddr, &wire.Request{Op: wire.OpMembership})
	if err != nil {
		return nil, fmt.Errorf("zht: fetch membership from %s: %w", seedAddr, err)
	}
	t, err := ring.DecodeTable(resp.Table)
	if err != nil {
		return nil, fmt.Errorf("zht: bad membership table from seed: %w", err)
	}
	// The table is authoritative for the partition count; a client
	// misconfigured with a different n would otherwise be rejected
	// for no reason (routing always uses the table's value).
	cfg.NumPartitions = t.NumPartitions
	return NewClient(cfg, t, caller)
}

// snapshot returns the routing table to use for one operation: the
// co-located instance's published table for shared clients, the
// client's own copy otherwise. The result must not be modified.
func (c *Client) snapshot() *ring.Table {
	if c.shared != nil {
		return c.shared.tableRef()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table
}

// Table returns a snapshot of the client's current membership table.
func (c *Client) Table() *ring.Table {
	return c.snapshot().Clone()
}

// doOp runs one KV operation through a pooled request, releasing the
// request once routing settles. The response stays with the caller
// (its Value may be handed to the application); callers that do not
// need it release it with wire.PutResponse.
func (c *Client) doOp(op wire.Op, key string, val, aux []byte, flags uint8, cons wire.Consistency) (*wire.Response, error) {
	req := wire.GetRequest()
	req.Op, req.Key, req.Value, req.Aux, req.Flags = op, key, val, aux, flags
	req.Consistency = cons
	resp, err := c.do(req)
	wire.PutRequest(req)
	return resp, err
}

// Insert stores val under key (unconditional) at the deployment's
// default write level.
func (c *Client) Insert(key string, val []byte) error {
	return c.InsertWith(key, val, wire.ConsistencyDefault)
}

// InsertWith is Insert at an explicit write consistency level:
// success means at least Acks(copies) copies hold the write
// (DESIGN.md §12). ConsistencyDefault defers to Config.WriteLevel.
func (c *Client) InsertWith(key string, val []byte, level wire.Consistency) error {
	resp, err := c.doOp(wire.OpInsert, key, val, nil, 0, level)
	wire.PutResponse(resp)
	return err
}

// InsertIfAbsent stores val only when key is absent.
func (c *Client) InsertIfAbsent(key string, val []byte) error {
	resp, err := c.doOp(wire.OpInsert, key, val, nil, wire.FlagIfAbsent, wire.ConsistencyDefault)
	wire.PutResponse(resp)
	return err
}

// Lookup returns the value stored under key, read at the deployment's
// default read level.
func (c *Client) Lookup(key string) ([]byte, error) {
	return c.LookupWith(key, wire.ConsistencyDefault)
}

// LookupWith is Lookup at an explicit read consistency level. One is
// the zero-hop read of the owner's copy; Quorum and All consult the
// owner plus the partition's replicas in parallel and return the copy
// with the newest version stamp, queueing an asynchronous read-repair
// of any stale copy observed (DESIGN.md §12). ConsistencyDefault
// defers to Config.ReadLevel.
func (c *Client) LookupWith(key string, level wire.Consistency) ([]byte, error) {
	if level == wire.ConsistencyDefault {
		level = c.cfg.ReadLevel
	}
	if level > wire.ConsistencyOne && c.cfg.Replicas > 0 {
		return c.quorumLookup(key, level)
	}
	resp, err := c.doOp(wire.OpLookup, key, nil, nil, 0, level)
	if err != nil {
		wire.PutResponse(resp)
		return nil, err
	}
	v := resp.Value
	wire.PutResponse(resp)
	return v, nil
}

// Remove deletes key at the deployment's default write level.
func (c *Client) Remove(key string) error {
	return c.RemoveWith(key, wire.ConsistencyDefault)
}

// RemoveWith is Remove at an explicit write consistency level.
func (c *Client) RemoveWith(key string, level wire.Consistency) error {
	resp, err := c.doOp(wire.OpRemove, key, nil, nil, 0, level)
	wire.PutResponse(resp)
	return err
}

// Append concatenates val to key's value, creating it when absent.
// Appends from concurrent clients interleave without any distributed
// lock (§III.I).
func (c *Client) Append(key string, val []byte) error {
	return c.AppendWith(key, val, wire.ConsistencyDefault)
}

// AppendWith is Append at an explicit write consistency level.
func (c *Client) AppendWith(key string, val []byte, level wire.Consistency) error {
	resp, err := c.doOp(wire.OpAppend, key, val, nil, 0, level)
	wire.PutResponse(resp)
	return err
}

// Cas atomically replaces key's value with newVal when the current
// value equals oldVal; oldVal == nil means "expect absent". On
// mismatch it returns ErrCasMismatch and the observed value.
func (c *Client) Cas(key string, oldVal, newVal []byte) ([]byte, error) {
	return c.CasWith(key, oldVal, newVal, wire.ConsistencyDefault)
}

// CasWith is Cas at an explicit write consistency level (the compare
// itself always runs on the owner — the serialization point; the
// level governs how many copies must hold the winning value).
func (c *Client) CasWith(key string, oldVal, newVal []byte, level wire.Consistency) ([]byte, error) {
	var flags uint8
	if oldVal == nil {
		flags = wire.FlagIfAbsent
	}
	resp, err := c.doOp(wire.OpCas, key, newVal, oldVal, flags, level)
	if err != nil {
		if errors.Is(err, ErrCasMismatch) && resp != nil {
			cur := resp.Value
			wire.PutResponse(resp)
			return cur, err
		}
		wire.PutResponse(resp)
		return nil, err
	}
	wire.PutResponse(resp)
	return nil, nil
}

// readVote is one copy's answer to a quorum read fan-out.
type readVote struct {
	addr  string
	val   []byte
	ver   uint64
	found bool
	ok    bool // the copy answered at all
}

// quorumLookup coordinates a Quorum/All read: consult the owner (a
// full routed read, so stale tables and failovers heal as usual) and
// the partition's replicas (direct replica-reads of their local
// copies) in parallel, return once Acks(copies) copies answered, and
// resolve disagreement newest-version-wins. Any copy observed older
// than the winner gets an asynchronous read-repair push — a versioned
// replica leg its LWW compare accepts only if still stale. A removed
// key can "resurface" at quorum if a replica still holds the
// pre-remove value: removes are tombstone-free, so an absent copy
// cannot be distinguished from a never-written one; the winner among
// FOUND copies is returned (documented in DESIGN.md §12).
func (c *Client) quorumLookup(key string, level wire.Consistency) ([]byte, error) {
	c.metrics.quorumReads.Inc()
	var deadline time.Time
	if c.cfg.OpDeadline > 0 {
		deadline = time.Now().Add(c.cfg.OpDeadline)
	}
	table := c.snapshot()
	p := table.Partition(c.hashf(key))
	owner := table.Instances[table.Owner[p]]
	reps := table.ReplicasOf(p, c.cfg.Replicas)
	targets := make([]string, 0, 1+len(reps))
	targets = append(targets, owner.Addr)
	for _, r := range reps {
		if r.ID != owner.ID {
			targets = append(targets, r.Addr)
		}
	}
	copies := len(targets)
	need := level.Acks(copies)
	votes := make(chan readVote, copies) // buffered: stragglers never block
	go func() {
		req := wire.GetRequest()
		req.Op, req.Key, req.Consistency = wire.OpLookup, key, wire.ConsistencyOne
		resp, err := c.doRoutedDeadline(req, deadline)
		wire.PutRequest(req)
		v := readVote{addr: owner.Addr}
		if err == nil || errors.Is(err, ErrNotFound) {
			v.ok = true
			v.found = err == nil
			if resp != nil {
				v.val, v.ver = resp.Value, resp.Version
			}
		}
		wire.PutResponse(resp)
		votes <- v
	}()
	for _, addr := range targets[1:] {
		go func(addr string) {
			req := wire.GetRequest()
			req.Op, req.Key, req.Flags = wire.OpLookup, key, wire.FlagReplicaRead
			resp, err := c.callWithBackoff(addr, req, deadline)
			wire.PutRequest(req)
			v := readVote{addr: addr}
			if err == nil && (resp.Status == wire.StatusOK || resp.Status == wire.StatusNotFound) {
				v.ok = true
				v.found = resp.Status == wire.StatusOK
				v.val, v.ver = resp.Value, resp.Version
			}
			wire.PutResponse(resp)
			votes <- v
		}(addr)
	}
	var winner readVote
	acked := 0
	got := make([]readVote, 0, copies)
	for i := 0; i < copies && acked < need; i++ {
		v := <-votes
		if !v.ok {
			continue
		}
		acked++
		got = append(got, v)
		if v.found && (!winner.found || v.ver > winner.ver) {
			winner = v
		}
	}
	if acked < need {
		return nil, fmt.Errorf("%w: read quorum not met (%d/%d copies answered)", ErrUnavailable, acked, need)
	}
	if winner.found && winner.ver > 0 {
		stale := false
		for _, v := range got {
			if !v.found || v.ver < winner.ver {
				stale = true
				go c.repairCopy(p, v.addr, key, winner.val, winner.ver)
			}
		}
		if stale {
			c.metrics.staleReadsRepaired.Inc()
		}
	}
	if !winner.found {
		return nil, ErrNotFound
	}
	return winner.val, nil
}

// repairCopy pushes the quorum-read winner to one stale copy as a
// versioned replica leg: the target's last-writer-wins compare applies
// it only if the copy is still older, so a racing newer write is never
// regressed.
func (c *Client) repairCopy(p int, addr, key string, val []byte, ver uint64) {
	c.caller.Call(addr, &wire.Request{
		Op: wire.OpReplicate, Partition: int64(p), Key: key, Value: val,
		Version: ver, Flags: wire.FlagNoReplicate,
		Aux: encodeReplicaAux(wire.OpInsert, nil),
	})
}

// Broadcast delivers key/val to every instance via the spanning-tree
// primitive. It returns once the root instance accepted the message;
// interior forwarding is asynchronous.
func (c *Client) Broadcast(key string, val []byte) error {
	table := c.snapshot()
	// Root the tree at the key's owner so repeated broadcasts spread
	// root load across instances.
	origin := table.Owner[table.Partition(c.hashf(key))]
	resp, err := c.caller.Call(table.Instances[origin].Addr, &wire.Request{
		Op: wire.OpBroadcast, Key: key, Value: val, Partition: int64(origin),
	})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("zht: broadcast: %s", resp.Err)
	}
	return nil
}

// statusToErr translates a terminal response status into the
// client's error vocabulary. done=false marks the routing statuses
// (WrongOwner, Migrating, Busy) the caller must react to instead of
// returning.
func statusToErr(op wire.Op, resp *wire.Response) (err error, done bool) {
	switch resp.Status {
	case wire.StatusOK:
		return nil, true
	case wire.StatusNotFound:
		return ErrNotFound, true
	case wire.StatusExists:
		return ErrExists, true
	case wire.StatusCasMismatch:
		return ErrCasMismatch, true
	case wire.StatusTooLarge:
		return ErrTooLarge, true
	case wire.StatusError:
		return fmt.Errorf("zht: %s failed: %s", op, resp.Err), true
	case wire.StatusWrongOwner, wire.StatusMigrating, wire.StatusBusy:
		return nil, false
	default:
		return fmt.Errorf("zht: unexpected status %s", resp.Status), true
	}
}

// do wraps doRouted with the client-side measurements: one ops count
// per operation and, for one op in metrics.SampleEvery, an end-to-end
// latency observation (per-op-type and aggregate). The sampling
// decision reuses the op count the path already pays for, so the
// untimed ops cost no clock reads; with metrics disabled the whole
// thing degrades to nil checks.
func (c *Client) do(req *wire.Request) (*wire.Response, error) {
	n := c.metrics.ops.Inc()
	var start time.Time
	timed := c.metrics.allLat != nil && n%metrics.SampleEvery == 0
	if timed {
		start = time.Now()
	}
	resp, err := c.doRouted(req)
	if timed {
		el := time.Since(start).Nanoseconds()
		c.metrics.allLat.Observe(el)
		c.metrics.opLat[req.Op].Observe(el)
	}
	if errors.Is(err, ErrUnavailable) {
		c.metrics.unavailable.Inc()
	}
	return resp, err
}

// doRouted routes one request: pick the owner from the local table,
// call it, and react to routing feedback (stale table, migration
// redirect, server overload, owner failure) until the operation
// resolves. The whole loop — transport retries, redirects, failovers,
// backoff sleeps — shares one OpDeadline budget, propagated to every
// transport call via wire.Request.Budget, so an operation resolves
// or fails with ErrUnavailable within its deadline instead of
// compounding per-layer timeouts.
func (c *Client) doRouted(req *wire.Request) (*wire.Response, error) {
	var deadline time.Time
	if c.cfg.OpDeadline > 0 {
		deadline = time.Now().Add(c.cfg.OpDeadline)
	}
	return c.doRoutedDeadline(req, deadline)
}

// doRoutedDeadline is doRouted under an externally supplied deadline,
// so a batch's stragglers can re-route individually while still
// sharing the batch's overall budget.
func (c *Client) doRoutedDeadline(req *wire.Request, deadline time.Time) (*wire.Response, error) {
	h := c.hashf(req.Key)
	var lastErr error
	for attempt := 0; attempt < routeAttempts; attempt++ {
		if expired(deadline) {
			return nil, fmt.Errorf("%w: op deadline exceeded: %v", ErrUnavailable, lastErr)
		}
		table := c.snapshot()
		p := table.Partition(h)
		idx := table.Owner[p]
		target := table.Instances[idx]
		targetAlive := table.Status[idx] == ring.Alive

		if !targetAlive {
			// Owner known dead: address the first alive replica — the
			// same election the serving side applies (firstAliveReplica),
			// so a replica that has itself failed or departed is skipped
			// instead of dialed.
			reps := table.ReplicasOf(p, maxInt(c.cfg.Replicas, 1))
			found := false
			for _, r := range reps {
				if i := table.IndexOf(r.ID); i >= 0 && table.Status[i] == ring.Alive {
					target, found = r, true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: no alive replica for partition %d", ErrUnavailable, p)
			}
		}

		req.Epoch = table.Epoch
		resp, err := c.callWithBackoff(target.Addr, req, deadline)
		if err != nil {
			lastErr = err
			if expired(deadline) {
				return nil, fmt.Errorf("%w: op deadline exceeded: %v", ErrUnavailable, err)
			}
			// Exhausted retries: declare the instance failed, tell a
			// random manager, and adopt the resulting table.
			if rerr := c.reportFailure(table, target.ID, deadline); rerr != nil {
				return nil, fmt.Errorf("%w: %s unreachable and failover failed: %v", ErrUnavailable, target.Addr, rerr)
			}
			continue
		}
		if err, done := statusToErr(req.Op, resp); done {
			return resp, err
		}
		switch resp.Status {
		case wire.StatusBusy:
			// The owner shed us; callWithBackoff already slept
			// through its retry budget, so just re-route (the table
			// may even have changed) until the deadline runs out.
			lastErr = fmt.Errorf("zht: %s overloaded", target.Addr)
			c.sleepBounded(c.busyDelay(resp, attempt), deadline)
			continue
		case wire.StatusWrongOwner:
			c.metrics.wrongOwner.Inc()
			if t, err := ring.DecodeTable(resp.Table); err == nil {
				c.adoptTable(t)
			}
			lastErr = fmt.Errorf("zht: wrong owner for %q (epoch %d)", req.Key, table.Epoch)
			continue
		case wire.StatusMigrating:
			if resp.Redirect == "" {
				lastErr = errors.New("zht: partition migrating")
				continue
			}
			// Follow the redirect directly; membership will catch up
			// lazily.
			r2, err := c.callWithBackoff(resp.Redirect, req, deadline)
			if err != nil {
				lastErr = err
				continue
			}
			if err, done := statusToErr(req.Op, r2); done {
				return r2, err
			}
			lastErr = fmt.Errorf("zht: redirect to %s answered %s", resp.Redirect, r2.Status)
			continue
		}
	}
	return nil, fmt.Errorf("%w: routing did not converge: %v", ErrUnavailable, lastErr)
}

// callWithBackoff retries an unreachable destination with capped,
// full-jitter exponential backoff (§III.H: failures are tagged
// lazily, "using exponential back off"; the jitter keeps concurrent
// clients from synchronizing retry storms against a recovering
// node). Every attempt carries the operation's remaining budget in
// wire.Request.Budget, and the endpoint's circuit breaker fails the
// call fast while open. StatusBusy responses are retried here too —
// waiting at least the server's RetryAfter hint — without counting
// toward the breaker (a shedding server is alive).
func (c *Client) callWithBackoff(addr string, req *wire.Request, deadline time.Time) (*wire.Response, error) {
	var lastErr error
	for i := 0; ; i++ {
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				if lastErr == nil {
					lastErr = transport.ErrTimeout
				}
				return nil, lastErr
			}
			req.Budget = uint64(rem)
		}
		if !c.breaker.allow(addr) {
			c.metrics.fastfails.Inc()
			return nil, fmt.Errorf("%w: %s", ErrCircuitOpen, addr)
		}
		resp, err := c.caller.Call(addr, req)
		if err == nil {
			c.breaker.success(addr)
			c.observeEpoch(addr, resp.Epoch)
			if resp.Status == wire.StatusBusy {
				c.metrics.busyRetries.Inc()
			}
			if resp.Status != wire.StatusBusy || i >= c.cfg.OpRetries {
				return resp, nil
			}
			d := c.backoff(i)
			if hint := time.Duration(resp.RetryAfter); hint > d {
				d = hint
			}
			c.sleepBounded(d, deadline)
			continue
		}
		c.breaker.failure(addr)
		lastErr = err
		if i >= c.cfg.OpRetries {
			return nil, lastErr
		}
		c.metrics.retries.Inc()
		c.sleepBounded(c.backoff(i), deadline)
	}
}

// backoff returns the full-jitter delay for retry attempt i: uniform
// in (0, min(RetryMax, RetryBase<<i)].
func (c *Client) backoff(i int) time.Duration {
	if i > 20 {
		i = 20 // avoid shifting into the sign bit
	}
	d := c.cfg.RetryBase << uint(i)
	if d <= 0 || d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d))) + 1
}

// busyDelay is the wait before re-routing after an exhausted Busy
// exchange: the server's hint when present, otherwise one jittered
// backoff step.
func (c *Client) busyDelay(resp *wire.Response, attempt int) time.Duration {
	if hint := time.Duration(resp.RetryAfter); hint > 0 {
		return hint
	}
	return c.backoff(attempt)
}

// sleepBounded sleeps for d, clamped so it never crosses deadline.
func (c *Client) sleepBounded(d time.Duration, deadline time.Time) {
	if !deadline.IsZero() {
		if rem := time.Until(deadline); d > rem {
			d = rem
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// expired reports whether a non-zero deadline has passed.
func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

// reportFailure tells a random alive manager that accused is down and
// adopts the table the manager answers with. As a last resort (every
// other instance unreachable — e.g. a single-node deployment) it
// fails the instance in the local table only. The walk over managers
// shares the calling operation's deadline budget.
func (c *Client) reportFailure(table *ring.Table, accused ring.InstanceID, deadline time.Time) error {
	// Mark locally first so subsequent attempts avoid the dead node
	// even before the manager broadcast lands.
	c.failLocally(accused)

	idxs := c.rngPerm(len(table.Instances))
	for _, i := range idxs {
		if expired(deadline) {
			break
		}
		peer := table.Instances[i]
		if peer.ID == accused || table.Status[i] != ring.Alive {
			continue
		}
		req := &wire.Request{Op: wire.OpReport, Key: string(accused)}
		if !deadline.IsZero() {
			req.Budget = uint64(time.Until(deadline))
		}
		resp, err := c.caller.Call(peer.Addr, req)
		if err != nil {
			continue
		}
		if resp.Status == wire.StatusOK {
			if t, terr := ring.DecodeTable(resp.Table); terr == nil {
				c.adoptTable(t)
			}
			return nil
		}
		if resp.Status == wire.StatusError && resp.Err == "core: accused instance is alive" {
			// False alarm (transient glitch): undo the local mark.
			c.reviveLocally(accused)
			return nil
		}
	}
	if table.AliveCount() <= 1 {
		return fmt.Errorf("no manager reachable for failure report")
	}
	return nil // local mark stands; broadcast will arrive eventually
}

// failLocally marks an instance failed in the client's table and
// fails its partitions over to first replicas, mirroring what the
// manager will broadcast.
func (c *Client) failLocally(id ring.InstanceID) {
	if c.shared != nil {
		// The shared instance learns through the manager broadcast
		// that reportFailure triggers synchronously.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := c.table.PlanFailure(id, maxInt(c.cfg.Replicas, 1))
	if err != nil {
		return
	}
	if nt, err := c.table.Apply(d); err == nil {
		c.table = nt
	}
}

func (c *Client) reviveLocally(id ring.InstanceID) {
	if c.shared != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.table.IndexOf(id)
	if idx >= 0 {
		// The local table may be a published (shared-immutability)
		// snapshot; mutate a clone.
		nt := c.table.Clone()
		nt.Status[idx] = ring.Alive
		c.table = nt
	}
}

// adoptTable replaces the local table when t is newer; shared clients
// forward it to their co-located instance instead, which is the
// authoritative holder.
func (c *Client) adoptTable(t *ring.Table) {
	if c.shared != nil {
		if t.Epoch > c.shared.Epoch() {
			c.shared.Handle(&wire.Request{Op: wire.OpDelta, Aux: ring.EncodeTable(t)})
		}
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Epoch > c.table.Epoch {
		c.table = t
	}
}

// RefreshMembership pulls the current table from a random alive
// instance (useful after out-of-band membership changes).
func (c *Client) RefreshMembership() error {
	table := c.snapshot()
	for _, i := range c.rngPerm(len(table.Instances)) {
		if table.Status[i] != ring.Alive {
			continue
		}
		resp, err := c.caller.Call(table.Instances[i].Addr, &wire.Request{Op: wire.OpMembership})
		if err != nil || resp.Status != wire.StatusOK {
			continue
		}
		if t, err := ring.DecodeTable(resp.Table); err == nil {
			c.adoptTable(t)
			return nil
		}
	}
	return errors.New("zht: no instance reachable for membership refresh")
}

func (c *Client) rngPerm(n int) []int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Perm(n)
}
