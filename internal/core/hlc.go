package core

import (
	"sync"
	"time"

	"zht/internal/ring"
)

// hlc is the instance's hybrid logical clock: the source of the
// version stamps that order writes for last-writer-wins resolution
// across replicas (DESIGN.md §12). A stamp packs wall-clock
// milliseconds in the top 48 bits (microseconds would overflow 48
// bits already; milliseconds last ~8900 years) and a 16-bit node
// hash in the low bits, so stamps from different nodes in the same
// millisecond still differ and compare deterministically. Next never
// returns the same or a smaller value twice (a burst faster than the
// wall clock advances by borrowing future milliseconds, keeping the
// node bits intact), and Observe folds in
// stamps seen on incoming replica legs and repair pairs, so a node
// whose wall clock lags a peer's still stamps its next local write
// above everything it has already applied.
type hlc struct {
	mu   sync.Mutex
	last uint64
	node uint64 // low 16 bits of every stamp
}

// hlcNodeBits is how many low bits of a stamp carry the node hash.
const hlcNodeBits = 16

// newHLC seeds a clock with the node hash derived from the
// instance's ring ID (stable across restarts).
func newHLC(id ring.InstanceID) *hlc {
	h := uint64(14695981039346656037)
	for _, b := range []byte(id) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &hlc{node: h & (1<<hlcNodeBits - 1)}
}

// Next returns a stamp strictly greater than every stamp this clock
// has returned or observed.
func (c *hlc) Next() uint64 {
	phys := uint64(time.Now().UnixMilli())
	c.mu.Lock()
	// Bursts faster than the wall clock (or a clock running behind an
	// observed peer's) borrow the next millisecond rather than bumping
	// the raw stamp, so the low bits always stay this node's hash.
	if lastPhys := c.last >> hlcNodeBits; phys <= lastPhys {
		phys = lastPhys + 1
	}
	v := phys<<hlcNodeBits | c.node
	c.last = v
	c.mu.Unlock()
	return v
}

// Observe advances the clock past an externally produced stamp; zero
// (unversioned) observations are no-ops.
func (c *hlc) Observe(v uint64) {
	if v == 0 {
		return
	}
	c.mu.Lock()
	if v > c.last {
		c.last = v
	}
	c.mu.Unlock()
}
