package novoht

// Tests for the storage-engine rebuild: the sharded table + group-
// commit WAL must stay observably equivalent to the seed store's
// sequential semantics — under concurrency, across clean close and
// reopen, and across injected crashes at arbitrary byte offsets.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"zht/internal/chaos"
	"zht/internal/storage"
)

// TestConcurrentEquivalenceRandomized drives every mutating op from
// concurrent goroutines over disjoint keyspaces and checks the store
// against a per-goroutine reference model, then (for persistent
// modes) closes, reopens, and checks the replayed state again. Keys
// are disjoint per goroutine, so each goroutine's model is exact even
// though the interleaving across goroutines is not controlled.
func TestConcurrentEquivalenceRandomized(t *testing.T) {
	modes := []storage.Durability{
		storage.DurabilityNone, storage.DurabilityAsync,
		storage.DurabilityGroup, storage.DurabilitySync,
	}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "eq.log")
			s, err := Open(Options{Path: path, Durability: mode, Shards: 4, CompactEvery: 200})
			if err != nil {
				t.Fatal(err)
			}
			const workers, opsPer = 8, 150
			models := make([]map[string][]byte, workers)
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				models[w] = make(map[string][]byte)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					model := models[w]
					for i := 0; i < opsPer; i++ {
						k := fmt.Sprintf("w%dk%d", w, rng.Intn(20))
						v := []byte(fmt.Sprintf("w%d-%d", w, i))
						switch rng.Intn(6) {
						case 0, 1:
							if err := s.Put(k, v); err != nil {
								errCh <- err
								return
							}
							model[k] = v
						case 2:
							ok, err := s.PutIfAbsent(k, v)
							if err != nil {
								errCh <- err
								return
							}
							_, had := model[k]
							if ok == had {
								errCh <- fmt.Errorf("PutIfAbsent(%s) = %v, model had=%v", k, ok, had)
								return
							}
							if ok {
								model[k] = v
							}
						case 3:
							if err := s.Append(k, v); err != nil {
								errCh <- err
								return
							}
							model[k] = append(append([]byte(nil), model[k]...), v...)
						case 4:
							ok, cur, err := s.Cas(k, model[k], v)
							if err != nil {
								errCh <- err
								return
							}
							if !ok {
								errCh <- fmt.Errorf("Cas(%s) failed, cur=%q model=%q", k, cur, model[k])
								return
							}
							model[k] = v
						case 5:
							ok, err := s.Remove(k)
							if err != nil {
								errCh <- err
								return
							}
							_, had := model[k]
							if ok != had {
								errCh <- fmt.Errorf("Remove(%s) = %v, model had=%v", k, ok, had)
								return
							}
							delete(model, k)
						}
						got, ok, err := s.Get(k)
						if err != nil {
							errCh <- err
							return
						}
						want, had := model[k]
						if ok != had || (ok && !bytes.Equal(got, want)) {
							errCh <- fmt.Errorf("Get(%s) = %q %v, model %q %v", k, got, ok, want, had)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			merged := make(map[string][]byte)
			for _, m := range models {
				for k, v := range m {
					merged[k] = v
				}
			}
			checkEqualsModel(t, s, merged)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if mode == storage.DurabilityNone {
				return // volatile: nothing to replay
			}
			r, err := Open(Options{Path: path, Durability: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			checkEqualsModel(t, r, merged)
		})
	}
}

// isEvicted reports whether key's value currently lives only on disk.
func isEvicted(s *Store, key string) bool {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.m[key]
	return ok && e.val == nil && e.vlen > 0
}

// checkEqualsModel asserts the store and the model hold exactly the
// same pairs, probing both directions (ForEach for extras, Get for
// losses).
func checkEqualsModel(t *testing.T, s *Store, model map[string][]byte) {
	t.Helper()
	if s.Len() != len(model) {
		t.Errorf("store has %d keys, model %d", s.Len(), len(model))
	}
	seen := 0
	err := s.ForEach(func(k string, v []byte) error {
		want, ok := model[k]
		if !ok {
			return fmt.Errorf("store has unexpected key %q", k)
		}
		if !bytes.Equal(v, want) {
			return fmt.Errorf("key %q = %q, model %q", k, v, want)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Error(err)
	}
	if seen != len(model) {
		t.Errorf("ForEach visited %d keys, model has %d", seen, len(model))
	}
}

// TestGroupCrashReplay injects a WAL crash mid-run under group
// durability and verifies the recovery contract: every acknowledged
// mutation survives reopen, and any key's recovered state is a
// prefix-consistent point of its own submission order (acknowledged
// prefix, possibly extended by submitted-but-unacknowledged writes
// that physically reached the file before the tear).
func TestGroupCrashReplay(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "crash.log")
			fault := chaos.NewWALCrash(seed, 2_000, 20_000)
			s, err := Open(Options{Path: path, Durability: storage.DurabilityGroup, Fault: fault})
			if err != nil {
				t.Fatal(err)
			}
			const workers = 4
			acked := make([]int, workers)     // highest acked sequence per worker
			submitted := make([]int, workers) // highest submitted sequence per worker
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 1; i <= 500; i++ {
						submitted[w] = i
						err := s.Put(fmt.Sprintf("w%d", w), []byte(fmt.Sprintf("seq%06d", i)))
						if err != nil {
							if !errors.Is(err, storage.ErrBroken) {
								t.Errorf("worker %d: unexpected error %v", w, err)
							}
							return
						}
						acked[w] = i
					}
				}(w)
			}
			wg.Wait()
			if !fault.Crashed() {
				t.Fatal("crash never fired; widen the byte budget")
			}
			s.Close() // returns the sticky error; the log is what matters

			r, err := Open(Options{Path: path, Durability: storage.DurabilityGroup})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for w := 0; w < workers; w++ {
				v, ok, err := r.Get(fmt.Sprintf("w%d", w))
				if err != nil {
					t.Fatal(err)
				}
				if acked[w] == 0 {
					continue // nothing guaranteed for this key
				}
				if !ok {
					t.Fatalf("worker %d: lost all %d acked writes", w, acked[w])
				}
				var seq int
				if _, err := fmt.Sscanf(string(v), "seq%d", &seq); err != nil {
					t.Fatalf("worker %d: unparseable recovered value %q", w, v)
				}
				if seq < acked[w] || seq > submitted[w] {
					t.Errorf("worker %d: recovered seq %d outside [acked %d, submitted %d]",
						w, seq, acked[w], submitted[w])
				}
			}
		})
	}
}

// TestTornWriteEveryByteOffset truncates the log at every byte offset
// inside the final record and verifies recovery at each: the torn
// record never surfaces, every earlier record survives, and the
// reopened store accepts new writes.
func TestTornWriteEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.log")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep-a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep-b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	prefix := st.Size() // log length before the final record
	if err := s.Put("torn", []byte("this record will be cut at every offset")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) <= prefix {
		t.Fatalf("final record added no bytes (%d <= %d)", len(full), prefix)
	}

	for cut := prefix; cut <= int64(len(full)); cut++ {
		tpath := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(Options{Path: tpath})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if v, ok, _ := r.Get("keep-a"); !ok || string(v) != "alpha" {
			t.Fatalf("cut=%d: keep-a = %q %v", cut, v, ok)
		}
		if v, ok, _ := r.Get("keep-b"); !ok || string(v) != "beta" {
			t.Fatalf("cut=%d: keep-b = %q %v", cut, v, ok)
		}
		_, ok, _ := r.Get("torn")
		if wantTorn := cut == int64(len(full)); ok != wantTorn {
			t.Fatalf("cut=%d: torn present=%v, want %v", cut, ok, wantTorn)
		}
		// The truncated tail must not poison later writes.
		if err := r.Put("after", []byte("x")); err != nil {
			t.Fatalf("cut=%d: put after recovery: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestSlowEvictedReadDoesNotBlockOtherShards pins the sharding win
// the refactor exists for: a disk read faulting an evicted value back
// in holds only its own shard's lock, so a Put to a key in a
// different shard proceeds while the read is stuck.
func TestSlowEvictedReadDoesNotBlockOtherShards(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 1, Shards: 4})
	victim := "victim"
	// Pick a second key that provably hashes to a different shard.
	other := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("other%02d", i)
		if s.shardOf(k) != s.shardOf(victim) {
			other = k
			break
		}
	}
	if other == "" {
		t.Fatal("no key found outside the victim's shard")
	}
	if err := s.Put(victim, []byte("evict-me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(other, []byte("resident")); err != nil {
		t.Fatal(err)
	}
	// One of the two values is now on disk (bound = 1). Whichever it
	// is, the update below targets the *resident* one, so the Put
	// neither needs the evicted key's shard lock nor triggers
	// eviction (updates don't grow the resident count).
	resident := other
	if !isEvicted(s, victim) {
		victim, resident = resident, victim
	}
	if !isEvicted(s, victim) || isEvicted(s, resident) {
		t.Fatalf("expected exactly one evicted value (victim=%v resident=%v)",
			isEvicted(s, victim), isEvicted(s, resident))
	}

	inRead := make(chan struct{})
	release := make(chan struct{})
	testSlowLoad = func() {
		close(inRead)
		<-release
	}
	defer func() { testSlowLoad = nil }()

	readDone := make(chan error, 1)
	go func() {
		_, _, err := s.Get(victim)
		readDone <- err
	}()
	<-inRead // evicted read is parked holding the victim's shard lock

	putDone := make(chan error, 1)
	go func() { putDone <- s.Put(resident, []byte("updated")) }()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put to a different shard blocked behind a slow evicted read")
	}

	close(release)
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	if v, ok, err := s.Get(resident); err != nil || !ok || string(v) != "updated" {
		t.Fatalf("resident key = %q %v %v", v, ok, err)
	}
}

// TestCloseReopenEquivalence checks the clean-shutdown half of the
// durability contract: Close drains and fsyncs the WAL even in async
// mode, so a close-then-reopen round trip preserves the exact store
// contents — including values that were evicted to disk.
func TestCloseReopenEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.log")
	s, err := Open(Options{Path: path, Durability: storage.DurabilityAsync, MaxMemValues: 8})
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string][]byte)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 64)
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	for i := 0; i < 64; i += 3 {
		k := fmt.Sprintf("k%03d", i)
		if _, err := s.Remove(k); err != nil {
			t.Fatal(err)
		}
		delete(model, k)
	}
	for i := 1; i < 64; i += 3 {
		k := fmt.Sprintf("k%03d", i)
		if err := s.Append(k, []byte("+tail")); err != nil {
			t.Fatal(err)
		}
		model[k] = append(model[k], []byte("+tail")...)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Path: path, Durability: storage.DurabilityAsync})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkEqualsModel(t, r, model)
}
