package novoht

import (
	"io"

	"zht/internal/storage"
)

// Export and Import move a whole store image between nodes using the
// engine-agnostic stream format defined in internal/storage (ZHT's
// partition migration, paper §III.C, moves entire partitions — "as
// easy as moving a file" — instead of rehashing key/value pairs).
// These methods remain for convenience; new code should call
// storage.Export and storage.Import directly on any storage.KV.

// Export writes a self-contained snapshot of the store to w.
func (s *Store) Export(w io.Writer) error {
	return storage.Export(w, s)
}

// Import loads pairs from an Export stream into the store, replacing
// values for keys that already exist. It returns the number of pairs
// imported.
func (s *Store) Import(r io.Reader) (int, error) {
	return storage.Import(r, s)
}
