package novoht

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Export and Import move a whole store image between nodes. ZHT's
// partition migration (paper §III.C "Data Migration") moves entire
// partitions — "as easy as moving a file" — instead of rehashing
// key/value pairs; each partition is backed by one NoVoHT store, and
// these functions produce/consume the file image that travels.

// exportMagic precedes every export stream.
var exportMagic = []byte("NOVOEXP1")

// Export writes a self-contained snapshot of the store to w.
func (s *Store) Export(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(exportMagic); err != nil {
		return err
	}
	var off int64
	err := s.ForEach(func(key string, val []byte) error {
		n, _, err := writeRecordTo(bw, off, recPut, key, val)
		off += n
		return err
	})
	if err != nil {
		return err
	}
	// Terminator: a zero type byte marks a clean end of stream.
	if err := bw.WriteByte(0); err != nil {
		return err
	}
	return bw.Flush()
}

// Import loads pairs from an Export stream into the store, replacing
// values for keys that already exist. It returns the number of pairs
// imported.
func (s *Store) Import(r io.Reader) (int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(exportMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("novoht: import: %w", err)
	}
	if string(magic) != string(exportMagic) {
		return 0, errors.New("novoht: import: bad magic")
	}
	count := 0
	for {
		if b, err := br.ReadByte(); err != nil {
			return count, fmt.Errorf("novoht: import: missing terminator: %w", err)
		} else if b == 0 {
			return count, nil
		} else if err := br.UnreadByte(); err != nil {
			return count, err
		}
		typ, key, val, _, err := readRecord(br)
		if err != nil {
			return count, fmt.Errorf("novoht: import: %w", err)
		}
		if typ != recPut {
			return count, errors.New("novoht: import: unexpected record type")
		}
		if err := s.Put(key, val); err != nil {
			return count, err
		}
		count++
	}
}
