package novoht

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Additional edge-case coverage for NoVoHT.

func TestSyncDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.log")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("v"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// After Sync the bytes must be on the file itself, not only the
	// writer buffer.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("log empty after Sync")
	}
	s.Close()
	if err := s.Sync(); err != ErrClosed {
		t.Errorf("Sync after close = %v", err)
	}
}

func TestStatsTracksState(t *testing.T) {
	s := openTemp(t, Options{CompactEvery: -1, GCRatio: 0.99})
	st := s.Stats()
	if st.Keys != 0 || !st.Persistent {
		t.Errorf("fresh stats: %+v", st)
	}
	s.Put("a", []byte("1"))
	s.Put("a", []byte("2")) // creates dead bytes
	st = s.Stats()
	if st.Keys != 1 || st.DeadBytes == 0 || st.LogBytes <= st.DeadBytes {
		t.Errorf("stats after overwrite: %+v", st)
	}
}

func TestRecoveryAppendOnlyKey(t *testing.T) {
	// A key created purely by appends (no Put record) must recover.
	path := filepath.Join(t.TempDir(), "app.log")
	s, _ := Open(Options{Path: path})
	for i := 0; i < 5; i++ {
		if err := s.Append("dir", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v, ok, _ := r.Get("dir")
	if !ok || string(v) != "abcde" {
		t.Fatalf("append-only recovery = %q %v", v, ok)
	}
}

func TestExportIncludesEvictedValues(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 2, CompactEvery: -1, GCRatio: 0.99})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
	}
	if st := s.Stats(); st.Resident > 3 {
		t.Fatalf("eviction ineffective: %d resident", st.Resident)
	}
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := openTemp(t, Options{})
	n, err := dst.Import(&buf)
	if err != nil || n != 20 {
		t.Fatalf("import = %d %v", n, err)
	}
	for i := 0; i < 20; i++ {
		v, ok, _ := dst.Get(fmt.Sprintf("k%02d", i))
		if !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("k%02d = %q %v", i, v, ok)
		}
	}
}

func TestCompactWithEvictedEntries(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 2, CompactEvery: -1, GCRatio: 0.99, SyncOnCompact: true})
	for i := 0; i < 30; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Evicted entries must have been relocated to valid offsets.
	for i := 0; i < 30; i++ {
		v, ok, err := s.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("k%02d after compact = %q %v %v", i, v, ok, err)
		}
	}
}

func TestRemoveEvictedEntry(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 1, CompactEvery: -1, GCRatio: 0.99})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("value"))
	}
	removed, err := s.Remove("k0")
	if err != nil || !removed {
		t.Fatalf("remove evicted = %v %v", removed, err)
	}
	if _, ok, _ := s.Get("k0"); ok {
		t.Error("evicted key still present after remove")
	}
}

func TestCasOnEvictedEntry(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 1, CompactEvery: -1, GCRatio: 0.99})
	s.Put("target", []byte("old"))
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("fill%d", i), []byte("x"))
	}
	ok, _, err := s.Cas("target", []byte("old"), []byte("new"))
	if err != nil || !ok {
		t.Fatalf("cas on evicted = %v %v", ok, err)
	}
	v, _, _ := s.Get("target")
	if string(v) != "new" {
		t.Errorf("value = %q", v)
	}
}

func TestAppendToEvictedEntry(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 1, CompactEvery: -1, GCRatio: 0.99})
	s.Put("log", []byte("start"))
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("fill%d", i), []byte("x"))
	}
	if err := s.Append("log", []byte("+more")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get("log")
	if string(v) != "start+more" {
		t.Errorf("append to evicted = %q", v)
	}
}

func TestLargeValues(t *testing.T) {
	s := openTemp(t, Options{})
	big := bytes.Repeat([]byte{0xEE}, 8<<20)
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("big")
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("big value: ok=%v err=%v len=%d", ok, err, len(v))
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := openTemp(t, Options{})
	s.Put("k", []byte("original"))
	v, _, _ := s.Get("k")
	v[0] = 'X'
	v2, _, _ := s.Get("k")
	if string(v2) != "original" {
		t.Error("Get returned aliased internal buffer")
	}
}
