package novoht

import (
	"path/filepath"
	"testing"

	"zht/internal/storage"
)

// The storage.VersionedKV contract on the flagship engine: stamps
// persist with their values, last-writer-wins mutations never let an
// older version replace a newer one, and crash replay + compaction
// both keep the newest stamp.

func TestVersionedPutGet(t *testing.T) {
	s := openTemp(t, Options{})
	var _ storage.VersionedKV = s

	if err := s.PutV("k", []byte("v1"), 10); err != nil {
		t.Fatal(err)
	}
	v, ver, ok, err := s.GetV("k")
	if err != nil || !ok || string(v) != "v1" || ver != 10 {
		t.Fatalf("GetV = %q %d %v %v", v, ver, ok, err)
	}
	// GetAppendV sees the same state through the scratch path.
	buf, ver, ok, err := s.GetAppendV(nil, "k")
	if err != nil || !ok || string(buf) != "v1" || ver != 10 {
		t.Fatalf("GetAppendV = %q %d %v %v", buf, ver, ok, err)
	}
	// Unversioned reads still work and ignore the stamp.
	if v, ok, _ := s.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	// Plain Put resets the stamp to 0 (an unversioned write).
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, ver, _, _ := s.GetV("k"); ver != 0 {
		t.Fatalf("ver after plain Put = %d, want 0", ver)
	}
}

func TestPutLWW(t *testing.T) {
	s := openTemp(t, Options{})
	// An absent key accepts any write, even version 0.
	if ok, err := s.PutLWW("k", []byte("a"), 0); err != nil || !ok {
		t.Fatalf("PutLWW absent = %v %v", ok, err)
	}
	if ok, err := s.PutLWW("k", []byte("b"), 5); err != nil || !ok {
		t.Fatalf("PutLWW newer = %v %v", ok, err)
	}
	// Equal and older versions are rejected without touching the store.
	for _, ver := range []uint64{5, 3} {
		if ok, _ := s.PutLWW("k", []byte("stale"), ver); ok {
			t.Fatalf("PutLWW(%d) accepted a non-newer write", ver)
		}
	}
	if v, ver, _, _ := s.GetV("k"); string(v) != "b" || ver != 5 {
		t.Fatalf("state after stale writes = %q %d", v, ver)
	}
}

func TestRemoveLWW(t *testing.T) {
	s := openTemp(t, Options{})
	if removed, err := s.RemoveLWW("missing", 9); err != nil || removed {
		t.Fatalf("RemoveLWW missing = %v %v", removed, err)
	}
	if err := s.PutV("k", []byte("v"), 5); err != nil {
		t.Fatal(err)
	}
	if removed, _ := s.RemoveLWW("k", 5); removed {
		t.Fatal("RemoveLWW with equal version removed the key")
	}
	if removed, _ := s.RemoveLWW("k", 4); removed {
		t.Fatal("RemoveLWW with older version removed the key")
	}
	if removed, err := s.RemoveLWW("k", 6); err != nil || !removed {
		t.Fatalf("RemoveLWW newer = %v %v", removed, err)
	}
	if _, _, ok, _ := s.GetV("k"); ok {
		t.Fatal("key present after winning RemoveLWW")
	}
}

func TestVersionSurvivesReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openTemp(t, Options{Path: path})
	if err := s.PutV("a", []byte("va"), 7); err != nil {
		t.Fatal(err)
	}
	if err := s.PutV("b", []byte("vb"), 1<<50); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", []byte("vc")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTemp(t, Options{Path: path})
	for _, tc := range []struct {
		key string
		val string
		ver uint64
	}{{"a", "va", 7}, {"b", "vb", 1 << 50}, {"c", "vc", 0}} {
		v, ver, ok, err := r.GetV(tc.key)
		if err != nil || !ok || string(v) != tc.val || ver != tc.ver {
			t.Fatalf("%s after replay = %q %d %v %v, want %q %d",
				tc.key, v, ver, ok, err, tc.val, tc.ver)
		}
	}
}

func TestVersionSurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openTemp(t, Options{Path: path})
	for i := 0; i < 50; i++ {
		if err := s.PutV("k", []byte("x"), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ver, ok, _ := s.GetV("k"); !ok || ver != 50 {
		t.Fatalf("ver after compaction = %d, want 50", ver)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTemp(t, Options{Path: path})
	if _, ver, ok, _ := r.GetV("k"); !ok || ver != 50 {
		t.Fatalf("ver after compaction+replay = %d, want 50", ver)
	}
}

func TestVersionedEviction(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 2})
	for i, k := range []string{"a", "b", "c", "d"} {
		if err := s.PutV(k, []byte("value-"+k), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Some values are now evicted; reads must fault them back with
	// their stamps intact.
	for i, k := range []string{"a", "b", "c", "d"} {
		v, ver, ok, err := s.GetV(k)
		if err != nil || !ok || string(v) != "value-"+k || ver != uint64(i+1) {
			t.Fatalf("%s after eviction = %q %d %v %v", k, v, ver, ok, err)
		}
	}
}
