package novoht

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"zht/internal/storage"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "novoht.log")
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRemove(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
	if err := s.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get("a"); string(v) != "2" {
		t.Errorf("overwrite: got %q", v)
	}
	removed, err := s.Remove("a")
	if err != nil || !removed {
		t.Fatalf("Remove = %v %v", removed, err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Error("key present after Remove")
	}
	if removed, _ := s.Remove("a"); removed {
		t.Error("second Remove reported true")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestEmptyValueAndKey(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("", nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty key/value: %q %v %v", v, ok, err)
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := openTemp(t, Options{})
	ok, err := s.PutIfAbsent("k", []byte("v1"))
	if err != nil || !ok {
		t.Fatalf("first PutIfAbsent = %v %v", ok, err)
	}
	ok, err = s.PutIfAbsent("k", []byte("v2"))
	if err != nil || ok {
		t.Fatalf("second PutIfAbsent = %v %v", ok, err)
	}
	if v, _, _ := s.Get("k"); string(v) != "v1" {
		t.Errorf("value clobbered: %q", v)
	}
}

func TestAppend(t *testing.T) {
	s := openTemp(t, Options{})
	// Append creates when absent (FusionFS appends directory entries
	// under a key that may not exist yet).
	if err := s.Append("dir", []byte("a,")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("dir", []byte("b,")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("dir", []byte("c")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("dir")
	if err != nil || !ok || string(v) != "a,b,c" {
		t.Fatalf("Append result = %q %v %v", v, ok, err)
	}
}

func TestAppendConcurrent(t *testing.T) {
	s := openTemp(t, Options{})
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Append("shared", []byte{byte('a' + w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v, _, _ := s.Get("shared")
	if len(v) != workers*per {
		t.Fatalf("appended value has %d bytes, want %d", len(v), workers*per)
	}
	counts := map[byte]int{}
	for _, b := range v {
		counts[b]++
	}
	for w := 0; w < workers; w++ {
		if counts[byte('a'+w)] != per {
			t.Errorf("worker %d contributed %d bytes, want %d", w, counts[byte('a'+w)], per)
		}
	}
}

func TestCas(t *testing.T) {
	s := openTemp(t, Options{})
	// Expect-absent insert.
	ok, cur, err := s.Cas("t", nil, []byte("queued"))
	if err != nil || !ok || cur != nil {
		t.Fatalf("cas absent = %v %q %v", ok, cur, err)
	}
	// Wrong expectation.
	ok, cur, err = s.Cas("t", []byte("running"), []byte("done"))
	if err != nil || ok || string(cur) != "queued" {
		t.Fatalf("cas mismatch = %v %q %v", ok, cur, err)
	}
	// Correct swap.
	ok, _, err = s.Cas("t", []byte("queued"), []byte("running"))
	if err != nil || !ok {
		t.Fatalf("cas swap = %v %v", ok, err)
	}
	if v, _, _ := s.Get("t"); string(v) != "running" {
		t.Errorf("after cas: %q", v)
	}
	// Expect-absent on present key fails and reports current.
	ok, cur, _ = s.Cas("t", nil, []byte("x"))
	if ok || string(cur) != "running" {
		t.Errorf("cas expect-absent on present = %v %q", ok, cur)
	}
	// Cas on missing key with expectation fails.
	ok, cur, _ = s.Cas("missing", []byte("x"), []byte("y"))
	if ok || cur != nil {
		t.Errorf("cas missing = %v %q", ok, cur)
	}
}

func TestRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.log")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i += 2 {
		if _, err := s.Remove(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append("k099", []byte("-suffix")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 75 {
		t.Errorf("recovered %d keys, want 75", r.Len())
	}
	if v, ok, _ := r.Get("k099"); !ok || string(v) != "v99-suffix" {
		t.Errorf("k099 = %q %v", v, ok)
	}
	if _, ok, _ := r.Get("k000"); ok {
		t.Error("removed key resurrected")
	}
	if v, ok, _ := r.Get("k001"); !ok || string(v) != "v1" {
		t.Errorf("k001 = %q %v", v, ok)
	}
}

func TestRecoveryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	s, _ := Open(Options{Path: path})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{'x'}, 100))
	}
	s.Close()
	// Simulate a crash mid-write: chop bytes off the final record.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-37); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 9 {
		t.Errorf("recovered %d keys after torn tail, want 9", r.Len())
	}
	// The store must be writable again (torn tail truncated away).
	if err := r.Put("new", []byte("val")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if v, ok, _ := r2.Get("new"); !ok || string(v) != "val" {
		t.Errorf("post-torn write lost: %q %v", v, ok)
	}
}

func TestRecoveryCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.log")
	s, _ := Open(Options{Path: path})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("value"))
	}
	s.Close()
	// Flip a byte early in the log: replay must stop there and keep
	// only the prefix.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xff}, 20)
	f.Close()
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() >= 10 {
		t.Errorf("corrupt log replayed fully: %d keys", r.Len())
	}
}

func TestCompactionReclaimsSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.log")
	s, err := Open(Options{Path: path, CompactEvery: -1, GCRatio: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{'v'}, 1000)
	for i := 0; i < 100; i++ {
		s.Put("hot", val) // 99 dead versions
	}
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.LogBytes >= before.LogBytes/10 {
		t.Errorf("compaction: %d -> %d bytes; want >10x shrink", before.LogBytes, after.LogBytes)
	}
	if after.DeadBytes != 0 {
		t.Errorf("dead bytes after compact = %d", after.DeadBytes)
	}
	if v, ok, _ := s.Get("hot"); !ok || !bytes.Equal(v, val) {
		t.Error("value lost by compaction")
	}
	// Store must remain fully usable and recoverable after compaction.
	s.Put("post", []byte("compact"))
	s.Close()
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok, _ := r.Get("post"); !ok || string(v) != "compact" {
		t.Error("post-compaction write lost")
	}
	if v, ok, _ := r.Get("hot"); !ok || !bytes.Equal(v, val) {
		t.Error("compacted value lost after recovery")
	}
}

func TestAutoCompactByMutations(t *testing.T) {
	s := openTemp(t, Options{CompactEvery: 50, GCRatio: 0.99})
	for i := 0; i < 120; i++ {
		if err := s.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Mutations >= 50 {
		t.Errorf("auto-compaction never ran: mutations=%d", st.Mutations)
	}
}

func TestAutoCompactByDeadRatio(t *testing.T) {
	s := openTemp(t, Options{CompactEvery: -1, GCRatio: 0.5})
	// Values large enough that the 64 KiB dead-bytes floor is crossed
	// after a single overwrite, so the ratio trigger governs.
	val := bytes.Repeat([]byte{'v'}, 128<<10)
	for i := 0; i < 20; i++ {
		if err := s.Put("k", val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if float64(st.DeadBytes) > 0.6*float64(st.LogBytes) {
		t.Errorf("dead ratio %.2f exceeds GC threshold; auto-compact did not run", float64(st.DeadBytes)/float64(st.LogBytes))
	}
	if st.LogBytes > 3*int64(len(val)) {
		t.Errorf("log grew to %d bytes despite GC (value is %d)", st.LogBytes, len(val))
	}
}

func TestEviction(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 10, CompactEvery: -1, GCRatio: 0.99})
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Resident > 11 {
		t.Errorf("resident = %d, want <= bound+1", st.Resident)
	}
	if st.Keys != 100 {
		t.Errorf("keys = %d", st.Keys)
	}
	// Every value, resident or evicted, must read back correctly.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, ok, err := s.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("%s = %q %v %v", k, v, ok, err)
		}
	}
}

func TestEvictionWithAppendsAndCompaction(t *testing.T) {
	s := openTemp(t, Options{MaxMemValues: 5, CompactEvery: -1, GCRatio: 0.99})
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := s.Put(k, []byte("base")); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(k, []byte("+more")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok, err := s.Get(k)
		if err != nil || !ok || string(v) != "base+more" {
			t.Fatalf("%s = %q %v %v", k, v, ok, err)
		}
	}
}

func TestEvictionRequiresPath(t *testing.T) {
	if _, err := Open(Options{MaxMemValues: 5}); err == nil {
		t.Error("MaxMemValues without Path should fail")
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get("k"); !ok || string(v) != "v" {
		t.Errorf("memory store get = %q %v", v, ok)
	}
	if err := s.Compact(); err != ErrNoPersistence {
		t.Errorf("Compact on memory store = %v, want ErrNoPersistence", err)
	}
	if st := s.Stats(); st.Persistent {
		t.Error("memory store reports persistent")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := Open(Options{})
	s.Close()
	if err := s.Put("k", nil); err != ErrClosed {
		t.Errorf("Put after close = %v", err)
	}
	if _, err := s.Remove("k"); err != ErrClosed {
		t.Errorf("Remove after close = %v", err)
	}
	if err := s.Append("k", nil); err != ErrClosed {
		t.Errorf("Append after close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestForEach(t *testing.T) {
	s := openTemp(t, Options{})
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		s.Put(k, []byte(v))
	}
	got := map[string]string{}
	err := s.ForEach(func(k string, v []byte) error {
		got[k] = string(v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d keys", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("ForEach[%s] = %q want %q", k, got[k], v)
		}
	}
	sentinel := fmt.Errorf("stop")
	if err := s.ForEach(func(string, []byte) error { return sentinel }); err != sentinel {
		t.Errorf("ForEach error propagation = %v", err)
	}
}

func TestExportImport(t *testing.T) {
	src := openTemp(t, Options{MaxMemValues: 3, CompactEvery: -1, GCRatio: 0.99})
	for i := 0; i < 20; i++ {
		src.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := openTemp(t, Options{})
	n, err := dst.Import(&buf)
	if err != nil || n != 20 {
		t.Fatalf("Import = %d %v", n, err)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok, _ := dst.Get(k)
		if !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("%s = %q %v", k, v, ok)
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	s := openTemp(t, Options{})
	if _, err := s.Import(bytes.NewReader([]byte("not an export"))); err == nil {
		t.Error("garbage import accepted")
	}
	if _, err := s.Import(bytes.NewReader(nil)); err == nil {
		t.Error("empty import accepted")
	}
	// Truncated stream (magic but no terminator).
	if _, err := s.Import(bytes.NewReader(storage.ExportMagic)); err == nil {
		t.Error("unterminated import accepted")
	}
}

// TestPropertyModelCheck runs randomized op sequences against a plain
// map model, then restarts the store and checks the recovered state.
func TestPropertyModelCheck(t *testing.T) {
	err := quick.Check(func(ops []struct {
		Kind uint8
		Key  uint8
		Val  []byte
	}) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "model.log")
		s, err := Open(Options{Path: path, CompactEvery: 17, GCRatio: 0.4})
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			switch op.Kind % 4 {
			case 0:
				if s.Put(key, op.Val) != nil {
					return false
				}
				model[key] = append([]byte{}, op.Val...)
			case 1:
				removed, err := s.Remove(key)
				if err != nil {
					return false
				}
				_, inModel := model[key]
				if removed != inModel {
					return false
				}
				delete(model, key)
			case 2:
				if s.Append(key, op.Val) != nil {
					return false
				}
				model[key] = append(model[key], op.Val...)
			case 3:
				v, ok, err := s.Get(key)
				if err != nil {
					return false
				}
				mv, mok := model[key]
				if ok != mok || !bytes.Equal(v, mv) {
					return false
				}
			}
		}
		s.Close()
		// Recover and compare full state.
		r, err := Open(Options{Path: path})
		if err != nil {
			return false
		}
		defer r.Close()
		if r.Len() != len(model) {
			return false
		}
		for k, mv := range model {
			v, ok, err := r.Get(k)
			if err != nil || !ok || !bytes.Equal(v, mv) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkNoVoHTPut(b *testing.B) {
	for _, persist := range []bool{true, false} {
		name := "persistent"
		if !persist {
			name = "memory"
		}
		b.Run(name, func(b *testing.B) {
			opts := Options{CompactEvery: -1, GCRatio: 0.99}
			if persist {
				opts.Path = filepath.Join(b.TempDir(), "bench.log")
			}
			s, err := Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			val := bytes.Repeat([]byte{'v'}, 132)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(fmt.Sprintf("key-%010d", i), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNoVoHTGet(b *testing.B) {
	s, _ := Open(Options{})
	defer s.Close()
	val := bytes.Repeat([]byte{'v'}, 132)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%010d", i), val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := s.Get(fmt.Sprintf("key-%010d", i%n)); !ok {
			b.Fatal("missing")
		}
	}
}
