// Package novoht implements NoVoHT, ZHT's Non-Volatile Hash Table
// (paper §III.I and reference [49]).
//
// NoVoHT keeps every key/value pair in memory for constant-time
// lookups and appends each mutation to an on-disk log so the full
// state survives failures and restarts. The design goals lifted from
// the paper:
//
//   - log-based persistence with periodic checkpointing: mutations are
//     appended to a log; compaction periodically rewrites the log with
//     only live records (reclaiming space — the paper's "garbage
//     collection"), which doubles as the checkpoint;
//   - a configurable bound on the number of values held in memory
//     ("specifying a size to control memory footprint"): past the
//     bound, cold values are evicted to their on-disk image and read
//     back on demand;
//   - a fourth basic operation, Append, that concatenates to an
//     existing value under a local lock, enabling ZHT's lock-free
//     concurrent key/value modification.
//
// A Store is safe for concurrent use by multiple goroutines.
package novoht

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"zht/internal/metrics"
)

// Options configures a Store.
type Options struct {
	// Path is the log file. Empty means a volatile, memory-only
	// store (the paper's "NoVoHT no persistence" configuration).
	Path string
	// CompactEvery triggers log compaction after this many mutations
	// (0 = use DefaultCompactEvery; negative = never auto-compact).
	CompactEvery int
	// GCRatio triggers compaction when dead log bytes exceed this
	// fraction of the log (0 = use DefaultGCRatio).
	GCRatio float64
	// MaxMemValues bounds how many values stay resident in memory;
	// 0 means unbounded. Keys always stay resident. Requires Path.
	MaxMemValues int
	// SyncOnCompact fsyncs the rewritten log during compaction.
	SyncOnCompact bool
	// Metrics, when non-nil, receives per-operation latency
	// histograms (zht.novoht.{get,put,append}.latency_ns) and
	// eviction/compaction counters. Stores sharing a registry (e.g.
	// all partitions of one instance) aggregate into the same
	// instruments. Nil disables measurement entirely — the hot paths
	// skip even their time.Now calls.
	Metrics *metrics.Registry
}

// Defaults for Options zero values.
const (
	DefaultCompactEvery = 1 << 20
	DefaultGCRatio      = 0.5
)

// Store is a NoVoHT hash table.
type Store struct {
	mu   sync.RWMutex
	m    map[string]*entry
	opts Options

	f         *os.File
	w         *bufio.Writer
	logSize   int64 // bytes written to the log
	deadBytes int64 // bytes belonging to superseded records
	mutations int   // mutations since last compaction
	resident  int   // values currently held in memory
	closed    bool

	// clock hand for eviction (iteration order is fine: eviction is
	// best-effort cache management, not a correctness property).
	evictKeys []string
	evictPos  int

	// Instruments resolved once at Open; all nil when metrics are
	// disabled.
	getLat       *metrics.Histogram // zht.novoht.get.latency_ns
	putLat       *metrics.Histogram // zht.novoht.put.latency_ns
	appendLat    *metrics.Histogram // zht.novoht.append.latency_ns
	evictions    *metrics.Counter   // zht.novoht.evictions
	evictedLoads *metrics.Counter   // zht.novoht.evicted_loads
	compactions  *metrics.Counter   // zht.novoht.compactions
}

// entry is one key's state. If val is nil and onDisk is true, the
// current value lives at [off, off+vlen) in the log file.
type entry struct {
	val    []byte
	off    int64
	vlen   int64
	onDisk bool // an up-to-date contiguous image exists on disk
}

// Log record types.
const (
	recPut    = 1
	recRemove = 2
	recAppend = 3
)

var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("novoht: store is closed")
	// ErrNoPersistence reports an operation that requires a log file
	// on a memory-only store.
	ErrNoPersistence = errors.New("novoht: store has no persistence")
)

// Open creates or recovers a store. If opts.Path exists, its log is
// replayed; a torn final record (from a crash mid-write) is truncated
// away, recovering the longest consistent prefix.
func Open(opts Options) (*Store, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	if opts.GCRatio == 0 {
		opts.GCRatio = DefaultGCRatio
	}
	if opts.MaxMemValues > 0 && opts.Path == "" {
		return nil, errors.New("novoht: MaxMemValues requires a log path")
	}
	s := &Store{m: make(map[string]*entry), opts: opts}
	if reg := opts.Metrics; reg != nil {
		s.getLat = reg.Histogram("zht.novoht.get.latency_ns")
		s.putLat = reg.Histogram("zht.novoht.put.latency_ns")
		s.appendLat = reg.Histogram("zht.novoht.append.latency_ns")
		s.evictions = reg.Counter("zht.novoht.evictions")
		s.evictedLoads = reg.Counter("zht.novoht.evicted_loads")
		s.compactions = reg.Counter("zht.novoht.compactions")
	}
	if opts.Path == "" {
		return s, nil
	}
	f, err := os.OpenFile(opts.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("novoht: open log: %w", err)
	}
	s.f = f
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.logSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("novoht: seek log end: %w", err)
	}
	if err := f.Truncate(s.logSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("novoht: truncate torn tail: %w", err)
	}
	s.w = bufio.NewWriterSize(f, 64<<10)
	return s, nil
}

// replay loads the log into memory, stopping at the first corrupt or
// torn record.
func (s *Store) replay() error {
	r := bufio.NewReaderSize(s.f, 1<<20)
	var off int64
	for {
		rec, key, val, n, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadRecord) {
				break // torn tail: keep the consistent prefix
			}
			return err
		}
		switch rec {
		case recPut:
			if old, ok := s.m[key]; ok {
				s.deadBytes += recordSize(key, old.vlen)
			}
			voff := off + int64(n) - int64(len(val)) - 4
			s.m[key] = &entry{val: val, off: voff, vlen: int64(len(val)), onDisk: true}
		case recRemove:
			if old, ok := s.m[key]; ok {
				s.deadBytes += recordSize(key, old.vlen) + recordSize(key, 0)
				delete(s.m, key)
			}
		case recAppend:
			e, ok := s.m[key]
			if !ok {
				e = &entry{}
				s.m[key] = e
			}
			if e.onDisk && e.val == nil {
				// Shouldn't happen during replay (values are loaded),
				// but guard anyway.
				return errors.New("novoht: replay: append to evicted entry")
			}
			e.val = append(e.val, val...)
			e.vlen = int64(len(e.val))
			e.onDisk = false // value no longer contiguous on disk
		}
		off += int64(n)
	}
	s.logSize = off
	s.resident = len(s.m)
	return nil
}

// Put stores val under key, replacing any existing value.
func (s *Store) Put(key string, val []byte) error {
	defer s.timeOp(s.putLat)()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.putLocked(key, val)
}

// timeOp starts timing an operation against h, returning the function
// that records the elapsed time. Only one call in metrics.SampleEvery
// is measured (none when h is nil): the rest return a shared no-op
// without touching the clock, so the common case costs one atomic
// tick instead of two time.Now reads.
func (s *Store) timeOp(h *metrics.Histogram) func() {
	if !h.ShouldSample() {
		return nopTimer
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Nanoseconds()) }
}

func nopTimer() {}

func (s *Store) putLocked(key string, val []byte) error {
	voff, err := s.writeRecord(recPut, key, val)
	if err != nil {
		return err
	}
	if old, ok := s.m[key]; ok {
		s.deadBytes += recordSize(key, old.vlen)
		if old.val == nil && old.onDisk {
			s.resident++ // evicted entry becomes resident again
		}
		old.val = append(old.val[:0], val...)
		old.off, old.vlen, old.onDisk = voff, int64(len(val)), s.f != nil
	} else {
		s.m[key] = &entry{
			val: append([]byte(nil), val...), off: voff,
			vlen: int64(len(val)), onDisk: s.f != nil,
		}
		s.resident++
	}
	return s.afterMutation()
}

// PutIfAbsent stores val only when key is not present; it reports
// whether the store was modified.
func (s *Store) PutIfAbsent(key string, val []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if _, ok := s.m[key]; ok {
		return false, nil
	}
	return true, s.putLocked(key, val)
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	defer s.timeOp(s.getLat)()
	s.mu.RLock()
	e, ok := s.m[key]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	if e.val != nil || e.vlen == 0 {
		v := append([]byte(nil), e.val...)
		s.mu.RUnlock()
		return v, true, nil
	}
	s.mu.RUnlock()
	// Evicted: fetch from the log under the write lock (the value
	// may be re-resident or compacted concurrently).
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	e, ok = s.m[key]
	if !ok {
		return nil, false, nil
	}
	if e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			return nil, false, err
		}
	}
	return append([]byte(nil), e.val...), true, nil
}

// loadEvicted reads an evicted entry's value back from the log.
func (s *Store) loadEvicted(e *entry) error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("novoht: flush before read: %w", err)
	}
	buf := make([]byte, e.vlen)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return fmt.Errorf("novoht: read evicted value: %w", err)
	}
	e.val = buf
	s.resident++
	s.evictedLoads.Inc()
	return nil
}

// Remove deletes key, reporting whether it was present.
func (s *Store) Remove(key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	e, ok := s.m[key]
	if !ok {
		return false, nil
	}
	if _, err := s.writeRecord(recRemove, key, nil); err != nil {
		return false, err
	}
	s.deadBytes += recordSize(key, e.vlen) + recordSize(key, 0)
	if e.val != nil || e.vlen == 0 {
		s.resident--
	}
	delete(s.m, key)
	return true, s.afterMutation()
}

// Append concatenates val to the value stored under key, creating the
// key when absent. This is the operation FusionFS uses for lock-free
// concurrent directory updates: only this store's local lock is held.
func (s *Store) Append(key string, val []byte) error {
	defer s.timeOp(s.appendLat)()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.m[key]
	if ok && e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			return err
		}
	}
	if _, err := s.writeRecord(recAppend, key, val); err != nil {
		return err
	}
	if !ok {
		e = &entry{}
		s.m[key] = e
		s.resident++
	}
	// Append records never supersede earlier log bytes (replay needs
	// the whole chain), so deadBytes is unchanged until compaction.
	e.val = append(e.val, val...)
	e.vlen = int64(len(e.val))
	e.onDisk = false
	return s.afterMutation()
}

// Cas atomically replaces the value under key with newVal when the
// current value equals oldVal. A nil oldVal means "expect absent".
// It returns the value observed when the swap fails.
func (s *Store) Cas(key string, oldVal, newVal []byte) (bool, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, nil, ErrClosed
	}
	e, ok := s.m[key]
	if ok && e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			return false, nil, err
		}
	}
	switch {
	case !ok && oldVal != nil:
		return false, nil, nil
	case ok && oldVal == nil:
		return false, append([]byte(nil), e.val...), nil
	case ok && string(e.val) != string(oldVal):
		return false, append([]byte(nil), e.val...), nil
	}
	if err := s.putLocked(key, newVal); err != nil {
		return false, nil, err
	}
	return true, nil, nil
}

// Len reports the number of keys stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// ForEach calls fn for every pair; fn must not mutate the store. The
// value passed to fn for evicted entries is loaded from disk.
func (s *Store) ForEach(fn func(key string, val []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for k, e := range s.m {
		v := e.val
		if v == nil && e.vlen > 0 {
			if err := s.loadEvicted(e); err != nil {
				return err
			}
			v = e.val
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// writeRecord appends one record to the log and returns the file
// offset of the value bytes within the record (for eviction).
func (s *Store) writeRecord(typ byte, key string, val []byte) (int64, error) {
	if s.f == nil {
		return 0, nil
	}
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:n])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())

	if _, err := s.w.Write(hdr[:n]); err != nil {
		return 0, fmt.Errorf("novoht: write log: %w", err)
	}
	if _, err := s.w.WriteString(key); err != nil {
		return 0, fmt.Errorf("novoht: write log: %w", err)
	}
	if _, err := s.w.Write(val); err != nil {
		return 0, fmt.Errorf("novoht: write log: %w", err)
	}
	if _, err := s.w.Write(sum[:]); err != nil {
		return 0, fmt.Errorf("novoht: write log: %w", err)
	}
	voff := s.logSize + int64(n) + int64(len(key))
	s.logSize += int64(n) + int64(len(key)) + int64(len(val)) + 4
	// Flush per mutation: data reaches the page cache so persistence
	// costs only a write syscall (the paper measured ~3µs extra per
	// op for persistence). Durability against power loss would need
	// fsync, which the paper also does not pay per-op.
	if err := s.w.Flush(); err != nil {
		return 0, fmt.Errorf("novoht: flush log: %w", err)
	}
	return voff, nil
}

// afterMutation enforces the memory bound and auto-compaction policy.
func (s *Store) afterMutation() error {
	s.mutations++
	if s.opts.MaxMemValues > 0 && s.resident > s.opts.MaxMemValues {
		if err := s.evictLocked(s.resident - s.opts.MaxMemValues); err != nil {
			return err
		}
	}
	if s.f == nil {
		return nil
	}
	need := false
	if s.opts.CompactEvery > 0 && s.mutations >= s.opts.CompactEvery {
		need = true
	}
	if s.logSize > 0 && float64(s.deadBytes)/float64(s.logSize) > s.opts.GCRatio && s.deadBytes > 1<<16 {
		need = true
	}
	if need {
		return s.compactLocked()
	}
	return nil
}

// evictLocked drops up to n resident values whose latest image is
// contiguous on disk; values mutated by Append since their last full
// write are first rewritten so an image exists.
func (s *Store) evictLocked(n int) error {
	if len(s.evictKeys) == 0 || s.evictPos >= len(s.evictKeys) {
		s.evictKeys = s.evictKeys[:0]
		for k := range s.m {
			s.evictKeys = append(s.evictKeys, k)
		}
		s.evictPos = 0
	}
	for n > 0 && s.evictPos < len(s.evictKeys) {
		k := s.evictKeys[s.evictPos]
		s.evictPos++
		e, ok := s.m[k]
		if !ok || e.val == nil {
			continue
		}
		if !e.onDisk {
			// Rewrite the full value so a contiguous image exists.
			voff, err := s.writeRecord(recPut, k, e.val)
			if err != nil {
				return err
			}
			e.off, e.onDisk = voff, true
		}
		if e.vlen == 0 {
			continue // nothing to reclaim; keep resident
		}
		e.val = nil
		s.resident--
		s.evictions.Inc()
		n--
	}
	return nil
}

// Compact rewrites the log to contain exactly one Put record per live
// key, reclaiming dead space; this is the periodic checkpoint + GC the
// paper describes.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.f == nil {
		return ErrNoPersistence
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	tmpPath := s.opts.Path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("novoht: compact: %w", err)
	}
	defer os.Remove(tmpPath)
	bw := bufio.NewWriterSize(tmp, 1<<20)

	type relocation struct {
		e   *entry
		off int64
	}
	var relocs []relocation
	var newSize int64
	for k, e := range s.m {
		v := e.val
		if v == nil && e.vlen > 0 {
			buf := make([]byte, e.vlen)
			if _, err := s.f.ReadAt(buf, e.off); err != nil {
				tmp.Close()
				return fmt.Errorf("novoht: compact read: %w", err)
			}
			v = buf
		}
		n, voff, err := writeRecordTo(bw, newSize, recPut, k, v)
		if err != nil {
			tmp.Close()
			return err
		}
		relocs = append(relocs, relocation{e, voff})
		newSize += n
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if s.opts.SyncOnCompact {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.opts.Path); err != nil {
		return fmt.Errorf("novoht: compact rename: %w", err)
	}
	old := s.f
	f, err := os.OpenFile(s.opts.Path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("novoht: reopen after compact: %w", err)
	}
	old.Close()
	if _, err := f.Seek(newSize, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, 64<<10)
	for _, r := range relocs {
		r.e.off = r.off
		r.e.onDisk = true
	}
	s.logSize = newSize
	s.deadBytes = 0
	s.mutations = 0
	s.compactions.Inc()
	return nil
}

// Sync flushes buffered log data and fsyncs the file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the store. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Stats reports store internals for monitoring and tests.
type Stats struct {
	Keys       int
	Resident   int
	LogBytes   int64
	DeadBytes  int64
	Mutations  int
	Persistent bool
}

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Keys: len(s.m), Resident: s.resident, LogBytes: s.logSize,
		DeadBytes: s.deadBytes, Mutations: s.mutations, Persistent: s.f != nil,
	}
}

var errBadRecord = errors.New("novoht: bad record checksum")

// readRecord reads one log record, returning its type, key, value and
// total encoded size.
func readRecord(r *bufio.Reader) (typ byte, key string, val []byte, n int, err error) {
	crc := crc32.NewIEEE()
	typ, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, 0, err
	}
	crc.Write([]byte{typ})
	n = 1
	if typ != recPut && typ != recRemove && typ != recAppend {
		return 0, "", nil, 0, errBadRecord
	}
	klen, kn, err := readUvarintCRC(r, crc)
	if err != nil {
		return 0, "", nil, 0, err
	}
	n += kn
	vlen, vn, err := readUvarintCRC(r, crc)
	if err != nil {
		return 0, "", nil, 0, err
	}
	n += vn
	if klen > 1<<20 || vlen > 1<<30 {
		return 0, "", nil, 0, errBadRecord
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return 0, "", nil, 0, err
	}
	crc.Write(kb)
	n += int(klen)
	val = make([]byte, vlen)
	if _, err := io.ReadFull(r, val); err != nil {
		return 0, "", nil, 0, err
	}
	crc.Write(val)
	n += int(vlen)
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, "", nil, 0, err
	}
	n += 4
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return 0, "", nil, 0, errBadRecord
	}
	return typ, string(kb), val, n, nil
}

func readUvarintCRC(r *bufio.Reader, crc io.Writer) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, n, err
		}
		crc.Write([]byte{b})
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
		if shift > 63 {
			return 0, n, errBadRecord
		}
	}
}

// writeRecordTo writes a record at logical offset base to w, returning
// the record length and the value offset.
func writeRecordTo(w io.Writer, base int64, typ byte, key string, val []byte) (int64, int64, error) {
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:n])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, chunk := range [][]byte{hdr[:n], []byte(key), val, sum[:]} {
		if _, err := w.Write(chunk); err != nil {
			return 0, 0, fmt.Errorf("novoht: compact write: %w", err)
		}
	}
	total := int64(n) + int64(len(key)) + int64(len(val)) + 4
	voff := base + int64(n) + int64(len(key))
	return total, voff, nil
}

// recordSize returns the encoded size of a record with the given key
// and value length (used for dead-byte accounting).
func recordSize(key string, vlen int64) int64 {
	return 1 + int64(uvarintLen(uint64(len(key)))) + int64(uvarintLen(uint64(vlen))) +
		int64(len(key)) + vlen + 4
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
