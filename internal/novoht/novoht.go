// Package novoht implements NoVoHT, ZHT's Non-Volatile Hash Table
// (paper §III.I and reference [49]) — the flagship implementation of
// the storage.KV interface.
//
// NoVoHT keeps every key/value pair in memory for constant-time
// lookups and appends each mutation to an on-disk log so the full
// state survives failures and restarts. The design goals lifted from
// the paper:
//
//   - log-based persistence with periodic checkpointing: mutations are
//     appended to a log; compaction periodically rewrites the log with
//     only live records (reclaiming space — the paper's "garbage
//     collection"), which doubles as the checkpoint;
//   - a configurable bound on the number of values held in memory
//     ("specifying a size to control memory footprint"): past the
//     bound, cold values are evicted to their on-disk image and read
//     back on demand;
//   - a fourth basic operation, Append, that concatenates to an
//     existing value under a local lock, enabling ZHT's lock-free
//     concurrent key/value modification.
//
// Two structural choices serve concurrency. The in-memory table is
// split into power-of-two lock shards, so operations on different
// keys — including the disk read that faults an evicted value back
// in — proceed in parallel instead of serializing on one store-wide
// RWMutex. And the log is a group-commit write-ahead log (wal.go): a
// single writer coalesces concurrently submitted records into one
// write and, per storage.Durability mode, one fsync, acknowledging
// each mutation only once its record's durability level is met.
//
// A Store is safe for concurrent use by multiple goroutines.
package novoht

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/metrics"
	"zht/internal/storage"
)

// Options configures a Store.
type Options struct {
	// Path is the log file. Empty means a volatile, memory-only
	// store (the paper's "NoVoHT no persistence" configuration).
	Path string
	// Durability selects how much WAL durability a mutation must
	// reach before it is acknowledged. The zero value is
	// storage.DurabilityAsync (the seed store's behavior);
	// storage.DurabilityNone makes the store volatile, ignoring
	// Path.
	Durability storage.Durability
	// Shards is the lock-shard count for the in-memory table,
	// rounded up to a power of two (0 = DefaultShards).
	Shards int
	// GroupWindow is how long a group-mode commit waits after its
	// first record for more to arrive before fsyncing, so callers
	// staggered by scheduling or network round trips still share one
	// fsync (0 = DefaultGroupWindow; negative = commit immediately).
	// Ignored outside group mode.
	GroupWindow time.Duration
	// CompactEvery triggers log compaction after this many mutations
	// (0 = use DefaultCompactEvery; negative = never auto-compact).
	CompactEvery int
	// GCRatio triggers compaction when dead log bytes exceed this
	// fraction of the log (0 = use DefaultGCRatio).
	GCRatio float64
	// MaxMemValues bounds how many values stay resident in memory;
	// 0 means unbounded. Keys always stay resident. Requires
	// persistence (a Path and a Durability other than None).
	MaxMemValues int
	// SyncOnCompact fsyncs the rewritten log during compaction.
	// Group and sync durability modes always do.
	SyncOnCompact bool
	// Fault, when non-nil, injects storage-level crash faults into
	// the WAL (see storage.Fault and internal/chaos); production
	// stores leave it nil.
	Fault storage.Fault
	// Metrics, when non-nil, receives per-operation latency
	// histograms (zht.novoht.{get,put,append}.latency_ns),
	// eviction/compaction counters, and the WAL's
	// zht.storage.wal.{commits,batch.size,fsync_ns} instruments.
	// Stores sharing a registry (e.g. all partitions of one
	// instance) aggregate into the same instruments. Nil disables
	// measurement entirely — the hot paths skip even their time.Now
	// calls.
	Metrics *metrics.Registry
}

// Defaults for Options zero values.
const (
	DefaultCompactEvery = 1 << 20
	DefaultGCRatio      = 0.5
	DefaultShards       = 16
	// DefaultGroupWindow trades ~0.5ms of commit latency for batching:
	// wide enough for a closed loop of clients to resubmit after an
	// ack (a scheduler pass plus a loopback round trip), narrow
	// enough to stay well under a typical storage fsync budget.
	DefaultGroupWindow = 500 * time.Microsecond
)

// Store is a NoVoHT hash table. It implements storage.KV.
type Store struct {
	opts   Options
	shards []*shard
	mask   uint32
	wal    *wal // nil for a volatile store

	resident  atomic.Int64 // values currently held in memory
	deadBytes atomic.Int64 // log bytes belonging to superseded records
	mutations atomic.Int64 // mutations since last compaction
	closed    atomic.Bool

	// compactMu serializes compaction and Sync against each other
	// (both touch the log file as a whole) and lets auto-compaction
	// be single-flight.
	compactMu sync.Mutex
	// evictCursor rotates the shard eviction starts so no shard's
	// values are systematically the first to be spilled.
	evictCursor atomic.Uint32

	// Instruments resolved once at Open; all nil when metrics are
	// disabled.
	getLat       *metrics.Histogram // zht.novoht.get.latency_ns
	putLat       *metrics.Histogram // zht.novoht.put.latency_ns
	appendLat    *metrics.Histogram // zht.novoht.append.latency_ns
	evictions    *metrics.Counter   // zht.novoht.evictions
	evictedLoads *metrics.Counter   // zht.novoht.evicted_loads
	compactions  *metrics.Counter   // zht.novoht.compactions
}

// shard is one lock stripe of the in-memory table.
type shard struct {
	mu sync.RWMutex
	m  map[string]*entry

	// clock hand for eviction (iteration order is fine: eviction is
	// best-effort cache management, not a correctness property).
	evictKeys []string
	evictPos  int
}

// entry is one key's state. If val is nil and onDisk is true, the
// current value lives at [off, off+vlen) in the log file.
type entry struct {
	val    []byte
	off    int64
	vlen   int64
	ver    uint64 // HLC version stamp; 0 = unversioned (legacy write)
	onDisk bool   // an up-to-date contiguous image exists on disk
}

// Log record types. The versioned variants carry an extra version
// uvarint between the value length and the key; unversioned writes
// (ver == 0) keep emitting the legacy types, so a store that never
// sees a versioned mutation produces byte-identical logs.
const (
	recPut     = 1
	recRemove  = 2
	recAppend  = 3
	recPutV    = 4
	recRemoveV = 5
)

var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("novoht: store is closed")
	// ErrNoPersistence reports an operation that requires a log file
	// on a memory-only store.
	ErrNoPersistence = errors.New("novoht: store has no persistence")
)

// testSlowLoad, when non-nil, runs inside loadEvicted with the owning
// shard's lock held; the eviction-isolation regression test uses it
// to make one shard's disk read observably slow.
var testSlowLoad func()

// Open creates or recovers a store. If opts.Path exists, its log is
// replayed; a torn final record (from a crash mid-write) is truncated
// away, recovering the longest consistent prefix.
func Open(opts Options) (*Store, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	if opts.GCRatio == 0 {
		opts.GCRatio = DefaultGCRatio
	}
	if opts.GroupWindow == 0 {
		opts.GroupWindow = DefaultGroupWindow
	} else if opts.GroupWindow < 0 {
		opts.GroupWindow = 0
	}
	if opts.Durability == storage.DurabilityNone {
		opts.Path = "" // volatile: the log path is ignored
	}
	if opts.MaxMemValues > 0 && opts.Path == "" {
		return nil, errors.New("novoht: MaxMemValues requires a persistent log")
	}
	nShards := opts.Shards
	if nShards <= 0 {
		nShards = DefaultShards
	}
	for nShards&(nShards-1) != 0 {
		nShards++
	}
	s := &Store{opts: opts, shards: make([]*shard, nShards), mask: uint32(nShards - 1)}
	for i := range s.shards {
		s.shards[i] = &shard{m: make(map[string]*entry)}
	}
	if reg := opts.Metrics; reg != nil {
		s.getLat = reg.Histogram("zht.novoht.get.latency_ns")
		s.putLat = reg.Histogram("zht.novoht.put.latency_ns")
		s.appendLat = reg.Histogram("zht.novoht.append.latency_ns")
		s.evictions = reg.Counter("zht.novoht.evictions")
		s.evictedLoads = reg.Counter("zht.novoht.evicted_loads")
		s.compactions = reg.Counter("zht.novoht.compactions")
	}
	if opts.Path == "" {
		return s, nil
	}
	f, err := os.OpenFile(opts.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("novoht: open log: %w", err)
	}
	logSize, err := s.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(logSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("novoht: seek log end: %w", err)
	}
	if err := f.Truncate(logSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("novoht: truncate torn tail: %w", err)
	}
	s.wal = newWAL(f, logSize, opts.Durability, opts.GroupWindow, opts.Fault, opts.Metrics)
	return s, nil
}

// shardOf returns the lock shard owning key (FNV-1a).
func (s *Store) shardOf(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return s.shards[h&s.mask]
}

// replay loads the log into the shards, stopping at the first corrupt
// or torn record; it returns the consistent prefix length.
func (s *Store) replay(f *os.File) (int64, error) {
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		rec, key, val, ver, n, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadRecord) {
				break // torn tail: keep the consistent prefix
			}
			return 0, err
		}
		sh := s.shardOf(key)
		switch rec {
		case recPut, recPutV:
			if old, ok := sh.m[key]; ok {
				// Crash replay keeps the newest version: a versioned
				// record that lost a last-writer-wins race with a record
				// already replayed is dead bytes, not the live state.
				if ver > 0 && old.ver > ver {
					s.deadBytes.Add(recordSize(key, int64(len(val)), ver))
					break
				}
				s.deadBytes.Add(recordSize(key, old.vlen, old.ver))
			}
			voff := off + int64(n) - int64(len(val)) - 4
			sh.m[key] = &entry{val: val, off: voff, vlen: int64(len(val)), ver: ver, onDisk: true}
		case recRemove, recRemoveV:
			if old, ok := sh.m[key]; ok {
				if ver > 0 && old.ver > ver {
					s.deadBytes.Add(recordSize(key, 0, ver))
					break
				}
				s.deadBytes.Add(recordSize(key, old.vlen, old.ver) + recordSize(key, 0, ver))
				delete(sh.m, key)
			}
		case recAppend:
			e, ok := sh.m[key]
			if !ok {
				e = &entry{}
				sh.m[key] = e
			}
			if e.onDisk && e.val == nil {
				// Shouldn't happen during replay (values are loaded),
				// but guard anyway.
				return 0, errors.New("novoht: replay: append to evicted entry")
			}
			e.val = append(e.val, val...)
			e.vlen = int64(len(e.val))
			e.onDisk = false // value no longer contiguous on disk
		}
		off += int64(n)
	}
	keys := 0
	for _, sh := range s.shards {
		keys += len(sh.m)
	}
	s.resident.Store(int64(keys))
	return off, nil
}

// Put stores val under key, replacing any existing value.
func (s *Store) Put(key string, val []byte) error {
	return s.PutV(key, val, 0)
}

// PutV stores val under key with the given version stamp,
// unconditionally replacing any existing value and version
// (storage.VersionedKV). Version 0 is the legacy unversioned write —
// Put is exactly PutV(key, val, 0).
func (s *Store) PutV(key string, val []byte, ver uint64) error {
	defer s.timeOp(s.putLat)()
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	end, err := s.putShardLocked(sh, key, val, ver)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	return s.finishMutation(end)
}

// PutLWW stores (val, ver) only when ver is strictly newer than the
// stored version; an absent key always accepts the write
// (storage.VersionedKV). It reports whether the store was modified.
func (s *Store) PutLWW(key string, val []byte, ver uint64) (bool, error) {
	defer s.timeOp(s.putLat)()
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return false, ErrClosed
	}
	if e, ok := sh.m[key]; ok && e.ver >= ver {
		sh.mu.Unlock()
		return false, nil
	}
	end, err := s.putShardLocked(sh, key, val, ver)
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	return true, s.finishMutation(end)
}

// timeOp starts timing an operation against h, returning the function
// that records the elapsed time. Only one call in metrics.SampleEvery
// is measured (none when h is nil): the rest return a shared no-op
// without touching the clock, so the common case costs one atomic
// tick instead of two time.Now reads.
func (s *Store) timeOp(h *metrics.Histogram) func() {
	if !h.ShouldSample() {
		return nopTimer
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Nanoseconds()) }
}

func nopTimer() {}

// putShardLocked applies a Put under sh's lock: the record is
// submitted to the WAL (offsets assigned in submission order, which
// the shard lock makes per-key order) and the in-memory entry
// updated. It returns the log offset the caller must wait durable.
func (s *Store) putShardLocked(sh *shard, key string, val []byte, ver uint64) (int64, error) {
	voff, end, err := s.appendRecord(recPut, key, val, ver)
	if err != nil {
		return 0, err
	}
	if old, ok := sh.m[key]; ok {
		s.deadBytes.Add(recordSize(key, old.vlen, old.ver))
		if old.val == nil && old.onDisk {
			s.resident.Add(1) // evicted entry becomes resident again
		}
		old.val = append(old.val[:0], val...)
		old.off, old.vlen, old.ver, old.onDisk = voff, int64(len(val)), ver, s.wal != nil
	} else {
		sh.m[key] = &entry{
			val: append([]byte(nil), val...), off: voff,
			vlen: int64(len(val)), ver: ver, onDisk: s.wal != nil,
		}
		s.resident.Add(1)
	}
	s.mutations.Add(1)
	return end, nil
}

// appendRecord encodes and submits one log record, returning the
// in-log offset of its value bytes and the offset its last byte will
// occupy (the durability target). A non-zero ver upgrades the record
// to its versioned variant (recPut→recPutV, recRemove→recRemoveV)
// carrying the stamp.
func (s *Store) appendRecord(typ byte, key string, val []byte, ver uint64) (voff, end int64, err error) {
	if s.wal == nil {
		return 0, 0, nil
	}
	if ver > 0 {
		switch typ {
		case recPut:
			typ = recPutV
		case recRemove:
			typ = recRemoveV
		}
	}
	// The record is built in a pooled buffer the WAL writer returns
	// after committing it, and the checksum runs once over the
	// assembled bytes — no per-record hasher or string conversion.
	rec := getRec()
	rec = append(rec, typ)
	rec = binary.AppendUvarint(rec, uint64(len(key)))
	rec = binary.AppendUvarint(rec, uint64(len(val)))
	if typ == recPutV || typ == recRemoveV {
		rec = binary.AppendUvarint(rec, ver)
	}
	n := len(rec)
	rec = append(rec, key...)
	rec = append(rec, val...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	off, err := s.wal.append(rec)
	if err != nil {
		putRec(rec)
		return 0, 0, err
	}
	return off + int64(n) + int64(len(key)), off + int64(len(rec)), nil
}

// Pooled WAL record buffers. Ownership is linear: appendRecord fills
// one, wal.append hands it to the writer goroutine, and commit
// returns it here once its bytes are on the file (records dropped on
// a failed WAL simply fall to the GC).
var recFree = make(chan []byte, 256)

const maxPooledRec = 64 << 10

func getRec() []byte {
	select {
	case b := <-recFree:
		return b
	default:
		return make([]byte, 0, 512)
	}
}

func putRec(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledRec {
		return
	}
	select {
	case recFree <- b[:0]:
	default:
	}
}

// finishMutation runs the post-apply policy with no shard lock held:
// enforce the memory bound, wait for the record's durability level,
// and trigger auto-compaction.
func (s *Store) finishMutation(end int64) error {
	if s.opts.MaxMemValues > 0 && s.resident.Load() > int64(s.opts.MaxMemValues) {
		if err := s.evictToBound(); err != nil {
			return err
		}
	}
	if s.wal == nil {
		return nil
	}
	if err := s.wal.waitDurable(end); err != nil {
		return err
	}
	return s.maybeCompact()
}

// PutIfAbsent stores val only when key is not present; it reports
// whether the store was modified.
func (s *Store) PutIfAbsent(key string, val []byte) (bool, error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return false, ErrClosed
	}
	if _, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return false, nil
	}
	end, err := s.putShardLocked(sh, key, val, 0)
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	return true, s.finishMutation(end)
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	v, _, ok, err := s.GetV(key)
	return v, ok, err
}

// GetV is Get plus the stored version stamp (storage.VersionedKV);
// the version is 0 for pre-versioning records.
func (s *Store) GetV(key string) ([]byte, uint64, bool, error) {
	defer s.timeOp(s.getLat)()
	sh := s.shardOf(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.RUnlock()
		return nil, 0, false, nil
	}
	if e.val != nil || e.vlen == 0 {
		v := append([]byte(nil), e.val...)
		ver := e.ver
		sh.mu.RUnlock()
		return v, ver, true, nil
	}
	sh.mu.RUnlock()
	// Evicted: fault the value in while holding only this shard's
	// write lock — a slow disk read stalls this shard's keys, never
	// the other shards'.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return nil, 0, false, ErrClosed
	}
	e, ok = sh.m[key]
	if !ok {
		return nil, 0, false, nil
	}
	if e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			return nil, 0, false, err
		}
	}
	return append([]byte(nil), e.val...), e.ver, true, nil
}

// GetAppend implements storage.ScratchGetter: it appends the value
// stored under key to dst while holding the shard's read lock, so a
// hot read path costs one copy into a caller-owned scratch buffer and
// zero allocations. On a miss or error dst is returned unmodified.
func (s *Store) GetAppend(dst []byte, key string) ([]byte, bool, error) {
	v, _, ok, err := s.GetAppendV(dst, key)
	return v, ok, err
}

// GetAppendV is GetAppend plus the stored version stamp
// (storage.VersionedKV).
func (s *Store) GetAppendV(dst []byte, key string) ([]byte, uint64, bool, error) {
	defer s.timeOp(s.getLat)()
	sh := s.shardOf(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.RUnlock()
		return dst, 0, false, nil
	}
	if e.val != nil || e.vlen == 0 {
		dst = append(dst, e.val...)
		ver := e.ver
		sh.mu.RUnlock()
		return dst, ver, true, nil
	}
	sh.mu.RUnlock()
	// Evicted: fault the value in exactly like Get.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return dst, 0, false, ErrClosed
	}
	e, ok = sh.m[key]
	if !ok {
		return dst, 0, false, nil
	}
	if e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			return dst, 0, false, err
		}
	}
	return append(dst, e.val...), e.ver, true, nil
}

// loadEvicted reads an evicted entry's value back from the log; the
// owning shard's lock must be held.
func (s *Store) loadEvicted(e *entry) error {
	if testSlowLoad != nil {
		testSlowLoad()
	}
	buf := make([]byte, e.vlen)
	if err := s.wal.readAt(buf, e.off); err != nil {
		return err
	}
	e.val = buf
	s.resident.Add(1)
	s.evictedLoads.Inc()
	return nil
}

// Remove deletes key, reporting whether it was present.
func (s *Store) Remove(key string) (bool, error) {
	return s.removeVer(key, 0, false)
}

// RemoveLWW deletes key only when ver is strictly newer than the
// stored version (storage.VersionedKV), reporting whether the key was
// removed.
func (s *Store) RemoveLWW(key string, ver uint64) (bool, error) {
	return s.removeVer(key, ver, true)
}

// removeVer is the shared remove path; when lww is set the delete is
// skipped unless ver beats the stored version.
func (s *Store) removeVer(key string, ver uint64, lww bool) (bool, error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return false, ErrClosed
	}
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return false, nil
	}
	if lww && e.ver >= ver {
		sh.mu.Unlock()
		return false, nil
	}
	_, end, err := s.appendRecord(recRemove, key, nil, ver)
	if err != nil {
		sh.mu.Unlock()
		return false, err
	}
	s.deadBytes.Add(recordSize(key, e.vlen, e.ver) + recordSize(key, 0, ver))
	if e.val != nil || e.vlen == 0 {
		s.resident.Add(-1)
	}
	delete(sh.m, key)
	s.mutations.Add(1)
	sh.mu.Unlock()
	return true, s.finishMutation(end)
}

// Append concatenates val to the value stored under key, creating the
// key when absent. This is the operation FusionFS uses for lock-free
// concurrent directory updates: only the key's shard lock is held.
func (s *Store) Append(key string, val []byte) error {
	defer s.timeOp(s.appendLat)()
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	e, ok := sh.m[key]
	if ok && e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	_, end, err := s.appendRecord(recAppend, key, val, 0)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if !ok {
		e = &entry{}
		sh.m[key] = e
		s.resident.Add(1)
	}
	// Append records never supersede earlier log bytes (replay needs
	// the whole chain), so deadBytes is unchanged until compaction.
	e.val = append(e.val, val...)
	e.vlen = int64(len(e.val))
	e.onDisk = false
	s.mutations.Add(1)
	sh.mu.Unlock()
	return s.finishMutation(end)
}

// Cas atomically replaces the value under key with newVal when the
// current value equals oldVal. A nil oldVal means "expect absent".
// It returns the value observed when the swap fails.
func (s *Store) Cas(key string, oldVal, newVal []byte) (bool, []byte, error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return false, nil, ErrClosed
	}
	e, ok := sh.m[key]
	if ok && e.val == nil && e.vlen > 0 {
		if err := s.loadEvicted(e); err != nil {
			sh.mu.Unlock()
			return false, nil, err
		}
	}
	switch {
	case !ok && oldVal != nil:
		sh.mu.Unlock()
		return false, nil, nil
	case ok && oldVal == nil:
		v := append([]byte(nil), e.val...)
		sh.mu.Unlock()
		return false, v, nil
	case ok && string(e.val) != string(oldVal):
		v := append([]byte(nil), e.val...)
		sh.mu.Unlock()
		return false, v, nil
	}
	end, err := s.putShardLocked(sh, key, newVal, e.loadVer())
	sh.mu.Unlock()
	if err != nil {
		return false, nil, err
	}
	return true, nil, s.finishMutation(end)
}

// loadVer returns the entry's version, tolerating the nil entry the
// Cas "expect absent" success path holds.
func (e *entry) loadVer() uint64 {
	if e == nil {
		return 0
	}
	return e.ver
}

// Len reports the number of keys stored.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// lockAll acquires every shard lock in index order (the store-wide
// stop-the-world used by ForEach, compaction, and Close).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// ForEach calls fn for every pair; fn must not mutate the store. The
// value passed to fn for evicted entries is loaded from disk. The
// whole store is locked for the duration, so the iteration is a
// consistent snapshot (partition export depends on this).
func (s *Store) ForEach(fn func(key string, val []byte) error) error {
	return s.ForEachV(func(key string, val []byte, _ uint64) error {
		return fn(key, val)
	})
}

// ForEachV is ForEach with each pair's version stamp
// (storage.VersionedKV).
func (s *Store) ForEachV(fn func(key string, val []byte, ver uint64) error) error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	for _, sh := range s.shards {
		for k, e := range sh.m {
			v := e.val
			if v == nil && e.vlen > 0 {
				if err := s.loadEvicted(e); err != nil {
					return err
				}
				v = e.val
			}
			if err := fn(k, v, e.ver); err != nil {
				return err
			}
		}
	}
	return nil
}

// evictToBound spills resident values until the memory bound is met,
// visiting each shard at most once per call (a shard whose remaining
// values are unevictable — empty values keep their slot — is skipped
// rather than rescanned forever). The rotating cursor spreads the
// spill across shards.
func (s *Store) evictToBound() error {
	n := uint32(len(s.shards))
	start := s.evictCursor.Add(1)
	bound := int64(s.opts.MaxMemValues)
	for i := uint32(0); i < n && s.resident.Load() > bound; i++ {
		sh := s.shards[(start+i)&s.mask]
		sh.mu.Lock()
		if s.closed.Load() {
			sh.mu.Unlock()
			return ErrClosed
		}
		err := s.evictShardLocked(sh, bound)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// evictShardLocked advances sh's clock hand, spilling values whose
// latest image is contiguous on disk; values mutated by Append since
// their last full write are first rewritten so an image exists.
func (s *Store) evictShardLocked(sh *shard, bound int64) error {
	if len(sh.evictKeys) == 0 || sh.evictPos >= len(sh.evictKeys) {
		sh.evictKeys = sh.evictKeys[:0]
		for k := range sh.m {
			sh.evictKeys = append(sh.evictKeys, k)
		}
		sh.evictPos = 0
	}
	for s.resident.Load() > bound && sh.evictPos < len(sh.evictKeys) {
		k := sh.evictKeys[sh.evictPos]
		sh.evictPos++
		e, ok := sh.m[k]
		if !ok || e.val == nil {
			continue
		}
		if !e.onDisk {
			// Rewrite the full value so a contiguous image exists,
			// preserving the entry's version stamp.
			voff, _, err := s.appendRecord(recPut, k, e.val, e.ver)
			if err != nil {
				return err
			}
			e.off, e.onDisk = voff, true
		}
		if e.vlen == 0 {
			continue // nothing to reclaim; keep resident
		}
		e.val = nil
		s.resident.Add(-1)
		s.evictions.Inc()
	}
	return nil
}

// maybeCompact runs auto-compaction when the mutation count or
// dead-byte ratio policy asks for it. Single-flight: concurrent
// mutations that all cross the threshold compact once.
func (s *Store) maybeCompact() error {
	if s.wal == nil {
		return nil
	}
	need := false
	if s.opts.CompactEvery > 0 && s.mutations.Load() >= int64(s.opts.CompactEvery) {
		need = true
	}
	size := s.wal.logicalSize()
	if dead := s.deadBytes.Load(); size > 0 && float64(dead)/float64(size) > s.opts.GCRatio && dead > 1<<16 {
		need = true
	}
	if !need {
		return nil
	}
	return s.Compact()
}

// Compact rewrites the log to contain exactly one Put record per live
// key, reclaiming dead space; this is the periodic checkpoint + GC the
// paper describes. The WAL is quiesced (drained, no appender can run)
// for the duration: compaction holds every shard lock.
func (s *Store) Compact() error {
	if s.wal == nil {
		if s.closed.Load() {
			return ErrClosed
		}
		return ErrNoPersistence
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// Quiesce: every shard lock is held, so no new record can be
	// submitted; drain what is already in flight.
	if err := s.wal.flushTo(s.wal.logicalSize()); err != nil {
		return err
	}
	tmpPath := s.opts.Path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("novoht: compact: %w", err)
	}
	defer os.Remove(tmpPath)
	bw := bufio.NewWriterSize(tmp, 1<<20)

	type relocation struct {
		e   *entry
		off int64
	}
	var relocs []relocation
	var newSize int64
	for _, sh := range s.shards {
		for k, e := range sh.m {
			v := e.val
			if v == nil && e.vlen > 0 {
				buf := make([]byte, e.vlen)
				if err := s.wal.readAt(buf, e.off); err != nil {
					tmp.Close()
					return fmt.Errorf("novoht: compact read: %w", err)
				}
				v = buf
			}
			n, voff, err := writeRecordTo(bw, newSize, recPut, k, v, e.ver)
			if err != nil {
				tmp.Close()
				return err
			}
			relocs = append(relocs, relocation{e, voff})
			newSize += n
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if s.opts.SyncOnCompact || s.opts.Durability == storage.DurabilityGroup || s.opts.Durability == storage.DurabilitySync {
		// The crash-recovery contract: records acknowledged durable
		// must stay durable across the checkpoint rewrite.
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.opts.Path); err != nil {
		return fmt.Errorf("novoht: compact rename: %w", err)
	}
	old := s.wal.f
	f, err := os.OpenFile(s.opts.Path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("novoht: reopen after compact: %w", err)
	}
	old.Close()
	if _, err := f.Seek(newSize, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.wal.swapFile(f, newSize)
	for _, r := range relocs {
		r.e.off = r.off
		r.e.onDisk = true
	}
	s.deadBytes.Store(0)
	s.mutations.Store(0)
	s.compactions.Inc()
	return nil
}

// Sync flushes buffered log data and fsyncs the file.
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.wal.syncAll()
}

// Close drains and fsyncs the WAL, then closes the store: a clean
// shutdown never loses an acknowledged write of any durability mode.
// The store is unusable afterwards.
func (s *Store) Close() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Swap(true) {
		return nil
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// Stats returns a snapshot of store statistics (storage.Stats).
func (s *Store) Stats() storage.Stats {
	keys := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		keys += len(sh.m)
		sh.mu.RUnlock()
	}
	st := storage.Stats{
		Keys:       keys,
		Resident:   int(s.resident.Load()),
		DeadBytes:  s.deadBytes.Load(),
		Mutations:  int(s.mutations.Load()),
		Persistent: s.wal != nil,
		Shards:     len(s.shards),
	}
	if s.wal != nil {
		st.LogBytes = s.wal.logicalSize()
	}
	return st
}

var errBadRecord = errors.New("novoht: bad record checksum")

// readRecord reads one log record, returning its type, key, value,
// version stamp (0 for unversioned types) and total encoded size.
func readRecord(r *bufio.Reader) (typ byte, key string, val []byte, ver uint64, n int, err error) {
	crc := crc32.NewIEEE()
	typ, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, 0, 0, err
	}
	crc.Write([]byte{typ})
	n = 1
	switch typ {
	case recPut, recRemove, recAppend, recPutV, recRemoveV:
	default:
		return 0, "", nil, 0, 0, errBadRecord
	}
	klen, kn, err := readUvarintCRC(r, crc)
	if err != nil {
		return 0, "", nil, 0, 0, err
	}
	n += kn
	vlen, vn, err := readUvarintCRC(r, crc)
	if err != nil {
		return 0, "", nil, 0, 0, err
	}
	n += vn
	if typ == recPutV || typ == recRemoveV {
		var rn int
		if ver, rn, err = readUvarintCRC(r, crc); err != nil {
			return 0, "", nil, 0, 0, err
		}
		n += rn
	}
	if klen > 1<<20 || vlen > 1<<30 {
		return 0, "", nil, 0, 0, errBadRecord
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return 0, "", nil, 0, 0, err
	}
	crc.Write(kb)
	n += int(klen)
	val = make([]byte, vlen)
	if _, err := io.ReadFull(r, val); err != nil {
		return 0, "", nil, 0, 0, err
	}
	crc.Write(val)
	n += int(vlen)
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, "", nil, 0, 0, err
	}
	n += 4
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return 0, "", nil, 0, 0, errBadRecord
	}
	return typ, string(kb), val, ver, n, nil
}

func readUvarintCRC(r *bufio.Reader, crc io.Writer) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, n, err
		}
		crc.Write([]byte{b})
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
		if shift > 63 {
			return 0, n, errBadRecord
		}
	}
}

// writeRecordTo writes a record at logical offset base to w, returning
// the record length and the value offset. As in appendRecord, a
// non-zero ver upgrades the type to its versioned variant.
func writeRecordTo(w io.Writer, base int64, typ byte, key string, val []byte, ver uint64) (int64, int64, error) {
	if ver > 0 {
		switch typ {
		case recPut:
			typ = recPutV
		case recRemove:
			typ = recRemoveV
		}
	}
	var hdr [1 + 3*binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	if typ == recPutV || typ == recRemoveV {
		n += binary.PutUvarint(hdr[n:], ver)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:n])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, chunk := range [][]byte{hdr[:n], []byte(key), val, sum[:]} {
		if _, err := w.Write(chunk); err != nil {
			return 0, 0, fmt.Errorf("novoht: compact write: %w", err)
		}
	}
	total := int64(n) + int64(len(key)) + int64(len(val)) + 4
	voff := base + int64(n) + int64(len(key))
	return total, voff, nil
}

// recordSize returns the encoded size of a record with the given key,
// value length, and version (used for dead-byte accounting); a
// non-zero version adds the versioned variant's stamp uvarint.
func recordSize(key string, vlen int64, ver uint64) int64 {
	n := 1 + int64(uvarintLen(uint64(len(key)))) + int64(uvarintLen(uint64(vlen))) +
		int64(len(key)) + vlen + 4
	if ver > 0 {
		n += int64(uvarintLen(ver))
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
