package novoht

import (
	"fmt"
	"os"
	"sync"
	"time"

	"zht/internal/metrics"
	"zht/internal/storage"
)

// wal is NoVoHT's group-commit write-ahead log: a single writer
// goroutine drains concurrently submitted records into one buffered
// file write and — per durability mode — one fsync per commit batch
// (group), one fsync per record (sync), or none (async). Callers
// append under their shard lock (so per-key log order matches memory
// order) and wait for their record's durability level after releasing
// it, so a slow fsync never blocks unrelated keys.
//
// Offsets are assigned at append time under the wal mutex, which is
// what lets the sharded table record an evicted value's future file
// position before the bytes have physically landed; readers call
// flushTo to force the prefix they need onto the file first.
type wal struct {
	mu   sync.Mutex
	cond *sync.Cond

	f      *os.File
	mode   storage.Durability
	fault  storage.Fault
	window time.Duration // group mode: how long a commit waits for company

	pending [][]byte // records appended but not yet handed to the writer
	size    int64    // logical log length, including pending records
	written int64    // bytes physically written to f
	synced  int64    // bytes covered by an fsync
	epoch   uint64   // bumped by swapFile; offsets from older epochs are stale

	err     error // sticky: fault injection or real I/O failure
	closed  bool  // close requested; writer drains then exits
	stopped bool  // writer goroutine has exited

	// Instruments; all nil-safe when metrics are disabled.
	commits *metrics.Counter   // zht.storage.wal.commits
	batchSz *metrics.Histogram // zht.storage.wal.batch.size
	fsyncNs *metrics.Histogram // zht.storage.wal.fsync_ns
}

// newWAL wraps an open log file whose consistent prefix ends at size.
// The writer goroutine starts immediately.
func newWAL(f *os.File, size int64, mode storage.Durability, window time.Duration, fault storage.Fault, reg *metrics.Registry) *wal {
	w := &wal{f: f, mode: mode, fault: fault, window: window, size: size, written: size, synced: size}
	w.cond = sync.NewCond(&w.mu)
	if reg != nil {
		w.commits = reg.Counter("zht.storage.wal.commits")
		w.batchSz = reg.Histogram("zht.storage.wal.batch.size")
		w.fsyncNs = reg.Histogram("zht.storage.wal.fsync_ns")
	}
	go w.run()
	return w
}

// append enqueues one record and returns the logical offset its first
// byte will occupy. The caller owes a matching waitDurable(off +
// len(rec)) before acknowledging the mutation.
func (w *wal) append(rec []byte) (off int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, ErrClosed
	}
	off = w.size
	w.size += int64(len(rec))
	w.pending = append(w.pending, rec)
	w.cond.Broadcast()
	return off, nil
}

// waitDurable blocks until the log prefix [0, target) has reached
// this WAL's durability level: written for async, fsynced for group
// and sync. It returns the sticky error if the WAL broke first.
func (w *wal) waitDurable(target int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	watermark := func() int64 {
		if w.mode == storage.DurabilityGroup || w.mode == storage.DurabilitySync {
			return w.synced
		}
		return w.written
	}
	if w.mode == storage.DurabilityAsync {
		// Async acknowledges on submission — today's seed behavior:
		// the writer pushes the bytes to the OS in the background.
		return nil
	}
	// A compaction can retire this record's offset while we wait: the
	// checkpoint rewrite drains the log, persists every record
	// appended so far (group and sync compactions fsync the new
	// file), and swapFile rebases the watermarks to the new — often
	// smaller — file. Our target offset then names a position in a
	// file that no longer exists, so comparing it against the rebased
	// watermark would block forever. An epoch change therefore means
	// the record is durable in the checkpoint.
	epoch := w.epoch
	for watermark() < target && w.epoch == epoch && w.err == nil && !w.stopped {
		w.cond.Wait()
	}
	if w.epoch != epoch || watermark() >= target {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	return ErrClosed
}

// flushTo blocks until the log prefix [0, target) is physically in
// the file, so ReadAt on it is valid.
func (w *wal) flushTo(target int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.written < target && w.err == nil && !w.stopped {
		w.cond.Wait()
	}
	if w.written >= target {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	return ErrClosed
}

// readAt reads a previously flushed byte range from the log file.
func (w *wal) readAt(buf []byte, off int64) error {
	if err := w.flushTo(off + int64(len(buf))); err != nil {
		return err
	}
	if _, err := w.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("novoht: read log: %w", err)
	}
	return nil
}

// logicalSize returns the log length including not-yet-written
// records.
func (w *wal) logicalSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// syncAll forces every appended record onto the file and fsyncs it.
func (w *wal) syncAll() error {
	w.mu.Lock()
	target := w.size
	w.mu.Unlock()
	if err := w.flushTo(target); err != nil {
		return err
	}
	if err := w.faultSync(); err != nil {
		w.fail(err)
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.fail(err)
		return err
	}
	w.mu.Lock()
	if target > w.synced {
		w.synced = target
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// swapFile installs a freshly compacted log file (all shard locks are
// held and the WAL is drained, so no record is in flight). The epoch
// bump releases waitDurable callers still holding pre-compaction
// offsets — their records are durable in the checkpoint.
func (w *wal) swapFile(f *os.File, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f = f
	w.size, w.written, w.synced = size, size, size
	w.epoch++
	w.cond.Broadcast()
}

// close drains pending records, fsyncs the file (so a clean shutdown
// never loses an acknowledged — or even an async-buffered — write),
// and closes it. Safe to call once; the store serializes callers.
func (w *wal) close() error {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	for !w.stopped {
		w.cond.Wait()
	}
	err := w.err
	w.mu.Unlock()
	if err != nil {
		w.f.Close() // broken WAL: nothing more to save
		return err
	}
	if serr := w.f.Sync(); serr != nil {
		w.f.Close()
		return serr
	}
	return w.f.Close()
}

// fail records the sticky error and wakes every waiter.
func (w *wal) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("%w: %v", storage.ErrBroken, err)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// broken reports the sticky error, if any.
func (w *wal) broken() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *wal) faultWrite(n int) (int, error) {
	if w.fault == nil {
		return n, nil
	}
	return w.fault.BeforeWrite(n)
}

func (w *wal) faultSync() error {
	if w.fault == nil {
		return nil
	}
	return w.fault.BeforeSync()
}

// run is the single writer: it swaps out the pending batch, writes it
// in one pass, issues the mode's fsyncs, then publishes the new
// watermarks and wakes the batch's waiters.
//
// In group mode the writer does not commit the instant the first
// record lands: it sleeps for the commit window first, so concurrent
// callers whose arrivals are staggered by scheduling or network
// round trips still share one fsync. Without the window, a closed
// loop of clients phase-locks with the writer — each fsync releases
// one waiter, which submits the next record just after the following
// commit has begun — and group commit degenerates into sync (batch
// size 1). This is the same knob as PostgreSQL's commit_delay and
// MySQL's binlog_group_commit_sync_delay.
func (w *wal) run() {
	w.mu.Lock()
	for {
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.pending) == 0) {
			w.stopped = true
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		if w.mode == storage.DurabilityGroup && w.window > 0 && !w.closed {
			// Gather a cohort. Appends only need the mutex briefly, so
			// they accumulate in pending while the writer sleeps.
			w.mu.Unlock()
			time.Sleep(w.window)
			w.mu.Lock()
		}
		batch := w.pending
		w.pending = nil
		w.mu.Unlock()

		written, synced, err := w.commit(batch)

		w.mu.Lock()
		w.written += written
		w.synced += synced
		if err != nil && w.err == nil {
			w.err = fmt.Errorf("%w: %v", storage.ErrBroken, err)
		}
		w.cond.Broadcast()
	}
}

// commit writes one batch, returning how many bytes were fully
// written and how many of those are covered by an fsync. A fault or
// I/O error may leave a torn record on disk — the same state a real
// crash mid-commit leaves — and is returned for the sticky error.
func (w *wal) commit(batch [][]byte) (written, synced int64, err error) {
	w.commits.Inc()
	w.batchSz.Observe(int64(len(batch)))
	for _, rec := range batch {
		keep, ferr := w.faultWrite(len(rec))
		if keep > 0 {
			if keep > len(rec) {
				keep = len(rec)
			}
			if _, werr := w.f.Write(rec[:keep]); werr != nil && ferr == nil {
				ferr = werr
			}
		}
		if ferr == nil && keep < len(rec) {
			ferr = fmt.Errorf("novoht: torn write (%d of %d bytes)", keep, len(rec))
		}
		if ferr != nil {
			return written, synced, ferr
		}
		written += int64(len(rec))
		// The record's bytes are on the file and nothing else holds a
		// reference (reads go through readAt on the file, compaction
		// rewrites from the in-memory table), so its buffer goes back
		// to the pool appendRecord draws from.
		putRec(rec)
		if w.mode == storage.DurabilitySync {
			if serr := w.fsync(); serr != nil {
				return written, synced, serr
			}
			synced = written
		}
	}
	if w.mode == storage.DurabilityGroup {
		if serr := w.fsync(); serr != nil {
			return written, synced, serr
		}
		synced = written
	}
	return written, synced, nil
}

// fsync hardens the file, timing the call.
func (w *wal) fsync() error {
	if err := w.faultSync(); err != nil {
		return err
	}
	start := time.Time{}
	if w.fsyncNs.ShouldSample() {
		start = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if !start.IsZero() {
		w.fsyncNs.Observe(time.Since(start).Nanoseconds())
	}
	return nil
}
