// Package cassring implements the Cassandra-style baseline the paper
// compares ZHT against on the HEC-Cluster (Figures 8 and 10).
//
// The paper attributes Cassandra's higher latency and poorer
// scalability to its logarithmic routing: "Cassandra has to take care
// of a logarithmic-routing-time dynamic member list and ZHT uses
// constant routing" (§IV.C). This baseline reproduces exactly that
// structural cost:
//
//   - nodes sit on a consistent-hash ring and maintain Chord-style
//     finger tables (successors at power-of-two distances) instead of
//     a complete membership table;
//   - a client sends each request to a random coordinator node, which
//     forwards it greedily by finger table until it reaches the owner
//     — O(log N) network hops per operation;
//   - mutations are persisted to a commit log (NoVoHT) before being
//     acknowledged, and the store is "always writable": writes are
//     accepted by the owner unconditionally and conflicts are
//     timestamp-resolved at read time (last-write-wins), mirroring
//     Cassandra's deferred consistency.
package cassring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"zht/internal/hashing"
	"zht/internal/novoht"
	"zht/internal/storage"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Errors returned by the client.
var (
	ErrNotFound = errors.New("cassring: not found")
	// ErrHopLimit reports a routing loop or an inconsistent ring.
	ErrHopLimit = errors.New("cassring: hop limit exceeded")
)

// maxHops bounds request forwarding; log2(N) plus slack.
const maxHops = 64

// Node is one ring member.
type Node struct {
	token    uint64 // position on the ring
	addr     string
	store    storage.KV
	caller   transport.Caller
	hashf    hashing.Func
	replicas int

	ringMu sync.RWMutex
	ring   []member // full sorted ring (for finger construction)
	finger []member // fingers at power-of-two token distances

	mu   sync.Mutex
	hops uint64 // total forwarding hops served (observability)
}

type member struct {
	token uint64
	addr  string
}

// Options configures a cluster.
type Options struct {
	// DataDir persists each node's commit log; empty = memory only.
	DataDir string
	// Replicas writes each pair to this many successor nodes
	// (besides the owner). 0 = none.
	Replicas int
}

// Cluster is a convenience handle over a set of nodes.
type Cluster struct {
	Nodes  []*Node
	opts   Options
	listen func(addr string, h transport.Handler) (transport.Listener, error)
	caller transport.Caller
	nextID int
}

// NewCluster creates n nodes with evenly spaced tokens, registers
// them on listen, and wires them with caller.
func NewCluster(n int, opts Options, listen func(addr string, h transport.Handler) (transport.Listener, error), caller transport.Caller) (*Cluster, error) {
	if n <= 0 {
		return nil, errors.New("cassring: need at least one node")
	}
	members := make([]member, n)
	for i := 0; i < n; i++ {
		members[i] = member{
			// Even token spacing mirrors well-balanced vnode rings.
			token: uint64(i) * (^uint64(0) / uint64(n)),
			addr:  fmt.Sprintf("cass-%04d", i),
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].token < members[j].token })
	c := &Cluster{opts: opts, listen: listen, caller: caller, nextID: n}
	for i := range members {
		sopts := novoht.Options{}
		if opts.DataDir != "" {
			sopts.Path = fmt.Sprintf("%s/cass-%04d.log", opts.DataDir, i)
		}
		st, err := novoht.Open(sopts)
		if err != nil {
			return nil, err
		}
		nd := &Node{
			token:    members[i].token,
			addr:     members[i].addr,
			ring:     members,
			store:    st,
			caller:   caller,
			hashf:    hashing.Default,
			replicas: opts.Replicas,
		}
		nd.buildFingers()
		if _, err := listen(nd.addr, nd.Handle); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, nd)
	}
	return c, nil
}

// setRing atomically installs a new ring view and rebuilds fingers
// (Cassandra learns ring changes via gossip; this in-process baseline
// installs the converged view directly).
func (n *Node) setRing(ring []member) {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	n.ring = ring
	n.finger = n.finger[:0]
	seen := map[string]bool{}
	for k := 0; k < 64; k++ {
		target := n.token + 1<<k // wraps naturally
		m := successorIn(ring, target)
		if m.addr != n.addr && !seen[m.addr] {
			n.finger = append(n.finger, m)
			seen[m.addr] = true
		}
	}
	sort.Slice(n.finger, func(i, j int) bool { return n.finger[i].token < n.finger[j].token })
}

// buildFingers rebuilds fingers from the current ring.
func (n *Node) buildFingers() { n.setRing(n.ring) }

// successorIn returns the member of ring owning token t.
func successorIn(ring []member, t uint64) member {
	i := sort.Search(len(ring), func(i int) bool { return ring[i].token >= t })
	if i == len(ring) {
		i = 0
	}
	return ring[i]
}

// successorOf returns the ring member owning token t (first member
// clockwise at or after t).
func (n *Node) successorOf(t uint64) member {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return successorIn(n.ring, t)
}

// owns reports whether this node is the owner of token t.
func (n *Node) owns(t uint64) bool { return n.successorOf(t).addr == n.addr }

// nextHopTo picks the finger closest to (but not past) the owner of
// t — greedy Chord routing, halving the remaining distance each hop.
func (n *Node) nextHopTo(t uint64) member {
	ownerTok := n.successorOf(t).token
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	best := member{}
	bestDist := ^uint64(0)
	for _, f := range n.finger {
		// Distance from finger to owner, measured clockwise.
		d := ownerTok - f.token // wraps
		if d < bestDist {
			bestDist = d
			best = f
		}
	}
	return best
}

// Handle implements transport.Handler. Requests carry the key's token
// implicitly (recomputed per hop); Hop counts forwards.
func (n *Node) Handle(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpInsert, wire.OpLookup, wire.OpRemove:
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpReplicate:
		return n.apply(req)
	default:
		return &wire.Response{Status: wire.StatusError, Err: "cassring: unsupported op (no append — Table 1)"}
	}
	t := n.hashf(req.Key)
	if n.owns(t) {
		resp := n.apply(req)
		if resp.Status == wire.StatusOK && req.Op != wire.OpLookup {
			n.replicate(t, req)
		}
		return resp
	}
	if req.Hop >= maxHops {
		return &wire.Response{Status: wire.StatusError, Err: ErrHopLimit.Error()}
	}
	// Forward one hop toward the owner.
	n.mu.Lock()
	n.hops++
	n.mu.Unlock()
	fwd := *req
	fwd.Hop = req.Hop + 1
	next := n.nextHopTo(t)
	resp, err := n.caller.Call(next.addr, &fwd)
	if err != nil {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	return resp
}

// apply executes the op on the local store. Values are stored with a
// timestamp prefix; reads resolve last-write-wins.
func (n *Node) apply(req *wire.Request) *wire.Response {
	op := req.Op
	if op == wire.OpReplicate {
		op = wire.Op(req.Aux[0])
	}
	switch op {
	case wire.OpInsert:
		cur, ok, err := n.store.Get(req.Key)
		if err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		incoming := req.Value
		if ok && decodeTS(cur) > decodeTS(incoming) {
			// Stale write: accepted (always writable) but loses
			// the timestamp resolution.
			return &wire.Response{Status: wire.StatusOK}
		}
		if err := n.store.Put(req.Key, incoming); err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpLookup:
		v, ok, err := n.store.Get(req.Key)
		if err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: v}
	case wire.OpRemove:
		ok, err := n.store.Remove(req.Key)
		if err != nil {
			return &wire.Response{Status: wire.StatusError, Err: err.Error()}
		}
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK}
	}
	return &wire.Response{Status: wire.StatusError, Err: "cassring: bad op"}
}

// replicate copies the mutation to successor nodes.
func (n *Node) replicate(t uint64, req *wire.Request) {
	if n.replicas <= 0 {
		return
	}
	n.ringMu.RLock()
	ring := n.ring
	n.ringMu.RUnlock()
	for i := range ring {
		if ring[i].addr != n.addr {
			continue
		}
		for s := 1; s <= n.replicas && s < len(ring); s++ {
			succ := ring[(i+s)%len(ring)]
			fwd := *req
			fwd.Op = wire.OpReplicate
			fwd.Aux = []byte{byte(req.Op)}
			n.caller.Call(succ.addr, &fwd)
		}
		break
	}
}

// Hops reports forwarding hops served by this node.
func (n *Node) Hops() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hops
}

// Join adds a node with a token bisecting the largest ring gap
// (dynamic membership, which Table 1 credits Cassandra with). Keys
// the new node now owns are handed off from its successor, then every
// node installs the converged ring view (standing in for gossip
// convergence).
func (c *Cluster) Join() (*Node, error) {
	if len(c.Nodes) == 0 {
		return nil, errors.New("cassring: empty cluster")
	}
	old := c.Nodes[0].ringView() // all nodes share the same converged view
	// Find the largest clockwise gap.
	bestGap := uint64(0)
	newToken := uint64(0)
	for i := range old {
		next := old[(i+1)%len(old)].token
		gap := next - old[i].token // wraps for the last interval
		if i == len(old)-1 {
			gap = old[0].token - old[i].token
		}
		if gap > bestGap {
			bestGap = gap
			newToken = old[i].token + gap/2
		}
	}
	addr := fmt.Sprintf("cass-%04d", c.nextID)
	c.nextID++
	sopts := novoht.Options{}
	if c.opts.DataDir != "" {
		sopts.Path = fmt.Sprintf("%s/%s.log", c.opts.DataDir, addr)
	}
	st, err := novoht.Open(sopts)
	if err != nil {
		return nil, err
	}
	nd := &Node{
		token: newToken, addr: addr, store: st,
		caller: c.caller, hashf: hashing.Default, replicas: c.opts.Replicas,
	}
	ring := append(append([]member(nil), old...), member{token: newToken, addr: addr})
	sort.Slice(ring, func(i, j int) bool { return ring[i].token < ring[j].token })
	nd.setRing(ring)
	if _, err := c.listen(addr, nd.Handle); err != nil {
		st.Close()
		return nil, err
	}
	// Hand off: the old owner of newToken transfers the keys the
	// newcomer now owns.
	oldOwner := c.nodeByAddr(successorIn(old, newToken).addr)
	if oldOwner != nil {
		var moved []string
		oldOwner.store.ForEach(func(k string, v []byte) error {
			if successorIn(ring, oldOwner.hashf(k)).addr == addr {
				if err := nd.store.Put(k, v); err != nil {
					return err
				}
				moved = append(moved, k)
			}
			return nil
		})
		for _, k := range moved {
			oldOwner.store.Remove(k)
		}
	}
	// Converge every node's view.
	for _, n := range c.Nodes {
		n.setRing(ring)
	}
	c.Nodes = append(c.Nodes, nd)
	return nd, nil
}

func (n *Node) ringView() []member {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return n.ring
}

func (c *Cluster) nodeByAddr(addr string) *Node {
	for _, n := range c.Nodes {
		if n.addr == addr {
			return n
		}
	}
	return nil
}

// Close closes all node stores.
func (c *Cluster) Close() error {
	var first error
	for _, nd := range c.Nodes {
		if err := nd.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TotalHops sums forwarding hops over the cluster.
func (c *Cluster) TotalHops() uint64 {
	var h uint64
	for _, nd := range c.Nodes {
		h += nd.Hops()
	}
	return h
}

// Client talks to the cluster through random coordinators.
type Client struct {
	addrs  []string
	caller transport.Caller
	rngMu  sync.Mutex
	rng    *rand.Rand
	tsMu   sync.Mutex
	lastTS uint64
}

// NewClient creates a cluster client.
func (c *Cluster) NewClient(caller transport.Caller) *Client {
	addrs := make([]string, len(c.Nodes))
	for i, nd := range c.Nodes {
		addrs[i] = nd.addr
	}
	return &Client{addrs: addrs, caller: caller, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (c *Client) coordinator() string {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.addrs[c.rng.Intn(len(c.addrs))]
}

// Put writes key=val with a client timestamp (last-write-wins).
func (c *Client) Put(key string, val []byte) error {
	resp, err := c.caller.Call(c.coordinator(), &wire.Request{
		Op: wire.OpInsert, Key: key, Value: c.stamp(val),
	})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("cassring: put: %s", resp.Err)
	}
	return nil
}

// Get reads key's value.
func (c *Client) Get(key string) ([]byte, error) {
	resp, err := c.caller.Call(c.coordinator(), &wire.Request{Op: wire.OpLookup, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case wire.StatusOK:
		return unstamp(resp.Value), nil
	case wire.StatusNotFound:
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("cassring: get: %s", resp.Err)
}

// Delete removes key.
func (c *Client) Delete(key string) error {
	resp, err := c.caller.Call(c.coordinator(), &wire.Request{Op: wire.OpRemove, Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	}
	return fmt.Errorf("cassring: delete: %s", resp.Err)
}

// stamp prefixes val with a monotone timestamp.
func (c *Client) stamp(val []byte) []byte {
	c.tsMu.Lock()
	ts := uint64(time.Now().UnixNano())
	if ts <= c.lastTS {
		ts = c.lastTS + 1
	}
	c.lastTS = ts
	c.tsMu.Unlock()
	out := make([]byte, 8+len(val))
	binary.BigEndian.PutUint64(out, ts)
	copy(out[8:], val)
	return out
}

func decodeTS(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

func unstamp(v []byte) []byte {
	if len(v) < 8 {
		return v
	}
	return v[8:]
}
