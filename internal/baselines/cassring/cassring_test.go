package cassring

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"zht/internal/transport"
	"zht/internal/wire"
)

func newTestClusterReg(t *testing.T, n int, opts Options) (*Cluster, *Client, *transport.Registry) {
	t.Helper()
	reg := transport.NewRegistry()
	c, err := NewCluster(n, opts, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, c.NewClient(reg.NewClient()), reg
}

func newTestCluster(t *testing.T, n int, opts Options) (*Cluster, *Client) {
	c, cl, _ := newTestClusterReg(t, n, opts)
	return c, cl
}

func TestPutGetDelete(t *testing.T) {
	_, c := newTestCluster(t, 8, Options{})
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
}

func TestManyKeysAllRoutable(t *testing.T) {
	_, c := newTestCluster(t, 16, Options{})
	const n = 1000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if err := c.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, err := c.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
}

// TestLogNRouting verifies the structural property the baseline
// exists for: average hops per op grows like log2(N), not O(1).
func TestLogNRouting(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		cluster, c := newTestCluster(t, n, Options{})
		const ops = 400
		for i := 0; i < ops; i++ {
			if err := c.Put(fmt.Sprintf("key-%05d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		avg := float64(cluster.TotalHops()) / float64(ops)
		logN := math.Log2(float64(n))
		// Greedy finger routing halves distance per hop: expect
		// ~log2(N)/2 on average, certainly within [0.2, 1.5]x log2(N)
		// and strictly > 0 for N > 2.
		if avg < 0.2*logN*0.5 || avg > 1.5*logN {
			t.Errorf("n=%d: avg hops %.2f, want Θ(log n)≈%.1f", n, avg, logN/2)
		}
		t.Logf("n=%d avg hops %.2f (log2 n = %.1f)", n, avg, logN)
	}
}

func TestLastWriteWins(t *testing.T) {
	_, c := newTestCluster(t, 4, Options{})
	if err := c.Put("k", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("second")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "second" {
		t.Fatalf("Get = %q %v (last write must win)", v, err)
	}
}

func TestReplicationToSuccessors(t *testing.T) {
	cluster, c := newTestCluster(t, 4, Options{Replicas: 2})
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Put(fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, nd := range cluster.Nodes {
		total += nd.store.Len()
	}
	if total != 3*n {
		t.Errorf("total copies = %d, want %d", total, 3*n)
	}
}

func TestAppendUnsupported(t *testing.T) {
	// Table 1: Cassandra has no append. The server rejects it.
	cluster, _ := newTestCluster(t, 2, Options{})
	resp := cluster.Nodes[0].Handle(&wire.Request{Op: wire.OpAppend, Key: "k", Value: []byte("v")})
	if resp.Status != wire.StatusError {
		t.Errorf("append accepted: %v", resp.Status)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reg := transport.NewRegistry()
	listen := func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}
	c1, err := NewCluster(2, Options{DataDir: dir}, listen, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	cl := c1.NewClient(reg.NewClient())
	for i := 0; i < 50; i++ {
		if err := cl.Put(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart on a fresh registry, same data dir.
	reg2 := transport.NewRegistry()
	c2, err := NewCluster(2, Options{DataDir: dir}, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg2.Listen(addr, h)
	}, reg2.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	cl2 := c2.NewClient(reg2.NewClient())
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v, err := cl2.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("%s after restart = %q %v", k, v, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	cluster, _, reg := newTestClusterReg(t, 8, Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cluster.NewClient(reg.NewClient())
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("w%d-%03d", w, i)
				if err := c.Put(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if v, err := c.Get(k); err != nil || string(v) != k {
					t.Errorf("%s = %q %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDynamicJoinMovesKeys(t *testing.T) {
	cluster, c := newTestCluster(t, 4, Options{})
	const n = 400
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if err := c.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	before := 0
	for _, nd := range cluster.Nodes {
		before += nd.store.Len()
	}
	joined, err := cluster.Join()
	if err != nil {
		t.Fatal(err)
	}
	if joined.store.Len() == 0 {
		t.Error("joined node received no keys")
	}
	after := 0
	for _, nd := range cluster.Nodes {
		after += nd.store.Len()
	}
	if after != before {
		t.Errorf("key count changed across join: %d -> %d", before, after)
	}
	// Every key remains routable after the join.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, err := c.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("%s after join = %q %v", k, v, err)
		}
	}
	// Writes after the join route to the converged ring.
	if err := c.Put("post-join", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get("post-join"); err != nil || string(v) != "v" {
		t.Fatalf("post-join = %q %v", v, err)
	}
}

func TestRepeatedJoins(t *testing.T) {
	cluster, c := newTestCluster(t, 2, Options{})
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%03d", i), []byte("v"))
	}
	for j := 0; j < 4; j++ {
		if _, err := cluster.Join(); err != nil {
			t.Fatalf("join %d: %v", j, err)
		}
	}
	if len(cluster.Nodes) != 6 {
		t.Errorf("cluster size = %d", len(cluster.Nodes))
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%03d", i)
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("%s after 4 joins = %q %v", k, v, err)
		}
	}
}

func TestEmptyClusterRejected(t *testing.T) {
	reg := transport.NewRegistry()
	if _, err := NewCluster(0, Options{}, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}, reg.NewClient()); err == nil {
		t.Error("empty cluster accepted")
	}
}
