// Package bdb implements a BerkeleyDB-style on-disk B-tree key/value
// store: the second baseline NoVoHT is compared against in Figure 6.
//
// The structural properties the comparison relies on:
//
//   - keys and values live in fixed-size pages on disk; a bounded LRU
//     page cache keeps the working set small (BerkeleyDB's memory
//     advantage in the paper), so point operations pay page I/O when
//     the tree outgrows the cache;
//   - lookups descend O(log_B n) internal pages to a leaf;
//   - inserts split full leaves upward.
//
// Deletions remove keys from leaves without rebalancing (pages may
// underflow but the tree stays correct), which matches how BerkeleyDB
// behaves without explicit compaction.
package bdb

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

// MaxKeyLen and MaxValueLen keep any single entry well under a page.
const (
	MaxKeyLen   = 512
	MaxValueLen = 1536
)

// Errors returned by the store.
var (
	ErrClosed   = errors.New("bdb: store is closed")
	ErrTooLarge = errors.New("bdb: key or value exceeds limit")
)

const (
	pageLeaf     = 1
	pageInternal = 2
)

// page is the in-memory form of one on-disk page.
type page struct {
	id    uint32
	typ   byte
	keys  [][]byte
	vals  [][]byte // leaf only
	child []uint32 // internal only; len = len(keys)+1
	dirty bool
}

// DB is an on-disk B-tree.
type DB struct {
	mu        sync.Mutex
	f         *os.File
	root      uint32
	nextPage  uint32
	cache     map[uint32]*list.Element
	lru       *list.List // of *page; front = most recent
	cacheCap  int
	closed    bool
	pageReads uint64 // cache misses → disk reads
}

// Open creates or opens a B-tree at path. cachePages bounds the page
// cache (0 = default 64 pages ≈ 256 KiB, deliberately small: the
// paper's BerkeleyDB trades performance for memory).
func Open(path string, cachePages int) (*DB, error) {
	if cachePages <= 0 {
		cachePages = 64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	db := &DB{
		f: f, cache: make(map[uint32]*list.Element),
		lru: list.New(), cacheCap: cachePages,
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		// Page 0 is the meta page; page 1 the empty root leaf.
		db.root = 1
		db.nextPage = 2
		rootPage := &page{id: 1, typ: pageLeaf, dirty: true}
		if err := db.writePage(rootPage); err != nil {
			f.Close()
			return nil, err
		}
		if err := db.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var meta [PageSize]byte
		if _, err := f.ReadAt(meta[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		if string(meta[:4]) != "BDBT" {
			f.Close()
			return nil, errors.New("bdb: bad magic")
		}
		db.root = binary.LittleEndian.Uint32(meta[4:])
		db.nextPage = binary.LittleEndian.Uint32(meta[8:])
	}
	return db, nil
}

func (db *DB) writeMeta() error {
	var meta [PageSize]byte
	copy(meta[:4], "BDBT")
	binary.LittleEndian.PutUint32(meta[4:], db.root)
	binary.LittleEndian.PutUint32(meta[8:], db.nextPage)
	_, err := db.f.WriteAt(meta[:], 0)
	return err
}

// encode serializes a page into a PageSize buffer.
func (p *page) encode() ([]byte, error) {
	buf := make([]byte, PageSize)
	buf[0] = p.typ
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(p.keys)))
	off := 3
	if p.typ == pageInternal {
		if len(p.child) != len(p.keys)+1 {
			return nil, fmt.Errorf("bdb: internal page %d has %d keys / %d children", p.id, len(p.keys), len(p.child))
		}
		binary.LittleEndian.PutUint32(buf[off:], p.child[0])
		off += 4
	}
	for i, k := range p.keys {
		if off+4+len(k) > PageSize {
			return nil, fmt.Errorf("bdb: page %d overflow", p.id)
		}
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		if p.typ == pageLeaf {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(p.vals[i])))
			off += 2
			copy(buf[off:], k)
			off += len(k)
			if off+len(p.vals[i]) > PageSize {
				return nil, fmt.Errorf("bdb: page %d overflow", p.id)
			}
			copy(buf[off:], p.vals[i])
			off += len(p.vals[i])
		} else {
			copy(buf[off:], k)
			off += len(k)
			if off+4 > PageSize {
				return nil, fmt.Errorf("bdb: page %d overflow", p.id)
			}
			binary.LittleEndian.PutUint32(buf[off:], p.child[i+1])
			off += 4
		}
	}
	return buf, nil
}

// encodedSize estimates a page's encoded size.
func (p *page) encodedSize() int {
	n := 3
	if p.typ == pageInternal {
		n += 4
	}
	for i, k := range p.keys {
		n += 2 + len(k)
		if p.typ == pageLeaf {
			n += 2 + len(p.vals[i])
		} else {
			n += 4
		}
	}
	return n
}

func decodePage(id uint32, buf []byte) (*page, error) {
	p := &page{id: id, typ: buf[0]}
	if p.typ != pageLeaf && p.typ != pageInternal {
		return nil, fmt.Errorf("bdb: page %d has bad type %d", id, buf[0])
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	off := 3
	if p.typ == pageInternal {
		p.child = append(p.child, binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if p.typ == pageLeaf {
			vlen := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			p.keys = append(p.keys, append([]byte(nil), buf[off:off+klen]...))
			off += klen
			p.vals = append(p.vals, append([]byte(nil), buf[off:off+vlen]...))
			off += vlen
		} else {
			p.keys = append(p.keys, append([]byte(nil), buf[off:off+klen]...))
			off += klen
			p.child = append(p.child, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return p, nil
}

// getPage fetches a page through the cache.
func (db *DB) getPage(id uint32) (*page, error) {
	if el, ok := db.cache[id]; ok {
		db.lru.MoveToFront(el)
		return el.Value.(*page), nil
	}
	buf := make([]byte, PageSize)
	if _, err := db.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("bdb: read page %d: %w", id, err)
	}
	db.pageReads++
	p, err := decodePage(id, buf)
	if err != nil {
		return nil, err
	}
	db.insertCache(p)
	return p, nil
}

func (db *DB) insertCache(p *page) {
	db.cache[p.id] = db.lru.PushFront(p)
	for db.lru.Len() > db.cacheCap {
		el := db.lru.Back()
		victim := el.Value.(*page)
		if victim.dirty {
			if err := db.flushPage(victim); err != nil {
				// Keep the dirty page; caller sees the error on Sync.
				return
			}
		}
		db.lru.Remove(el)
		delete(db.cache, victim.id)
	}
}

func (db *DB) flushPage(p *page) error {
	buf, err := p.encode()
	if err != nil {
		return err
	}
	if _, err := db.f.WriteAt(buf, int64(p.id)*PageSize); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// writePage writes a page immediately and caches it.
func (db *DB) writePage(p *page) error {
	if err := db.flushPage(p); err != nil {
		return err
	}
	if _, ok := db.cache[p.id]; !ok {
		db.insertCache(p)
	}
	return nil
}

func (db *DB) allocPage(typ byte) *page {
	p := &page{id: db.nextPage, typ: typ, dirty: true}
	db.nextPage++
	db.insertCache(p)
	return p
}

// Get returns the value stored under key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	p, err := db.getPage(db.root)
	if err != nil {
		return nil, false, err
	}
	for p.typ == pageInternal {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) > 0 })
		if p, err = db.getPage(p.child[i]); err != nil {
			return nil, false, err
		}
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
	if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
		return append([]byte(nil), p.vals[i]...), true, nil
	}
	return nil, false, nil
}

// Set stores val under key.
func (db *DB) Set(key, val []byte) error {
	if len(key) > MaxKeyLen || len(val) > MaxValueLen {
		return ErrTooLarge
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	// Descend, remembering the path for splits.
	type step struct {
		p   *page
		idx int
	}
	var path []step
	p, err := db.getPage(db.root)
	if err != nil {
		return err
	}
	for p.typ == pageInternal {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) > 0 })
		path = append(path, step{p, i})
		if p, err = db.getPage(p.child[i]); err != nil {
			return err
		}
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
	if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
		p.vals[i] = append([]byte(nil), val...)
	} else {
		p.keys = append(p.keys, nil)
		copy(p.keys[i+1:], p.keys[i:])
		p.keys[i] = append([]byte(nil), key...)
		p.vals = append(p.vals, nil)
		copy(p.vals[i+1:], p.vals[i:])
		p.vals[i] = append([]byte(nil), val...)
	}
	p.dirty = true

	// Split upward while pages overflow.
	for p.encodedSize() > PageSize {
		mid := len(p.keys) / 2
		var sep []byte
		right := db.allocPage(p.typ)
		if p.typ == pageLeaf {
			sep = append([]byte(nil), p.keys[mid]...)
			right.keys = append(right.keys, p.keys[mid:]...)
			right.vals = append(right.vals, p.vals[mid:]...)
			p.keys = p.keys[:mid]
			p.vals = p.vals[:mid]
		} else {
			sep = append([]byte(nil), p.keys[mid]...)
			right.keys = append(right.keys, p.keys[mid+1:]...)
			right.child = append(right.child, p.child[mid+1:]...)
			p.keys = p.keys[:mid]
			p.child = p.child[:mid+1]
		}
		p.dirty = true
		right.dirty = true

		if len(path) == 0 {
			// Root split: grow the tree.
			newRoot := db.allocPage(pageInternal)
			newRoot.keys = [][]byte{sep}
			newRoot.child = []uint32{p.id, right.id}
			db.root = newRoot.id
			if err := db.writeMeta(); err != nil {
				return err
			}
			break
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		pp, idx := parent.p, parent.idx
		pp.keys = append(pp.keys, nil)
		copy(pp.keys[idx+1:], pp.keys[idx:])
		pp.keys[idx] = sep
		pp.child = append(pp.child, 0)
		copy(pp.child[idx+2:], pp.child[idx+1:])
		pp.child[idx+1] = right.id
		pp.dirty = true
		p = pp
	}
	return nil
}

// Delete removes key, reporting whether it existed. Leaves may
// underflow (no rebalancing).
func (db *DB) Delete(key []byte) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	p, err := db.getPage(db.root)
	if err != nil {
		return false, err
	}
	for p.typ == pageInternal {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) > 0 })
		if p, err = db.getPage(p.child[i]); err != nil {
			return false, err
		}
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
	if i >= len(p.keys) || !bytes.Equal(p.keys[i], key) {
		return false, nil
	}
	p.keys = append(p.keys[:i], p.keys[i+1:]...)
	p.vals = append(p.vals[:i], p.vals[i+1:]...)
	p.dirty = true
	return true, nil
}

// Sync flushes all dirty pages and the meta page.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.syncLocked()
}

func (db *DB) syncLocked() error {
	for el := db.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*page)
		if p.dirty {
			if err := db.flushPage(p); err != nil {
				return err
			}
		}
	}
	if err := db.writeMeta(); err != nil {
		return err
	}
	return db.f.Sync()
}

// PageReads reports disk page reads (cache misses).
func (db *DB) PageReads() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pageReads
}

// Close flushes and closes the store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if err := db.syncLocked(); err != nil {
		db.f.Close()
		db.closed = true
		return err
	}
	db.closed = true
	return db.f.Close()
}
