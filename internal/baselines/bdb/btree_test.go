package bdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, cachePages int) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "bdb.db"), cachePages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSetGetDelete(t *testing.T) {
	db := openTemp(t, 0)
	if err := db.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if err := db.Set([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get([]byte("a")); string(v) != "2" {
		t.Errorf("overwrite = %q", v)
	}
	deleted, err := db.Delete([]byte("a"))
	if err != nil || !deleted {
		t.Fatalf("Delete = %v %v", deleted, err)
	}
	if _, ok, _ := db.Get([]byte("a")); ok {
		t.Error("key survives delete")
	}
	if deleted, _ := db.Delete([]byte("a")); deleted {
		t.Error("double delete reports true")
	}
}

func TestSplitsManyKeysSorted(t *testing.T) {
	db := openTemp(t, 16)
	const n = 5000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%08d", i))
		if err := db.Set(k, []byte(fmt.Sprintf("val-%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		k := []byte(fmt.Sprintf("key-%08d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%08d", i) {
			t.Fatalf("%s = %q %v %v", k, v, ok, err)
		}
	}
}

func TestSplitsRandomOrder(t *testing.T) {
	db := openTemp(t, 16)
	const n = 5000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%08d", i))
		if err := db.Set(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%08d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q %v %v", k, v, ok, err)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	db, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Set([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete([]byte("k000100"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i += 13 {
		if i == 100 {
			continue
		}
		k := []byte(fmt.Sprintf("k%06d", i))
		v, ok, err := db2.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%06d", i) {
			t.Fatalf("%s after reopen = %q %v %v", k, v, ok, err)
		}
	}
	if _, ok, _ := db2.Get([]byte("k000100")); ok {
		t.Error("deleted key resurrected after reopen")
	}
}

func TestPageCacheMissesHitDisk(t *testing.T) {
	db := openTemp(t, 4) // tiny cache: the tree won't fit
	const n = 3000
	for i := 0; i < n; i++ {
		db.Set([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte{'v'}, 128))
	}
	before := db.PageReads()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		db.Get([]byte(fmt.Sprintf("k%06d", r.Intn(n))))
	}
	if got := db.PageReads() - before; got < 100 {
		t.Errorf("200 random gets caused only %d page reads with a 4-page cache; disk-resident design broken", got)
	}
}

func TestSizeLimits(t *testing.T) {
	db := openTemp(t, 0)
	if err := db.Set(bytes.Repeat([]byte{'k'}, MaxKeyLen+1), nil); err != ErrTooLarge {
		t.Errorf("oversized key: %v", err)
	}
	if err := db.Set([]byte("k"), bytes.Repeat([]byte{'v'}, MaxValueLen+1)); err != ErrTooLarge {
		t.Errorf("oversized value: %v", err)
	}
	// Max-size entries are storable and splittable.
	for i := 0; i < 20; i++ {
		k := append(bytes.Repeat([]byte{'k'}, MaxKeyLen-2), byte('0'+i/10), byte('0'+i%10))
		if err := db.Set(k, bytes.Repeat([]byte{'v'}, MaxValueLen)); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	db := openTemp(t, 0)
	if err := db.Set([]byte{}, []byte{}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte{})
	if err != nil || !ok || len(v) != 0 {
		t.Errorf("empty entry = %q %v %v", v, ok, err)
	}
}

func TestClosedErrors(t *testing.T) {
	db := openTemp(t, 0)
	db.Close()
	if err := db.Set([]byte("k"), nil); err != ErrClosed {
		t.Errorf("Set after close = %v", err)
	}
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Errorf("Get after close = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestPropertyAgainstMap(t *testing.T) {
	db := openTemp(t, 8)
	model := map[string][]byte{}
	err := quick.Check(func(kind uint8, key uint16, val []byte) bool {
		if len(val) > MaxValueLen {
			val = val[:MaxValueLen]
		}
		k := []byte(fmt.Sprintf("key-%05d", key%512))
		switch kind % 3 {
		case 0:
			if db.Set(k, val) != nil {
				return false
			}
			model[string(k)] = append([]byte{}, val...)
		case 1:
			deleted, err := db.Delete(k)
			if err != nil {
				return false
			}
			_, inModel := model[string(k)]
			if deleted != inModel {
				return false
			}
			delete(model, string(k))
		case 2:
			v, ok, err := db.Get(k)
			if err != nil {
				return false
			}
			mv, mok := model[string(k)]
			if ok != mok || !bytes.Equal(v, mv) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}
