// Package memcache implements a Memcached-equivalent in-memory
// key/value cache, the baseline the paper compares ZHT against on the
// Blue Gene/P and the HEC-Cluster (Figures 7–11).
//
// Faithful to the system the paper describes (§II): purely in-memory
// (no persistence), no replication, no dynamic membership, strict
// size limits (250-byte keys, 1 MiB values), and LRU eviction under a
// configurable memory budget. Clients hash keys over a static server
// list client-side, so routing is single-hop like ZHT — the
// performance difference the paper measures comes from the server
// internals, not routing.
package memcache

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"zht/internal/hashing"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Protocol limits, matching Memcached's documented restrictions.
const (
	MaxKeyLen   = 250
	MaxValueLen = 1 << 20
)

// Errors returned by the client.
var (
	ErrNotFound = errors.New("memcache: cache miss")
	ErrTooLarge = errors.New("memcache: key or value exceeds size limit")
)

// Server is one cache node.
type Server struct {
	mu      sync.Mutex
	items   map[string]*list.Element
	lru     *list.List // front = most recently used
	memUse  int64
	memCap  int64 // 0 = unbounded
	hits    uint64
	misses  uint64
	evicted uint64
}

type item struct {
	key string
	val []byte
}

// NewServer creates a cache node with the given memory budget in
// bytes (0 = unbounded).
func NewServer(memCap int64) *Server {
	return &Server{items: make(map[string]*list.Element), lru: list.New(), memCap: memCap}
}

// Handle implements transport.Handler: set/get/delete only (Table 1:
// Memcached supports no append, no persistence).
func (s *Server) Handle(req *wire.Request) *wire.Response {
	if len(req.Key) > MaxKeyLen || len(req.Value) > MaxValueLen {
		return &wire.Response{Status: wire.StatusError, Err: ErrTooLarge.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case wire.OpInsert:
		s.setLocked(req.Key, req.Value)
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpLookup:
		el, ok := s.items[req.Key]
		if !ok {
			s.misses++
			return &wire.Response{Status: wire.StatusNotFound}
		}
		s.hits++
		s.lru.MoveToFront(el)
		return &wire.Response{Status: wire.StatusOK, Value: append([]byte(nil), el.Value.(*item).val...)}
	case wire.OpRemove:
		el, ok := s.items[req.Key]
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		s.removeLocked(el)
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	}
	return &wire.Response{Status: wire.StatusError, Err: "memcache: unsupported op " + req.Op.String()}
}

func (s *Server) setLocked(key string, val []byte) {
	if el, ok := s.items[key]; ok {
		it := el.Value.(*item)
		s.memUse += int64(len(val)) - int64(len(it.val))
		it.val = append(it.val[:0], val...)
		s.lru.MoveToFront(el)
	} else {
		it := &item{key: key, val: append([]byte(nil), val...)}
		s.items[key] = s.lru.PushFront(it)
		s.memUse += int64(len(key) + len(val))
	}
	for s.memCap > 0 && s.memUse > s.memCap && s.lru.Len() > 0 {
		s.removeLocked(s.lru.Back())
		s.evicted++
	}
}

func (s *Server) removeLocked(el *list.Element) {
	it := el.Value.(*item)
	s.lru.Remove(el)
	delete(s.items, it.key)
	s.memUse -= int64(len(it.key) + len(it.val))
}

// Stats reports server counters.
type Stats struct {
	Items   int
	Bytes   int64
	Hits    uint64
	Misses  uint64
	Evicted uint64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Items: len(s.items), Bytes: s.memUse, Hits: s.hits, Misses: s.misses, Evicted: s.evicted}
}

// Client shards keys over a static server list (client-side
// consistent hashing, as Memcached clients do).
type Client struct {
	addrs  []string
	caller transport.Caller
	hashf  hashing.Func
}

// NewClient creates a client over the given server addresses.
func NewClient(addrs []string, caller transport.Caller) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("memcache: no servers")
	}
	return &Client{addrs: addrs, caller: caller, hashf: hashing.Default}, nil
}

func (c *Client) pick(key string) string {
	return c.addrs[c.hashf(key)%uint64(len(c.addrs))]
}

// Set stores val under key.
func (c *Client) Set(key string, val []byte) error {
	if len(key) > MaxKeyLen || len(val) > MaxValueLen {
		return ErrTooLarge
	}
	resp, err := c.caller.Call(c.pick(key), &wire.Request{Op: wire.OpInsert, Key: key, Value: val})
	return checkResp(resp, err)
}

// Get fetches the value cached under key.
func (c *Client) Get(key string) ([]byte, error) {
	resp, err := c.caller.Call(c.pick(key), &wire.Request{Op: wire.OpLookup, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case wire.StatusOK:
		return resp.Value, nil
	case wire.StatusNotFound:
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("memcache: get: %s", resp.Err)
}

// Delete removes key.
func (c *Client) Delete(key string) error {
	resp, err := c.caller.Call(c.pick(key), &wire.Request{Op: wire.OpRemove, Key: key})
	if err != nil {
		return err
	}
	if resp.Status == wire.StatusNotFound {
		return ErrNotFound
	}
	return checkResp(resp, nil)
}

func checkResp(resp *wire.Response, err error) error {
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("memcache: %s", resp.Err)
	}
	return nil
}
