package memcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"zht/internal/transport"
)

func newCluster(t *testing.T, n int, memCap int64) (*Client, []*Server) {
	t.Helper()
	reg := transport.NewRegistry()
	var addrs []string
	var servers []*Server
	for i := 0; i < n; i++ {
		srv := NewServer(memCap)
		addr := fmt.Sprintf("mc-%d", i)
		if _, err := reg.Listen(addr, srv.Handle); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	c, err := NewClient(addrs, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

func TestSetGetDelete(t *testing.T) {
	c, _ := newCluster(t, 4, 0)
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestShardingSpreadsLoad(t *testing.T) {
	c, servers := newCluster(t, 4, 0)
	for i := 0; i < 1000; i++ {
		if err := c.Set(fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range servers {
		if st := s.Stats(); st.Items == 0 {
			t.Errorf("server %d received no items", i)
		}
	}
}

func TestSizeLimits(t *testing.T) {
	c, _ := newCluster(t, 1, 0)
	longKey := string(bytes.Repeat([]byte{'k'}, MaxKeyLen+1))
	if err := c.Set(longKey, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized key: %v", err)
	}
	bigVal := bytes.Repeat([]byte{'v'}, MaxValueLen+1)
	if err := c.Set("k", bigVal); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value: %v", err)
	}
	// Boundary sizes are accepted.
	okKey := string(bytes.Repeat([]byte{'k'}, MaxKeyLen))
	if err := c.Set(okKey, bytes.Repeat([]byte{'v'}, 1024)); err != nil {
		t.Errorf("boundary key rejected: %v", err)
	}
}

func TestLRUEvictionUnderMemoryPressure(t *testing.T) {
	c, servers := newCluster(t, 1, 10*1024)
	val := bytes.Repeat([]byte{'v'}, 1024)
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("key-%04d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := servers[0].Stats()
	if st.Bytes > 10*1024 {
		t.Errorf("memory use %d exceeds cap", st.Bytes)
	}
	if st.Evicted == 0 {
		t.Error("no evictions under pressure")
	}
	// Recent keys survive; the oldest were evicted.
	if _, err := c.Get("key-0099"); err != nil {
		t.Errorf("most recent key evicted: %v", err)
	}
	if _, err := c.Get("key-0000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest key survived a full wrap: %v", err)
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	c, _ := newCluster(t, 1, 3*1100)
	val := bytes.Repeat([]byte{'v'}, 1024)
	c.Set("a", val)
	c.Set("b", val)
	c.Set("c", val)
	// Touch "a" so "b" becomes the LRU victim.
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	c.Set("d", val)
	if _, err := c.Get("a"); err != nil {
		t.Errorf("recently used key evicted: %v", err)
	}
	if _, err := c.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("LRU victim survived: %v", err)
	}
}

func TestOverwriteAdjustsMemory(t *testing.T) {
	c, servers := newCluster(t, 1, 0)
	c.Set("k", bytes.Repeat([]byte{'v'}, 1000))
	c.Set("k", []byte("small"))
	st := servers[0].Stats()
	if st.Items != 1 {
		t.Errorf("items = %d", st.Items)
	}
	if st.Bytes != int64(len("k")+len("small")) {
		t.Errorf("bytes = %d after shrink", st.Bytes)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := newCluster(t, 2, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if err := c.Set(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if v, err := c.Get(k); err != nil || string(v) != k {
					t.Errorf("%s = %q %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNoClientWithoutServers(t *testing.T) {
	reg := transport.NewRegistry()
	if _, err := NewClient(nil, reg.NewClient()); err == nil {
		t.Error("client with no servers created")
	}
}

func TestHitMissCounters(t *testing.T) {
	c, servers := newCluster(t, 1, 0)
	c.Set("k", []byte("v"))
	c.Get("k")
	c.Get("missing")
	st := servers[0].Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}
