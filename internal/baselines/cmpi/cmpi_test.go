package cmpi

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"zht/internal/transport"
	"zht/internal/wire"
)

func newTestCluster(t *testing.T, n int) (*Cluster, *Client) {
	t.Helper()
	reg := transport.NewRegistry()
	c, err := NewCluster(n, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(c.Addrs, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	return c, cl
}

func TestPutGetDelete(t *testing.T) {
	_, c := newTestCluster(t, 16)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestManyKeysConsistentRouting(t *testing.T) {
	cluster, c := newTestCluster(t, 32)
	const n = 500
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if err := c.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, err := c.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
	// Keys spread over many nodes (XOR placement).
	populated := 0
	total := 0
	for _, nd := range cluster.Nodes {
		if nd.Keys() > 0 {
			populated++
		}
		total += nd.Keys()
	}
	if total != n {
		t.Errorf("stored copies = %d, want %d (single copy, no replication)", total, n)
	}
	if populated < 16 {
		t.Errorf("only %d/32 nodes hold keys; placement skewed", populated)
	}
}

// TestLogNLookupSteps verifies Kademlia's defining property: an
// iterative lookup from a client knowing only ONE seed converges in
// O(log N) FIND_NODE round trips. (A client seeded with the full
// member list starts adjacent to every owner — that is effectively
// ZHT's zero-hop configuration, not Kademlia routing.)
func TestLogNLookupSteps(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		cluster, _ := newTestCluster(t, n)
		reg := transport.NewRegistry()
		for i, nd := range cluster.Nodes {
			if _, err := reg.Listen(cluster.Addrs[i], nd.Handle); err != nil {
				t.Fatal(err)
			}
		}
		c, err := NewClient(cluster.Addrs[:1], reg.NewClient())
		if err != nil {
			t.Fatal(err)
		}
		totalSteps := 0
		const probes = 200
		for i := 0; i < probes; i++ {
			steps, err := c.LookupSteps(fmt.Sprintf("probe-%04d", i))
			if err != nil {
				t.Fatal(err)
			}
			totalSteps += steps
		}
		avg := float64(totalSteps) / probes
		logN := math.Log2(float64(n))
		if avg > logN+2 {
			t.Errorf("n=%d: avg lookup steps %.2f exceeds log2(n)+2 = %.1f", n, avg, logN+2)
		}
		if n >= 64 && avg < 1.3 {
			t.Errorf("n=%d: avg steps %.2f suspiciously low; routing not iterative?", n, avg)
		}
		t.Logf("n=%d: %.2f avg lookup steps (log2 n = %.1f)", n, avg, logN)
	}
}

func TestDifferentClientsAgreeOnPlacement(t *testing.T) {
	cluster, c1 := newTestCluster(t, 64)
	reg2 := transport.NewRegistry()
	_ = reg2
	// A second client with the same seed list must route each key to
	// the node the first client stored it on.
	c2, err := NewClient(cluster.Addrs, clientCallerOf(t, cluster))
	if err != nil {
		t.Fatal(err)
	}
	_ = c2
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("agree-%03d", i)
		if err := c1.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		v, err := c1.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("%s = %q %v", k, v, err)
		}
	}
}

// clientCallerOf rebuilds a caller attached to the cluster's registry
// by probing one node (the cluster was created on its own registry in
// newTestCluster, so reuse is simplest through the stored handle).
func clientCallerOf(t *testing.T, c *Cluster) transport.Caller {
	t.Helper()
	reg := transport.NewRegistry()
	for i, nd := range c.Nodes {
		if _, err := reg.Listen(c.Addrs[i]+"-alias", nd.Handle); err != nil {
			t.Fatal(err)
		}
	}
	// Aliased addresses won't match contact addrs; instead just
	// return a caller on a registry re-binding the original names.
	reg2 := transport.NewRegistry()
	for i, nd := range c.Nodes {
		if _, err := reg2.Listen(c.Addrs[i], nd.Handle); err != nil {
			t.Fatal(err)
		}
	}
	return reg2.NewClient()
}

func TestNoAppendNoPersistence(t *testing.T) {
	cluster, _ := newTestCluster(t, 4)
	resp := cluster.Nodes[0].Handle(&wire.Request{Op: wire.OpAppend, Key: "k", Value: []byte("v")})
	if resp.Status != wire.StatusError {
		t.Errorf("append accepted: %v (Table 1: C-MPI has no append)", resp.Status)
	}
	resp = cluster.Nodes[0].Handle(&wire.Request{Op: wire.OpCas, Key: "k"})
	if resp.Status != wire.StatusError {
		t.Errorf("cas accepted: %v", resp.Status)
	}
}

func TestContactCodec(t *testing.T) {
	in := []contact{{id: 1, addr: "a"}, {id: ^uint64(0), addr: "node-with-longer-name:9999"}}
	out, err := decodeContacts(encodeContacts(in))
	if err != nil || len(out) != 2 || out[1] != in[1] {
		t.Fatalf("round trip: %v %v", out, err)
	}
	for _, b := range [][]byte{nil, {0xff}, {2, 1}} {
		if _, err := decodeContacts(b); err == nil {
			t.Errorf("garbage %v accepted", b)
		}
	}
}

func TestEmptyClusterAndClient(t *testing.T) {
	reg := transport.NewRegistry()
	if _, err := NewCluster(0, func(addr string, h transport.Handler) (transport.Listener, error) {
		return reg.Listen(addr, h)
	}); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewClient(nil, reg.NewClient()); err == nil {
		t.Error("seedless client accepted")
	}
}

func TestSparseSeedClientStillRoutes(t *testing.T) {
	cluster, full := newTestCluster(t, 64)
	// Write with the fully-seeded client.
	for i := 0; i < 50; i++ {
		if err := full.Put(fmt.Sprintf("sparse-%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A client knowing only one seed must discover its way to every
	// key through iterative FIND_NODE.
	reg2 := transport.NewRegistry()
	for i, nd := range cluster.Nodes {
		if _, err := reg2.Listen(cluster.Addrs[i], nd.Handle); err != nil {
			t.Fatal(err)
		}
	}
	sparse, err := NewClient(cluster.Addrs[:1], reg2.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("sparse-%02d", i)
		v, err := sparse.Get(k)
		if err != nil || string(v) != "v" {
			t.Fatalf("%s via sparse client = %q %v", k, v, err)
		}
	}
}
