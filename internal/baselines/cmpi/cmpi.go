// Package cmpi implements a C-MPI-equivalent baseline: a Kademlia
// distributed hash table (paper §II and Table 1).
//
// C-MPI "is based on new implementations of the Kademlia (with log(N)
// routing time) distributed hash table" with "no support for data
// replication, data persistence, or fault tolerance" — it targets the
// same batch HEC environments as ZHT but routes iteratively through
// k-buckets instead of holding full membership. This reimplementation
// preserves exactly those structural properties:
//
//   - 64-bit node IDs, XOR distance metric, k-buckets populated at
//     bootstrap from the batch node list (no churn, as in C-MPI's
//     MPI-world deployments);
//   - iterative lookups: the requester repeatedly asks the closest
//     known node for still-closer nodes, converging in O(log N)
//     steps;
//   - volatile in-memory storage, single copy, static membership.
//
// C-MPI's MPI transport is replaced by this repo's transport layer;
// the paper's criticism of that choice (an MPI fault kills the whole
// job) concerns fault semantics, not performance shape.
package cmpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"zht/internal/hashing"
	"zht/internal/transport"
	"zht/internal/wire"
)

// K is the Kademlia bucket width (entries kept per distance class).
const K = 8

// Alpha is the lookup concurrency; C-MPI-era implementations used
// sequential (α=1) iterative lookups.
const Alpha = 1

// Errors returned by the client.
var (
	ErrNotFound   = errors.New("cmpi: not found")
	ErrNoProgress = errors.New("cmpi: lookup made no progress")
)

// contact is a routing-table entry.
type contact struct {
	id   uint64
	addr string
}

// Node is one Kademlia DHT node.
type Node struct {
	self    contact
	buckets [64][]contact // buckets[i] holds contacts at XOR distance with MSB i

	mu    sync.RWMutex
	store map[string][]byte

	// hops counts FIND_NODE requests served (hop observability for
	// the log(N) routing tests).
	hops  uint64
	hopMu sync.Mutex
}

// NodeID derives a node's DHT ID from its address.
func NodeID(addr string) uint64 { return hashing.Default("cmpi-node:" + addr) }

// NewNode creates a node and fills its k-buckets from the bootstrap
// member list (the batch scheduler's node list — static membership).
func NewNode(addr string, allAddrs []string) *Node {
	n := &Node{
		self:  contact{id: NodeID(addr), addr: addr},
		store: make(map[string][]byte),
	}
	for _, a := range allAddrs {
		if a == addr {
			continue
		}
		n.insertContact(contact{id: NodeID(a), addr: a})
	}
	return n
}

// bucketIndex classifies a contact by the most significant differing
// bit of the XOR distance.
func (n *Node) bucketIndex(id uint64) int {
	d := n.self.id ^ id
	if d == 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(d)
}

func (n *Node) insertContact(c contact) {
	b := n.bucketIndex(c.id)
	if len(n.buckets[b]) >= K {
		return // bucket full: Kademlia keeps the oldest (stable) entries
	}
	n.buckets[b] = append(n.buckets[b], c)
}

// closest returns up to k known contacts closest to target (including
// self).
func (n *Node) closest(target uint64, k int) []contact {
	var all []contact
	all = append(all, n.self)
	for _, b := range n.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].id^target < all[j].id^target
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Handle implements transport.Handler.
//
// Protocol mapping onto the shared wire schema:
//   - OpLookup with Partition=findNode: FIND_NODE; Key is the decimal
//     target ID; response Value is an encoded contact list.
//   - OpInsert: STORE.
//   - OpLookup (Partition=0): FIND_VALUE (local check only; routing
//     is iterative at the client).
//   - OpRemove: local delete.
func (n *Node) Handle(req *wire.Request) *wire.Response {
	switch {
	case req.Op == wire.OpLookup && req.Partition == findNodeMark:
		n.hopMu.Lock()
		n.hops++
		n.hopMu.Unlock()
		var target uint64
		fmt.Sscanf(req.Key, "%d", &target)
		return &wire.Response{Status: wire.StatusOK, Value: encodeContacts(n.closest(target, K))}
	case req.Op == wire.OpInsert:
		n.mu.Lock()
		n.store[req.Key] = append([]byte(nil), req.Value...)
		n.mu.Unlock()
		return &wire.Response{Status: wire.StatusOK}
	case req.Op == wire.OpLookup:
		n.mu.RLock()
		v, ok := n.store[req.Key]
		n.mu.RUnlock()
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: append([]byte(nil), v...)}
	case req.Op == wire.OpRemove:
		n.mu.Lock()
		_, ok := n.store[req.Key]
		delete(n.store, req.Key)
		n.mu.Unlock()
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK}
	case req.Op == wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	}
	return &wire.Response{Status: wire.StatusError, Err: "cmpi: unsupported op (no append/persistence/replication — Table 1)"}
}

// findNodeMark distinguishes FIND_NODE from FIND_VALUE on OpLookup.
const findNodeMark = -64

// Keys reports how many pairs this node stores.
func (n *Node) Keys() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.store)
}

// FindNodeServed reports FIND_NODE requests served by this node.
func (n *Node) FindNodeServed() uint64 {
	n.hopMu.Lock()
	defer n.hopMu.Unlock()
	return n.hops
}

func encodeContacts(cs []contact) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(cs)))
	for _, c := range cs {
		buf = binary.AppendUvarint(buf, c.id)
		buf = binary.AppendUvarint(buf, uint64(len(c.addr)))
		buf = append(buf, c.addr...)
	}
	return buf
}

func decodeContacts(b []byte) ([]contact, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 || cnt > 1024 {
		return nil, errors.New("cmpi: bad contact list")
	}
	b = b[n:]
	out := make([]contact, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		id, n1 := binary.Uvarint(b)
		if n1 <= 0 {
			return nil, errors.New("cmpi: bad contact id")
		}
		b = b[n1:]
		l, n2 := binary.Uvarint(b)
		if n2 <= 0 || uint64(len(b[n2:])) < l {
			return nil, errors.New("cmpi: bad contact addr")
		}
		out = append(out, contact{id: id, addr: string(b[n2 : n2+int(l)])})
		b = b[n2+int(l):]
	}
	return out, nil
}

// Client performs iterative Kademlia lookups.
type Client struct {
	seeds  []contact
	caller transport.Caller
	hashf  hashing.Func
}

// NewClient creates a client knowing only a few seed nodes (it
// discovers the rest per lookup, as Kademlia does).
func NewClient(seedAddrs []string, caller transport.Caller) (*Client, error) {
	if len(seedAddrs) == 0 {
		return nil, errors.New("cmpi: need at least one seed")
	}
	c := &Client{caller: caller, hashf: hashing.Default}
	for _, a := range seedAddrs {
		c.seeds = append(c.seeds, contact{id: NodeID(a), addr: a})
	}
	return c, nil
}

// lookupOwner iteratively converges on the node closest to target,
// returning it and the number of FIND_NODE round trips taken.
func (c *Client) lookupOwner(target uint64) (contact, int, error) {
	best := c.seeds[0]
	for _, s := range c.seeds[1:] {
		if s.id^target < best.id^target {
			best = s
		}
	}
	steps := 0
	for {
		resp, err := c.caller.Call(best.addr, &wire.Request{
			Op: wire.OpLookup, Partition: findNodeMark,
			Key: fmt.Sprintf("%d", target),
		})
		if err != nil {
			return contact{}, steps, err
		}
		steps++
		if resp.Status != wire.StatusOK {
			return contact{}, steps, fmt.Errorf("cmpi: find_node: %s", resp.Err)
		}
		cs, err := decodeContacts(resp.Value)
		if err != nil {
			return contact{}, steps, err
		}
		improved := false
		for _, cand := range cs {
			if cand.id^target < best.id^target {
				best = cand
				improved = true
			}
		}
		if !improved {
			return best, steps, nil // converged: best is the owner
		}
		if steps > 64 {
			return contact{}, steps, ErrNoProgress
		}
	}
}

// Put stores val at the node closest to the key.
func (c *Client) Put(key string, val []byte) error {
	owner, _, err := c.lookupOwner(c.hashf(key))
	if err != nil {
		return err
	}
	resp, err := c.caller.Call(owner.addr, &wire.Request{Op: wire.OpInsert, Key: key, Value: val})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("cmpi: store: %s", resp.Err)
	}
	return nil
}

// Get fetches the value for key.
func (c *Client) Get(key string) ([]byte, error) {
	owner, _, err := c.lookupOwner(c.hashf(key))
	if err != nil {
		return nil, err
	}
	resp, err := c.caller.Call(owner.addr, &wire.Request{Op: wire.OpLookup, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case wire.StatusOK:
		return resp.Value, nil
	case wire.StatusNotFound:
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("cmpi: find_value: %s", resp.Err)
}

// Delete removes key.
func (c *Client) Delete(key string) error {
	owner, _, err := c.lookupOwner(c.hashf(key))
	if err != nil {
		return err
	}
	resp, err := c.caller.Call(owner.addr, &wire.Request{Op: wire.OpRemove, Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	}
	return fmt.Errorf("cmpi: delete: %s", resp.Err)
}

// LookupSteps exposes the iterative hop count for a key (routing
// shape tests).
func (c *Client) LookupSteps(key string) (int, error) {
	_, steps, err := c.lookupOwner(c.hashf(key))
	return steps, err
}

// Cluster wires n nodes over a transport.
type Cluster struct {
	Nodes []*Node
	Addrs []string
}

// NewCluster starts n Kademlia nodes.
func NewCluster(n int, listen func(addr string, h transport.Handler) (transport.Listener, error)) (*Cluster, error) {
	if n <= 0 {
		return nil, errors.New("cmpi: need at least one node")
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("cmpi-%04d", i)
	}
	c := &Cluster{Addrs: addrs}
	for _, a := range addrs {
		nd := NewNode(a, addrs)
		if _, err := listen(a, nd.Handle); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, nd)
	}
	return c, nil
}
