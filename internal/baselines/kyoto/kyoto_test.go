package kyoto

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, buckets int) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "kyoto.db"), buckets)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSetGetDelete(t *testing.T) {
	db := openTemp(t, 64)
	if err := db.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get("a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if err := db.Set("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get("a"); string(v) != "2" {
		t.Errorf("newest version not returned: %q", v)
	}
	if err := db.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get("a"); ok {
		t.Error("tombstone not honored")
	}
	// Re-insert after delete works.
	db.Set("a", []byte("3"))
	if v, ok, _ := db.Get("a"); !ok || string(v) != "3" {
		t.Errorf("reinsert = %q %v", v, ok)
	}
}

func TestMissingKey(t *testing.T) {
	db := openTemp(t, 64)
	if _, ok, err := db.Get("nope"); ok || err != nil {
		t.Errorf("Get(missing) = %v %v", ok, err)
	}
}

func TestBucketCollisions(t *testing.T) {
	// One bucket: every key chains; all must remain retrievable.
	db := openTemp(t, 1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Set(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Get(fmt.Sprintf("k%03d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d = %q %v %v", i, v, ok, err)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.db")
	db, err := Open(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Set(fmt.Sprintf("k%03d", i), []byte("v"))
	}
	db.Delete("k050")
	db.Close()
	db2, err := Open(path, 0) // bucket count read from header
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.nBuckets != 128 {
		t.Errorf("bucket count after reopen = %d", db2.nBuckets)
	}
	if v, ok, _ := db2.Get("k001"); !ok || string(v) != "v" {
		t.Errorf("k001 = %q %v", v, ok)
	}
	if _, ok, _ := db2.Get("k050"); ok {
		t.Error("tombstone lost on reopen")
	}
	// Writes after reopen don't corrupt chains.
	if err := db2.Set("new", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db2.Get("new"); !ok || string(v) != "x" {
		t.Errorf("post-reopen write = %q %v", v, ok)
	}
}

func TestEveryLookupHitsDisk(t *testing.T) {
	db := openTemp(t, 64)
	db.Set("k", []byte("v"))
	before := db.Reads()
	for i := 0; i < 10; i++ {
		db.Get("k")
	}
	if got := db.Reads() - before; got < 30 {
		t.Errorf("10 lookups performed %d positioned reads; disk-resident design requires >= 3 each", got)
	}
}

func TestClosedErrors(t *testing.T) {
	db := openTemp(t, 4)
	db.Close()
	if err := db.Set("k", nil); err != ErrClosed {
		t.Errorf("Set after close = %v", err)
	}
	if _, _, err := db.Get("k"); err != ErrClosed {
		t.Errorf("Get after close = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	if err := writeFile(path, []byte("this is not a kyoto file....")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 16); err == nil {
		t.Error("garbage file opened")
	}
}

func TestPropertyAgainstMap(t *testing.T) {
	db := openTemp(t, 8)
	model := map[string][]byte{}
	err := quick.Check(func(kind uint8, key uint8, val []byte) bool {
		k := fmt.Sprintf("k%d", key%32)
		switch kind % 3 {
		case 0:
			if db.Set(k, val) != nil {
				return false
			}
			model[k] = append([]byte{}, val...)
		case 1:
			if db.Delete(k) != nil {
				return false
			}
			delete(model, k)
		case 2:
			v, ok, err := db.Get(k)
			if err != nil {
				return false
			}
			mv, mok := model[k]
			if ok != mok || !bytes.Equal(v, mv) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
