// Package kyoto implements a KyotoCabinet-HashDB-style disk-resident
// hash table: the baseline NoVoHT is compared against in Figure 6.
//
// The structural property the paper measures is that KyotoCabinet is
// "disk-based and any lookup must hit disk" (§III.I), unlike NoVoHT
// which keeps all pairs in memory. This store is honest about that:
// the bucket directory and all records live in one file, and every
// operation performs positioned disk I/O — a bucket-head read plus a
// chain walk for lookups, an append plus a bucket-head write for
// mutations. Nothing about the keyspace is cached in memory.
//
// File layout:
//
//	[header: magic "KYGO" | uvarint-less fixed fields]
//	[bucket table: nBuckets × 8-byte head offsets]
//	[records...]
//
// record: [8B next offset][1B tombstone][4B klen][4B vlen][key][val]
// Chains are newest-first: a Put prepends, so a Get returns the most
// recent version and a tombstone shadows older records.
package kyoto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"zht/internal/hashing"
)

const (
	headerSize = 16
	recHdrSize = 8 + 1 + 4 + 4
)

var magic = [4]byte{'K', 'Y', 'G', 'O'}

// ErrClosed reports use after Close.
var ErrClosed = errors.New("kyoto: store is closed")

// DB is a disk-resident hash database.
type DB struct {
	mu       sync.Mutex
	f        *os.File
	nBuckets uint32
	size     int64 // current file size (append offset)
	hashf    hashing.Func
	closed   bool
	// ioReads counts positioned reads, proving the disk-based
	// structure in tests.
	ioReads uint64
}

// Open creates or opens a DB at path with the given bucket count
// (used only at creation; an existing file keeps its count).
func Open(path string, nBuckets int) (*DB, error) {
	if nBuckets <= 0 {
		nBuckets = 1 << 16
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	db := &DB{f: f, hashf: hashing.Default}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		db.nBuckets = uint32(nBuckets)
		hdr := make([]byte, headerSize)
		copy(hdr, magic[:])
		binary.LittleEndian.PutUint32(hdr[4:], db.nBuckets)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, err
		}
		table := make([]byte, 8*nBuckets)
		if _, err := f.WriteAt(table, headerSize); err != nil {
			f.Close()
			return nil, err
		}
		db.size = headerSize + int64(8*nBuckets)
	} else {
		hdr := make([]byte, headerSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			return nil, err
		}
		if [4]byte(hdr[:4]) != magic {
			f.Close()
			return nil, errors.New("kyoto: bad magic")
		}
		db.nBuckets = binary.LittleEndian.Uint32(hdr[4:])
		db.size = st.Size()
	}
	return db, nil
}

func (db *DB) bucketOff(key string) int64 {
	b := db.hashf(key) % uint64(db.nBuckets)
	return headerSize + int64(b)*8
}

func (db *DB) readHead(key string) (int64, error) {
	var buf [8]byte
	if _, err := db.f.ReadAt(buf[:], db.bucketOff(key)); err != nil {
		return 0, err
	}
	db.ioReads++
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func (db *DB) writeHead(key string, off int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(off))
	_, err := db.f.WriteAt(buf[:], db.bucketOff(key))
	return err
}

// Set stores val under key.
func (db *DB) Set(key string, val []byte) error {
	return db.write(key, val, false)
}

// Delete removes key by prepending a tombstone record.
func (db *DB) Delete(key string) error {
	return db.write(key, nil, true)
}

func (db *DB) write(key string, val []byte, tombstone bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	head, err := db.readHead(key)
	if err != nil {
		return fmt.Errorf("kyoto: read bucket: %w", err)
	}
	rec := make([]byte, recHdrSize+len(key)+len(val))
	binary.LittleEndian.PutUint64(rec, uint64(head))
	if tombstone {
		rec[8] = 1
	}
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[13:], uint32(len(val)))
	copy(rec[recHdrSize:], key)
	copy(rec[recHdrSize+len(key):], val)
	off := db.size
	if _, err := db.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("kyoto: append record: %w", err)
	}
	db.size += int64(len(rec))
	if err := db.writeHead(key, off); err != nil {
		return fmt.Errorf("kyoto: update bucket: %w", err)
	}
	return nil
}

// Get fetches the newest value for key, walking the bucket chain on
// disk.
func (db *DB) Get(key string) ([]byte, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	off, err := db.readHead(key)
	if err != nil {
		return nil, false, err
	}
	var hdr [recHdrSize]byte
	for off != 0 {
		if _, err := db.f.ReadAt(hdr[:], off); err != nil {
			return nil, false, fmt.Errorf("kyoto: read record: %w", err)
		}
		db.ioReads++
		next := int64(binary.LittleEndian.Uint64(hdr[:8]))
		tomb := hdr[8] == 1
		klen := binary.LittleEndian.Uint32(hdr[9:])
		vlen := binary.LittleEndian.Uint32(hdr[13:])
		kb := make([]byte, klen)
		if _, err := db.f.ReadAt(kb, off+recHdrSize); err != nil {
			return nil, false, err
		}
		db.ioReads++
		if string(kb) == key {
			if tomb {
				return nil, false, nil
			}
			vb := make([]byte, vlen)
			if _, err := db.f.ReadAt(vb, off+recHdrSize+int64(klen)); err != nil {
				return nil, false, err
			}
			db.ioReads++
			return vb, true, nil
		}
		off = next
	}
	return nil, false, nil
}

// Reads reports the number of positioned disk reads performed.
func (db *DB) Reads() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ioReads
}

// Sync fsyncs the file.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.f.Sync()
}

// Close closes the file.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.f.Close()
}
