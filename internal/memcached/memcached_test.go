package memcached_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/memcached"
	"zht/internal/metrics"
)

// Protocol conformance over real TCP against an in-process ZHT
// deployment — the gateway must behave like memcached for the command
// set it serves, so the baseline suite's semantics
// (internal/baselines/memcache) are ported here: set/get/delete,
// double-delete, size limits with boundary acceptance, concurrent
// access, hit/miss counters — plus the CAS-conflict and expiry paths
// the baseline client has no equivalent for.

// mc is a minimal text-protocol client: just enough to drive the
// gateway the way telnet or any stock client library would.
type mc struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *mc {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &mc{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *mc) send(format string, args ...any) {
	c.t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		c.t.Fatal(err)
	}
}

func (c *mc) line() string {
	c.t.Helper()
	s, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimRight(s, "\r\n")
}

// store issues a storage command and returns the reply line.
func (c *mc) store(cmd, key string, flags uint32, exptime int64, val string, extra ...string) string {
	c.t.Helper()
	ex := ""
	if len(extra) > 0 {
		ex = " " + strings.Join(extra, " ")
	}
	c.send("%s %s %d %d %d%s\r\n%s", cmd, key, flags, exptime, len(val), ex, val)
	return c.line()
}

// get returns (value, flags, casid, hit) for a single-key get/gets.
func (c *mc) get(cmd, key string) (string, uint32, uint64, bool) {
	c.t.Helper()
	c.send("%s %s", cmd, key)
	first := c.line()
	if first == "END" {
		return "", 0, 0, false
	}
	var rkey string
	var flags uint32
	var size int
	var casid uint64
	if cmd == "gets" {
		if _, err := fmt.Sscanf(first, "VALUE %s %d %d %d", &rkey, &flags, &size, &casid); err != nil {
			c.t.Fatalf("bad gets header %q: %v", first, err)
		}
	} else {
		if _, err := fmt.Sscanf(first, "VALUE %s %d %d", &rkey, &flags, &size); err != nil {
			c.t.Fatalf("bad get header %q: %v", first, err)
		}
	}
	val := c.line()
	if len(val) != size {
		c.t.Fatalf("VALUE advertised %d bytes, got %d (%q)", size, len(val), val)
	}
	if end := c.line(); end != "END" {
		c.t.Fatalf("missing END, got %q", end)
	}
	return val, flags, casid, true
}

// startGateway boots a 3-instance deployment and a gateway on a real
// TCP port, returning the dial address and the metrics registry.
func startGateway(t *testing.T, opts memcached.Options) (string, *metrics.Registry) {
	t.Helper()
	mreg := metrics.NewRegistry()
	if opts.Metrics == nil {
		opts.Metrics = mreg
	}
	cfg := core.Config{
		NumPartitions: 32,
		Replicas:      1,
		RetryBase:     time.Millisecond,
	}
	d, _, err := core.BootstrapInproc(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	cl, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	gw := memcached.New(cl, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { gw.Close() })
	return ln.Addr().String(), opts.Metrics
}

func TestSetGetDelete(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{Tenant: "cache"})
	c := dial(t, addr)

	if got := c.store("set", "alpha", 42, 0, "hello"); got != "STORED" {
		t.Fatalf("set = %q", got)
	}
	val, flags, _, hit := c.get("get", "alpha")
	if !hit || val != "hello" || flags != 42 {
		t.Fatalf("get = (%q, %d, hit=%v), want (hello, 42, true)", val, flags, hit)
	}
	if _, _, _, hit := c.get("get", "missing"); hit {
		t.Fatal("get of absent key returned a VALUE")
	}
	c.send("delete alpha")
	if got := c.line(); got != "DELETED" {
		t.Fatalf("delete = %q", got)
	}
	if _, _, _, hit := c.get("get", "alpha"); hit {
		t.Fatal("deleted key still readable")
	}
	// Double delete answers NOT_FOUND, as memcached does.
	c.send("delete alpha")
	if got := c.line(); got != "NOT_FOUND" {
		t.Fatalf("double delete = %q, want NOT_FOUND", got)
	}
}

func TestAddReplaceSemantics(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	if got := c.store("replace", "r", 0, 0, "v"); got != "NOT_STORED" {
		t.Fatalf("replace on absent key = %q, want NOT_STORED", got)
	}
	if got := c.store("add", "r", 0, 0, "first"); got != "STORED" {
		t.Fatalf("add on absent key = %q", got)
	}
	if got := c.store("add", "r", 0, 0, "second"); got != "NOT_STORED" {
		t.Fatalf("add on present key = %q, want NOT_STORED", got)
	}
	if got := c.store("replace", "r", 0, 0, "third"); got != "STORED" {
		t.Fatalf("replace on present key = %q", got)
	}
	if val, _, _, _ := c.get("get", "r"); val != "third" {
		t.Fatalf("value after replace = %q", val)
	}
}

func TestSizeLimits(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	// Boundary sizes are accepted...
	longest := strings.Repeat("k", memcached.MaxKeyLen)
	if got := c.store("set", longest, 0, 0, "v"); got != "STORED" {
		t.Fatalf("250-byte key = %q", got)
	}
	big := strings.Repeat("v", memcached.MaxValueLen)
	if got := c.store("set", "big", 0, 0, big); got != "STORED" {
		t.Fatalf("1 MiB value = %q", got)
	}
	if val, _, _, _ := c.get("get", "big"); val != big {
		t.Fatal("1 MiB value corrupted on round trip")
	}
	// ...one byte past is not, and the connection stays usable (the
	// gateway must consume the rejected data block).
	if got := c.store("set", longest+"k", 0, 0, "v"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("251-byte key = %q, want CLIENT_ERROR", got)
	}
	if got := c.store("set", "big2", 0, 0, big+"v"); !strings.HasPrefix(got, "SERVER_ERROR") {
		t.Fatalf("oversized value = %q, want SERVER_ERROR", got)
	}
	if got := c.store("set", "after", 0, 0, "ok"); got != "STORED" {
		t.Fatalf("connection wedged after rejected store: %q", got)
	}
	// A declaration far past the limit is drained, not buffered
	// (regression: the unread block's bytes used to be parsed as
	// commands, desyncing the stream).
	if got := c.store("set", "big3", 0, 0, big+"vvvv"); !strings.HasPrefix(got, "SERVER_ERROR") {
		t.Fatalf("grossly oversized value = %q, want SERVER_ERROR", got)
	}
	if got := c.store("set", "after2", 0, 0, "ok"); got != "STORED" {
		t.Fatalf("connection wedged after drained store: %q", got)
	}
}

func TestWhitespaceCommandLine(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	// Regression: a line of pure whitespace used to panic the
	// connection goroutine and take the whole process down.
	c.send("   ")
	if got := c.line(); got != "ERROR" {
		t.Fatalf("whitespace-only line = %q, want ERROR", got)
	}
	if got := c.store("set", "alive", 0, 0, "v"); got != "STORED" {
		t.Fatalf("server unusable after whitespace line: %q", got)
	}
}

// errStore fails every backend call, standing in for a deployment
// whose routing or replicas are down.
type errStore struct{ err error }

func (s errStore) Insert(string, []byte) error         { return s.err }
func (s errStore) InsertIfAbsent(string, []byte) error { return s.err }
func (s errStore) Lookup(string) ([]byte, error)       { return nil, s.err }
func (s errStore) Remove(string) error                 { return s.err }
func (s errStore) Cas(string, []byte, []byte) ([]byte, error) {
	return nil, s.err
}

func TestBackendErrorIsNotAMiss(t *testing.T) {
	mreg := metrics.NewRegistry()
	gw := memcached.New(errStore{errors.New("no route to partition")},
		memcached.Options{Metrics: mreg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { gw.Close() })
	c := dial(t, ln.Addr().String())

	c.send("get k")
	if got := c.line(); !strings.HasPrefix(got, "SERVER_ERROR") {
		t.Fatalf("backend failure answered %q, want SERVER_ERROR", got)
	}
	if m := mreg.Counter("zht.memcached.misses").Value(); m != 0 {
		t.Errorf("backend failure counted as %d misses; an outage must not read as a cold cache", m)
	}
	if e := mreg.Counter("zht.memcached.errors").Value(); e != 1 {
		t.Errorf("zht.memcached.errors = %d, want 1", e)
	}
}

func TestCasConflict(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	if got := c.store("set", "ck", 0, 0, "v1"); got != "STORED" {
		t.Fatal(got)
	}
	_, _, casid, hit := c.get("gets", "ck")
	if !hit || casid == 0 {
		t.Fatalf("gets returned casid %d, hit=%v", casid, hit)
	}
	// A fresh cas against the current id succeeds.
	if got := c.store("cas", "ck", 0, 0, "v2", fmt.Sprint(casid)); got != "STORED" {
		t.Fatalf("cas with current id = %q", got)
	}
	// The old id is now stale: EXISTS.
	if got := c.store("cas", "ck", 0, 0, "v3", fmt.Sprint(casid)); got != "EXISTS" {
		t.Fatalf("cas with stale id = %q, want EXISTS", got)
	}
	if val, _, _, _ := c.get("get", "ck"); val != "v2" {
		t.Fatalf("value after stale cas = %q, want v2", val)
	}
	// cas on an absent key: NOT_FOUND.
	if got := c.store("cas", "absent", 0, 0, "v", "12345"); got != "NOT_FOUND" {
		t.Fatalf("cas on absent key = %q, want NOT_FOUND", got)
	}
}

func TestIncrDecrTouch(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	if got := c.store("set", "n", 9, 0, "10"); got != "STORED" {
		t.Fatal(got)
	}
	c.send("incr n 5")
	if got := c.line(); got != "15" {
		t.Fatalf("incr = %q, want 15", got)
	}
	c.send("decr n 20")
	if got := c.line(); got != "0" {
		t.Fatalf("decr below zero = %q, want 0 (memcached floors)", got)
	}
	// Flags survive the read-modify-write.
	if _, flags, _, _ := c.get("get", "n"); flags != 9 {
		t.Fatalf("flags after incr/decr = %d, want 9", flags)
	}
	c.send("incr missing 1")
	if got := c.line(); got != "NOT_FOUND" {
		t.Fatalf("incr on absent key = %q", got)
	}
	if got := c.store("set", "word", 0, 0, "abc"); got != "STORED" {
		t.Fatal(got)
	}
	c.send("incr word 1")
	if got := c.line(); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("incr on non-numeric = %q, want CLIENT_ERROR", got)
	}
	c.send("touch n 3600")
	if got := c.line(); got != "TOUCHED" {
		t.Fatalf("touch = %q", got)
	}
	c.send("touch missing 3600")
	if got := c.line(); got != "NOT_FOUND" {
		t.Fatalf("touch on absent key = %q", got)
	}
}

func TestExpiry(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	// Negative exptime is "already expired": stored, never readable.
	if got := c.store("set", "dead", 0, -1, "v"); got != "STORED" {
		t.Fatal(got)
	}
	if _, _, _, hit := c.get("get", "dead"); hit {
		t.Fatal("negatively-expired key readable")
	}
	// An expired pair counts as absent for add.
	if got := c.store("add", "dead", 0, 0, "reborn"); got != "STORED" {
		t.Fatalf("add over expired pair = %q", got)
	}
	if val, _, _, _ := c.get("get", "dead"); val != "reborn" {
		t.Fatalf("post-add value = %q", val)
	}
	// A short relative TTL lapses.
	if got := c.store("set", "brief", 0, 1, "v"); got != "STORED" {
		t.Fatal(got)
	}
	if _, _, _, hit := c.get("get", "brief"); !hit {
		t.Fatal("1s-TTL key already expired")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, _, _, hit := c.get("get", "brief"); !hit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("1s-TTL key never expired")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestNoreplyAndPipelining(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	// noreply stores produce no reply line; the next command's reply
	// must line up correctly.
	c.send("set nr1 0 0 2 noreply\r\nv1")
	c.send("set nr2 0 0 2 noreply\r\nv2")
	if val, _, _, _ := c.get("get", "nr1"); val != "v1" {
		t.Fatalf("after noreply sets, nr1 = %q", val)
	}
	if val, _, _, _ := c.get("get", "nr2"); val != "v2" {
		t.Fatalf("after noreply sets, nr2 = %q", val)
	}
	// Multi-key get returns each present key then one END.
	c.send("get nr1 nr2 nrMissing")
	seen := map[string]string{}
	for {
		line := c.line()
		if line == "END" {
			break
		}
		var key string
		var flags uint32
		var size int
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &key, &flags, &size); err != nil {
			t.Fatalf("bad VALUE line %q", line)
		}
		seen[key] = c.line()
	}
	if len(seen) != 2 || seen["nr1"] != "v1" || seen["nr2"] != "v2" {
		t.Fatalf("multi-get = %v", seen)
	}
	// version and unknown commands.
	c.send("version")
	if got := c.line(); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("version = %q", got)
	}
	c.send("bogus")
	if got := c.line(); got != "ERROR" {
		t.Fatalf("unknown command = %q, want ERROR", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	addr, _ := startGateway(t, memcached.Options{})

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				val := fmt.Sprintf("val-%d-%d", w, i)
				fmt.Fprintf(conn, "set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
				if line, _ := r.ReadString('\n'); strings.TrimRight(line, "\r\n") != "STORED" {
					t.Errorf("worker %d set %s: %q", w, key, line)
					return
				}
				fmt.Fprintf(conn, "get %s\r\n", key)
				header, _ := r.ReadString('\n')
				if !strings.HasPrefix(header, "VALUE ") {
					t.Errorf("worker %d get %s: %q", w, key, header)
					return
				}
				got, _ := r.ReadString('\n')
				if strings.TrimRight(got, "\r\n") != val {
					t.Errorf("worker %d got %q, want %q", w, got, val)
					return
				}
				if end, _ := r.ReadString('\n'); strings.TrimRight(end, "\r\n") != "END" {
					t.Errorf("worker %d: missing END", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestHitMissCountersAndStats(t *testing.T) {
	addr, mreg := startGateway(t, memcached.Options{})
	c := dial(t, addr)

	if got := c.store("set", "h", 0, 0, "v"); got != "STORED" {
		t.Fatal(got)
	}
	c.get("get", "h")       // hit
	c.get("get", "h")       // hit
	c.get("get", "absent1") // miss
	if hits := mreg.Counter("zht.memcached.hits").Value(); hits != 2 {
		t.Errorf("zht.memcached.hits = %d, want 2", hits)
	}
	if misses := mreg.Counter("zht.memcached.misses").Value(); misses != 1 {
		t.Errorf("zht.memcached.misses = %d, want 1", misses)
	}
	if conns := mreg.Gauge("zht.memcached.conns").Value(); conns != 1 {
		t.Errorf("zht.memcached.conns = %d, want 1", conns)
	}
	// stats mirrors the registry over the wire.
	c.send("stats")
	stats := map[string]string{}
	for {
		line := c.line()
		if line == "END" {
			break
		}
		var k, v string
		fmt.Sscanf(line, "STAT %s %s", &k, &v)
		stats[k] = v
	}
	if stats["get_hits"] != "2" || stats["get_misses"] != "1" {
		t.Errorf("stats = %v", stats)
	}
}

func TestTenantIsolation(t *testing.T) {
	// Two gateways over the same deployment with different tenants must
	// not see each other's keys; a gateway with the default tenant
	// shares the unscoped keyspace.
	mreg := metrics.NewRegistry()
	cfg := core.Config{NumPartitions: 32, Replicas: 1, RetryBase: time.Millisecond}
	d, _, err := core.BootstrapInproc(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	newGW := func(tenantName string) string {
		cl, err := d.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		gw := memcached.New(cl, memcached.Options{Tenant: tenantName, Metrics: mreg})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go gw.Serve(ln) //nolint:errcheck
		t.Cleanup(func() { gw.Close() })
		return ln.Addr().String()
	}
	ca := dial(t, newGW("a"))
	cb := dial(t, newGW("b"))

	if got := ca.store("set", "shared", 0, 0, "from-a"); got != "STORED" {
		t.Fatal(got)
	}
	if _, _, _, hit := cb.get("get", "shared"); hit {
		t.Fatal("tenant b can read tenant a's key")
	}
	if got := cb.store("set", "shared", 0, 0, "from-b"); got != "STORED" {
		t.Fatal(got)
	}
	if val, _, _, _ := ca.get("get", "shared"); val != "from-a" {
		t.Fatalf("tenant a's key clobbered by tenant b: %q", val)
	}
}
