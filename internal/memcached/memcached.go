// Package memcached is ZHT's front door for unmodified cache
// clients: a memcached text-protocol gateway
// (get/gets/set/add/replace/cas/delete/incr/decr/touch/version/stats)
// that maps every command onto the core client API, so anything that
// can speak to memcached — the paper's own baseline, Figures 7–11 —
// can speak to a replicated, durable ZHT deployment instead
// (DESIGN.md §13).
//
// Mapping:
//
//   - Keys are namespaced into the gateway's tenant via
//     tenant.Prefix, so cache traffic cannot collide with native ZHT
//     tenants sharing the table.
//   - Values are stored as tenant envelopes (tenant.Wrap) carrying
//     the client's opaque flags and the command's exptime; reads
//     unwrap. Expiry is enforced by core's lazy-expiry reads and the
//     anti-entropy reaper, not by the gateway.
//   - set→Insert, add→InsertIfAbsent (an expired pair counts as
//     absent), replace→Lookup-then-Insert, delete→Remove.
//   - cas ids are FNV-64a hashes of the stored envelope bytes:
//     gets returns hash(raw), cas re-reads raw, verifies the hash,
//     and swaps via core CasWith(old=raw, new=envelope) — the swap
//     is conditional on the exact bytes the id was minted from, so a
//     racing write yields EXISTS exactly as memcached promises.
//   - incr/decr/touch are read-modify-write loops over the same CAS
//     primitive (memcached guarantees them atomic; the loop retries
//     lost races).
//
// The gateway enforces memcached's own limits (250-byte keys, 1 MiB
// values) at the protocol edge; the deployment-wide core.Config
// limits are independent and off by default.
package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"zht/internal/core"
	"zht/internal/metrics"
	"zht/internal/tenant"
)

// Protocol limits, identical to memcached's (and to
// internal/baselines/memcache).
const (
	MaxKeyLen   = 250
	MaxValueLen = 1 << 20
	// relativeExpiryCap is memcached's 30-day threshold: exptime values
	// at or below it are seconds-from-now, larger ones absolute unix
	// seconds.
	relativeExpiryCap = 60 * 60 * 24 * 30
	// casRetries bounds the read-modify-write loops (incr/decr/touch);
	// each retry means another writer won the race, so a handful is
	// plenty outside adversarial churn.
	casRetries = 8
)

// Store is the slice of core.Client the gateway drives; *core.Client
// satisfies it. Errors must use core's vocabulary (ErrNotFound,
// ErrExists, ErrCasMismatch) for the protocol mapping to hold.
type Store interface {
	Insert(key string, val []byte) error
	InsertIfAbsent(key string, val []byte) error
	Lookup(key string) ([]byte, error)
	Remove(key string) error
	Cas(key string, oldVal, newVal []byte) ([]byte, error)
}

// Options configures a Gateway.
type Options struct {
	// Tenant is the namespace cache traffic is scoped to; empty uses
	// the default (un-prefixed) keyspace.
	Tenant string
	// DefaultTTL is applied when a storage command's exptime is 0
	// (memcached semantics keep 0 = never; this is an operator
	// override for cache-shaped deployments). Zero keeps 0 = never.
	DefaultTTL time.Duration
	// Metrics receives the zht.memcached.* instruments; nil = no-op.
	Metrics *metrics.Registry
}

// gwMetrics are the gateway instruments (OBSERVABILITY.md "Tenancy").
type gwMetrics struct {
	conns  *metrics.Gauge   // zht.memcached.conns
	cmds   *metrics.Counter // zht.memcached.cmds
	hits   *metrics.Counter // zht.memcached.hits
	misses *metrics.Counter // zht.memcached.misses
	errs   *metrics.Counter // zht.memcached.errors
}

// Gateway serves the memcached text protocol over a listener,
// translating each command into core client calls.
type Gateway struct {
	store Store
	opts  Options
	met   gwMetrics

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New builds a gateway over a store (normally a *core.Client).
func New(store Store, opts Options) *Gateway {
	return &Gateway{
		store: store,
		opts:  opts,
		met: gwMetrics{
			conns:  opts.Metrics.Gauge("zht.memcached.conns"),
			cmds:   opts.Metrics.Counter("zht.memcached.cmds"),
			hits:   opts.Metrics.Counter("zht.memcached.hits"),
			misses: opts.Metrics.Counter("zht.memcached.misses"),
			errs:   opts.Metrics.Counter("zht.memcached.errors"),
		},
		conns: make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Close; it returns the accept
// error after shutdown (net.ErrClosed on a clean Close).
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return net.ErrClosed
	}
	g.ln = ln
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		g.conns[conn] = struct{}{}
		g.wg.Add(1)
		g.mu.Unlock()
		go g.serveConn(conn)
	}
}

// ListenAndServe listens on a TCP address and serves until Close.
func (g *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return g.Serve(ln)
}

// Addr returns the gateway's listen address, or "" before Serve.
func (g *Gateway) Addr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr().String()
}

// Close stops accepting, closes open connections, and waits for
// per-connection goroutines to exit.
func (g *Gateway) Close() error {
	g.mu.Lock()
	g.closed = true
	ln := g.ln
	for c := range g.conns {
		c.Close()
	}
	g.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	g.wg.Wait()
	return err
}

func (g *Gateway) serveConn(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		conn.Close()
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		g.met.conns.Dec()
	}()
	// Defense in depth: a panic while parsing one connection's bytes
	// must cost that connection, never the server process (the gateway
	// faces arbitrary remote input).
	defer func() { recover() }()
	g.met.conns.Inc()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		if len(line) == 0 {
			continue
		}
		g.met.cmds.Inc()
		quit, err := g.dispatch(w, r, line)
		if err != nil || quit {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// readLine reads one \r\n-terminated protocol line (tolerating bare
// \n), without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// dispatch executes one command line. It returns quit=true when the
// connection should close (quit command), and a non-nil error only
// for connection-fatal conditions (I/O failures).
func (g *Gateway) dispatch(w *bufio.Writer, r *bufio.Reader, line string) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		// A line of pure whitespace passes serveConn's empty check but
		// has no verb; answer ERROR like any unknown command.
		_, err = io.WriteString(w, "ERROR\r\n")
		return false, err
	}
	cmd := fields[0]
	args := fields[1:]
	switch cmd {
	case "get", "gets":
		return false, g.cmdGet(w, args, cmd == "gets")
	case "set", "add", "replace", "cas":
		return false, g.cmdStore(w, r, cmd, args)
	case "delete":
		return false, g.cmdDelete(w, args)
	case "incr", "decr":
		return false, g.cmdIncrDecr(w, cmd, args)
	case "touch":
		return false, g.cmdTouch(w, args)
	case "version":
		_, err = io.WriteString(w, "VERSION 1.6.0-zht\r\n")
		return false, err
	case "stats":
		return false, g.cmdStats(w)
	case "quit":
		return true, nil
	}
	_, err = io.WriteString(w, "ERROR\r\n")
	return false, err
}

func clientError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", msg)
	return err
}

// serverError reports a failed backend call (routing failure, open
// breaker, timeout, CAS contention) as SERVER_ERROR and counts it
// under zht.memcached.errors — never as a miss, so a backend outage
// cannot masquerade as a cold cache.
func (g *Gateway) serverError(w *bufio.Writer, err error) error {
	g.met.errs.Inc()
	_, werr := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", err)
	return werr
}

// validKey enforces memcached's key grammar: 1..250 bytes, no
// whitespace or control characters (the tenant separator byte is a
// control character, so the reserved namespace cannot be escaped
// from here).
func validKey(key string) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// expiry converts a memcached exptime to an absolute expiry time.
// 0 = never (unless the gateway has a DefaultTTL); negative =
// already expired; <= 30 days = relative seconds; otherwise absolute
// unix seconds.
func (g *Gateway) expiry(exptime int64) time.Time {
	switch {
	case exptime == 0:
		if g.opts.DefaultTTL > 0 {
			return time.Now().Add(g.opts.DefaultTTL)
		}
		return time.Time{}
	case exptime < 0:
		return time.Now().Add(-time.Second)
	case exptime <= relativeExpiryCap:
		return time.Now().Add(time.Duration(exptime) * time.Second)
	default:
		return time.Unix(exptime, 0)
	}
}

// casID mints the compare-and-swap token for a stored envelope:
// FNV-64a over the raw bytes. Identical bytes yield identical ids,
// which memcached permits (an ABA write is byte-identical data).
func casID(raw []byte) uint64 {
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

func (g *Gateway) cmdGet(w *bufio.Writer, keys []string, withCas bool) error {
	if len(keys) == 0 {
		return clientError(w, "bad command line format")
	}
	for _, key := range keys {
		if !validKey(key) {
			continue // memcached silently skips malformed keys in get
		}
		raw, err := g.store.Lookup(tenant.Prefix(g.opts.Tenant, key))
		if errors.Is(err, core.ErrNotFound) {
			g.met.misses.Inc()
			continue // miss (including lazily-expired pairs): no VALUE line
		}
		if err != nil {
			// Routing failures, open breakers, and timeouts are not
			// misses. SERVER_ERROR aborts the reply (no END), as
			// memcached clients expect.
			return g.serverError(w, err)
		}
		g.met.hits.Inc()
		val, flags, _, _ := tenant.Unwrap(raw)
		if withCas {
			fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", key, flags, len(val), casID(raw))
		} else {
			fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(val))
		}
		w.Write(val)
		io.WriteString(w, "\r\n")
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

// cmdStore serves set/add/replace/cas:
//
//	<cmd> <key> <flags> <exptime> <bytes> [<cas id>] [noreply]\r\n
//	<data>\r\n
func (g *Gateway) cmdStore(w *bufio.Writer, r *bufio.Reader, cmd string, args []string) error {
	noreply := len(args) > 0 && args[len(args)-1] == "noreply"
	if noreply {
		args = args[:len(args)-1]
	}
	want := 4
	if cmd == "cas" {
		want = 5
	}
	if len(args) != want {
		return clientError(w, "bad command line format")
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(args[1], 10, 32)
	exptime, err2 := strconv.ParseInt(args[2], 10, 64)
	size, err3 := strconv.ParseInt(args[3], 10, 64)
	var casid uint64
	var err4 error
	if cmd == "cas" {
		casid, err4 = strconv.ParseUint(args[4], 10, 64)
	}
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || size < 0 {
		return clientError(w, "bad command line format")
	}
	reply := func(s string) error {
		if noreply {
			return nil
		}
		_, err := io.WriteString(w, s+"\r\n")
		return err
	}
	// The data block must be consumed even when the command will be
	// rejected — the client sends <size>+2 bytes regardless, and
	// leaving them in the stream would desync the protocol (the
	// block's bytes would be parsed as commands). Oversized blocks are
	// drained rather than buffered, so a hostile size declaration
	// cannot make the gateway allocate.
	if size > MaxValueLen {
		if _, err := io.CopyN(io.Discard, r, size+2); err != nil {
			return err
		}
		return reply("SERVER_ERROR object too large for cache")
	}
	data := make([]byte, size+2)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	if string(data[size:]) != "\r\n" {
		return clientError(w, "bad data chunk")
	}
	data = data[:size]
	if !validKey(key) {
		return reply("CLIENT_ERROR bad key")
	}
	pkey := tenant.Prefix(g.opts.Tenant, key)
	env := tenant.Wrap(data, uint32(flags), g.expiry(exptime))
	switch cmd {
	case "set":
		if err := g.store.Insert(pkey, env); err != nil {
			return g.serverError(w, err)
		}
		return reply("STORED")
	case "add":
		err := g.store.InsertIfAbsent(pkey, env)
		if errors.Is(err, core.ErrExists) {
			return reply("NOT_STORED")
		}
		if err != nil {
			return g.serverError(w, err)
		}
		return reply("STORED")
	case "replace":
		// Lookup-then-insert: replace only hits when the key is
		// present (an expired pair reads as absent). The window
		// between read and write can race another writer — memcached
		// on one node serializes this, a distributed table does not;
		// DESIGN.md §13 records the anomaly.
		if _, err := g.store.Lookup(pkey); errors.Is(err, core.ErrNotFound) {
			return reply("NOT_STORED")
		} else if err != nil {
			return g.serverError(w, err)
		}
		if err := g.store.Insert(pkey, env); err != nil {
			return g.serverError(w, err)
		}
		return reply("STORED")
	case "cas":
		raw, err := g.store.Lookup(pkey)
		if errors.Is(err, core.ErrNotFound) {
			return reply("NOT_FOUND")
		}
		if err != nil {
			return g.serverError(w, err)
		}
		if casID(raw) != casid {
			return reply("EXISTS")
		}
		// The swap is conditional on the exact bytes the id was
		// minted from, so a write that slipped in after our read
		// fails the compare server-side.
		if _, err := g.store.Cas(pkey, raw, env); err != nil {
			if errors.Is(err, core.ErrCasMismatch) {
				return reply("EXISTS")
			}
			if errors.Is(err, core.ErrNotFound) {
				return reply("NOT_FOUND")
			}
			return g.serverError(w, err)
		}
		return reply("STORED")
	}
	return clientError(w, "bad command line format")
}

func (g *Gateway) cmdDelete(w *bufio.Writer, args []string) error {
	noreply := len(args) > 0 && args[len(args)-1] == "noreply"
	if noreply {
		args = args[:len(args)-1]
	}
	if len(args) != 1 || !validKey(args[0]) {
		return clientError(w, "bad command line format")
	}
	reply := func(s string) error {
		if noreply {
			return nil
		}
		_, err := io.WriteString(w, s+"\r\n")
		return err
	}
	err := g.store.Remove(tenant.Prefix(g.opts.Tenant, args[0]))
	if errors.Is(err, core.ErrNotFound) {
		return reply("NOT_FOUND")
	}
	if err != nil {
		return g.serverError(w, err)
	}
	return reply("DELETED")
}

// cmdIncrDecr serves incr/decr as a CAS loop: read, parse the stored
// decimal, apply the delta (decr floors at 0, incr wraps at 2^64,
// both per memcached), swap conditional on the bytes read.
func (g *Gateway) cmdIncrDecr(w *bufio.Writer, cmd string, args []string) error {
	noreply := len(args) > 0 && args[len(args)-1] == "noreply"
	if noreply {
		args = args[:len(args)-1]
	}
	if len(args) != 2 || !validKey(args[0]) {
		return clientError(w, "bad command line format")
	}
	delta, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return clientError(w, "invalid numeric delta argument")
	}
	reply := func(s string) error {
		if noreply {
			return nil
		}
		_, err := io.WriteString(w, s+"\r\n")
		return err
	}
	pkey := tenant.Prefix(g.opts.Tenant, args[0])
	for attempt := 0; attempt < casRetries; attempt++ {
		raw, err := g.store.Lookup(pkey)
		if errors.Is(err, core.ErrNotFound) {
			return reply("NOT_FOUND")
		}
		if err != nil {
			return g.serverError(w, err)
		}
		val, flags, exp, _ := tenant.Unwrap(raw)
		cur, err := strconv.ParseUint(string(val), 10, 64)
		if err != nil {
			return reply("CLIENT_ERROR cannot increment or decrement non-numeric value")
		}
		var next uint64
		if cmd == "incr" {
			next = cur + delta
		} else if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
		env := tenant.Wrap([]byte(strconv.FormatUint(next, 10)), flags, exp)
		if _, err := g.store.Cas(pkey, raw, env); err != nil {
			if errors.Is(err, core.ErrCasMismatch) {
				continue // another writer won; re-read and retry
			}
			if errors.Is(err, core.ErrNotFound) {
				return reply("NOT_FOUND")
			}
			return g.serverError(w, err)
		}
		return reply(strconv.FormatUint(next, 10))
	}
	return g.serverError(w, errors.New("cas contention"))
}

// cmdTouch rewrites the stored envelope with a new expiry, keeping
// value and flags, conditional on the bytes read (CAS loop).
func (g *Gateway) cmdTouch(w *bufio.Writer, args []string) error {
	noreply := len(args) > 0 && args[len(args)-1] == "noreply"
	if noreply {
		args = args[:len(args)-1]
	}
	if len(args) != 2 || !validKey(args[0]) {
		return clientError(w, "bad command line format")
	}
	exptime, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return clientError(w, "bad command line format")
	}
	reply := func(s string) error {
		if noreply {
			return nil
		}
		_, err := io.WriteString(w, s+"\r\n")
		return err
	}
	pkey := tenant.Prefix(g.opts.Tenant, args[0])
	for attempt := 0; attempt < casRetries; attempt++ {
		raw, err := g.store.Lookup(pkey)
		if errors.Is(err, core.ErrNotFound) {
			return reply("NOT_FOUND")
		}
		if err != nil {
			return g.serverError(w, err)
		}
		val, flags, _, _ := tenant.Unwrap(raw)
		env := tenant.Wrap(val, flags, g.expiry(exptime))
		if _, err := g.store.Cas(pkey, raw, env); err != nil {
			if errors.Is(err, core.ErrCasMismatch) {
				continue
			}
			if errors.Is(err, core.ErrNotFound) {
				return reply("NOT_FOUND")
			}
			return g.serverError(w, err)
		}
		return reply("TOUCHED")
	}
	return g.serverError(w, errors.New("cas contention"))
}

func (g *Gateway) cmdStats(w *bufio.Writer) error {
	fmt.Fprintf(w, "STAT curr_connections %d\r\n", g.met.conns.Value())
	fmt.Fprintf(w, "STAT cmd_total %d\r\n", g.met.cmds.Value())
	fmt.Fprintf(w, "STAT get_hits %d\r\n", g.met.hits.Value())
	fmt.Fprintf(w, "STAT get_misses %d\r\n", g.met.misses.Value())
	_, err := io.WriteString(w, "END\r\n")
	return err
}
