// Package gpfssim models GPFS's metadata service: the baseline
// FusionFS is compared against in Figures 1 and 16.
//
// The paper's measurements show two structural behaviours this model
// reproduces:
//
//   - GPFS's metadata servers saturate at very small client counts
//     ("reaching saturation at only 4 to 32 core scales"), so time
//     per create grows linearly once clients outnumber the fixed
//     metadata server pool;
//   - creates in a single shared directory additionally serialize on
//     the directory lock ("the concurrent metadata modification occur
//     via distributed locks"), adding a per-client lock-hold term —
//     the many-dir vs one-dir gap of Figure 1.
//
// Calibration anchors from the paper: ~5 ms per create at 1 node
// growing to ~393 ms at 512 nodes (many directories, Figure 16), and
// ~63 s per create at 16K processors in one directory (§III.I);
// 2449 ms at 512 nodes one-dir (§V.A).
package gpfssim

import "time"

// Model holds the GPFS metadata service parameters.
type Model struct {
	// Servers is the effective metadata-server parallelism; GPFS
	// saturates when clients exceed it.
	Servers float64
	// BaseOp is the uncontended time per metadata operation.
	BaseOp time.Duration
	// LockHold is the per-client directory-lock serialization cost
	// for same-directory operations.
	LockHold time.Duration
}

// Default returns a model calibrated to the paper's measurements.
func Default() Model {
	return Model{Servers: 6.5, BaseOp: 5 * time.Millisecond, LockHold: 3850 * time.Microsecond}
}

// TimePerOp predicts the wall-clock time per create observed by each
// of n concurrent clients; sameDir selects the single-shared-directory
// workload.
func (m Model) TimePerOp(n int, sameDir bool) time.Duration {
	if n < 1 {
		n = 1
	}
	t := m.BaseOp
	if f := float64(n) / m.Servers; f > 1 {
		t = time.Duration(float64(m.BaseOp) * f)
	}
	if sameDir {
		t += time.Duration(n) * m.LockHold
	}
	return t
}

// Throughput predicts aggregate creates/second for n clients.
func (m Model) Throughput(n int, sameDir bool) float64 {
	return float64(n) / m.TimePerOp(n, sameDir).Seconds()
}
