package gpfssim

import (
	"testing"
	"time"
)

func TestAnchorsFromPaper(t *testing.T) {
	m := Default()
	// Figure 16: ~5 ms at 1 node, ~393 ms at 512 nodes (many dirs).
	if got := m.TimePerOp(1, false); got < 3*time.Millisecond || got > 8*time.Millisecond {
		t.Errorf("1 node many-dir = %v, want ≈5 ms", got)
	}
	if got := m.TimePerOp(512, false); got < 250*time.Millisecond || got > 550*time.Millisecond {
		t.Errorf("512 nodes many-dir = %v, want ≈393 ms", got)
	}
	// §V.A: 2449 ms at 512 nodes, single directory.
	if got := m.TimePerOp(512, true); got < 1500*time.Millisecond || got > 3500*time.Millisecond {
		t.Errorf("512 nodes one-dir = %v, want ≈2.4 s", got)
	}
	// §III.I: ~63 s per op at 16K processors, single directory.
	if got := m.TimePerOp(16384, true); got < 40*time.Second || got > 90*time.Second {
		t.Errorf("16K one-dir = %v, want ≈63 s", got)
	}
}

func TestMonotonicInScale(t *testing.T) {
	m := Default()
	var prev time.Duration
	for _, n := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384} {
		got := m.TimePerOp(n, false)
		if got < prev {
			t.Errorf("time per op decreased at n=%d", n)
		}
		prev = got
	}
}

func TestOneDirAlwaysWorse(t *testing.T) {
	m := Default()
	for _, n := range []int{1, 8, 64, 512, 4096} {
		if m.TimePerOp(n, true) <= m.TimePerOp(n, false) {
			t.Errorf("n=%d: one-dir not worse than many-dir", n)
		}
	}
}

func TestSaturationShape(t *testing.T) {
	// Throughput must plateau once clients exceed the server pool:
	// going 64 → 512 clients should improve aggregate throughput by
	// far less than 8x (GPFS saturates; FusionFS does not).
	m := Default()
	gain := m.Throughput(512, false) / m.Throughput(64, false)
	if gain > 1.5 {
		t.Errorf("throughput gain 64→512 = %.1fx; GPFS model should be saturated", gain)
	}
}

func TestDegenerateInputs(t *testing.T) {
	m := Default()
	if m.TimePerOp(0, false) != m.TimePerOp(1, false) {
		t.Error("n=0 should clamp to 1")
	}
	if m.Throughput(1, false) <= 0 {
		t.Error("throughput must be positive")
	}
}
