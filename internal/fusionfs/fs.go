package fusionfs

import (
	"errors"
	"fmt"
	"sort"

	"zht/internal/core"
)

// Errors returned by FS operations.
var (
	ErrExists     = errors.New("fusionfs: file exists")
	ErrNotExist   = errors.New("fusionfs: no such file or directory")
	ErrNotDir     = errors.New("fusionfs: not a directory")
	ErrIsDir      = errors.New("fusionfs: is a directory")
	ErrNotEmpty   = errors.New("fusionfs: directory not empty")
	ErrParentGone = errors.New("fusionfs: parent directory does not exist")
)

// dirPrefix namespaces directory entry streams away from file
// metadata so "/a" the file and "/a" the directory listing never
// collide in the ZHT keyspace.
const dirPrefix = "d:"

// metaPrefix namespaces metadata records.
const metaPrefix = "m:"

// FS is a FusionFS metadata volume backed by a ZHT client. Multiple
// FS handles (one per compute node) share the same volume through the
// same ZHT deployment. All methods are safe for concurrent use.
type FS struct {
	c *core.Client
	// storage, when attached, enables the file data path (chunks on
	// storage servers, locations in metadata).
	storage *Storage
}

// New creates a metadata volume handle and ensures the root directory
// exists.
func New(c *core.Client) (*FS, error) {
	fs := &FS{c: c}
	root := &FileMeta{Mode: 0o755, IsDir: true, MTime: now()}
	if err := c.InsertIfAbsent(metaPrefix+"/", encodeMeta(root)); err != nil && !errors.Is(err, core.ErrExists) {
		return nil, err
	}
	return fs, nil
}

// Create makes a new empty file. The parent directory must exist.
// The operation is two ZHT calls and no distributed lock: a
// conditional insert of the metadata record plus an append of the
// entry record under the parent directory's key (§V.A).
func (f *FS) Create(path string) error {
	dir, base, err := splitPath(path)
	if err != nil {
		return err
	}
	if err := f.requireDir(dir); err != nil {
		return err
	}
	meta := &FileMeta{Mode: ModeDefault, MTime: now()}
	if err := f.c.InsertIfAbsent(metaPrefix+path, encodeMeta(meta)); err != nil {
		if errors.Is(err, core.ErrExists) {
			return ErrExists
		}
		return err
	}
	return f.c.Append(dirPrefix+dir, addRecord(base))
}

// Mkdir makes a new directory.
func (f *FS) Mkdir(path string) error {
	dir, base, err := splitPath(path)
	if err != nil {
		return err
	}
	if err := f.requireDir(dir); err != nil {
		return err
	}
	meta := &FileMeta{Mode: 0o755, IsDir: true, MTime: now()}
	if err := f.c.InsertIfAbsent(metaPrefix+path, encodeMeta(meta)); err != nil {
		if errors.Is(err, core.ErrExists) {
			return ErrExists
		}
		return err
	}
	return f.c.Append(dirPrefix+dir, addRecord(base))
}

// Stat returns a file's metadata.
func (f *FS) Stat(path string) (*FileMeta, error) {
	if path != "/" {
		if _, _, err := splitPath(path); err != nil {
			return nil, err
		}
	}
	v, err := f.c.Lookup(metaPrefix + path)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return nil, ErrNotExist
		}
		return nil, err
	}
	return decodeMeta(v)
}

// SetMeta replaces a file's metadata record (size updates, chunk
// lists, chmod).
func (f *FS) SetMeta(path string, m *FileMeta) error {
	if _, err := f.Stat(path); err != nil {
		return err
	}
	return f.c.Insert(metaPrefix+path, encodeMeta(m))
}

// Unlink removes a file.
func (f *FS) Unlink(path string) error {
	dir, base, err := splitPath(path)
	if err != nil {
		return err
	}
	m, err := f.Stat(path)
	if err != nil {
		return err
	}
	if m.IsDir {
		return ErrIsDir
	}
	if err := f.c.Remove(metaPrefix + path); err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return ErrNotExist
		}
		return err
	}
	f.removeData(path, m) // best effort: reclaim data chunks
	return f.c.Append(dirPrefix+dir, removeRecord(base))
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(path string) error {
	dir, base, err := splitPath(path)
	if err != nil {
		return err
	}
	m, err := f.Stat(path)
	if err != nil {
		return err
	}
	if !m.IsDir {
		return ErrNotDir
	}
	entries, err := f.ReadDir(path)
	if err != nil {
		return err
	}
	if len(entries) > 0 {
		return ErrNotEmpty
	}
	if err := f.c.Remove(metaPrefix + path); err != nil {
		return err
	}
	f.c.Remove(dirPrefix + path) // best effort: clear the record stream
	return f.c.Append(dirPrefix+dir, removeRecord(base))
}

// ReadDir lists a directory, folding the appended add/remove records
// into a sorted name list.
func (f *FS) ReadDir(path string) ([]string, error) {
	if err := f.requireDir(path); err != nil {
		return nil, err
	}
	v, err := f.c.Lookup(dirPrefix + path)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return nil, nil // no entries appended yet
		}
		return nil, err
	}
	set, err := foldDir(v)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (f *FS) requireDir(path string) error {
	m, err := f.Stat(path)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrParentGone, path)
		}
		return err
	}
	if !m.IsDir {
		return ErrNotDir
	}
	return nil
}
