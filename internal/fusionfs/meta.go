// Package fusionfs implements FusionFS's distributed metadata
// management on top of ZHT (paper §V.A).
//
// In FusionFS every compute node is simultaneously client, metadata
// server, and storage server; the metadata servers "use ZHT, which
// allows the metadata information to be dispersed throughout the
// system, and allows metadata lookups to occur in constant time at
// extremely high concurrency". Directories are special files
// containing only metadata about the files they hold; concurrent
// directory modification uses ZHT's append operation instead of any
// distributed lock (§III.I): each create appends an entry record
// under the parent directory's key, and ReadDir folds the appended
// add/remove records into the current listing.
package fusionfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"
)

// FileMeta is the metadata record stored under a file's path key.
type FileMeta struct {
	Mode    uint32 // permission bits + type
	Size    uint64
	MTime   int64 // unix nanos
	IsDir   bool
	Replica uint8 // storage replica count for the file's chunks
	// Chunks lists the storage locations of the file's data chunks
	// (node identifiers); metadata-only workloads leave it empty.
	Chunks []string
}

// ModeDefault is the mode bits new files receive.
const ModeDefault = 0o644

var errBadMeta = errors.New("fusionfs: malformed metadata record")

// encodeMeta serializes a FileMeta.
func encodeMeta(m *FileMeta) []byte {
	buf := make([]byte, 0, 32)
	buf = append(buf, 'F', '1')
	flags := byte(0)
	if m.IsDir {
		flags = 1
	}
	buf = append(buf, flags, m.Replica)
	buf = binary.AppendUvarint(buf, uint64(m.Mode))
	buf = binary.AppendUvarint(buf, m.Size)
	buf = binary.AppendVarint(buf, m.MTime)
	buf = binary.AppendUvarint(buf, uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
		buf = append(buf, c...)
	}
	return buf
}

// decodeMeta parses a FileMeta.
func decodeMeta(b []byte) (*FileMeta, error) {
	if len(b) < 4 || b[0] != 'F' || b[1] != '1' {
		return nil, errBadMeta
	}
	m := &FileMeta{IsDir: b[2]&1 == 1, Replica: b[3]}
	b = b[4:]
	var err error
	var mode uint64
	if mode, b, err = uvar(b); err != nil {
		return nil, err
	}
	m.Mode = uint32(mode)
	if m.Size, b, err = uvar(b); err != nil {
		return nil, err
	}
	var mt int64
	mt, n := binary.Varint(b)
	if n <= 0 {
		return nil, errBadMeta
	}
	m.MTime = mt
	b = b[n:]
	var nc uint64
	if nc, b, err = uvar(b); err != nil || nc > 1<<20 {
		return nil, errBadMeta
	}
	for i := uint64(0); i < nc; i++ {
		var l uint64
		if l, b, err = uvar(b); err != nil || uint64(len(b)) < l {
			return nil, errBadMeta
		}
		m.Chunks = append(m.Chunks, string(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, errBadMeta
	}
	return m, nil
}

func uvar(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errBadMeta
	}
	return v, b[n:], nil
}

// Directory entry records appended under the parent key. '+' adds a
// name, '-' removes it; records are NUL-terminated so appends from
// concurrent clients cannot corrupt each other (ZHT append is atomic
// per operation).
func addRecord(name string) []byte    { return append(append([]byte{'+'}, name...), 0) }
func removeRecord(name string) []byte { return append(append([]byte{'-'}, name...), 0) }

// foldDir folds an appended record stream into the directory's
// current entry set.
func foldDir(stream []byte) (map[string]bool, error) {
	entries := map[string]bool{}
	for len(stream) > 0 {
		i := indexByte(stream, 0)
		if i < 0 {
			return nil, errors.New("fusionfs: truncated directory record")
		}
		rec := stream[:i]
		stream = stream[i+1:]
		if len(rec) == 0 {
			continue
		}
		name := string(rec[1:])
		switch rec[0] {
		case '+':
			entries[name] = true
		case '-':
			delete(entries, name)
		default:
			return nil, fmt.Errorf("fusionfs: bad directory record %q", rec)
		}
	}
	return entries, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// splitPath returns the parent directory and base name of a clean
// absolute path.
func splitPath(path string) (dir, base string, err error) {
	if !strings.HasPrefix(path, "/") || path != cleanish(path) {
		return "", "", fmt.Errorf("fusionfs: path %q must be clean and absolute", path)
	}
	if path == "/" {
		return "", "", errors.New("fusionfs: root has no parent")
	}
	i := strings.LastIndexByte(path, '/')
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+1:], nil
}

// cleanish rejects the path irregularities FusionFS never produces
// (FUSE hands it clean paths).
func cleanish(p string) string {
	if strings.Contains(p, "//") || (len(p) > 1 && strings.HasSuffix(p, "/")) {
		return ""
	}
	return p
}

// now is a hook for tests.
var now = func() int64 { return time.Now().UnixNano() }
