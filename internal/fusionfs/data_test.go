package fusionfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/istore"
)

// newFSWithStorage boots metadata (ZHT) + storage servers on one
// in-process network, mirroring FusionFS's every-node-is-everything
// deployment.
func newFSWithStorage(t *testing.T, storageNodes int, chunkSize int) (*FS, []*istore.ChunkServer) {
	t.Helper()
	cfg := core.Config{NumPartitions: 64, Replicas: 1, RetryBase: time.Millisecond}
	d, reg, err := core.BootstrapInproc(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	var servers []*istore.ChunkServer
	var addrs []string
	for i := 0; i < storageNodes; i++ {
		cs := istore.NewChunkServer()
		addr := fmt.Sprintf("fstore-%02d", i)
		if _, err := reg.Listen(addr, cs.Handle); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, cs)
		addrs = append(addrs, addr)
	}
	if err := fs.AttachStorage(Storage{Nodes: addrs, Caller: reg.NewClient(), ChunkSize: chunkSize}); err != nil {
		t.Fatal(err)
	}
	return fs, servers
}

func TestWriteReadFile(t *testing.T) {
	fs, servers := newFSWithStorage(t, 4, 1024)
	if err := fs.Create("/data.bin"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 300) // 4800 B = 5 chunks
	if err := fs.WriteFile("/data.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/data.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, err %v", len(got), err)
	}
	m, _ := fs.Stat("/data.bin")
	if m.Size != uint64(len(payload)) || len(m.Chunks) != 5 {
		t.Errorf("meta after write: size=%d chunks=%d", m.Size, len(m.Chunks))
	}
	// Chunks spread across storage servers.
	spread := 0
	for _, s := range servers {
		if s.Blocks() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("chunks landed on %d servers; want spread", spread)
	}
}

func TestOverwriteShrinksAndGrows(t *testing.T) {
	fs, _ := newFSWithStorage(t, 3, 512)
	fs.Create("/f")
	big := bytes.Repeat([]byte{'b'}, 3000) // 6 chunks
	if err := fs.WriteFile("/f", big); err != nil {
		t.Fatal(err)
	}
	small := []byte("tiny")
	if err := fs.WriteFile("/f", small); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, small) {
		t.Fatalf("after shrink: %q %v", got, err)
	}
	// Grow again; stale tail chunks must not corrupt the result.
	big2 := bytes.Repeat([]byte{'c'}, 2000)
	if err := fs.WriteFile("/f", big2); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/f"); !bytes.Equal(got, big2) {
		t.Fatal("after regrow: mismatch")
	}
}

func TestEmptyFile(t *testing.T) {
	fs, _ := newFSWithStorage(t, 2, 512)
	fs.Create("/empty")
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty file: %d bytes, %v", len(got), err)
	}
}

func TestUnlinkReclaimsChunks(t *testing.T) {
	fs, servers := newFSWithStorage(t, 3, 256)
	fs.Create("/gone")
	fs.WriteFile("/gone", bytes.Repeat([]byte{'x'}, 2048))
	if err := fs.Unlink("/gone"); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range servers {
		total += s.Blocks()
	}
	if total != 0 {
		t.Errorf("%d orphan chunks after unlink", total)
	}
}

func TestDataOpsValidation(t *testing.T) {
	fs, _ := newFSWithStorage(t, 2, 512)
	if err := fs.WriteFile("/missing", []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Errorf("write to missing file: %v", err)
	}
	fs.Mkdir("/d")
	if err := fs.WriteFile("/d", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Errorf("write to dir: %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: %v", err)
	}

	// FS without storage rejects data ops.
	cfg := core.Config{NumPartitions: 16, RetryBase: time.Millisecond}
	d, _, err := core.BootstrapInproc(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, _ := d.NewClient()
	bare, _ := New(c)
	bare.Create("/f")
	if err := bare.WriteFile("/f", []byte("x")); !errors.Is(err, ErrNoStorage) {
		t.Errorf("write without storage: %v", err)
	}
	if _, err := bare.ReadFile("/f"); !errors.Is(err, ErrNoStorage) {
		t.Errorf("read without storage: %v", err)
	}
	if err := bare.AttachStorage(Storage{}); err == nil {
		t.Error("empty storage accepted")
	}
}
