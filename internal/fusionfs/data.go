package fusionfs

import (
	"errors"
	"fmt"

	"zht/internal/hashing"
	"zht/internal/transport"
	"zht/internal/wire"
)

// File data path. In FusionFS "every compute node serves all three
// roles: client, metadata server, and storage server" (§V.A): file
// contents live in fixed-size chunks on the nodes' storage servers,
// and the chunk locations live in the file's ZHT metadata record —
// so opening a file is a constant-time metadata lookup followed by
// direct chunk fetches.

// DefaultChunkSize is the data chunk size.
const DefaultChunkSize = 64 << 10

// ErrNoStorage reports a data operation on an FS handle constructed
// without storage servers.
var ErrNoStorage = errors.New("fusionfs: no storage servers attached")

// Storage wires an FS handle to the deployment's chunk servers.
type Storage struct {
	// Nodes are the storage-server addresses (one per compute node).
	Nodes []string
	// Caller is the transport used for chunk I/O.
	Caller transport.Caller
	// ChunkSize is the split granularity; 0 = DefaultChunkSize.
	ChunkSize int
}

// AttachStorage enables WriteFile/ReadFile on the volume.
func (f *FS) AttachStorage(s Storage) error {
	if len(s.Nodes) == 0 || s.Caller == nil {
		return errors.New("fusionfs: storage needs nodes and a caller")
	}
	if s.ChunkSize <= 0 {
		s.ChunkSize = DefaultChunkSize
	}
	f.storage = &s
	return nil
}

// chunkKey names chunk i of a file in the chunk servers' namespace.
func chunkKey(path string, i int) string { return fmt.Sprintf("fdata:%s#%06d", path, i) }

// chunkHome picks the storage server for a chunk. The first chunk
// lands on the server named by the path hash (data locality with the
// creating node in real FusionFS); subsequent chunks round-robin from
// there so large files spread.
func (s *Storage) chunkHome(path string, i int) string {
	base := hashing.Default(path) % uint64(len(s.Nodes))
	return s.Nodes[(base+uint64(i))%uint64(len(s.Nodes))]
}

// WriteFile stores data as the file's content, replacing any previous
// content. The file must exist (Create first).
func (f *FS) WriteFile(path string, data []byte) error {
	if f.storage == nil {
		return ErrNoStorage
	}
	m, err := f.Stat(path)
	if err != nil {
		return err
	}
	if m.IsDir {
		return ErrIsDir
	}
	oldChunks := len(m.Chunks)
	cs := f.storage.ChunkSize
	nChunks := (len(data) + cs - 1) / cs
	homes := make([]string, 0, nChunks)
	for i := 0; i < nChunks; i++ {
		lo := i * cs
		hi := lo + cs
		if hi > len(data) {
			hi = len(data)
		}
		home := f.storage.chunkHome(path, i)
		resp, err := f.storage.Caller.Call(home, &wire.Request{
			Op: wire.OpInsert, Key: chunkKey(path, i), Value: data[lo:hi],
		})
		if err != nil {
			return fmt.Errorf("fusionfs: store chunk %d on %s: %w", i, home, err)
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("fusionfs: store chunk %d: %s", i, resp.Err)
		}
		homes = append(homes, home)
	}
	// Shrinking writes orphan old tail chunks: delete them.
	for i := nChunks; i < oldChunks; i++ {
		f.storage.Caller.Call(f.storage.chunkHome(path, i), &wire.Request{
			Op: wire.OpRemove, Key: chunkKey(path, i),
		})
	}
	m.Size = uint64(len(data))
	m.MTime = now()
	m.Chunks = homes
	return f.SetMeta(path, m)
}

// ReadFile fetches and reassembles the file's content.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if f.storage == nil {
		return nil, ErrNoStorage
	}
	m, err := f.Stat(path)
	if err != nil {
		return nil, err
	}
	if m.IsDir {
		return nil, ErrIsDir
	}
	out := make([]byte, 0, m.Size)
	for i, home := range m.Chunks {
		resp, err := f.storage.Caller.Call(home, &wire.Request{
			Op: wire.OpLookup, Key: chunkKey(path, i),
		})
		if err != nil {
			return nil, fmt.Errorf("fusionfs: fetch chunk %d from %s: %w", i, home, err)
		}
		if resp.Status != wire.StatusOK {
			return nil, fmt.Errorf("fusionfs: chunk %d missing on %s", i, home)
		}
		out = append(out, resp.Value...)
	}
	if uint64(len(out)) != m.Size {
		return nil, fmt.Errorf("fusionfs: reassembled %d bytes, metadata says %d", len(out), m.Size)
	}
	return out, nil
}

// removeData deletes a file's chunks (called from Unlink when storage
// is attached).
func (f *FS) removeData(path string, m *FileMeta) {
	if f.storage == nil {
		return
	}
	for i, home := range m.Chunks {
		f.storage.Caller.Call(home, &wire.Request{Op: wire.OpRemove, Key: chunkKey(path, i)})
	}
}
