package fusionfs

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"zht/internal/core"
)

func newFS(t *testing.T, instances int) (*FS, *core.Deployment) {
	t.Helper()
	cfg := core.Config{NumPartitions: 64, Replicas: 1, RetryBase: time.Millisecond}
	d, _, err := core.BootstrapInproc(cfg, instances)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	c, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return fs, d
}

func TestMetaRoundTrip(t *testing.T) {
	m := &FileMeta{Mode: 0o755, Size: 12345, MTime: 987654321, IsDir: true, Replica: 3,
		Chunks: []string{"node-1", "node-7"}}
	got, err := decodeMeta(encodeMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestMetaRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("XX"), []byte("F1"), []byte("F1\x00")} {
		if _, err := decodeMeta(b); err == nil {
			t.Errorf("decodeMeta(%q) accepted", b)
		}
	}
}

func TestCreateStatUnlink(t *testing.T) {
	fs, _ := newFS(t, 2)
	if err := fs.Create("/a.txt"); err != nil {
		t.Fatal(err)
	}
	m, err := fs.Stat("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if m.IsDir || m.Mode != ModeDefault {
		t.Errorf("meta = %+v", m)
	}
	if err := fs.Create("/a.txt"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := fs.Unlink("/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat after unlink: %v", err)
	}
	if err := fs.Unlink("/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double unlink: %v", err)
	}
}

func TestDirectories(t *testing.T) {
	fs, _ := newFS(t, 2)
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/data/run1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/data/run1/out.log"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/data")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"run1"}) {
		t.Errorf("ReadDir(/data) = %v", names)
	}
	names, _ = fs.ReadDir("/data/run1")
	if !reflect.DeepEqual(names, []string{"out.log"}) {
		t.Errorf("ReadDir(/data/run1) = %v", names)
	}
	// Root listing contains /data.
	names, _ = fs.ReadDir("/")
	if !reflect.DeepEqual(names, []string{"data"}) {
		t.Errorf("ReadDir(/) = %v", names)
	}
}

func TestCreateRequiresParent(t *testing.T) {
	fs, _ := newFS(t, 2)
	if err := fs.Create("/missing/file"); !errors.Is(err, ErrParentGone) {
		t.Errorf("create without parent: %v", err)
	}
	fs.Create("/plain")
	if err := fs.Create("/plain/child"); !errors.Is(err, ErrNotDir) {
		t.Errorf("create under file: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	fs, _ := newFS(t, 2)
	fs.Mkdir("/d")
	fs.Create("/d/f")
	if err := fs.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rmdir non-empty: %v", err)
	}
	fs.Unlink("/d/f")
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat after rmdir: %v", err)
	}
	if names, _ := fs.ReadDir("/"); len(names) != 0 {
		t.Errorf("root still lists %v", names)
	}
	// Recreating the directory after rmdir starts empty.
	fs.Mkdir("/d")
	if names, _ := fs.ReadDir("/d"); len(names) != 0 {
		t.Errorf("recreated dir lists stale entries: %v", names)
	}
	if err := fs.Rmdir("/plainfile"); !errors.Is(err, ErrNotExist) {
		fs.Create("/plainfile")
		if err := fs.Rmdir("/plainfile"); !errors.Is(err, ErrNotDir) {
			t.Errorf("rmdir on file: %v", err)
		}
	}
}

func TestUnlinkDirRejected(t *testing.T) {
	fs, _ := newFS(t, 2)
	fs.Mkdir("/d")
	if err := fs.Unlink("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("unlink dir: %v", err)
	}
}

func TestPathValidation(t *testing.T) {
	fs, _ := newFS(t, 1)
	for _, p := range []string{"", "rel/path", "/a//b", "/a/", "//"} {
		if err := fs.Create(p); err == nil {
			t.Errorf("Create(%q) accepted", p)
		}
	}
	if _, err := fs.Stat("/"); err != nil {
		t.Errorf("Stat(/) = %v", err)
	}
}

func TestSetMeta(t *testing.T) {
	fs, _ := newFS(t, 2)
	fs.Create("/f")
	m, _ := fs.Stat("/f")
	m.Size = 4096
	m.Chunks = []string{"node-0", "node-1"}
	if err := fs.SetMeta("/f", m); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Stat("/f")
	if got.Size != 4096 || len(got.Chunks) != 2 {
		t.Errorf("SetMeta lost fields: %+v", got)
	}
	if err := fs.SetMeta("/missing", m); !errors.Is(err, ErrNotExist) {
		t.Errorf("SetMeta on missing: %v", err)
	}
}

// TestConcurrentCreatesOneDirectory is the paper's marquee FusionFS
// scenario: many clients creating files in ONE shared directory with
// no distributed lock — ZHT append makes the directory updates
// lock-free (§III.I: "creating 10K files from 10K processes in one
// directory").
func TestConcurrentCreatesOneDirectory(t *testing.T) {
	fs, d := newFS(t, 4)
	fs.Mkdir("/shared")
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			nodeFS := &FS{c: c}
			for i := 0; i < per; i++ {
				if err := nodeFS.Create(fmt.Sprintf("/shared/w%d-f%04d", w, i)); err != nil {
					t.Errorf("create w%d-f%04d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	names, err := fs.ReadDir("/shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != workers*per {
		t.Fatalf("directory lists %d entries, want %d (lock-free appends lost records)", len(names), workers*per)
	}
}

func TestConcurrentCreateSameName(t *testing.T) {
	// Exactly one of N racing creates for the same path must win.
	fs, d := newFS(t, 4)
	fs.Mkdir("/race")
	const workers = 8
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := d.NewClient()
			nodeFS := &FS{c: c}
			if err := nodeFS.Create("/race/hot"); err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			} else if !errors.Is(err, ErrExists) {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Errorf("%d creates won the race, want exactly 1", wins)
	}
	if names, _ := fs.ReadDir("/race"); len(names) != 1 {
		t.Errorf("directory lists %d entries, want 1", len(names))
	}
}

func TestFoldDirMalformed(t *testing.T) {
	if _, err := foldDir([]byte("+a")); err == nil {
		t.Error("unterminated record accepted")
	}
	if _, err := foldDir([]byte("?a\x00")); err == nil {
		t.Error("bad opcode accepted")
	}
	set, err := foldDir([]byte("+a\x00+b\x00-a\x00"))
	if err != nil || len(set) != 1 || !set["b"] {
		t.Errorf("fold = %v %v", set, err)
	}
}
