package fusionfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/transport"
)

// TestFusionFSOverRealTCP runs the metadata service on a real TCP
// loopback deployment: the full stack a FusionFS node would use
// (client → wire codec → TCP with connection cache → instance →
// NoVoHT).
func TestFusionFSOverRealTCP(t *testing.T) {
	cfg := core.Config{NumPartitions: 256, Replicas: 1, RetryBase: time.Millisecond, DataDir: t.TempDir()}
	caller := transport.NewTCPClient(transport.TCPClientOptions{ConnCache: true})
	defer caller.Close()
	var switches []*core.HandlerSwitch
	eps := make([]core.Endpoint, 3)
	for i := range eps {
		hs := &core.HandlerSwitch{}
		ln, err := transport.ListenTCP("127.0.0.1:0", hs.Handle, transport.EventDriven)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		switches = append(switches, hs)
		eps[i] = core.Endpoint{Addr: ln.Addr(), Node: fmt.Sprintf("fsnode-%d", i)}
	}
	d, err := core.Bootstrap(cfg, eps, func(addr string, h transport.Handler) (transport.Listener, error) {
		for i, ep := range eps {
			if ep.Addr == addr {
				switches[i].Set(h)
				return tcpNop{addr}, nil
			}
		}
		return nil, errors.New("unbound")
	}, caller)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rootClient, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(rootClient)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/tcp"); err != nil {
		t.Fatal(err)
	}
	// Concurrent creates from several client handles into one dir.
	const workers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := d.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			nodeFS := &FS{c: c}
			for i := 0; i < per; i++ {
				if err := nodeFS.Create(fmt.Sprintf("/tcp/w%d-f%03d", w, i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	names, err := fs.ReadDir("/tcp")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != workers*per {
		t.Fatalf("directory lists %d entries over TCP, want %d", len(names), workers*per)
	}
	if _, err := fs.Stat("/tcp/w0-f000"); err != nil {
		t.Fatal(err)
	}
}

type tcpNop struct{ addr string }

func (l tcpNop) Addr() string { return l.addr }
func (l tcpNop) Close() error { return nil }
