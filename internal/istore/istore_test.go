package istore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

func TestGFAxioms(t *testing.T) {
	// Multiplicative inverse and distributivity over random samples.
	err := quick.Check(func(a, b, c byte) bool {
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			return false
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			return false
		}
		if a != 0 && gfMul(a, gfInv(a)) != 1 {
			return false
		}
		return gfMul(a, 1) == a && gfMul(a, 0) == 0
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero did not panic")
		}
	}()
	gfDiv(5, 0)
}

func TestMatrixInvert(t *testing.T) {
	// Invert a known-invertible Vandermonde block and verify M×M⁻¹=I.
	m := newMatrix(3, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			m.set(r, c, gfPowInt(byte(r+1), c))
		}
	}
	inv, ok := m.invert()
	if !ok {
		t.Fatal("vandermonde reported singular")
	}
	id := m.mul(inv)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if id.at(r, c) != want {
				t.Fatalf("M×M⁻¹ != I at (%d,%d): %d", r, c, id.at(r, c))
			}
		}
	}
	// Singular matrix detected.
	z := newMatrix(2, 2)
	if _, ok := z.invert(); ok {
		t.Error("zero matrix inverted")
	}
}

func TestCodecRoundTripAllErasurePatterns(t *testing.T) {
	const k, n = 3, 6
	codec, err := NewCodec(k, n)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	shards, err := codec.Encode(codec.Split(data))
	if err != nil {
		t.Fatal(err)
	}
	// Every way of keeping exactly k of n shards must reconstruct.
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != k {
			continue
		}
		got := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				got[i] = shards[i]
			}
		}
		rec, err := codec.Reconstruct(got)
		if err != nil {
			t.Fatalf("mask %06b: %v", mask, err)
		}
		joined, err := codec.Join(rec, len(data))
		if err != nil || !bytes.Equal(joined, data) {
			t.Fatalf("mask %06b: reconstruction mismatch", mask)
		}
	}
}

func TestCodecTooFewShards(t *testing.T) {
	codec, _ := NewCodec(4, 6)
	shards, _ := codec.Encode(codec.Split([]byte("payload")))
	for i := 0; i < 3; i++ {
		shards[i] = nil
	}
	if _, err := codec.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Errorf("want ErrTooFewShards, got %v", err)
	}
}

func TestCodecParamValidation(t *testing.T) {
	for _, c := range []struct{ k, n int }{{0, 4}, {5, 4}, {-1, 3}, {3, 300}} {
		if _, err := NewCodec(c.k, c.n); err == nil {
			t.Errorf("NewCodec(%d,%d) accepted", c.k, c.n)
		}
	}
}

func TestCodecPropertyRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(8)
		n := k + rng.Intn(8)
		codec, err := NewCodec(k, n)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, rng.Intn(4096))
		rng.Read(data)
		shards, err := codec.Encode(codec.Split(data))
		if err != nil {
			t.Fatal(err)
		}
		// Drop n-k random shards.
		perm := rng.Perm(n)
		for _, i := range perm[:n-k] {
			shards[i] = nil
		}
		rec, err := codec.Reconstruct(shards)
		if err != nil {
			t.Fatalf("k=%d n=%d len=%d: %v", k, n, len(data), err)
		}
		joined, err := codec.Join(rec, len(data))
		if err != nil || !bytes.Equal(joined, data) {
			t.Fatalf("k=%d n=%d len=%d: data mismatch", k, n, len(data))
		}
	}
}

func TestCodecExtremes(t *testing.T) {
	// k == n: pure striping, no parity; zero shards may be lost.
	c, err := NewCodec(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("0123456789abcdef")
	shards, _ := c.Encode(c.Split(data))
	rec, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	joined, _ := c.Join(rec, len(data))
	if !bytes.Equal(joined, data) {
		t.Error("k=n round trip failed")
	}
	shards[0] = nil
	if _, err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Errorf("k=n with a loss: %v", err)
	}
	// k=1: pure replication; any single shard suffices.
	c1, _ := NewCodec(1, 5)
	s1, _ := c1.Encode(c1.Split(data))
	for keep := 0; keep < 5; keep++ {
		got := make([][]byte, 5)
		got[keep] = s1[keep]
		rec, err := c1.Reconstruct(got)
		if err != nil {
			t.Fatalf("k=1 keep %d: %v", keep, err)
		}
		joined, _ := c1.Join(rec, len(data))
		if !bytes.Equal(joined, data) {
			t.Fatalf("k=1 keep %d: mismatch", keep)
		}
	}
	// Maximum field size: n = 255.
	if _, err := NewCodec(128, 255); err != nil {
		t.Errorf("n=255: %v", err)
	}
}

func TestChunkServerRejectsUnknownOp(t *testing.T) {
	cs := NewChunkServer()
	if resp := cs.Handle(&wire.Request{Op: wire.OpAppend, Key: "k"}); resp.Status != wire.StatusError {
		t.Errorf("unknown op accepted: %v", resp.Status)
	}
}

func TestObjectMetaRoundTrip(t *testing.T) {
	m := &objectMeta{Size: 1 << 30, K: 3, N: 5, Shards: []string{"a", "b", "c", "d", "e"}}
	got, err := decodeObjectMeta(encodeObjectMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != m.Size || got.K != m.K || got.N != m.N || len(got.Shards) != 5 {
		t.Errorf("round trip: %+v", got)
	}
	for _, b := range [][]byte{nil, []byte("XX"), []byte("I1")} {
		if _, err := decodeObjectMeta(b); err == nil {
			t.Errorf("garbage %q accepted", b)
		}
	}
}

// newIStore wires N chunk servers + a ZHT deployment for metadata.
func newIStore(t *testing.T, k, n int) (*Store, []*ChunkServer, *transport.Registry) {
	t.Helper()
	cfg := core.Config{NumPartitions: 64, Replicas: 1, RetryBase: time.Millisecond}
	d, reg, err := core.BootstrapInproc(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	meta, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	var servers []*ChunkServer
	var addrs []string
	for i := 0; i < n; i++ {
		cs := NewChunkServer()
		addr := fmt.Sprintf("chunk-%03d", i)
		if _, err := reg.Listen(addr, cs.Handle); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, cs)
		addrs = append(addrs, addr)
	}
	st, err := New(meta, k, addrs, reg.NewClient())
	if err != nil {
		t.Fatal(err)
	}
	return st, servers, reg
}

func TestStorePutGet(t *testing.T) {
	st, servers, _ := newIStore(t, 3, 5)
	data := bytes.Repeat([]byte("scientific-data-"), 1000)
	if err := st.Put("dataset/run1", data); err != nil {
		t.Fatal(err)
	}
	for i, s := range servers {
		if s.Blocks() != 1 {
			t.Errorf("chunk server %d holds %d blocks, want 1", i, s.Blocks())
		}
	}
	got, err := st.Get("dataset/run1")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get mismatch: %v (len %d vs %d)", err, len(got), len(data))
	}
}

func TestStoreSurvivesNodeFailures(t *testing.T) {
	st, _, reg := newIStore(t, 3, 5)
	data := bytes.Repeat([]byte{0xAB, 0xCD}, 5000)
	if err := st.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Take down n-k = 2 chunk servers: the IDA property must hold.
	reg.SetDown("chunk-000", true)
	reg.SetDown("chunk-003", true)
	got, err := st.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get with 2 nodes down: %v", err)
	}
	// A third failure exceeds the code's tolerance.
	reg.SetDown("chunk-001", true)
	if _, err := st.Get("obj"); err == nil {
		t.Error("Get succeeded with only k-1 shards reachable")
	}
}

func TestStoreDelete(t *testing.T) {
	st, servers, _ := newIStore(t, 2, 4)
	st.Put("temp", []byte("data"))
	if err := st.Delete("temp"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("temp"); !errors.Is(err, ErrObjectNotFound) {
		t.Errorf("get after delete: %v", err)
	}
	for i, s := range servers {
		if s.Blocks() != 0 {
			t.Errorf("server %d still holds %d blocks", i, s.Blocks())
		}
	}
	if err := st.Delete("temp"); !errors.Is(err, ErrObjectNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestStoreEmptyAndSmallObjects(t *testing.T) {
	st, _, _ := newIStore(t, 3, 5)
	for _, size := range []int{0, 1, 2, 3, 17} {
		name := fmt.Sprintf("small-%d", size)
		data := bytes.Repeat([]byte{'x'}, size)
		if err := st.Put(name, data); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := st.Get(name)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("size %d: %q %v", size, got, err)
		}
	}
}

func TestStoreMetaOpsCounted(t *testing.T) {
	st, _, _ := newIStore(t, 2, 3)
	st.Put("a", []byte("1"))
	st.Get("a")
	st.Delete("a")
	if ops := st.MetaOps(); ops < 4 {
		t.Errorf("MetaOps = %d, want >= 4", ops)
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkEncode(b *testing.B) {
	codec, _ := NewCodec(4, 6)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	shards := codec.Split(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	codec, _ := NewCodec(4, 6)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	shards, _ := codec.Encode(codec.Split(data))
	shards[0], shards[2] = nil, nil
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
