package istore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"zht/internal/core"
	"zht/internal/transport"
	"zht/internal/wire"
)

// IStore system wiring: chunk servers hold erasure-coded blocks;
// chunk locations and object metadata live in ZHT ("The IStore uses
// ZHT to manage metadata about file chunks", §V.B). At each scale of
// N nodes the IDA is configured to chunk files into N blocks sent to
// N different nodes, matching the paper's Figure 17 setup.

// ChunkServer stores erasure-coded blocks on one node.
type ChunkServer struct {
	mu     sync.RWMutex
	blocks map[string][]byte
}

// NewChunkServer creates an empty chunk server.
func NewChunkServer() *ChunkServer {
	return &ChunkServer{blocks: make(map[string][]byte)}
}

// Handle implements transport.Handler for block put/get/delete.
func (s *ChunkServer) Handle(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpInsert:
		s.mu.Lock()
		s.blocks[req.Key] = append([]byte(nil), req.Value...)
		s.mu.Unlock()
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpLookup:
		s.mu.RLock()
		b, ok := s.blocks[req.Key]
		s.mu.RUnlock()
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: append([]byte(nil), b...)}
	case wire.OpRemove:
		s.mu.Lock()
		delete(s.blocks, req.Key)
		s.mu.Unlock()
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	}
	return &wire.Response{Status: wire.StatusError, Err: "istore: unsupported op"}
}

// Blocks reports how many blocks this server holds.
func (s *ChunkServer) Blocks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// objectMeta is the ZHT record for one stored object.
type objectMeta struct {
	Size   uint64
	K, N   uint16
	Shards []string // shard i lives at Shards[i] under key "<name>#<i>"
}

func encodeObjectMeta(m *objectMeta) []byte {
	buf := []byte{'I', '1'}
	buf = binary.AppendUvarint(buf, m.Size)
	buf = binary.AppendUvarint(buf, uint64(m.K))
	buf = binary.AppendUvarint(buf, uint64(m.N))
	for _, s := range m.Shards {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

var errBadObjectMeta = errors.New("istore: malformed object metadata")

func decodeObjectMeta(b []byte) (*objectMeta, error) {
	if len(b) < 2 || b[0] != 'I' || b[1] != '1' {
		return nil, errBadObjectMeta
	}
	b = b[2:]
	m := &objectMeta{}
	var v uint64
	var n int
	if v, n = binary.Uvarint(b); n <= 0 {
		return nil, errBadObjectMeta
	}
	m.Size = v
	b = b[n:]
	if v, n = binary.Uvarint(b); n <= 0 || v > 255 {
		return nil, errBadObjectMeta
	}
	m.K = uint16(v)
	b = b[n:]
	if v, n = binary.Uvarint(b); n <= 0 || v > 255 {
		return nil, errBadObjectMeta
	}
	m.N = uint16(v)
	b = b[n:]
	for i := 0; i < int(m.N); i++ {
		if v, n = binary.Uvarint(b); n <= 0 || uint64(len(b[n:])) < v {
			return nil, errBadObjectMeta
		}
		m.Shards = append(m.Shards, string(b[n:n+int(v)]))
		b = b[n+int(v):]
	}
	if len(b) != 0 {
		return nil, errBadObjectMeta
	}
	return m, nil
}

// Store is an IStore client handle.
type Store struct {
	meta   *core.Client // ZHT metadata
	codec  *Codec
	nodes  []string // chunk server addresses
	caller transport.Caller
	// ops counts ZHT metadata operations issued (the quantity
	// Figure 17 reports as metadata throughput).
	ops   uint64
	opsMu sync.Mutex
}

// ErrObjectNotFound reports a retrieve of an unknown object.
var ErrObjectNotFound = errors.New("istore: object not found")

// New creates an IStore client: data is dispersed k-of-n over the
// given chunk servers (n = len(nodes)).
func New(meta *core.Client, k int, nodes []string, caller transport.Caller) (*Store, error) {
	codec, err := NewCodec(k, len(nodes))
	if err != nil {
		return nil, err
	}
	return &Store{meta: meta, codec: codec, nodes: nodes, caller: caller}, nil
}

func (s *Store) countOp() {
	s.opsMu.Lock()
	s.ops++
	s.opsMu.Unlock()
}

// MetaOps reports ZHT metadata operations performed.
func (s *Store) MetaOps() uint64 {
	s.opsMu.Lock()
	defer s.opsMu.Unlock()
	return s.ops
}

// Put erasure-codes data into n blocks, stores block i on node i, and
// records the object's metadata in ZHT.
func (s *Store) Put(name string, data []byte) error {
	shards, err := s.codec.Encode(s.codec.Split(data))
	if err != nil {
		return err
	}
	for i, shard := range shards {
		resp, err := s.caller.Call(s.nodes[i], &wire.Request{
			Op: wire.OpInsert, Key: shardKey(name, i), Value: shard,
		})
		if err != nil {
			return fmt.Errorf("istore: store shard %d on %s: %w", i, s.nodes[i], err)
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("istore: store shard %d: %s", i, resp.Err)
		}
	}
	m := &objectMeta{
		Size: uint64(len(data)), K: uint16(s.codec.K()), N: uint16(s.codec.N()),
		Shards: s.nodes,
	}
	s.countOp()
	return s.meta.Insert("istore:"+name, encodeObjectMeta(m))
}

// Get reconstructs an object from any k reachable shards.
func (s *Store) Get(name string) ([]byte, error) {
	s.countOp()
	raw, err := s.meta.Lookup("istore:" + name)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return nil, ErrObjectNotFound
		}
		return nil, err
	}
	m, err := decodeObjectMeta(raw)
	if err != nil {
		return nil, err
	}
	codec := s.codec
	if int(m.K) != codec.K() || int(m.N) != codec.N() {
		if codec, err = NewCodec(int(m.K), int(m.N)); err != nil {
			return nil, err
		}
	}
	shards := make([][]byte, m.N)
	got := 0
	for i := 0; i < int(m.N) && got < int(m.K); i++ {
		resp, err := s.caller.Call(m.Shards[i], &wire.Request{
			Op: wire.OpLookup, Key: shardKey(name, i),
		})
		if err != nil || resp.Status != wire.StatusOK {
			continue // node down or shard lost: IDA tolerates it
		}
		shards[i] = resp.Value
		got++
	}
	data, err := codec.Reconstruct(shards)
	if err != nil {
		return nil, err
	}
	return codec.Join(data, int(m.Size))
}

// Delete removes an object's shards and metadata.
func (s *Store) Delete(name string) error {
	s.countOp()
	raw, err := s.meta.Lookup("istore:" + name)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return ErrObjectNotFound
		}
		return err
	}
	m, err := decodeObjectMeta(raw)
	if err != nil {
		return err
	}
	for i := 0; i < int(m.N); i++ {
		s.caller.Call(m.Shards[i], &wire.Request{Op: wire.OpRemove, Key: shardKey(name, i)})
	}
	s.countOp()
	return s.meta.Remove("istore:" + name)
}

func shardKey(name string, i int) string { return fmt.Sprintf("%s#%04d", name, i) }
