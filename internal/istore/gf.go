// Package istore implements IStore, the information-dispersal object
// storage system built on ZHT (paper §V.B, Figure 17).
//
// "By implementing erasure coding, these algorithms encode the data
// into multiple blocks among which only a portion is necessary to
// recover the original data." IStore chunks each file into n blocks
// with a k-of-n Reed-Solomon code (the information dispersal
// algorithm, IDA), spreads the blocks over n distinct nodes, and
// records block locations in ZHT for later retrieval.
//
// This file: GF(2^8) arithmetic with the AES/Rijndael-compatible
// reduction polynomial x^8+x^4+x^3+x^2+1 (0x11d), table-driven.
package istore

// gfExp/gfLog are the exponent and logarithm tables for GF(256) with
// generator 2.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(256).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b in GF(256); b must be non-zero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	if b == 0 {
		panic("istore: division by zero in GF(256)")
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow raises the generator's power: g^e.
func gfPow(e int) byte { return gfExp[e%255] }

// mulSlice computes dst[i] ^= c * src[i] — the inner loop of
// encoding/decoding.
func mulSliceXor(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	lc := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// matrix is a dense GF(256) matrix in row-major order.
type matrix struct {
	rows, cols int
	d          []byte
}

func newMatrix(r, c int) matrix { return matrix{r, c, make([]byte, r*c)} }

func (m matrix) at(r, c int) byte     { return m.d[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.d[r*m.cols+c] = v }

// mul returns m × b.
func (m matrix) mul(b matrix) matrix {
	if m.cols != b.rows {
		panic("istore: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, b.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			la := int(gfLog[a])
			for c := 0; c < b.cols; c++ {
				v := b.at(k, c)
				if v != 0 {
					out.d[r*out.cols+c] ^= gfExp[la+int(gfLog[v])]
				}
			}
		}
	}
	return out
}

// invert returns the inverse via Gauss-Jordan elimination, or ok=false
// for singular matrices.
func (m matrix) invert() (matrix, bool) {
	if m.rows != m.cols {
		return matrix{}, false
	}
	n := m.rows
	// Augment with identity.
	aug := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(aug.d[r*2*n:], m.d[r*n:(r+1)*n])
		aug.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix{}, false
		}
		if pivot != col {
			pr := aug.d[pivot*2*n : (pivot+1)*2*n]
			cr := aug.d[col*2*n : (col+1)*2*n]
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// Normalize pivot row.
		inv := gfInv(aug.at(col, col))
		row := aug.d[col*2*n : (col+1)*2*n]
		for i := range row {
			row[i] = gfMul(row[i], inv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.at(r, col)
			if f == 0 {
				continue
			}
			target := aug.d[r*2*n : (r+1)*2*n]
			for i := range target {
				target[i] ^= gfMul(f, row[i])
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.d[r*n:], aug.d[r*2*n+n:(r+1)*2*n])
	}
	return out, true
}

// submatrix extracts the given rows.
func (m matrix) subRows(rows []int) matrix {
	out := newMatrix(len(rows), m.cols)
	for i, r := range rows {
		copy(out.d[i*m.cols:], m.d[r*m.cols:(r+1)*m.cols])
	}
	return out
}
