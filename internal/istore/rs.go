package istore

import (
	"errors"
	"fmt"
)

// Reed-Solomon k-of-n erasure coding with a systematic encoding
// matrix: the first k output shards are the data itself, the
// remaining n-k are parity. Any k shards reconstruct the data.

// Codec encodes and decodes shard sets for fixed (k, n).
type Codec struct {
	k, n int
	// enc is the n×k encoding matrix; its top k×k block is the
	// identity (systematic form).
	enc matrix
}

// Errors returned by the codec.
var (
	ErrTooFewShards = errors.New("istore: not enough shards to reconstruct")
	ErrShardSize    = errors.New("istore: inconsistent shard sizes")
)

// NewCodec creates a k-of-n codec (k data shards, n total). Built
// from a Vandermonde matrix normalized to systematic form, which
// guarantees every k×k row subset is invertible.
func NewCodec(k, n int) (*Codec, error) {
	if k <= 0 || n < k || n > 255 {
		return nil, fmt.Errorf("istore: invalid code parameters k=%d n=%d", k, n)
	}
	// Vandermonde: V[r][c] = r^c (row r = evaluation point r).
	v := newMatrix(n, k)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			v.set(r, c, gfPowInt(byte(r+1), c))
		}
	}
	// Systematize: multiply by inverse of the top k×k block.
	top := v.subRows(seq(k))
	topInv, ok := top.invert()
	if !ok {
		return nil, errors.New("istore: vandermonde top block singular")
	}
	return &Codec{k: k, n: n, enc: v.mul(topInv)}, nil
}

// gfPowInt computes b^e in GF(256).
func gfPowInt(b byte, e int) byte {
	r := byte(1)
	for i := 0; i < e; i++ {
		r = gfMul(r, b)
	}
	return r
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// K and N report the code parameters.
func (c *Codec) K() int { return c.k }
func (c *Codec) N() int { return c.n }

// Split pads data and splits it into k equal data shards. The
// original length must be carried out-of-band (IStore stores it in
// the ZHT metadata record).
func (c *Codec) Split(data []byte) [][]byte {
	shardLen := (len(data) + c.k - 1) / c.k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Encode produces the n-shard set (k data shards followed by n-k
// parity shards) from the k data shards.
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("istore: Encode wants %d data shards, got %d", c.k, len(data))
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, ErrShardSize
		}
	}
	out := make([][]byte, c.n)
	for i := 0; i < c.k; i++ {
		out[i] = data[i]
	}
	for r := c.k; r < c.n; r++ {
		p := make([]byte, size)
		for col := 0; col < c.k; col++ {
			mulSliceXor(c.enc.at(r, col), data[col], p)
		}
		out[r] = p
	}
	return out, nil
}

// Reconstruct recovers the k data shards from any k available shards.
// shards has length n with nil entries for missing shards.
func (c *Codec) Reconstruct(shards [][]byte) ([][]byte, error) {
	var avail []int
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, ErrShardSize
		}
		avail = append(avail, i)
	}
	if len(avail) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(avail), c.k)
	}
	avail = avail[:c.k]
	// Fast path: all data shards present.
	allData := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if allData {
		return shards[:c.k], nil
	}
	sub := c.enc.subRows(avail)
	inv, ok := sub.invert()
	if !ok {
		return nil, errors.New("istore: decode matrix singular")
	}
	data := make([][]byte, c.k)
	for r := 0; r < c.k; r++ {
		d := make([]byte, size)
		for col := 0; col < c.k; col++ {
			mulSliceXor(inv.at(r, col), shards[avail[col]], d)
		}
		data[r] = d
	}
	return data, nil
}

// Join concatenates data shards and trims to origLen.
func (c *Codec) Join(data [][]byte, origLen int) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("istore: Join wants %d shards", c.k)
	}
	out := make([]byte, 0, len(data)*len(data[0]))
	for _, s := range data {
		out = append(out, s...)
	}
	if origLen > len(out) {
		return nil, errors.New("istore: original length exceeds shard capacity")
	}
	return out[:origLen], nil
}
