// Package metrics is ZHT's dependency-free observability layer: a
// registry of atomic counters, gauges, and fixed-bucket log-scale
// latency histograms shared by every subsystem (client, transports,
// NoVoHT, chaos, simulator) and every binary.
//
// The paper's whole evaluation (Figures 5-10: per-op latency,
// aggregate throughput, scaling efficiency) rests on measuring
// latency distributions, not just means; this package is the
// repo-wide substrate for that. Design constraints:
//
//   - Recording must be cheap enough for the hot path: a counter
//     increment is one atomic add, a histogram observation is three
//     (count, sum, bucket).
//   - A disabled registry must cost (almost) nothing: every
//     instrument type is nil-safe, so code holds possibly-nil
//     *Counter/*Gauge/*Histogram fields and calls them
//     unconditionally — when metrics are off the call is a nil check,
//     cheaper even than an atomic load.
//   - One metric namespace for real and simulated runs: the
//     discrete-event simulator records into the same names
//     (zht.client.op.all.latency_ns, zht.client.ops) as a real
//     deployment, so zht-figures and zht-sim snapshots are directly
//     comparable with zht-bench and a live zht-server's /metrics.
//
// Instruments are interned by name: two callers asking the registry
// for the same name share the same instrument, which is how per-client
// and per-partition measurements aggregate process-wide.
//
// See OBSERVABILITY.md for the catalogue of every registered metric
// name, and DESIGN.md §6 for the histogram bucket scheme and its
// error bound.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry interns instruments by name. A nil *Registry is valid and
// hands out nil instruments, whose methods are all no-ops — the
// canonical "metrics disabled" state.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns nil (a valid no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns nil (a valid no-op gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. A nil registry returns nil (a valid no-op histogram).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil *Counter ignores all updates.
type Counter struct{ v atomic.Int64 }

// Inc adds one and returns the new count (0 for a nil counter). The
// return value lets hot paths reuse the count they already pay for as
// a sampling tick instead of maintaining a second atomic.
func (c *Counter) Inc() int64 {
	if c == nil {
		return 0
	}
	return c.v.Add(1)
}

// Add adds n (n should be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (can go up and down). The
// zero value is ready to use; a nil *Gauge ignores all updates.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
