package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-bucket log-scale histogram of non-negative
// int64 samples (by convention nanoseconds for *_latency_ns metrics).
//
// Bucket scheme: values below 2^histSubBits (32) get one exact bucket
// each; above that, every power-of-two octave [2^e, 2^(e+1)) is split
// into 2^histSubBits (32) linear sub-buckets of width 2^(e-5). The
// worst-case relative width of a bucket is therefore 1/32 (3.125%),
// and quantiles — reported at the bucket midpoint — carry a relative
// error bound of 1/64 (~1.6%) plus quantile discreteness. The full
// int64 range needs (64-5)*32 + 32 = 1920 buckets (15 KiB), allocated
// once per histogram.
//
// Recording is three atomic adds (count, sum, bucket) and never
// allocates; reads (Quantile, Snapshot) iterate the bucket array with
// atomic loads and may observe a torn-but-valid view under concurrent
// writes, which is fine for monitoring. A nil *Histogram ignores all
// observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	tick    atomic.Uint64 // ShouldSample's 1-in-SampleEvery decimator
	buckets []atomic.Int64
}

const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32 sub-buckets per octave
	histNumBuckets = (64-histSubBits)*histSubBuckets + histSubBuckets
)

// SampleEvery is the decimation rate hot call sites use for timing:
// ShouldSample returns true for one observation in SampleEvery. On
// hosts with slow clock sources (paravirtualized guests can pay
// >100 ns per time.Now) unconditional timing of every operation costs
// >10% throughput; sampling 1-in-16 keeps the distribution unbiased
// while amortizing the clock reads to noise. Counters are never
// sampled — only the decision to measure a duration is.
const SampleEvery = 16

// ShouldSample reports whether a call site that times operations
// should measure this one: exactly one call in SampleEvery returns
// true (false always for nil). The tick costs one atomic add —
// cheaper than the two clock reads it usually saves.
func (h *Histogram) ShouldSample() bool {
	if h == nil {
		return false
	}
	return h.tick.Add(1)%SampleEvery == 0
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, histNumBuckets)}
}

// bucketIndex maps a sample to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	e := bits.Len64(u) - 1 // floor(log2), >= histSubBits
	sub := int((u >> uint(e-histSubBits)) & (histSubBuckets - 1))
	return (e-histSubBits+1)*histSubBuckets + sub
}

// bucketBounds returns a bucket's lower bound and width.
func bucketBounds(idx int) (lower, width int64) {
	if idx < histSubBuckets {
		return int64(idx), 1
	}
	o := idx / histSubBuckets // octave number, 1-based past the exact range
	e := o + histSubBits - 1
	width = int64(1) << uint(e-histSubBits)
	lower = int64(1)<<uint(e) + int64(idx%histSubBuckets)*width
	return lower, width
}

// bucketMid returns a bucket's midpoint, the value quantiles report.
func bucketMid(idx int) int64 {
	lower, width := bucketBounds(idx)
	return lower + width/2
}

// Observe records one sample. Negative samples are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of recorded samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the arithmetic mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the approximate q-quantile (0 <= q <= 1) as the
// midpoint of the bucket containing the rank-⌈q·count⌉ sample, with
// relative error bounded by the bucket scheme (~1.6% past the exact
// range). Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	last := 0
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		last = i
		cum += n
		if cum >= rank {
			return bucketMid(i)
		}
	}
	// Concurrent writers may have bumped count after our bucket walk;
	// report the highest occupied bucket.
	return bucketMid(last)
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram (zero value for nil/empty).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.count.Load() == 0 {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			s.Max = bucketMid(i)
			break
		}
	}
	return s
}
