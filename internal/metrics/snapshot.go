package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// keyed by metric name. It is what the debug endpoint serves, what
// zht-bench -metrics prints, and what the simulator returns so that
// simulated and real runs expose identical structures.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered instrument.
// A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteText renders the snapshot in a stable, line-oriented plain-text
// format: one `name value` line per counter/gauge, and one line per
// histogram with count, mean, and the standard percentiles (all values
// in the metric's native unit, nanoseconds for *_latency_ns).
func (s Snapshot) WriteText(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w,
			"%s count=%d mean=%.0f p50=%d p90=%d p99=%d p999=%d max=%d\n",
			k, h.Count, h.Mean, h.P50, h.P90, h.P99, h.P999, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
