package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Inc()
	g.Dec()
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("nil histogram stats must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatalf("counters with the same name must be interned")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatalf("gauges with the same name must be interned")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatalf("histograms with the same name must be interned")
	}
}

func TestConcurrentCounterHistogram(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := r.Counter("ops")
			g := r.Gauge("inflight")
			h := r.Histogram("lat")
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				h.Observe(int64(rng.Intn(1_000_000)))
				g.Dec()
			}
		}(int64(i))
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Histogram("lat")
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	// Bucket counts must sum to the total count.
	var sum int64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum = %d, count = %d", sum, h.Count())
	}
}

func TestBucketIndexBounds(t *testing.T) {
	// Every sample must land in a bucket whose [lower, lower+width)
	// range contains it, across the exact range, octave boundaries,
	// and large values.
	samples := []int64{0, 1, 31, 32, 33, 63, 64, 65, 100, 1023, 1024, 1025,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxInt64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		samples = append(samples, rng.Int63())
	}
	for _, v := range samples {
		idx := bucketIndex(v)
		lower, width := bucketBounds(idx)
		if v < lower || (width > 0 && v-lower >= width && lower+width > lower) {
			t.Fatalf("v=%d landed in bucket %d [%d, %d+%d)", v, idx, lower, lower, width)
		}
	}
	// Buckets are contiguous: bucket i+1 starts where bucket i ends.
	for i := 0; i < histNumBuckets-1; i++ {
		lo, w := bucketBounds(i)
		next, _ := bucketBounds(i + 1)
		if lo+w != next && lo+w > lo { // skip the final overflow wrap
			t.Fatalf("bucket %d ends at %d but bucket %d starts at %d", i, lo+w, i+1, next)
		}
	}
}

// TestQuantileAccuracy checks percentiles against exact sorted-sample
// math on a known heavy-tailed distribution. The histogram reports
// bucket midpoints, so the relative error bound is half the bucket
// width: 1/64 (~1.6%). Allow 2% for quantile-rank discreteness.
func TestQuantileAccuracy(t *testing.T) {
	h := newHistogram()
	rng := rand.New(rand.NewSource(42))
	n := 200000
	samples := make([]int64, n)
	for i := range samples {
		// Log-normal-ish: exp of a normal, scaled to ~microseconds.
		v := int64(math.Exp(rng.NormFloat64()*1.5+10)) + 1
		samples[i] = v
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(n))) - 1
		exact := samples[rank]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 0.02 {
			t.Errorf("q=%v: got %d, exact %d, rel err %.4f > 0.02", q, got, exact, relErr)
		}
	}
	// Mean is exact (sum/count), no bucket error.
	var sum int64
	for _, v := range samples {
		sum += v
	}
	exactMean := float64(sum) / float64(n)
	if math.Abs(h.Mean()-exactMean) > 1e-6 {
		t.Errorf("mean: got %v, want %v", h.Mean(), exactMean)
	}
}

func TestHistogramSnapshotOrdering(t *testing.T) {
	h := newHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
	if s.P50 < 450_000 || s.P50 > 550_000 {
		t.Fatalf("p50 = %d, want ~500000", s.P50)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("zht.test.ops").Add(7)
	r.Gauge("zht.test.inflight").Set(3)
	r.Histogram("zht.test.latency_ns").Observe(1500)
	s := r.Snapshot()
	if s.Counters["zht.test.ops"] != 7 {
		t.Fatalf("counter snapshot = %d", s.Counters["zht.test.ops"])
	}
	if s.Gauges["zht.test.inflight"] != 3 {
		t.Fatalf("gauge snapshot = %d", s.Gauges["zht.test.inflight"])
	}
	if s.Histograms["zht.test.latency_ns"].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms["zht.test.latency_ns"])
	}
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"zht.test.ops 7", "zht.test.inflight 3", "zht.test.latency_ns count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	var jb strings.Builder
	if err := s.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal([]byte(jb.String()), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if round.Counters["zht.test.ops"] != 7 {
		t.Fatalf("JSON round-trip counter = %d", round.Counters["zht.test.ops"])
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("zht.test.ops").Add(42)
	r.Histogram("zht.test.latency_ns").Observe(1000)
	ln, stop, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop() }()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "zht.test.ops 42") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	code, body = get("/metrics?format=json")
	if code != 200 {
		t.Fatalf("/metrics?format=json: code=%d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if snap.Counters["zht.test.ops"] != 42 {
		t.Fatalf("/metrics json counter = %d", snap.Counters["zht.test.ops"])
	}
	code, _ = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	code, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	// A zero-second CPU profile request is rejected with 400 by pprof
	// only for bad params; use the cmdline endpoint as a cheap pprof
	// smoke test instead of a multi-second profile capture.
	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(12345)
		for pb.Next() {
			h.Observe(v)
			v += 997
		}
	})
}

func ExampleRegistry() {
	r := NewRegistry()
	r.Counter("zht.client.ops").Add(3)
	r.Histogram("zht.client.op.all.latency_ns").Observe(1500)
	s := r.Snapshot()
	fmt.Println(s.Counters["zht.client.ops"], s.Histograms["zht.client.op.all.latency_ns"].Count)
	// Output: 3 1
}

// TestShouldSample pins the decimation contract: nil never samples;
// a live histogram samples exactly once per SampleEvery ticks.
func TestShouldSample(t *testing.T) {
	var nilH *Histogram
	for i := 0; i < 100; i++ {
		if nilH.ShouldSample() {
			t.Fatal("nil histogram sampled")
		}
	}
	h := NewRegistry().Histogram("zht.test.latency_ns")
	got := 0
	const rounds = 10 * SampleEvery
	for i := 0; i < rounds; i++ {
		if h.ShouldSample() {
			got++
		}
	}
	if got != rounds/SampleEvery {
		t.Fatalf("sampled %d of %d ticks, want %d", got, rounds, rounds/SampleEvery)
	}
}

// TestCounterIncReturnsCount pins the Inc return value call sites use
// as a free sampling tick.
func TestCounterIncReturnsCount(t *testing.T) {
	var nilC *Counter
	if nilC.Inc() != 0 {
		t.Fatal("nil counter Inc != 0")
	}
	c := NewRegistry().Counter("zht.test.ops")
	for want := int64(1); want <= 5; want++ {
		if got := c.Inc(); got != want {
			t.Fatalf("Inc = %d, want %d", got, want)
		}
	}
}
