package metrics

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP debug server on addr serving:
//
//	/metrics        registry snapshot, plain text (?format=json for JSON)
//	/debug/vars     Go runtime expvar
//	/debug/pprof/*  net/http/pprof profiles (profile, heap, trace, ...)
//
// It returns the bound listener (so addr may use port 0) and a stop
// function that shuts the server down. The registry may be nil, in
// which case /metrics serves an empty snapshot but pprof still works.
func ServeDebug(addr string, reg *Registry) (net.Listener, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		snap := reg.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, srv.Close, nil
}
