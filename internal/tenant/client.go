package tenant

import (
	"errors"
	"time"
)

// ErrUnsupported reports an operation that cannot be expressed for a
// TTL (cache-shaped) tenant: Append would corrupt the value envelope
// and Cas cannot reconstruct the stored envelope from a user value.
// Gateways with richer state (internal/memcached) implement both via
// read-modify-write loops instead.
var ErrUnsupported = errors.New("tenant: operation not supported for TTL tenants")

// KV is the slice of the client surface the tenancy wrapper needs;
// core.Client satisfies it structurally (this package does not import
// core).
type KV interface {
	Insert(key string, value []byte) error
	InsertIfAbsent(key string, value []byte) error
	Lookup(key string) ([]byte, error)
	Remove(key string) error
	Append(key string, value []byte) error
	Cas(key string, oldValue, newValue []byte) ([]byte, error)
}

// Client scopes a KV client to one tenant: keys are namespaced below
// the API, size limits are enforced, and — for cache-shaped tenants —
// values are wrapped in a TTL envelope on write and unwrapped on
// read. Callers keep the exact client surface they had before
// tenancy.
type Client struct {
	kv KV
	t  Tenant
}

// NewClient scopes kv to the tenant's namespace and policy. The
// tenant need not be registered with any Registry: namespacing and
// limits are client-side; quotas are server-side.
func NewClient(kv KV, t Tenant) *Client {
	return &Client{kv: kv, t: t}
}

// Tenant returns the policy this client is scoped to.
func (c *Client) Tenant() Tenant { return c.t }

// checkSize enforces the tenant's (user-visible) key/value bounds.
func (c *Client) checkSize(key string, value []byte) error {
	if c.t.MaxKeyLen > 0 && len(key) > c.t.MaxKeyLen {
		return ErrTooLarge
	}
	if c.t.MaxValueLen > 0 && len(value) > c.t.MaxValueLen {
		return ErrTooLarge
	}
	return nil
}

// wrap applies the tenant's TTL envelope when one is configured.
func (c *Client) wrap(value []byte) []byte {
	if c.t.DefaultTTL <= 0 {
		return value
	}
	return Wrap(value, 0, time.Now().Add(c.t.DefaultTTL))
}

// Insert stores value under the tenant-scoped key.
func (c *Client) Insert(key string, value []byte) error {
	if err := c.checkSize(key, value); err != nil {
		return err
	}
	return c.kv.Insert(Prefix(c.t.Name, key), c.wrap(value))
}

// InsertIfAbsent stores value only if the tenant-scoped key is
// absent (an expired envelope counts as absent server-side).
func (c *Client) InsertIfAbsent(key string, value []byte) error {
	if err := c.checkSize(key, value); err != nil {
		return err
	}
	return c.kv.InsertIfAbsent(Prefix(c.t.Name, key), c.wrap(value))
}

// Lookup fetches the tenant-scoped key, unwrapping any TTL envelope.
// An expired value is reported as the underlying client's not-found.
func (c *Client) Lookup(key string) ([]byte, error) {
	raw, err := c.kv.Lookup(Prefix(c.t.Name, key))
	if err != nil {
		return nil, err
	}
	val, _, _, _ := Unwrap(raw)
	return val, nil
}

// Remove deletes the tenant-scoped key.
func (c *Client) Remove(key string) error {
	return c.kv.Remove(Prefix(c.t.Name, key))
}

// Append appends to the tenant-scoped key. Unsupported for TTL
// tenants (it would splice raw bytes after an envelope).
func (c *Client) Append(key string, value []byte) error {
	if c.t.DefaultTTL > 0 {
		return ErrUnsupported
	}
	if err := c.checkSize(key, value); err != nil {
		return err
	}
	return c.kv.Append(Prefix(c.t.Name, key), value)
}

// Cas compare-and-swaps the tenant-scoped key. Unsupported for TTL
// tenants (the stored envelope's expiry stamp is not recoverable from
// a user value); the memcached gateway implements CAS for those.
func (c *Client) Cas(key string, oldValue, newValue []byte) ([]byte, error) {
	if c.t.DefaultTTL > 0 {
		return nil, ErrUnsupported
	}
	if err := c.checkSize(key, newValue); err != nil {
		return nil, err
	}
	return c.kv.Cas(Prefix(c.t.Name, key), oldValue, newValue)
}
