package tenant

import (
	"sync"
	"time"

	"zht/internal/metrics"
)

// Admission is the per-tenant quota gate. It layers two policies on
// top of core's existing bounded-inflight transport gate (which
// protects the NODE; this protects tenants from each other):
//
//  1. Token buckets: a tenant with Rate > 0 holds a bucket of Burst
//     tokens refilled at Rate/s; each admitted request spends one.
//     An empty bucket sheds the request with a RetryAfter hint equal
//     to the time until the next token, which the existing client
//     backoff honors (DESIGN.md §9).
//  2. Weighted shares: once total inflight through the gate reaches
//     PressureInflight, a tenant whose share of inflight requests
//     exceeds Weight/ΣWeight is shed. Below the threshold weights are
//     dormant, so an idle deployment never sheds on weight. A weight
//     shed refunds the token the request spent in (1): one rejected
//     request costs at most one quota, never both.
//
// Admission implements core.AdmissionHook structurally (this package
// does not import core). A nil *Admission admits everything.
type Admission struct {
	reg *Registry
	// pressure is the total-inflight threshold past which weighted
	// shares engage; <= 0 disables weighted shedding.
	pressure int
	// weightRetry is the RetryAfter hint attached to weight sheds
	// (bucket sheds compute an exact hint instead).
	weightRetry time.Duration

	mu    sync.Mutex
	total int // inflight requests currently admitted

	met  Metrics
	now  func() time.Time  // test hook
	shed map[string]*int64 // per-tenant shed tallies (ShedCount)
	smu  sync.Mutex
}

// AdmissionOptions tunes the gate beyond per-tenant policy.
type AdmissionOptions struct {
	// PressureInflight is the total admitted-inflight level at which
	// weighted shares engage; <= 0 disables weighted shedding.
	PressureInflight int
	// WeightRetryAfter is the backoff hint for weight-based sheds
	// (default 2ms).
	WeightRetryAfter time.Duration
	// Metrics receives zht.tenant.* instruments; nil = no-op.
	Metrics *metrics.Registry
}

// NewAdmission builds the quota gate over a tenant registry.
func NewAdmission(reg *Registry, opts AdmissionOptions) *Admission {
	if opts.WeightRetryAfter <= 0 {
		opts.WeightRetryAfter = 2 * time.Millisecond
	}
	return &Admission{
		reg:         reg,
		pressure:    opts.PressureInflight,
		weightRetry: opts.WeightRetryAfter,
		met:         NewMetrics(opts.Metrics),
		now:         time.Now,
		shed:        make(map[string]*int64),
	}
}

// Admit asks whether a request against key (possibly namespaced) may
// proceed. cost is the request's payload size in bytes; the current
// policy charges one token per request regardless, but cost is part
// of the contract so byte-weighted quotas stay a policy change, not
// an interface change. On ok, release must be called exactly once
// when the request completes. On shed, retryAfter is the client
// backoff hint.
func (a *Admission) Admit(key string, cost int) (release func(), retryAfter time.Duration, ok bool) {
	if a == nil {
		return nil, 0, true
	}
	_ = cost
	name, _ := Split(key)
	st, totalWeight := a.reg.state(name)

	tookToken := false
	if st != nil && st.cfg.Rate > 0 {
		if wait := st.takeToken(a.now()); wait > 0 {
			a.met.Shed.Inc()
			a.countShed(name)
			return nil, wait, false
		}
		tookToken = true
	}

	a.mu.Lock()
	if st != nil && a.pressure > 0 && a.total >= a.pressure && totalWeight > 0 {
		// Under pressure: shed tenants holding more than their share.
		st.imu.Lock()
		over := (st.inflight+1)*totalWeight > (a.total+1)*st.cfg.Weight
		st.imu.Unlock()
		if over {
			a.mu.Unlock()
			if tookToken {
				// The request never ran: a weight shed must not also
				// burn rate quota, or overload double-penalizes the
				// tenant (one request, two quotas spent).
				st.refundToken()
			}
			a.met.Shed.Inc()
			a.countShed(name)
			return nil, a.weightRetry, false
		}
	}
	a.total++
	a.mu.Unlock()
	if st != nil {
		st.imu.Lock()
		st.inflight++
		st.imu.Unlock()
	}
	a.met.Admitted.Inc()
	a.met.Inflight.Add(1)
	return func() {
		a.mu.Lock()
		a.total--
		a.mu.Unlock()
		if st != nil {
			st.imu.Lock()
			st.inflight--
			st.imu.Unlock()
		}
		a.met.Inflight.Add(-1)
	}, 0, true
}

// takeToken refills the bucket to now and spends one token; a
// positive return is the wait until a token will be available.
func (s *tenantState) takeToken(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.last.IsZero() {
		s.tokens += now.Sub(s.last).Seconds() * s.cfg.Rate
		if s.tokens > s.cfg.Burst {
			s.tokens = s.cfg.Burst
		}
	}
	s.last = now
	if s.tokens < 1 {
		return time.Duration((1 - s.tokens) / s.cfg.Rate * float64(time.Second))
	}
	s.tokens--
	return 0
}

// refundToken returns a spent token to the bucket, capped at Burst —
// used when a request that passed the bucket is shed by a later
// policy stage before doing any work.
func (s *tenantState) refundToken() {
	s.mu.Lock()
	s.tokens++
	if s.tokens > s.cfg.Burst {
		s.tokens = s.cfg.Burst
	}
	s.mu.Unlock()
}

// countShed tallies a shed against its tenant. The registry-level
// zht.tenant.shed counter is the aggregate; per-tenant tallies are
// plain in-process counts so dynamic tenant names never mint metric
// names outside the canonical catalogue.
func (a *Admission) countShed(name string) {
	a.smu.Lock()
	c, ok := a.shed[name]
	if !ok {
		c = new(int64)
		a.shed[name] = c
	}
	*c++
	a.smu.Unlock()
}

// ShedCount returns how many requests have been shed for tenant name
// since the gate was built (for smokes and tests).
func (a *Admission) ShedCount(name string) int64 {
	if a == nil {
		return 0
	}
	a.smu.Lock()
	defer a.smu.Unlock()
	if c, ok := a.shed[name]; ok {
		return *c
	}
	return 0
}
