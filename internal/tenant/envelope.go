package tenant

import (
	"encoding/binary"
	"time"
)

// Value envelope: cache-shaped tenants need an expiry stamp (and the
// memcached gateway needs client flags) carried WITH the value, so
// that replication, handoff, and anti-entropy move policy and payload
// as one unit. The envelope is two magic bytes followed by two
// uvarints and the raw value:
//
//	0x1d 0x01 | uvarint expiryUnixMilli (0 = never) | uvarint flags | value
//
// The magic leads with the same reserved separator byte as the
// namespace codec, so plain (pre-tenancy) values — which may not
// start with 0x1d — are distinguished by a one-byte comparison and
// pay near-zero cost on the read path. Values that DO start with
// 0x1d 0x01 must be written through Wrap; the prefix is reserved.
const (
	envMagic0 = 0x1d
	envMagic1 = 0x01
)

// Wrap encodes value with an expiry stamp (absolute wall-clock time;
// zero time = never expires) and opaque client flags. The result is a
// fresh slice; value is not retained.
func Wrap(value []byte, flags uint32, expiry time.Time) []byte {
	var ms uint64
	if !expiry.IsZero() {
		ms = uint64(expiry.UnixMilli())
	}
	buf := make([]byte, 2, 2+2*binary.MaxVarintLen64+len(value))
	buf[0], buf[1] = envMagic0, envMagic1
	buf = binary.AppendUvarint(buf, ms)
	buf = binary.AppendUvarint(buf, uint64(flags))
	return append(buf, value...)
}

// Unwrap decodes an envelope. For plain values (no envelope magic) it
// returns the input unchanged with wrapped=false. The returned value
// aliases b.
func Unwrap(b []byte) (value []byte, flags uint32, expiry time.Time, wrapped bool) {
	if len(b) < 2 || b[0] != envMagic0 || b[1] != envMagic1 {
		return b, 0, time.Time{}, false
	}
	rest := b[2:]
	ms, n := binary.Uvarint(rest)
	if n <= 0 {
		return b, 0, time.Time{}, false // corrupt; surface raw bytes
	}
	rest = rest[n:]
	fl, n := binary.Uvarint(rest)
	if n <= 0 {
		return b, 0, time.Time{}, false
	}
	if ms != 0 {
		expiry = time.UnixMilli(int64(ms))
	}
	return rest[n:], uint32(fl), expiry, true
}

// Expired reports whether b is an envelope whose expiry stamp has
// passed. Plain values and envelopes without an expiry never expire.
// The check is designed for the storage read path: one two-byte
// comparison for plain values, one uvarint decode for envelopes.
func Expired(b []byte) bool {
	return ExpiredAt(b, time.Now().UnixMilli())
}

// ExpiredAt is Expired against an explicit clock (Unix milliseconds),
// for the reaper and for deterministic tests.
func ExpiredAt(b []byte, nowMilli int64) bool {
	if len(b) < 3 || b[0] != envMagic0 || b[1] != envMagic1 {
		return false
	}
	ms, n := binary.Uvarint(b[2:])
	if n <= 0 || ms == 0 {
		return false
	}
	return int64(ms) <= nowMilli
}
