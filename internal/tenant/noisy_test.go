package tenant_test

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/metrics"
	"zht/internal/tenant"
)

// TestNoisyNeighborIsolation is the tenancy subsystem's chaos check:
// a quota-capped tenant flooding the deployment at many times its
// allowance must be shed at the admission gate (StatusBusy), and the
// well-behaved tenant sharing the deployment must keep completing its
// ops with a sane tail. The latency bound is absolute and generous —
// an in-process deployment answers in microseconds, so a p99 past
// 100ms means the calm tenant queued behind the flood rather than
// being isolated from it.
func TestNoisyNeighborIsolation(t *testing.T) {
	treg := tenant.NewRegistry()
	if err := treg.Register(tenant.Tenant{Name: "noisy", Rate: 500, Burst: 50}); err != nil {
		t.Fatal(err)
	}
	if err := treg.Register(tenant.Tenant{Name: "calm", Rate: 1e7, Burst: 1e6}); err != nil {
		t.Fatal(err)
	}
	mreg := metrics.NewRegistry()
	adm := tenant.NewAdmission(treg, tenant.AdmissionOptions{Metrics: mreg})
	cfg := core.Config{
		NumPartitions: 32,
		Replicas:      1,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		OpRetries:     1,
		OpDeadline:    2 * time.Second,
		Admission:     adm,
		Metrics:       mreg,
	}
	d, _, err := core.BootstrapInproc(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const calmOps = 400
	var flooding atomic.Bool
	flooding.Store(true)
	var wg, started sync.WaitGroup
	// The noisy tenant floods from 8 goroutines with no pacing —
	// roughly an order of magnitude more offered load than its bucket
	// refills. Errors (ErrUnavailable after busy retries exhaust) are
	// the throttle working, not failures.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		started.Add(1)
		go func(g int) {
			defer wg.Done()
			nc, err := d.NewClient()
			if err != nil {
				t.Error(err)
				started.Done()
				return
			}
			noisy := tenant.NewClient(nc, tenant.Tenant{Name: "noisy"})
			for i := 0; flooding.Load(); i++ {
				noisy.Insert(fmt.Sprintf("flood-%d-%d", g, i), []byte("x")) //nolint:errcheck
				if i == 0 {
					started.Done()
				}
			}
		}(g)
	}
	// Measure only while the flood is actually flowing; otherwise the
	// in-process deployment finishes the calm ops before the noisy
	// tenant has even drained its burst.
	started.Wait()

	cc, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	calm := tenant.NewClient(cc, tenant.Tenant{Name: "calm"})
	lats := make([]time.Duration, 0, calmOps)
	for i := 0; i < calmOps; i++ {
		key := fmt.Sprintf("calm-%d", i)
		start := time.Now()
		if err := calm.Insert(key, []byte("v")); err != nil {
			t.Fatalf("calm tenant op %d failed under noisy load: %v", i, err)
		}
		if _, err := calm.Lookup(key); err != nil {
			t.Fatalf("calm tenant read %d failed under noisy load: %v", i, err)
		}
		lats = append(lats, time.Since(start))
	}
	flooding.Store(false)
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	if p99 > 100*time.Millisecond {
		t.Errorf("calm tenant p99 = %v under noisy flood, want <= 100ms", p99)
	}
	if got := adm.ShedCount("noisy"); got < 1 {
		t.Errorf("noisy tenant was never shed (ShedCount = %d)", got)
	}
	if got := adm.ShedCount("calm"); got != 0 {
		t.Errorf("calm tenant was shed %d times; its quota is ample", got)
	}
	if got := mreg.Counter("zht.tenant.shed").Value(); got < 1 {
		t.Errorf("zht.tenant.shed = %d, want >= 1", got)
	}
}
