package tenant

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"zht/internal/metrics"
)

func TestNamespaceCodec(t *testing.T) {
	cases := []struct{ name, key string }{
		{"", "plain-key"},
		{"fusionfs", "inode/42"},
		{"matrix", ""},
		{"a", "k"},
	}
	for _, c := range cases {
		p := Prefix(c.name, c.key)
		gotName, gotKey := Split(p)
		if gotName != c.name || gotKey != c.key {
			t.Errorf("Split(Prefix(%q,%q)) = (%q,%q)", c.name, c.key, gotName, gotKey)
		}
		if c.name == "" && p != c.key {
			t.Errorf("default tenant must keep keys unchanged; got %q", p)
		}
	}
	// Keys without the marker, or malformed, fall to the default tenant.
	for _, raw := range []string{"bare", "", Sep + "noclose"} {
		if name, key := Split(raw); name != "" || key != raw {
			t.Errorf("Split(%q) = (%q,%q), want default tenant + input", raw, name, key)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		Split(Sep + "fusionfs" + Sep + "inode/42")
	}); allocs != 0 {
		t.Errorf("Split allocates %.1f times per run, want 0", allocs)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	exp := time.Now().Add(time.Hour).Truncate(time.Millisecond)
	env := Wrap([]byte("payload"), 0xdead, exp)
	val, flags, gotExp, wrapped := Unwrap(env)
	if !wrapped || !bytes.Equal(val, []byte("payload")) || flags != 0xdead || !gotExp.Equal(exp) {
		t.Fatalf("Unwrap = (%q, %#x, %v, %v)", val, flags, gotExp, wrapped)
	}
	if Expired(env) {
		t.Error("future expiry reported expired")
	}
	if !ExpiredAt(env, exp.UnixMilli()) {
		t.Error("expiry instant not reported expired")
	}
	// No expiry: never expires.
	forever := Wrap([]byte("v"), 7, time.Time{})
	if Expired(forever) || ExpiredAt(forever, 1<<62) {
		t.Error("zero-expiry envelope reported expired")
	}
	// Plain values pass through untouched and never expire.
	plain := []byte("just-bytes")
	val, _, _, wrapped = Unwrap(plain)
	if wrapped || !bytes.Equal(val, plain) {
		t.Errorf("plain value mangled: (%q, wrapped=%v)", val, wrapped)
	}
	if Expired(plain) || Expired(nil) || Expired([]byte{0x1d}) {
		t.Error("plain/short value reported expired")
	}
}

func TestTokenBucketShedsAndRefills(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Tenant{Name: "m", Rate: 10, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	mreg := metrics.NewRegistry()
	a := NewAdmission(reg, AdmissionOptions{Metrics: mreg})
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	key := Prefix("m", "k")
	for i := 0; i < 2; i++ {
		rel, _, ok := a.Admit(key, 1)
		if !ok {
			t.Fatalf("burst request %d shed", i)
		}
		rel()
	}
	_, retry, ok := a.Admit(key, 1)
	if ok {
		t.Fatal("over-burst request admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want ~1/Rate", retry)
	}
	// Advance past the hint: the bucket must have refilled.
	clock = clock.Add(retry + time.Millisecond)
	rel, _, ok := a.Admit(key, 1)
	if !ok {
		t.Fatal("request shed after refill window")
	}
	rel()
	if got := mreg.Counter("zht.tenant.shed").Value(); got != 1 {
		t.Errorf("zht.tenant.shed = %d, want 1", got)
	}
	if got := mreg.Counter("zht.tenant.admitted").Value(); got != 3 {
		t.Errorf("zht.tenant.admitted = %d, want 3", got)
	}
	if got := a.ShedCount("m"); got != 1 {
		t.Errorf("ShedCount(m) = %d, want 1", got)
	}
	// Unregistered tenants (and the default namespace) are unlimited.
	for i := 0; i < 100; i++ {
		rel, _, ok := a.Admit("unscoped-key", 1)
		if !ok {
			t.Fatal("default tenant shed")
		}
		rel()
	}
}

func TestWeightedSharesUnderPressure(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Tenant{Name: "big", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Tenant{Name: "small", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	a := NewAdmission(reg, AdmissionOptions{PressureInflight: 4})

	// Below the pressure threshold weights are dormant.
	rel, _, ok := a.Admit(Prefix("small", "k"), 1)
	if !ok {
		t.Fatal("shed below pressure threshold")
	}
	defer rel()

	// Fill to the threshold with "small" traffic (held inflight).
	var rels []func()
	for i := 0; i < 4; i++ {
		r, _, ok := a.Admit(Prefix("small", "k"), 1)
		if !ok {
			break
		}
		rels = append(rels, r)
	}
	// small now holds well over weight 1/(3+1) of inflight: shed.
	if _, retry, ok := a.Admit(Prefix("small", "k"), 1); ok {
		t.Fatal("over-share tenant admitted under pressure")
	} else if retry <= 0 {
		t.Fatal("weight shed carried no retry hint")
	}
	// big is under its share: admitted even under pressure.
	r, _, ok := a.Admit(Prefix("big", "k"), 1)
	if !ok {
		t.Fatal("under-share tenant shed under pressure")
	}
	r()
	for _, r := range rels {
		r()
	}
	// Pressure released: small admits again.
	r, _, ok = a.Admit(Prefix("small", "k"), 1)
	if !ok {
		t.Fatal("tenant still shed after pressure released")
	}
	r()
}

func TestWeightShedRefundsToken(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Tenant{Name: "a", Rate: 10, Burst: 2, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Tenant{Name: "b", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	a := NewAdmission(reg, AdmissionOptions{PressureInflight: 2})
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	// Fill the gate to the pressure threshold with "b" traffic.
	var rels []func()
	for i := 0; i < 2; i++ {
		r, _, ok := a.Admit(Prefix("b", "k"), 1)
		if !ok {
			t.Fatalf("below-pressure request %d shed", i)
		}
		rels = append(rels, r)
	}
	// Under pressure "a" (weight 1 of 4) is over its share: shed.
	if _, _, ok := a.Admit(Prefix("a", "k"), 1); ok {
		t.Fatal("over-share tenant admitted under pressure")
	}
	for _, r := range rels {
		r()
	}
	// The weight shed must not also have burned a bucket token
	// (regression: one rejected request used to spend both quotas):
	// the full burst of 2 is still available at the same instant.
	for i := 0; i < 2; i++ {
		r, _, ok := a.Admit(Prefix("a", "k"), 1)
		if !ok {
			t.Fatalf("burst token %d missing after weight shed (token not refunded)", i)
		}
		r()
	}
	if _, _, ok := a.Admit(Prefix("a", "k"), 1); ok {
		t.Fatal("over-burst request admitted")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Tenant{Name: "bad" + Sep}); !errors.Is(err, ErrBadName) {
		t.Errorf("reserved separator in name accepted: %v", err)
	}
	if err := reg.Register(Tenant{Name: "t", Rate: 5}); err != nil {
		t.Fatal(err)
	}
	got, ok := reg.Get("t")
	if !ok || got.Burst != 5 || got.Weight != 1 {
		t.Errorf("defaults not applied: %+v ok=%v", got, ok)
	}
	// Re-registration replaces, keeping total weight consistent.
	if err := reg.Register(Tenant{Name: "t", Rate: 5, Weight: 4}); err != nil {
		t.Fatal(err)
	}
	if _, tw := reg.state("t"); tw != 4 {
		t.Errorf("totalWeight after replace = %d, want 4", tw)
	}
	// A nil registry admits everything.
	var a *Admission
	if _, _, ok := a.Admit("k", 1); !ok {
		t.Error("nil Admission shed a request")
	}
}

// fakeKV records the raw keys/values crossing the tenancy boundary.
type fakeKV struct {
	store map[string][]byte
}

func newFakeKV() *fakeKV { return &fakeKV{store: make(map[string][]byte)} }

var errFakeNotFound = errors.New("fake: not found")

func (f *fakeKV) Insert(k string, v []byte) error {
	f.store[k] = append([]byte(nil), v...)
	return nil
}

func (f *fakeKV) InsertIfAbsent(k string, v []byte) error {
	if _, ok := f.store[k]; ok {
		return errors.New("fake: exists")
	}
	return f.Insert(k, v)
}

func (f *fakeKV) Lookup(k string) ([]byte, error) {
	v, ok := f.store[k]
	if !ok {
		return nil, errFakeNotFound
	}
	return v, nil
}

func (f *fakeKV) Remove(k string) error { delete(f.store, k); return nil }

func (f *fakeKV) Append(k string, v []byte) error {
	f.store[k] = append(f.store[k], v...)
	return nil
}

func (f *fakeKV) Cas(k string, old, new []byte) ([]byte, error) {
	cur := f.store[k]
	if !bytes.Equal(cur, old) {
		return cur, errors.New("fake: cas mismatch")
	}
	f.store[k] = append([]byte(nil), new...)
	return nil, nil
}

func TestScopedClient(t *testing.T) {
	kv := newFakeKV()
	c := NewClient(kv, Tenant{Name: "fs", MaxKeyLen: 8, MaxValueLen: 16})

	if err := c.Insert("inode", []byte("meta")); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.store["inode"]; ok {
		t.Fatal("key stored un-namespaced")
	}
	if _, ok := kv.store[Prefix("fs", "inode")]; !ok {
		t.Fatal("namespaced key missing from store")
	}
	v, err := c.Lookup("inode")
	if err != nil || string(v) != "meta" {
		t.Fatalf("Lookup = %q, %v", v, err)
	}
	if err := c.Insert("way-too-long-key", []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized key accepted: %v", err)
	}
	if err := c.Insert("k", bytes.Repeat([]byte("x"), 17)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value accepted: %v", err)
	}
	if err := c.Append("inode", []byte("+more")); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Lookup("inode"); string(v) != "meta+more" {
		t.Errorf("append result %q", v)
	}
	if err := c.Remove("inode"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("inode"); !errors.Is(err, errFakeNotFound) {
		t.Errorf("lookup after remove: %v", err)
	}

	// A TTL tenant wraps on write, unwraps on read, and rejects the
	// envelope-incompatible operations.
	ttl := NewClient(kv, Tenant{Name: "cache", DefaultTTL: time.Hour})
	if err := ttl.Insert("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	raw := kv.store[Prefix("cache", "k")]
	if _, _, _, wrapped := Unwrap(raw); !wrapped {
		t.Fatal("TTL tenant stored a bare value")
	}
	if Expired(raw) {
		t.Fatal("fresh TTL value already expired")
	}
	if v, err := ttl.Lookup("k"); err != nil || string(v) != "v" {
		t.Fatalf("TTL Lookup = %q, %v", v, err)
	}
	if err := ttl.Append("k", []byte("x")); !errors.Is(err, ErrUnsupported) {
		t.Errorf("TTL append: %v", err)
	}
	if _, err := ttl.Cas("k", []byte("v"), []byte("w")); !errors.Is(err, ErrUnsupported) {
		t.Errorf("TTL cas: %v", err)
	}
}
