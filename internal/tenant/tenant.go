// Package tenant is ZHT's multi-tenancy layer: keyspace namespaces,
// per-tenant admission quotas, and per-tenant TTL policy for
// cache-shaped workloads.
//
// The paper positions ZHT as shared infrastructure — FusionFS
// metadata, IStore, and MATRIX all ride one table (§V) — but the core
// treats every key and every request identically, so one noisy client
// system can saturate the single bounded-inflight gate and starve the
// rest. This package makes the sharing explicit while leaving the
// routing/replication/repair core untouched:
//
//   - Namespaces: a tenant's keys are transparently prefixed below
//     the client API (Prefix/Split), so two tenants' identical user
//     keys land on different ring keys and cannot collide. Routing
//     hashes the prefixed key like any other — zero hops, no new
//     metadata.
//   - Admission: per-tenant token-bucket rate limits plus weighted
//     inflight shares, layered on the existing transport admission
//     gate through core.Config.Admission. Over-quota requests are
//     shed with wire.StatusBusy + RetryAfter, so the client's
//     existing backoff/breaker machinery handles them for free.
//   - TTL: cache-shaped tenants stamp an expiry into the stored value
//     envelope (see envelope.go). Reads treat an expired envelope as
//     absent (lazy expiry, enforced in internal/core's apply path)
//     and a background reaper riding the anti-entropy tick deletes
//     expired pairs so replicas converge on expiry.
//
// The import direction is deliberate: this package depends only on
// internal/metrics, and internal/core depends on it (for the envelope
// expiry check and the reaper). The Admission type implements core's
// AdmissionHook interface structurally, without naming it.
package tenant

import (
	"errors"
	"strings"
	"sync"
	"time"

	"zht/internal/metrics"
)

// Sep frames the tenant name inside a namespaced key:
// Sep + name + Sep + userKey. The byte (ASCII group separator, 0x1d)
// is reserved — user keys and tenant names must not contain it, and a
// key that does not START with it belongs to the default tenant "".
const Sep = "\x1d"

// Errors returned by the tenancy layer.
var (
	// ErrTooLarge reports a key or value exceeding the tenant's
	// configured size limits.
	ErrTooLarge = errors.New("tenant: key or value exceeds tenant size limit")
	// ErrBadName reports a tenant name containing the reserved
	// separator byte.
	ErrBadName = errors.New("tenant: name contains reserved separator")
)

// Prefix namespaces a user key into tenant name's keyspace. The
// default tenant "" owns the un-prefixed keyspace, so pre-tenancy
// deployments keep their keys unchanged.
func Prefix(name, key string) string {
	if name == "" {
		return key
	}
	return Sep + name + Sep + key
}

// Split recovers (tenant name, user key) from a possibly-namespaced
// key. Keys without the leading separator belong to the default
// tenant "". Split never allocates: both results alias the input.
func Split(key string) (name, userKey string) {
	if len(key) == 0 || key[0] != Sep[0] {
		return "", key
	}
	rest := key[1:]
	i := strings.IndexByte(rest, Sep[0])
	if i < 0 {
		return "", key // malformed; treat as default tenant
	}
	return rest[:i], rest[i+1:]
}

// Tenant is one tenant's declared policy. The zero value (and the
// default tenant "") is unlimited: no quota, no weight pressure, no
// TTL, no size limits.
type Tenant struct {
	// Name identifies the tenant; it is the namespace prefix.
	Name string
	// Rate is the tenant's token-bucket refill rate in requests per
	// second; <= 0 means unlimited (no bucket).
	Rate float64
	// Burst is the bucket capacity; <= 0 defaults to max(1, Rate).
	Burst float64
	// Weight is the tenant's share of admission capacity under
	// pressure (see Admission); <= 0 means 1.
	Weight int
	// DefaultTTL, when positive, marks the tenant cache-shaped: the
	// tenant client (and the memcached gateway) stamp every write's
	// envelope with now+DefaultTTL unless the caller chose another
	// expiry.
	DefaultTTL time.Duration
	// MaxKeyLen / MaxValueLen bound this tenant's keys and values
	// (user key, before namespacing); 0 = unlimited. Enforced by the
	// tenant client and the gateway, not by core — core-wide limits
	// live in core.Config.
	MaxKeyLen   int
	MaxValueLen int
}

// tenantState is a registered tenant plus its runtime admission
// state.
type tenantState struct {
	cfg Tenant

	mu     sync.Mutex // guards the token bucket
	tokens float64
	last   time.Time

	imu      sync.Mutex // guards inflight (cold path only under pressure)
	inflight int
}

// Registry holds the deployment's declared tenants. A nil *Registry
// is valid and knows only the unlimited default tenant.
type Registry struct {
	mu          sync.RWMutex
	tenants     map[string]*tenantState
	totalWeight int
}

// NewRegistry creates an empty tenant registry. The default tenant ""
// (unlimited) is always implicitly present.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*tenantState)}
}

// Register declares (or replaces) a tenant's policy.
func (r *Registry) Register(t Tenant) error {
	if strings.Contains(t.Name, Sep) {
		return ErrBadName
	}
	if t.Burst <= 0 {
		t.Burst = t.Rate
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	if t.Weight <= 0 {
		t.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.tenants[t.Name]; ok {
		r.totalWeight -= old.cfg.Weight
	}
	r.tenants[t.Name] = &tenantState{cfg: t, tokens: t.Burst}
	r.totalWeight += t.Weight
	return nil
}

// Get returns the declared policy for name and whether it was
// registered.
func (r *Registry) Get(name string) (Tenant, bool) {
	if r == nil {
		return Tenant{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.tenants[name]
	if !ok {
		return Tenant{}, false
	}
	return st.cfg, true
}

// Names returns the registered tenant names (unsorted).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		out = append(out, n)
	}
	return out
}

// state resolves the runtime state for a tenant name; unregistered
// names (including the default tenant) return nil = unlimited.
func (r *Registry) state(name string) (*tenantState, int) {
	if r == nil {
		return nil, 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[name], r.totalWeight
}

// Metrics bundles the tenancy layer's registry-shared instruments;
// see OBSERVABILITY.md "Tenancy".
type Metrics struct {
	// Admitted / Shed count admission verdicts across all tenants.
	Admitted *metrics.Counter // zht.tenant.admitted
	Shed     *metrics.Counter // zht.tenant.shed
	// Inflight is the requests currently inside the admission hook.
	Inflight *metrics.Gauge // zht.tenant.inflight
}

// NewMetrics resolves the tenancy instruments (nil registry = no-ops).
func NewMetrics(reg *metrics.Registry) Metrics {
	return Metrics{
		Admitted: reg.Counter("zht.tenant.admitted"),
		Shed:     reg.Counter("zht.tenant.shed"),
		Inflight: reg.Gauge("zht.tenant.inflight"),
	}
}
