package repair

import (
	"sync"

	"zht/internal/storage"
)

// Tracked wraps a partition store and maintains its Merkle digest on
// every mutation, so a digest snapshot is always available without an
// O(n) scan. It implements storage.KV, which is what makes the digest
// hook sit on the storage seam: every write path through the instance
// — primary applies, replica applies, migration imports — updates the
// digest for free.
//
// Mutations of keys in the same leaf are serialized by a per-leaf
// lock: the read-modify (fetch the old value, apply, toggle old out
// and new in) must be atomic per pair or a racing pair of writers
// could toggle the same old value twice and corrupt the leaf forever.
// Keys in different leaves proceed in parallel, preserving the
// concurrency the sharded store underneath provides.
type Tracked struct {
	inner storage.KV
	d     *Digest
	locks [Leaves]sync.Mutex
}

// Track wraps inner, rebuilding the digest from the store's current
// contents via ForEach (the "rebuilt on open" path: after a restart
// the incremental state is gone, so it is recomputed once).
func Track(inner storage.KV) (*Tracked, error) {
	t := &Tracked{inner: inner, d: NewDigest()}
	if err := inner.ForEach(func(key string, val []byte) error {
		t.d.Toggle(key, val)
		return nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Digest returns the maintained digest.
func (t *Tracked) Digest() *Digest { return t.d }

// oldPool recycles the scratch buffers mutations read the pre-image
// into: every overwrite must toggle the old pair out of the digest,
// and fetching it through Get would copy-allocate per write.
// Digest.Toggle hashes the value without retaining it, so the scratch
// is dead as soon as the toggles are done. Buffers that ballooned
// serving a large value are dropped rather than pooled.
var oldPool = sync.Pool{New: func() any { return new([]byte) }}

const maxOldScratch = 64 << 10

func putOld(sp *[]byte, old []byte) {
	if cap(old) > maxOldScratch {
		*sp = nil
	} else {
		*sp = old[:0]
	}
	oldPool.Put(sp)
}

// Put stores val under key, replacing any existing value.
func (t *Tracked) Put(key string, val []byte) error {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, had, err := t.GetAppend((*sp)[:0], key)
	defer putOld(sp, old)
	if err != nil {
		return err
	}
	if err := t.inner.Put(key, val); err != nil {
		return err
	}
	if had {
		t.d.Toggle(key, old)
	}
	t.d.Toggle(key, val)
	return nil
}

// PutIfAbsent stores val only when key is not present.
func (t *Tracked) PutIfAbsent(key string, val []byte) (bool, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	ok, err := t.inner.PutIfAbsent(key, val)
	if err == nil && ok {
		t.d.Toggle(key, val)
	}
	return ok, err
}

// Get returns a copy of the value stored under key.
func (t *Tracked) Get(key string) ([]byte, bool, error) { return t.inner.Get(key) }

// GetAppend appends key's value to dst, preserving the wrapped
// store's storage.ScratchGetter upgrade: reads do not touch the
// digest, so the wrapper would otherwise only hide the copy-free
// path. Falls back to Get when the inner store lacks it.
func (t *Tracked) GetAppend(dst []byte, key string) ([]byte, bool, error) {
	if sg, ok := t.inner.(storage.ScratchGetter); ok {
		return sg.GetAppend(dst, key)
	}
	val, found, err := t.inner.Get(key)
	if err != nil || !found {
		return dst, found, err
	}
	return append(dst, val...), true, nil
}

// Remove deletes key, reporting whether it was present.
func (t *Tracked) Remove(key string) (bool, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, had, err := t.GetAppend((*sp)[:0], key)
	defer putOld(sp, old)
	if err != nil {
		return false, err
	}
	ok, err := t.inner.Remove(key)
	if err == nil && ok && had {
		t.d.Toggle(key, old)
	}
	return ok, err
}

// Append concatenates val to the value under key, creating the key
// when absent.
func (t *Tracked) Append(key string, val []byte) error {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, had, err := t.GetAppend((*sp)[:0], key)
	if err != nil {
		putOld(sp, old)
		return err
	}
	if err := t.inner.Append(key, val); err != nil {
		putOld(sp, old)
		return err
	}
	if had {
		t.d.Toggle(key, old)
	}
	// The new pair's hash needs the concatenated value contiguously;
	// build it in the scratch (which already holds old) and recycle.
	next := append(old, val...)
	t.d.Toggle(key, next)
	putOld(sp, next)
	return nil
}

// Cas atomically replaces the value under key when it equals oldVal
// (nil oldVal = "expect absent").
func (t *Tracked) Cas(key string, oldVal, newVal []byte) (bool, []byte, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	swapped, cur, err := t.inner.Cas(key, oldVal, newVal)
	if err == nil && swapped {
		if oldVal != nil {
			t.d.Toggle(key, oldVal)
		}
		t.d.Toggle(key, newVal)
	}
	return swapped, cur, err
}

// Len reports the number of keys stored.
func (t *Tracked) Len() int { return t.inner.Len() }

// ForEach calls fn for every pair; fn must not mutate the store.
func (t *Tracked) ForEach(fn func(key string, val []byte) error) error {
	return t.inner.ForEach(fn)
}

// Sync flushes buffered state and fsyncs backing storage.
func (t *Tracked) Sync() error { return t.inner.Sync() }

// Stats returns a snapshot of store statistics.
func (t *Tracked) Stats() storage.Stats { return t.inner.Stats() }

// Close flushes durable state and closes the store.
func (t *Tracked) Close() error { return t.inner.Close() }
