package repair

import (
	"sync"

	"zht/internal/storage"
)

// Tracked wraps a partition store and maintains its Merkle digest on
// every mutation, so a digest snapshot is always available without an
// O(n) scan. It implements storage.KV, which is what makes the digest
// hook sit on the storage seam: every write path through the instance
// — primary applies, replica applies, migration imports — updates the
// digest for free. When the wrapped store persists version stamps
// (storage.VersionedKV), Tracked passes the versioned operations
// through and folds each pair's stamp into its digest hash
// (PairHashV), so replicas holding the same bytes under different
// versions still diff as divergent; wrapping an unversioned store
// degrades to version-0 hashing, today's digests.
//
// Mutations of keys in the same leaf are serialized by a per-leaf
// lock: the read-modify (fetch the old value, apply, toggle old out
// and new in) must be atomic per pair or a racing pair of writers
// could toggle the same old value twice and corrupt the leaf forever.
// Keys in different leaves proceed in parallel, preserving the
// concurrency the sharded store underneath provides.
type Tracked struct {
	inner storage.KV
	vkv   storage.VersionedKV // non-nil when inner persists versions
	d     *Digest
	locks [Leaves]sync.Mutex
}

// Track wraps inner, rebuilding the digest from the store's current
// contents (the "rebuilt on open" path: after a restart the
// incremental state is gone, so it is recomputed once).
func Track(inner storage.KV) (*Tracked, error) {
	t := &Tracked{inner: inner, d: NewDigest()}
	t.vkv, _ = inner.(storage.VersionedKV)
	var err error
	if t.vkv != nil {
		err = t.vkv.ForEachV(func(key string, val []byte, ver uint64) error {
			t.d.ToggleV(key, val, ver)
			return nil
		})
	} else {
		err = inner.ForEach(func(key string, val []byte) error {
			t.d.Toggle(key, val)
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Digest returns the maintained digest.
func (t *Tracked) Digest() *Digest { return t.d }

// Versioned reports whether the wrapped store persists version
// stamps; consumers that need LWW semantics check this before
// trusting the versioned methods with conflict resolution.
func (t *Tracked) Versioned() bool { return t.vkv != nil }

// oldPool recycles the scratch buffers mutations read the pre-image
// into: every overwrite must toggle the old pair out of the digest,
// and fetching it through Get would copy-allocate per write.
// Digest.Toggle hashes the value without retaining it, so the scratch
// is dead as soon as the toggles are done. Buffers that ballooned
// serving a large value are dropped rather than pooled.
var oldPool = sync.Pool{New: func() any { return new([]byte) }}

const maxOldScratch = 64 << 10

func putOld(sp *[]byte, old []byte) {
	if cap(old) > maxOldScratch {
		*sp = nil
	} else {
		*sp = old[:0]
	}
	oldPool.Put(sp)
}

// oldPair reads key's current value (into dst) and version: the
// pre-image every mutation must toggle out of the digest. Version is
// 0 when the wrapped store is unversioned.
func (t *Tracked) oldPair(dst []byte, key string) ([]byte, uint64, bool, error) {
	if t.vkv != nil {
		return t.vkv.GetAppendV(dst, key)
	}
	val, found, err := t.GetAppend(dst, key)
	return val, 0, found, err
}

// Put stores val under key, replacing any existing value. The stored
// pair becomes unversioned (version 0), matching the engine's plain
// Put.
func (t *Tracked) Put(key string, val []byte) error {
	return t.PutV(key, val, 0)
}

// PutV stores val under key with the given version stamp,
// unconditionally (storage.VersionedKV). On an unversioned inner
// store the stamp is dropped.
func (t *Tracked) PutV(key string, val []byte, ver uint64) error {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, oldVer, had, err := t.oldPair((*sp)[:0], key)
	defer putOld(sp, old)
	if err != nil {
		return err
	}
	if t.vkv != nil {
		err = t.vkv.PutV(key, val, ver)
	} else {
		ver = 0
		err = t.inner.Put(key, val)
	}
	if err != nil {
		return err
	}
	if had {
		t.d.ToggleV(key, old, oldVer)
	}
	t.d.ToggleV(key, val, ver)
	return nil
}

// PutLWW stores (val, ver) only when ver is strictly newer than the
// stored version (storage.VersionedKV); it reports whether the store
// was modified. On an unversioned inner store every stored pair
// counts as version 0.
func (t *Tracked) PutLWW(key string, val []byte, ver uint64) (bool, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, oldVer, had, err := t.oldPair((*sp)[:0], key)
	defer putOld(sp, old)
	if err != nil {
		return false, err
	}
	var applied bool
	if t.vkv != nil {
		applied, err = t.vkv.PutLWW(key, val, ver)
	} else {
		if had && oldVer >= ver {
			return false, nil
		}
		ver = 0
		applied, err = true, t.inner.Put(key, val)
	}
	if err != nil || !applied {
		return false, err
	}
	if had {
		t.d.ToggleV(key, old, oldVer)
	}
	t.d.ToggleV(key, val, ver)
	return true, nil
}

// RemoveLWW deletes key only when ver is strictly newer than the
// stored version (storage.VersionedKV), reporting whether the key was
// removed.
func (t *Tracked) RemoveLWW(key string, ver uint64) (bool, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, oldVer, had, err := t.oldPair((*sp)[:0], key)
	defer putOld(sp, old)
	if err != nil {
		return false, err
	}
	if !had {
		return false, nil
	}
	var removed bool
	if t.vkv != nil {
		removed, err = t.vkv.RemoveLWW(key, ver)
	} else {
		if oldVer >= ver {
			return false, nil
		}
		removed, err = t.inner.Remove(key)
	}
	if err != nil || !removed {
		return false, err
	}
	t.d.ToggleV(key, old, oldVer)
	return true, nil
}

// PutIfAbsent stores val only when key is not present.
func (t *Tracked) PutIfAbsent(key string, val []byte) (bool, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	ok, err := t.inner.PutIfAbsent(key, val)
	if err == nil && ok {
		t.d.Toggle(key, val)
	}
	return ok, err
}

// Get returns a copy of the value stored under key.
func (t *Tracked) Get(key string) ([]byte, bool, error) { return t.inner.Get(key) }

// GetV is Get plus the stored version stamp (storage.VersionedKV);
// always 0 over an unversioned inner store.
func (t *Tracked) GetV(key string) ([]byte, uint64, bool, error) {
	if t.vkv != nil {
		return t.vkv.GetV(key)
	}
	val, found, err := t.inner.Get(key)
	return val, 0, found, err
}

// GetAppend appends key's value to dst, preserving the wrapped
// store's storage.ScratchGetter upgrade: reads do not touch the
// digest, so the wrapper would otherwise only hide the copy-free
// path. Falls back to Get when the inner store lacks it.
func (t *Tracked) GetAppend(dst []byte, key string) ([]byte, bool, error) {
	if sg, ok := t.inner.(storage.ScratchGetter); ok {
		return sg.GetAppend(dst, key)
	}
	val, found, err := t.inner.Get(key)
	if err != nil || !found {
		return dst, found, err
	}
	return append(dst, val...), true, nil
}

// GetAppendV is GetAppend plus the stored version stamp
// (storage.VersionedKV).
func (t *Tracked) GetAppendV(dst []byte, key string) ([]byte, uint64, bool, error) {
	if t.vkv != nil {
		return t.vkv.GetAppendV(dst, key)
	}
	val, found, err := t.GetAppend(dst, key)
	return val, 0, found, err
}

// Remove deletes key, reporting whether it was present.
func (t *Tracked) Remove(key string) (bool, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, oldVer, had, err := t.oldPair((*sp)[:0], key)
	defer putOld(sp, old)
	if err != nil {
		return false, err
	}
	ok, err := t.inner.Remove(key)
	if err == nil && ok && had {
		t.d.ToggleV(key, old, oldVer)
	}
	return ok, err
}

// Append concatenates val to the value under key, creating the key
// when absent. The pair keeps its stored version (appending extends
// a value, it does not supersede the write that stamped it).
func (t *Tracked) Append(key string, val []byte) error {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	sp := oldPool.Get().(*[]byte)
	old, oldVer, had, err := t.oldPair((*sp)[:0], key)
	if err != nil {
		putOld(sp, old)
		return err
	}
	if err := t.inner.Append(key, val); err != nil {
		putOld(sp, old)
		return err
	}
	if had {
		t.d.ToggleV(key, old, oldVer)
	} else {
		oldVer = 0
	}
	// The new pair's hash needs the concatenated value contiguously;
	// build it in the scratch (which already holds old) and recycle.
	next := append(old, val...)
	t.d.ToggleV(key, next, oldVer)
	putOld(sp, next)
	return nil
}

// Cas atomically replaces the value under key when it equals oldVal
// (nil oldVal = "expect absent"). The stored version is preserved
// across the swap (matching the engine), so the digest toggles use
// it for both the old and the new pair.
func (t *Tracked) Cas(key string, oldVal, newVal []byte) (bool, []byte, error) {
	l := &t.locks[LeafOf(key)]
	l.Lock()
	defer l.Unlock()
	var oldVer uint64
	if t.vkv != nil {
		_, v, _, err := t.vkv.GetV(key)
		if err != nil {
			return false, nil, err
		}
		oldVer = v
	}
	swapped, cur, err := t.inner.Cas(key, oldVal, newVal)
	if err == nil && swapped {
		if oldVal != nil {
			t.d.ToggleV(key, oldVal, oldVer)
		}
		t.d.ToggleV(key, newVal, oldVer)
	}
	return swapped, cur, err
}

// Len reports the number of keys stored.
func (t *Tracked) Len() int { return t.inner.Len() }

// ForEach calls fn for every pair; fn must not mutate the store.
func (t *Tracked) ForEach(fn func(key string, val []byte) error) error {
	return t.inner.ForEach(fn)
}

// ForEachV calls fn for every pair with its version
// (storage.VersionedKV); versions are 0 over an unversioned inner
// store.
func (t *Tracked) ForEachV(fn func(key string, val []byte, ver uint64) error) error {
	if t.vkv != nil {
		return t.vkv.ForEachV(fn)
	}
	return t.inner.ForEach(func(key string, val []byte) error {
		return fn(key, val, 0)
	})
}

// Sync flushes buffered state and fsyncs backing storage.
func (t *Tracked) Sync() error { return t.inner.Sync() }

// Stats returns a snapshot of store statistics.
func (t *Tracked) Stats() storage.Stats { return t.inner.Stats() }

// Close flushes durable state and closes the store.
func (t *Tracked) Close() error { return t.inner.Close() }
