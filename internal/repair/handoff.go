package repair

import (
	"sync"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// HandoffOptions configures a Handoff queue. All metric fields are
// nil-safe (nil counters no-op).
type HandoffOptions struct {
	// Cap bounds each destination's queue; at the bound new legs are
	// dropped (and counted) rather than evicting older ones — the
	// anti-entropy loop is the backstop for what overflows.
	Cap int
	// Base and Max bound the exponential replay backoff per
	// destination: the delay doubles from Base after each failed
	// attempt and caps at Max, resetting on success.
	Base, Max time.Duration
	// Send delivers one queued request; a nil error consumes the leg,
	// an error leaves it queued for the next backoff attempt.
	Send func(addr string, req *wire.Request) error
	// Queued, Replayed, Dropped count legs entering the queue, legs
	// successfully re-sent, and legs rejected by the Cap bound.
	Queued, Replayed, Dropped *metrics.Counter
}

// Handoff is the hinted-handoff buffer: per-destination FIFOs of
// replication legs that could not be delivered, each drained by its
// own replay goroutine with exponential backoff. Order within a
// destination is preserved — the same guarantee the async replication
// FIFO gives — so replayed legs cannot overtake each other.
//
// A nil *Handoff (handoff disabled) rejects every Enqueue.
type Handoff struct {
	opts HandoffOptions

	mu     sync.Mutex
	queues map[string][]*wire.Request
	active map[string]bool
	closed chan struct{}
	wg     sync.WaitGroup
}

// NewHandoff builds a handoff buffer; Cap must be positive.
func NewHandoff(opts HandoffOptions) *Handoff {
	if opts.Base <= 0 {
		opts.Base = 10 * time.Millisecond
	}
	if opts.Max < opts.Base {
		opts.Max = opts.Base
	}
	return &Handoff{
		opts:   opts,
		queues: make(map[string][]*wire.Request),
		active: make(map[string]bool),
		closed: make(chan struct{}),
	}
}

// Enqueue queues one failed leg for addr, reporting false when the
// handoff is nil, closed, or the destination's queue is full. The
// request must be owned by the caller (no aliasing of transport
// buffers).
func (h *Handoff) Enqueue(addr string, req *wire.Request) bool {
	if h == nil {
		return false
	}
	select {
	case <-h.closed:
		return false
	default:
	}
	h.mu.Lock()
	if len(h.queues[addr]) >= h.opts.Cap {
		h.mu.Unlock()
		h.opts.Dropped.Inc()
		return false
	}
	h.queues[addr] = append(h.queues[addr], req)
	start := !h.active[addr]
	if start {
		h.active[addr] = true
		h.wg.Add(1)
	}
	h.mu.Unlock()
	h.opts.Queued.Inc()
	if start {
		go h.drain(addr)
	}
	return true
}

// Pending reports how many legs are queued across all destinations.
func (h *Handoff) Pending() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, q := range h.queues {
		n += len(q)
	}
	return n
}

// drain replays addr's queue in order until it is empty or the
// handoff closes, sleeping the backoff between failed attempts.
func (h *Handoff) drain(addr string) {
	defer h.wg.Done()
	backoff := h.opts.Base
	for {
		h.mu.Lock()
		q := h.queues[addr]
		if len(q) == 0 {
			h.active[addr] = false
			delete(h.queues, addr)
			h.mu.Unlock()
			return
		}
		req := q[0]
		h.mu.Unlock()

		if err := h.opts.Send(addr, req); err != nil {
			select {
			case <-h.closed:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > h.opts.Max {
				backoff = h.opts.Max
			}
			continue
		}
		backoff = h.opts.Base
		h.opts.Replayed.Inc()
		h.mu.Lock()
		h.queues[addr] = h.queues[addr][1:]
		h.mu.Unlock()
		select {
		case <-h.closed:
			return
		default:
		}
	}
}

// Close stops accepting legs and waits for replay goroutines to exit;
// still-queued legs are discarded (the instance is shutting down).
func (h *Handoff) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	select {
	case <-h.closed:
		h.mu.Unlock()
		h.wg.Wait()
		return
	default:
		close(h.closed)
	}
	h.mu.Unlock()
	h.wg.Wait()
}
