package repair

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"zht/internal/novoht"
	"zht/internal/storage"
	"zht/internal/wire"
)

func openMem(t *testing.T) storage.KV {
	t.Helper()
	s, err := novoht.Open(novoht.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The core incrementality property: a digest maintained mutation by
// mutation is bit-identical to one rebuilt from scratch over the
// store's final contents. XOR leaves make this hold regardless of
// mutation order.
func TestDigestIncrementality(t *testing.T) {
	inner := openMem(t)
	tr, err := Track(inner)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(200))
		switch rng.Intn(6) {
		case 0:
			if _, err := tr.Remove(k); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := tr.Append(k, []byte(fmt.Sprintf("+%d", i))); err != nil {
				t.Fatal(err)
			}
		case 2:
			if _, err := tr.PutIfAbsent(k, []byte("first")); err != nil {
				t.Fatal(err)
			}
		case 3:
			cur, ok, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			var old []byte
			if ok {
				old = cur
			}
			if _, _, err := tr.Cas(k, old, []byte(fmt.Sprintf("cas-%d", i))); err != nil {
				t.Fatal(err)
			}
		default:
			if err := tr.Put(k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}

	rebuilt, err := Track(inner)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Digest().Snapshot(), rebuilt.Digest().Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("maintained digest != rebuilt digest\n got %v\nwant %v", got, want)
	}
	if tr.Digest().Root() != rebuilt.Digest().Root() {
		t.Fatal("maintained root != rebuilt root")
	}
}

// Concurrent mutations must keep the digest exact: the per-leaf locks
// serialize each pair's read-modify-toggle.
func TestDigestIncrementalityConcurrent(t *testing.T) {
	inner := openMem(t)
	tr, err := Track(inner)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%03d", rng.Intn(100))
				switch rng.Intn(4) {
				case 0:
					tr.Remove(k)
				case 1:
					tr.Append(k, []byte("x"))
				default:
					tr.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				}
			}
		}(w)
	}
	wg.Wait()

	rebuilt, err := Track(inner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Digest().Snapshot(), rebuilt.Digest().Snapshot()) {
		t.Fatal("digest diverged from store contents under concurrent mutations")
	}
}

func TestDigestDetectsDifference(t *testing.T) {
	a, _ := Track(openMem(t))
	b, _ := Track(openMem(t))
	a.Put("k", []byte("v1"))
	b.Put("k", []byte("v2"))
	diff := DiffLeaves(a.Digest().Snapshot(), b.Digest().Snapshot())
	if len(diff) != 1 || diff[0] != LeafOf("k") {
		t.Fatalf("diff = %v, want exactly leaf %d", diff, LeafOf("k"))
	}
	b.Put("k", []byte("v1"))
	if d := DiffLeaves(a.Digest().Snapshot(), b.Digest().Snapshot()); len(d) != 0 {
		t.Fatalf("equal stores diff = %v", d)
	}
	if a.Digest().Root() != b.Digest().Root() {
		t.Fatal("equal stores, unequal roots")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	leaves := make([]uint64, Leaves)
	for i := range leaves {
		leaves[i] = rand.Uint64()
	}
	got, err := DecodeDigest(EncodeDigest(leaves))
	if err != nil || !reflect.DeepEqual(got, leaves) {
		t.Fatalf("digest round trip: %v %v", got, err)
	}
	if _, err := DecodeDigest([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated digest decoded")
	}

	ls := []int{0, 5, 63}
	gotLS, err := DecodeLeafSet(EncodeLeafSet(ls))
	if err != nil || !reflect.DeepEqual(gotLS, ls) {
		t.Fatalf("leaf set round trip: %v %v", gotLS, err)
	}
	if _, err := DecodeLeafSet(EncodeLeafSet([]int{64})); err == nil {
		t.Fatal("out-of-range leaf decoded")
	}

	pairs := []Pair{{Key: "a", Value: []byte("1")}, {Key: "", Value: nil}, {Key: "c", Value: []byte("xyz")}}
	gotP, err := DecodePairs(EncodePairs(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP) != len(pairs) {
		t.Fatalf("pair count %d != %d", len(gotP), len(pairs))
	}
	for i := range pairs {
		if gotP[i].Key != pairs[i].Key || string(gotP[i].Value) != string(pairs[i].Value) {
			t.Fatalf("pair %d: %+v != %+v", i, gotP[i], pairs[i])
		}
	}
	// Zero pairs still encode non-empty: OpRepairPull uses "Value
	// present" to mean push.
	if enc := EncodePairs(nil); len(enc) == 0 {
		t.Fatal("empty pair set encoded to zero bytes")
	}
	if _, err := DecodePairs([]byte{0xff, 0xff}); err == nil {
		t.Fatal("garbage pairs decoded")
	}
}

func TestHandoffReplaysInOrder(t *testing.T) {
	var mu sync.Mutex
	var delivered []string
	down := true
	h := NewHandoff(HandoffOptions{
		Cap:  16,
		Base: time.Millisecond,
		Max:  4 * time.Millisecond,
		Send: func(addr string, req *wire.Request) error {
			mu.Lock()
			defer mu.Unlock()
			if down {
				return fmt.Errorf("peer %s down", addr)
			}
			delivered = append(delivered, req.Key)
			return nil
		},
	})
	defer h.Close()

	for i := 0; i < 5; i++ {
		if !h.Enqueue("peer1", &wire.Request{Op: wire.OpReplicate, Key: fmt.Sprintf("k%d", i)}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	time.Sleep(10 * time.Millisecond) // several failed attempts
	mu.Lock()
	down = false
	mu.Unlock()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if h.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff never drained; pending=%d", h.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"k0", "k1", "k2", "k3", "k4"}
	if !reflect.DeepEqual(delivered, want) {
		t.Fatalf("delivered %v, want %v (order must be preserved)", delivered, want)
	}
}

func TestHandoffBoundsAndClose(t *testing.T) {
	h := NewHandoff(HandoffOptions{
		Cap:  2,
		Base: time.Millisecond,
		Max:  time.Millisecond,
		Send: func(string, *wire.Request) error { return fmt.Errorf("always down") },
	})
	ok := 0
	for i := 0; i < 5; i++ {
		if h.Enqueue("p", &wire.Request{Key: fmt.Sprintf("k%d", i)}) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d legs with cap 2", ok)
	}
	done := make(chan struct{})
	go func() { h.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung with a permanently failing destination")
	}
	if h.Enqueue("p", &wire.Request{}) {
		t.Fatal("enqueue accepted after Close")
	}
	var nilH *Handoff
	if nilH.Enqueue("p", &wire.Request{}) || nilH.Pending() != 0 {
		t.Fatal("nil handoff must reject everything")
	}
	nilH.Close()
}
