package repair

import (
	"sync"
	"time"

	"zht/internal/metrics"
)

// minThrottleBurst floors the token bucket's burst so tiny rates still
// admit one reasonable-sized leaf transfer without a pathological
// first-chunk stall.
const minThrottleBurst = 64 << 10

// Throttle is a token-bucket byte rate limiter shared by the transfers
// of one migration: data streams while the old owner keeps serving, so
// the cap is what keeps a rebalance from starving foreground traffic.
// A nil *Throttle is valid and admits everything (unlimited).
type Throttle struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
	waited *metrics.Counter // total ns spent throttled
}

// NewThrottle returns a limiter admitting bytesPerSec, or nil
// (unlimited) when bytesPerSec <= 0. waited, when non-nil, accumulates
// nanoseconds spent sleeping in Take.
func NewThrottle(bytesPerSec int, waited *metrics.Counter) *Throttle {
	if bytesPerSec <= 0 {
		return nil
	}
	burst := float64(bytesPerSec) / 4
	if burst < minThrottleBurst {
		burst = minThrottleBurst
	}
	return &Throttle{
		rate:   float64(bytesPerSec),
		burst:  burst,
		tokens: burst,
		waited: waited,
	}
}

// Take debits n bytes, sleeping until the bucket covers the debt. The
// debit is taken immediately (the bucket may go negative), so
// concurrent takers serialize their debt instead of all passing on the
// same tokens.
func (t *Throttle) Take(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	now := time.Now()
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
	t.tokens -= float64(n)
	var wait time.Duration
	if t.tokens < 0 {
		wait = time.Duration(-t.tokens / t.rate * float64(time.Second))
	}
	t.mu.Unlock()
	if wait > 0 {
		t.waited.Add(int64(wait))
		time.Sleep(wait)
	}
}
