package repair

import (
	"testing"
	"time"

	"zht/internal/metrics"
)

func TestThrottleNilUnlimited(t *testing.T) {
	var thr *Throttle
	start := time.Now()
	thr.Take(1 << 30)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("nil throttle slept")
	}
	if NewThrottle(0, nil) != nil || NewThrottle(-1, nil) != nil {
		t.Fatal("non-positive rate must mean unlimited (nil)")
	}
}

func TestThrottleBurstPassesWithoutWait(t *testing.T) {
	thr := NewThrottle(1<<20, nil) // 1 MiB/s → 256 KiB burst floor applies
	start := time.Now()
	thr.Take(32 << 10) // well under the burst
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("take within burst slept")
	}
}

func TestThrottleLimitsRate(t *testing.T) {
	reg := metrics.NewRegistry()
	waited := reg.Counter("test.throttle.waited_ns")
	// 1 MiB/s → 256 KiB burst; taking 320 KiB leaves a 64 KiB debt,
	// which at 1 MiB/s is ~62ms of accumulated sleep.
	thr := NewThrottle(1<<20, waited)
	start := time.Now()
	for i := 0; i < 10; i++ {
		thr.Take(32 << 10) // 320 KiB total vs 256 KiB burst
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Fatalf("10x32KiB at 1MiB/s took %v; throttle not limiting", elapsed)
	}
	if waited.Value() == 0 {
		t.Fatal("waited counter did not accumulate")
	}
}

func TestThrottleRefillsOverTime(t *testing.T) {
	thr := NewThrottle(8<<20, nil) // 8 MiB/s, 2 MiB burst
	thr.Take(2 << 20)              // drain the burst
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	thr.Take(128 << 10) // ~400 KiB refilled in 50ms; no sleep needed
	if time.Since(start) > 30*time.Millisecond {
		t.Fatal("refilled tokens not honored")
	}
}
