// Package repair implements the replica anti-entropy subsystem: the
// machinery that turns ZHT's write-time replication fan-out
// (paper §III.J) into eventual byte-identical replicas even after the
// faults internal/chaos injects.
//
// Three cooperating mechanisms live here (DESIGN.md §9):
//
//   - Partition digests: an incremental Merkle tree over a partition
//     store's contents. Every key hashes into one of Leaves leaf
//     buckets, and each leaf is the XOR of the hashes of the pairs it
//     covers. XOR is commutative and self-inverse, so a mutation
//     updates its leaf in O(1) — toggle out the old pair, toggle in
//     the new one — and the maintained tree is bit-identical to one
//     rebuilt from scratch. Two replicas compare digests leaf by leaf
//     and transfer only divergent leaves' contents.
//   - Hinted handoff: replication legs that fail because the peer is
//     unreachable are queued per destination (bounded, overflow
//     counted) and replayed with backoff once the peer answers again.
//   - Payload codecs for the wire.OpDigest / wire.OpRepairPull
//     messages: digest snapshots, leaf sets, and pair sets.
//
// The package deliberately depends only on internal/storage (the KV
// seam it instruments), internal/wire (the requests handoff replays),
// and internal/metrics; the anti-entropy loop and read-repair policy
// that drive it live in internal/core.
package repair

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Leaves is the number of leaf buckets in a partition digest. Each
// leaf covers 1/Leaves of the key space, so after a fault a replica
// transfers only the divergent fraction instead of the whole
// partition.
const Leaves = 64

// leafBits is log2(Leaves): the top bits of the mixed key hash select
// the leaf, so leaf membership is uniform and value-independent.
const leafBits = 6

// fnv1a64 is the FNV-1a hash over s (dependency-free, stable across
// processes — replicas must compute identical digests).
func fnv1a64(h uint64, s []byte) uint64 {
	for _, b := range s {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// mix64 is the splitmix64 finalizer: FNV alone has weak high bits and
// the leaf index comes from the top of the hash.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// LeafOf returns the digest leaf covering key.
func LeafOf(key string) int {
	return int(mix64(fnv1a64(fnvOffset, []byte(key))) >> (64 - leafBits))
}

// PairHash hashes one key/value pair. The 0xff separator cannot occur
// inside FNV's input-length ambiguity window for UTF-8 keys produced
// by the client API, and even for arbitrary binary keys the key
// length prefix keeps ("ab","c") distinct from ("a","bc").
func PairHash(key string, val []byte) uint64 {
	return PairHashV(key, val, 0)
}

// PairHashV hashes one versioned pair. The version stamp is part of
// the digest so two replicas holding equal bytes under different
// versions still read as divergent (a later LWW compare would resolve
// them differently). Version 0 hashes exactly as the unversioned
// PairHash, so digests over never-versioned stores are unchanged.
func PairHashV(key string, val []byte, ver uint64) uint64 {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(key)))
	h := fnv1a64(fnvOffset, lenBuf[:])
	h = fnv1a64(h, []byte(key))
	h = fnv1a64(h, val)
	if ver > 0 {
		binary.LittleEndian.PutUint64(lenBuf[:], ver)
		h = fnv1a64(h, lenBuf[:])
	}
	return mix64(h)
}

// Digest is one partition's incremental Merkle digest. The zero value
// is not usable; call NewDigest. All methods are safe for concurrent
// use.
type Digest struct {
	mu   sync.RWMutex
	leaf [Leaves]uint64
}

// NewDigest returns the digest of an empty partition.
func NewDigest() *Digest { return &Digest{} }

// Toggle XORs the pair's hash into its leaf: called once to add a
// pair and once more (with the same arguments) to remove it.
func (d *Digest) Toggle(key string, val []byte) {
	d.ToggleV(key, val, 0)
}

// ToggleV is Toggle for a versioned pair: the removal toggle must use
// the same version the pair was added under or the leaf corrupts.
func (d *Digest) ToggleV(key string, val []byte, ver uint64) {
	h := PairHashV(key, val, ver)
	l := LeafOf(key)
	d.mu.Lock()
	d.leaf[l] ^= h
	d.mu.Unlock()
}

// Snapshot returns a copy of the leaf hashes.
func (d *Digest) Snapshot() []uint64 {
	out := make([]uint64, Leaves)
	d.mu.RLock()
	copy(out, d.leaf[:])
	d.mu.RUnlock()
	return out
}

// Root folds the leaves into a single value: equal roots mean equal
// leaves (up to hash collisions), so replicas compare roots first and
// diff leaves only on mismatch.
func (d *Digest) Root() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	h := uint64(fnvOffset)
	var buf [8]byte
	for _, l := range d.leaf {
		binary.LittleEndian.PutUint64(buf[:], l)
		h = fnv1a64(h, buf[:])
	}
	return mix64(h)
}

// DiffLeaves returns the indices where two digest snapshots disagree.
// Snapshots of unequal length diff as fully divergent.
func DiffLeaves(a, b []uint64) []int {
	if len(a) != len(b) {
		all := make([]int, Leaves)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var out []int
	for i := range a {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	return out
}

// Pair is one key/value pair in a repair-pull payload, with the
// version stamp it is stored under (0 = unversioned).
type Pair struct {
	Key   string
	Value []byte
	Ver   uint64
}

// Codec limits: a repair payload decoded off the wire may be
// attacker-shaped, so counts and lengths are bounded before any
// allocation.
const (
	maxPairs   = 1 << 20
	maxPairLen = 64 << 20
)

var errBadPayload = errors.New("repair: malformed payload")

// EncodeDigest encodes a digest snapshot for an OpDigest response.
func EncodeDigest(leaves []uint64) []byte {
	out := make([]byte, 0, 2+8*len(leaves))
	out = binary.AppendUvarint(out, uint64(len(leaves)))
	var buf [8]byte
	for _, l := range leaves {
		binary.LittleEndian.PutUint64(buf[:], l)
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeDigest decodes an OpDigest response payload.
func DecodeDigest(b []byte) ([]uint64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n != Leaves || len(b[k:]) != 8*Leaves {
		return nil, errBadPayload
	}
	b = b[k:]
	out := make([]uint64, Leaves)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out, nil
}

// EncodeLeafSet encodes the divergent-leaf list of an OpRepairPull
// request.
func EncodeLeafSet(leaves []int) []byte {
	out := binary.AppendUvarint(nil, uint64(len(leaves)))
	for _, l := range leaves {
		out = binary.AppendUvarint(out, uint64(l))
	}
	return out
}

// DecodeLeafSet decodes an OpRepairPull leaf list.
func DecodeLeafSet(b []byte) ([]int, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > Leaves {
		return nil, errBadPayload
	}
	b = b[k:]
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 || l >= Leaves {
			return nil, errBadPayload
		}
		b = b[k:]
		out = append(out, int(l))
	}
	if len(b) != 0 {
		return nil, errBadPayload
	}
	return out, nil
}

// EncodePairs encodes a pair set. The encoding is never empty (the
// count prefix is always present), which is what lets OpRepairPull
// distinguish a push (Value = encoded pairs, possibly zero of them)
// from a pull (Value absent).
func EncodePairs(pairs []Pair) []byte {
	out := binary.AppendUvarint(nil, uint64(len(pairs)))
	for _, p := range pairs {
		out = binary.AppendUvarint(out, uint64(len(p.Key)))
		out = append(out, p.Key...)
		out = binary.AppendUvarint(out, uint64(len(p.Value)))
		out = append(out, p.Value...)
		out = binary.AppendUvarint(out, p.Ver)
	}
	return out
}

// DecodePairs decodes a pair set.
func DecodePairs(b []byte) ([]Pair, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > maxPairs {
		return nil, errBadPayload
	}
	b = b[k:]
	out := make([]Pair, 0, minInt(int(n), 1024))
	readBlob := func() ([]byte, bool) {
		l, k := binary.Uvarint(b)
		if k <= 0 || l > maxPairLen || uint64(len(b[k:])) < l {
			return nil, false
		}
		blob := b[k : k+int(l)]
		b = b[k+int(l):]
		return blob, true
	}
	for i := uint64(0); i < n; i++ {
		kb, ok := readBlob()
		if !ok {
			return nil, errBadPayload
		}
		vb, ok := readBlob()
		if !ok {
			return nil, errBadPayload
		}
		ver, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, errBadPayload
		}
		b = b[k:]
		out = append(out, Pair{Key: string(kb), Value: append([]byte(nil), vb...), Ver: ver})
	}
	if len(b) != 0 {
		return nil, errBadPayload
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
