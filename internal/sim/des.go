package sim

import (
	"container/heap"
	"errors"
	"math/rand"

	"zht/internal/metrics"
)

// Discrete-event engine: walks every request through client
// processing, the source node's NIC, torus propagation, the
// destination NIC, the server's FIFO queue, and back. One closed-loop
// client per instance, matching the paper's 1:1 all-to-all workload.

type event struct {
	at float64
	fn func(at float64)
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// fifo is a deterministic single-server queue.
type fifo struct {
	nextFree float64
	busy     float64 // total busy time (for utilization)
}

// admit returns the completion time of a job arriving at t with the
// given service requirement.
func (q *fifo) admit(t, service float64) float64 {
	start := t
	if q.nextFree > start {
		start = q.nextFree
	}
	q.nextFree = start + service
	q.busy += service
	return q.nextFree
}

type desState struct {
	p        Params
	rng      *rand.Rand
	events   eventHeap
	nics     []fifo // one per node
	servers  []fifo // one per instance
	dims     [3]int
	rackDims [3]int
	racks    int

	// Batching: every round trip is one MESSAGE carrying b ops; NIC
	// and propagation costs are per message, client/server service is
	// b per-op costs plus one per-message overhead.
	b      int
	cliMsg float64
	srvMsg float64

	completed int // ops completed in steady state (messages × b)
	msgs      int // messages completed in steady state
	latSum    float64
	warmup    float64

	// Instruments shared with real deployments: the simulator reports
	// into the same metric names a live client does, so zht-figures
	// and zht-sim snapshots line up with zht-bench and /metrics
	// output. Nil when no registry is attached.
	ops    *metrics.Counter   // zht.client.ops
	allLat *metrics.Histogram // zht.client.op.all.latency_ns
}

// DiscreteEvent simulates the deployment for simSeconds of virtual
// time (plus a 20% warmup) and reports steady-state results.
// Replication is simulated event-by-event: with SyncReplication every
// replica leg nests a full round trip before the acknowledgment;
// otherwise all legs are asynchronous and contribute only load.
func DiscreteEvent(p Params, simSeconds float64, seed int64) (Result, error) {
	return DiscreteEventObserved(p, simSeconds, seed, nil)
}

// DiscreteEventObserved is DiscreteEvent with a metrics registry
// attached: every steady-state operation completion is recorded under
// the same names a real client emits (zht.client.ops and
// zht.client.op.all.latency_ns, with simulated latencies converted to
// nanoseconds) so simulated and measured distributions are directly
// comparable. A nil registry records nothing.
func DiscreteEventObserved(p Params, simSeconds float64, seed int64, reg *metrics.Registry) (Result, error) {
	if err := validate(p); err != nil {
		return Result{}, err
	}
	if simSeconds <= 0 {
		return Result{}, errors.New("sim: simSeconds must be positive")
	}
	nInst := p.Nodes * p.InstancesPerNode
	s := &desState{
		p:       p,
		rng:     rand.New(rand.NewSource(seed)),
		nics:    make([]fifo, p.Nodes),
		servers: make([]fifo, nInst),
		dims:    torusDims(min(p.Nodes, p.RackSize)),
		racks:   (p.Nodes + p.RackSize - 1) / p.RackSize,
		warmup:  simSeconds * 0.2,
	}
	s.rackDims = torusDims(s.racks)
	s.b = batchSize(p)
	s.cliMsg, s.srvMsg = msgTimes(p)
	if reg != nil {
		s.ops = reg.Counter("zht.client.ops")
		s.allLat = reg.Histogram("zht.client.op.all.latency_ns")
	}
	end := simSeconds * 1.2

	for c := 0; c < nInst; c++ {
		c := c
		// Stagger client starts to avoid a synchronized burst.
		start := s.rng.Float64() * s.cliMsg
		s.schedule(start, func(at float64) { s.issue(c, at) })
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at > end {
			break
		}
		e.fn(e.at)
	}
	if s.msgs == 0 {
		return Result{}, errors.New("sim: no operations completed; simSeconds too short")
	}
	meanLat := s.latSum / float64(s.msgs)
	measured := end - s.warmup
	var nicBusy float64
	for i := range s.nics {
		nicBusy += s.nics[i].busy
	}
	_, hops := networkDelay(p)
	return Result{
		Latency:        meanLat,
		Throughput:     float64(s.completed) / measured,
		AvgHops:        hops,
		NICUtilization: nicBusy / (float64(p.Nodes) * end),
	}, nil
}

func (s *desState) schedule(at float64, fn func(float64)) {
	heap.Push(&s.events, event{at, fn})
}

// issue starts one batched message (b ops) from client c (instance
// index c).
func (s *desState) issue(c int, t0 float64) {
	srcNode := c / s.p.InstancesPerNode
	dst := s.rng.Intn(len(s.servers))
	dstNode := dst / s.p.InstancesPerNode

	afterClient := t0 + s.cliMsg
	out := s.nics[srcNode].admit(afterClient, s.p.NICTime)
	prop := s.propagation(srcNode, dstNode)
	s.schedule(out+prop, func(at float64) {
		in := s.nics[dstNode].admit(at, s.p.NICTime)
		s.schedule(in, func(at float64) {
			done := s.servers[dst].admit(at, s.srvMsg)
			s.schedule(done, func(at float64) {
				s.afterServer(c, t0, srcNode, dst, dstNode, prop, at)
			})
		})
	})
}

// afterServer handles replication legs and the response path once the
// primary has applied the op.
func (s *desState) afterServer(c int, t0 float64, srcNode, dst, dstNode int, prop, at float64) {
	syncLegs, asyncLegs := replicationLegs(s.p)
	// Asynchronous legs: inject their traffic (NIC passes, replica
	// server work) without delaying the acknowledgment.
	for i := 0; i < asyncLegs; i++ {
		s.replicaLeg(dst, dstNode, at, nil)
	}
	respond := func(at float64) {
		rout := s.nics[dstNode].admit(at, s.p.NICTime)
		s.schedule(rout+prop, func(at float64) {
			rin := s.nics[srcNode].admit(at, s.p.NICTime)
			s.schedule(rin, func(at float64) {
				if at > s.warmup {
					s.completed += s.b
					s.msgs++
					s.latSum += at - t0
					s.ops.Add(int64(s.b))
					s.allLat.Observe(int64((at - t0) * 1e9))
				}
				s.issue(c, at) // closed loop
			})
		})
	}
	if syncLegs == 0 {
		respond(at)
		return
	}
	// Synchronous legs complete sequentially before the ack.
	var chain func(remaining int, at float64)
	chain = func(remaining int, at float64) {
		if remaining == 0 {
			respond(at)
			return
		}
		s.replicaLeg(dst, dstNode, at, func(at float64) {
			chain(remaining-1, at)
		})
	}
	chain(syncLegs, at)
}

// replicaLeg simulates one primary→replica round trip. done, when
// non-nil, fires at ack time (synchronous leg).
func (s *desState) replicaLeg(primary, primaryNode int, at float64, done func(float64)) {
	// Replicas are ring successors; under contiguous bootstrap the
	// successor instance lives on the next node.
	replica := (primary + 1 + s.rng.Intn(3)) % len(s.servers)
	replicaNode := replica / s.p.InstancesPerNode
	prop := s.propagation(primaryNode, replicaNode)
	out := s.nics[primaryNode].admit(at, s.p.NICTime)
	s.schedule(out+prop, func(at float64) {
		in := s.nics[replicaNode].admit(at, s.p.NICTime)
		s.schedule(in, func(at float64) {
			applied := s.servers[replica].admit(at, s.srvMsg)
			s.schedule(applied, func(at float64) {
				back := s.nics[replicaNode].admit(at, s.p.NICTime)
				s.schedule(back+prop, func(at float64) {
					ackIn := s.nics[primaryNode].admit(at, s.p.NICTime)
					if done != nil {
						s.schedule(ackIn, done)
					}
				})
			})
		})
	})
}

// propagation computes the torus delay between two nodes.
func (s *desState) propagation(a, b int) float64 {
	if a == b {
		return 0
	}
	ra, rb := a/s.p.RackSize, b/s.p.RackSize
	la, lb := a%s.p.RackSize, b%s.p.RackSize
	d := float64(torusDist(s.dims, la, lb)) * s.p.HopTime
	if ra != rb {
		d += float64(torusDist(s.rackDims, ra, rb)) * s.p.RackHopTime
	}
	return d
}

// torusDist is the wraparound Manhattan distance between linear
// indices x and y on a torus with the given dimensions.
func torusDist(dims [3]int, x, y int) int {
	d := 0
	for ax := 0; ax < 3; ax++ {
		k := dims[ax]
		if k == 0 {
			k = 1
		}
		cx, cy := x%k, y%k
		x /= k
		y /= k
		dd := cx - cy
		if dd < 0 {
			dd = -dd
		}
		if k-dd < dd {
			dd = k - dd
		}
		d += dd
	}
	return d
}
