package sim

import (
	"math"
	"testing"
)

func TestTorusDims(t *testing.T) {
	cases := map[int][3]int{
		1:    {1, 1, 1},
		8:    {2, 2, 2},
		64:   {4, 4, 4},
		1024: {8, 8, 16},
	}
	for n, want := range cases {
		got := torusDims(n)
		if got != want {
			t.Errorf("torusDims(%d) = %v, want %v", n, got, want)
		}
	}
	// Non-factorable sizes still produce a valid factorization.
	d := torusDims(30)
	if d[0]*d[1]*d[2] != 30 {
		t.Errorf("torusDims(30) = %v does not multiply to 30", d)
	}
}

func TestAvgRingDist(t *testing.T) {
	if got := avgRingDist(2); got != 0.5 {
		t.Errorf("avgRingDist(2) = %v, want 0.5", got)
	}
	if got := avgRingDist(4); got != 1.0 {
		t.Errorf("avgRingDist(4) = %v, want 1", got)
	}
	if avgRingDist(1) != 0 {
		t.Error("single-node ring has nonzero distance")
	}
}

func TestTorusDist(t *testing.T) {
	dims := [3]int{4, 4, 4}
	if got := torusDist(dims, 0, 0); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	// Node 1 is one hop along the first axis.
	if got := torusDist(dims, 0, 1); got != 1 {
		t.Errorf("adjacent distance = %d", got)
	}
	// Wraparound: node 3 on a ring of 4 is distance 1 from node 0.
	if got := torusDist(dims, 0, 3); got != 1 {
		t.Errorf("wraparound distance = %d", got)
	}
	// Diameter corner: (2,2,2) from origin.
	if got := torusDist(dims, 0, 2+2*4+2*16); got != 6 {
		t.Errorf("diameter distance = %d", got)
	}
}

func TestAnchorPoints(t *testing.T) {
	// The calibration anchors from the paper: ~0.6 ms at 2 nodes,
	// ~1.1 ms at 8K nodes (§IV.E).
	r2, err := Analytic(DefaultParams(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Latency < 0.4e-3 || r2.Latency > 0.8e-3 {
		t.Errorf("2-node latency = %.3f ms, want ≈0.6 ms", r2.Latency*1e3)
	}
	r8k, err := Analytic(DefaultParams(8192, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r8k.Latency < 0.9e-3 || r8k.Latency > 1.4e-3 {
		t.Errorf("8K-node latency = %.3f ms, want ≈1.1 ms", r8k.Latency*1e3)
	}
	// Throughput at 8K nodes ≈ 7.4M ops/s in the paper.
	if r8k.Throughput < 5e6 || r8k.Throughput > 10e6 {
		t.Errorf("8K-node throughput = %.2fM ops/s, want ≈7.4M", r8k.Throughput/1e6)
	}
}

func TestLatencyMonotoneInScale(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 64, 1024, 8192, 65536, 1 << 20} {
		r, err := Analytic(DefaultParams(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		if r.Latency < prev {
			t.Errorf("latency decreased at n=%d: %.3f ms", n, r.Latency*1e3)
		}
		prev = r.Latency
	}
}

func TestEfficiencyCurveShape(t *testing.T) {
	// Figure 11: ~100% at 2 nodes, ~51% at 8K, ~8% at 1M.
	base, _ := Analytic(DefaultParams(2, 1))
	eff := func(n int) float64 {
		r, err := Analytic(DefaultParams(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		return Efficiency(r, DefaultParams(n, 1), base.Latency)
	}
	if e := eff(2); math.Abs(e-1.0) > 0.01 {
		t.Errorf("efficiency(2) = %.2f, want 1.0", e)
	}
	e8k := eff(8192)
	if e8k < 0.40 || e8k > 0.65 {
		t.Errorf("efficiency(8K) = %.2f, want ≈0.51", e8k)
	}
	e1m := eff(1 << 20)
	if e1m < 0.04 || e1m > 0.20 {
		t.Errorf("efficiency(1M) = %.2f, want ≈0.08", e1m)
	}
	if !(e8k > e1m) {
		t.Error("efficiency must decrease with scale")
	}
}

func TestInstancesPerNodeTradeoff(t *testing.T) {
	// Figures 13/14: 4 instances/node at 8K nodes roughly doubles
	// aggregate throughput (2.2x in the paper) while roughly
	// doubling latency (1.1 → 2.08 ms).
	r1, _ := Analytic(DefaultParams(8192, 1))
	r4, _ := Analytic(DefaultParams(8192, 4))
	if r4.Latency < 1.4*r1.Latency {
		t.Errorf("4 inst/node latency %.2f ms not clearly above 1 inst %.2f ms", r4.Latency*1e3, r1.Latency*1e3)
	}
	gain := r4.Throughput / r1.Throughput
	if gain < 1.5 || gain > 3.2 {
		t.Errorf("4 inst/node throughput gain = %.2fx, want ≈2.2x", gain)
	}
	r8, _ := Analytic(DefaultParams(8192, 8))
	if r8.Latency <= r4.Latency {
		t.Error("8 inst/node latency must exceed 4 inst/node")
	}
	if r8.Throughput < r4.Throughput {
		t.Error("aggregate throughput should keep growing to 8 inst/node (Figure 14)")
	}
}

func TestReplicationOverheadShape(t *testing.T) {
	// Figure 12: async replication adds ~20% (1 replica) and ~30%
	// (2 replicas); sync replication would add ~100%/200%.
	p0 := DefaultParams(1024, 1)
	r0, _ := Analytic(p0)
	p1 := p0
	p1.Replicas = 1
	r1, _ := Analytic(p1)
	p2 := p0
	p2.Replicas = 2
	r2, _ := Analytic(p2)
	ov1 := r1.Latency/r0.Latency - 1
	ov2 := r2.Latency/r0.Latency - 1
	if ov1 < 0.05 || ov1 > 0.8 {
		t.Errorf("1 async replica overhead = %.0f%%, want ≈20%%", ov1*100)
	}
	if ov2 <= ov1 {
		t.Error("2 replicas must cost more than 1")
	}
	// Sync replication is much more expensive.
	ps2 := p2
	ps2.SyncReplication = true
	rs2, _ := Analytic(ps2)
	if rs2.Latency < r2.Latency*1.3 {
		t.Errorf("sync replication (%.2f ms) should far exceed async (%.2f ms)", rs2.Latency*1e3, r2.Latency*1e3)
	}
}

func TestDiscreteEventMatchesAnalyticSmallScale(t *testing.T) {
	for _, cfg := range []struct{ nodes, inst int }{{2, 1}, {16, 1}, {64, 1}, {16, 4}} {
		p := DefaultParams(cfg.nodes, cfg.inst)
		a, err := Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := DiscreteEvent(p, 0.5, 42)
		if err != nil {
			t.Fatal(err)
		}
		ratio := d.Latency / a.Latency
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("nodes=%d inst=%d: DES latency %.3f ms vs analytic %.3f ms (ratio %.2f)",
				cfg.nodes, cfg.inst, d.Latency*1e3, a.Latency*1e3, ratio)
		}
	}
}

func TestDiscreteEventDeterministic(t *testing.T) {
	p := DefaultParams(16, 2)
	a, err := DiscreteEvent(p, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DiscreteEvent(p, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency || a.Throughput != b.Throughput {
		t.Error("same seed produced different results")
	}
	c, _ := DiscreteEvent(p, 0.2, 8)
	if c.Latency == a.Latency && c.Throughput == a.Throughput {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestDiscreteEventRejectsBadInput(t *testing.T) {
	if _, err := DiscreteEvent(DefaultParams(0, 1), 0.1, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := DiscreteEvent(DefaultParams(2, 1), 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestDiscreteEventReplication cross-validates the DES replication
// model against the paper's qualitative claims: async legs add little
// acknowledged latency; sync legs add roughly a full round trip each.
func TestDiscreteEventReplication(t *testing.T) {
	base := DefaultParams(32, 1)
	r0, err := DiscreteEvent(base, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	pa := base
	pa.Replicas = 2
	ra, err := DiscreteEvent(pa, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := pa
	ps.SyncReplication = true
	rs, err := DiscreteEvent(ps, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	asyncOv := ra.Latency/r0.Latency - 1
	syncOv := rs.Latency/r0.Latency - 1
	if asyncOv > 0.6 {
		t.Errorf("async r=2 overhead = %.0f%%; should be modest", asyncOv*100)
	}
	if syncOv < asyncOv+0.3 {
		t.Errorf("sync r=2 overhead %.0f%% not clearly above async %.0f%%", syncOv*100, asyncOv*100)
	}
	// Agreement with the analytic model on the sync configuration.
	an, err := Analytic(ps)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rs.Latency / an.Latency
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("DES sync latency %.3f ms vs analytic %.3f ms (ratio %.2f)", rs.Latency*1e3, an.Latency*1e3, ratio)
	}
}

func TestBatchSizeOneMatchesLegacyCalibration(t *testing.T) {
	// The per-op/per-message split must be invisible at BatchSize 1:
	// a Params with the pre-split lumped costs (ServerTime 180 µs,
	// ClientTime 120 µs, no Msg terms) and the split DefaultParams
	// must produce identical analytic results.
	split := DefaultParams(8192, 1)
	lumped := split
	lumped.ServerTime, lumped.ServerMsgTime = 180e-6, 0
	lumped.ClientTime, lumped.ClientMsgTime = 120e-6, 0
	rs, err := Analytic(split)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analytic(lumped)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance covers only float summation order (70µs+50µs vs
	// 120µs), not model differences.
	if math.Abs(rs.Latency/rl.Latency-1) > 1e-9 || math.Abs(rs.Throughput/rl.Throughput-1) > 1e-9 {
		t.Errorf("split defaults diverge from lumped at B=1: %.6f vs %.6f ms",
			rs.Latency*1e3, rl.Latency*1e3)
	}
	// BatchSize 0 and 1 are the same (unbatched) protocol.
	b1 := split
	b1.BatchSize = 1
	rb1, _ := Analytic(b1)
	if rb1.Latency != rs.Latency {
		t.Error("BatchSize 1 differs from BatchSize 0")
	}
}

func TestBatchingAmortizationCurve(t *testing.T) {
	// The point of the per-message/per-op split: per-op cost is
	// ClientTime + ServerTime + (msg overheads + NIC + prop)/B, so
	// aggregate throughput grows monotonically with B and saturates
	// toward the per-op-cost bound; per-op latency (batch latency / B)
	// falls even as batch latency rises.
	prevTput, prevPerOp := 0.0, math.MaxFloat64
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		p := DefaultParams(64, 1)
		p.BatchSize = b
		r, err := Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput <= prevTput {
			t.Errorf("throughput not increasing at B=%d: %.0f <= %.0f", b, r.Throughput, prevTput)
		}
		perOp := r.Latency / float64(b)
		if perOp >= prevPerOp {
			t.Errorf("amortized per-op latency not decreasing at B=%d: %.1f µs", b, perOp*1e6)
		}
		prevTput, prevPerOp = r.Throughput, perOp
	}
	// Diminishing returns: 1→8 must gain much more than 8→64.
	tput := func(b int) float64 {
		p := DefaultParams(64, 1)
		p.BatchSize = b
		r, _ := Analytic(p)
		return r.Throughput
	}
	if g1, g2 := tput(8)/tput(1), tput(64)/tput(8); g2 >= g1 {
		t.Errorf("batching gains should diminish: 1→8 %.2fx, 8→64 %.2fx", g1, g2)
	}
}

func TestDiscreteEventMatchesAnalyticBatched(t *testing.T) {
	// Cross-validate the two engines on batched configurations too.
	for _, b := range []int{4, 16} {
		p := DefaultParams(16, 1)
		p.BatchSize = b
		a, err := Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := DiscreteEvent(p, 0.5, 42)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := d.Latency / a.Latency; ratio < 0.6 || ratio > 1.6 {
			t.Errorf("B=%d: DES latency %.3f ms vs analytic %.3f ms (ratio %.2f)",
				b, d.Latency*1e3, a.Latency*1e3, ratio)
		}
		if ratio := d.Throughput / a.Throughput; ratio < 0.6 || ratio > 1.6 {
			t.Errorf("B=%d: DES throughput %.0f vs analytic %.0f (ratio %.2f)",
				b, d.Throughput, a.Throughput, ratio)
		}
	}
	// DES throughput must also rise with batch size.
	p1 := DefaultParams(16, 1)
	d1, err := DiscreteEvent(p1, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	p16 := p1
	p16.BatchSize = 16
	d16, err := DiscreteEvent(p16, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if d16.Throughput < 2*d1.Throughput {
		t.Errorf("DES B=16 throughput %.0f not clearly above B=1 %.0f", d16.Throughput, d1.Throughput)
	}
}

func TestAnalyticRejectsBadInput(t *testing.T) {
	p := DefaultParams(4, 1)
	p.Replicas = -1
	if _, err := Analytic(p); err == nil {
		t.Error("negative replicas accepted")
	}
	p2 := DefaultParams(4, 1)
	p2.RackSize = 0
	if _, err := Analytic(p2); err == nil {
		t.Error("zero rack size accepted")
	}
	p3 := DefaultParams(4, 1)
	p3.BatchSize = -2
	if _, err := Analytic(p3); err == nil {
		t.Error("negative batch size accepted")
	}
}

func TestBootstrapModel(t *testing.T) {
	// §III.H: ZHT bootstrap ≈8 s at 1K nodes, ≈10 s at 8K.
	b1k := Bootstrap(1024)
	zht1k := b1k.NeighborList + b1k.ServerStart
	if zht1k < 6 || zht1k > 10 {
		t.Errorf("ZHT bootstrap at 1K = %.1f s, want ≈8 s", zht1k)
	}
	b8k := Bootstrap(8192)
	zht8k := b8k.NeighborList + b8k.ServerStart
	if zht8k < 8 || zht8k > 13 {
		t.Errorf("ZHT bootstrap at 8K = %.1f s, want ≈10 s", zht8k)
	}
	if b8k.Total() <= b1k.Total() {
		t.Error("total bootstrap must grow with scale")
	}
	// Batch-system partition boot dominates (Figure 5).
	if b8k.PartitionBoot < zht8k {
		t.Error("partition boot should dominate ZHT's own bootstrap")
	}
}

func BenchmarkAnalytic(b *testing.B) {
	p := DefaultParams(1<<20, 4)
	for i := 0; i < b.N; i++ {
		if _, err := Analytic(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscreteEvent1K(b *testing.B) {
	p := DefaultParams(1024, 1)
	for i := 0; i < b.N; i++ {
		if _, err := DiscreteEvent(p, 0.05, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRepairRateOverheadShape(t *testing.T) {
	// Anti-entropy digest traffic is background load: throughput must
	// degrade monotonically as RepairRate grows, and RepairRate=0 must
	// be bit-identical to the calibrated baseline.
	base := DefaultParams(1024, 1)
	r0, err := Analytic(base)
	if err != nil {
		t.Fatal(err)
	}
	withRR := base
	withRR.RepairRate = 0
	rz, err := Analytic(withRR)
	if err != nil {
		t.Fatal(err)
	}
	if rz != r0 {
		t.Fatalf("RepairRate=0 perturbed the baseline: %+v vs %+v", rz, r0)
	}

	prevTput := r0.Throughput
	prevLat := r0.Latency
	for _, rr := range []float64{100, 1000, 5000} {
		p := base
		p.RepairRate = rr
		r, err := Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput > prevTput {
			t.Errorf("throughput rose with repair rate %v: %.0f > %.0f", rr, r.Throughput, prevTput)
		}
		if r.Latency < prevLat {
			t.Errorf("latency fell with repair rate %v: %v < %v", rr, r.Latency, prevLat)
		}
		prevTput, prevLat = r.Throughput, r.Latency
	}
	// A heavy repair load must cost something measurable, not just
	// round-trip through the fixed point unchanged.
	heavy := base
	heavy.RepairRate = 5000
	rh, err := Analytic(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Throughput >= r0.Throughput {
		t.Errorf("5k repair msgs/s cost nothing: %.0f >= %.0f ops/s", rh.Throughput, r0.Throughput)
	}

	neg := base
	neg.RepairRate = -1
	if _, err := Analytic(neg); err == nil {
		t.Error("negative repair rate accepted")
	}
}
