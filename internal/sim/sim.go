// Package sim models ZHT deployments at Blue Gene/P scales — the role
// the ALCF Intrepid machine and the PeerSim-based simulator played in
// the paper's evaluation (Figures 5, 7, 9, 11, 13, 14).
//
// Two engines share one parameter set:
//
//   - a discrete-event simulator (DiscreteEvent) that walks every
//     request through client, NIC, torus network, and server queues —
//     usable up to tens of thousands of instances;
//   - an analytic fixed-point model (Analytic) of the same system —
//     usable to a million nodes, where the paper's own evaluation
//     also switched to simulation.
//
// The engines are cross-validated in tests: at small scale the
// analytic model must agree with the discrete-event results.
//
// The physical picture follows §IV: nodes sit on a 3D torus (one rack
// = 1024 nodes); messages pay a per-hop cost plus a shared-NIC
// serialization cost; each node runs one or more single-threaded
// event-driven ZHT instances, each paired 1:1 with a closed-loop
// client (the paper's all-to-all workload). Throughput is then
// #instances / latency, which is exactly how the paper's 7.4M ops/s
// at 8K nodes relates to its 1.1 ms latency.
package sim

import (
	"errors"
	"math"

	"zht/internal/storage"
)

// Params describes one simulated deployment.
type Params struct {
	// Nodes is the number of physical nodes.
	Nodes int
	// InstancesPerNode (and clients per node); the paper sweeps 1-8.
	InstancesPerNode int
	// Replicas per partition; primary+secondary legs are synchronous
	// (adding a round trip leg), the rest asynchronous (adding only
	// load). Matches §IV.F.
	Replicas int
	// SyncReplication makes every replica leg synchronous (the
	// ablation the paper estimates would cost 100%/200% overhead).
	SyncReplication bool

	// ServerTime is the per-op CPU time on the serving instance
	// (hash, store access, per-op bookkeeping) — paid once per
	// sub-operation in a batch.
	ServerTime float64 // seconds
	// ServerMsgTime is the per-MESSAGE server cost (socket read,
	// framing, envelope decode, dispatch) — paid once per message
	// regardless of how many ops it carries. Batching amortizes this
	// term across BatchSize ops; at BatchSize 1 the per-op server cost
	// is ServerTime + ServerMsgTime.
	ServerMsgTime float64
	// ClientTime is the per-op client-side processing time
	// (serialization, result handling) — per sub-operation.
	ClientTime float64
	// ClientMsgTime is the per-message client cost (framing, syscall,
	// wakeup), amortized by batching like ServerMsgTime.
	ClientMsgTime float64
	// BatchSize is the number of operations per message (the client's
	// -batch setting). 0 or 1 models the unbatched lockstep protocol.
	BatchSize int
	// NICTime is the per-message serialization cost at a node's
	// shared network interface (paid by every message entering or
	// leaving the node); this is what makes many instances per node
	// raise latency (Figure 13).
	NICTime float64
	// HopTime is per-torus-hop propagation+switching.
	HopTime float64
	// RackSize is nodes per rack (Blue Gene/P: 1024); traffic
	// crossing racks pays RackHopTime per rack-network hop.
	RackSize    int
	RackHopTime float64
	// RackLinkTime is the per-message transmission time on an
	// inter-rack link bundle; with all-to-all traffic the bundles
	// congest as scale grows (bisection bandwidth grows only as
	// N^(2/3)), which is what drags efficiency to ~8% at 1M nodes
	// (Figure 11).
	RackLinkTime float64

	// RepairRate is the per-instance anti-entropy message rate: digest
	// round trips per second each instance issues against partition
	// authorities (an instance replicating k partitions with period T
	// issues ≈ k/T, plus pulls when divergence is found). Repair is
	// background traffic — it never extends the acknowledged op path,
	// but it occupies the server, NIC, and rack-link queues both at
	// the issuing replica and at the serving authority, which is the
	// throughput overhead zht-bench's -repair-sweep measures. 0 (the
	// default) disables the term, leaving the calibrated anchor
	// points untouched.
	RepairRate float64

	// FsyncTime is the cost of one fsync on the partition store's
	// write-ahead log. How often it is paid depends on Durability:
	// sync mode fsyncs every operation (B fsyncs per message), group
	// mode fsyncs once per commit batch — the model assumes the
	// group-commit batch coalesces to the message batch, amortizing
	// one FsyncTime across B ops — and none/async modes never fsync.
	FsyncTime float64
	// Durability is the storage acknowledgement mode the servers run
	// with (storage.Durability semantics: the zero value is async).
	Durability storage.Durability
}

// DefaultParams returns parameters calibrated so that the 2-node
// latency is ≈0.6 ms and the 8K-node, 1-instance latency is ≈1.1 ms —
// the paper's anchor points (§IV.E: "100% efficiency implies a
// latency of about 0.6ms ... 51% efficiency implies about 1.1ms").
//
// The per-op/per-message split preserves those anchors: at BatchSize 1
// the effective costs are ServerTime+ServerMsgTime = 180 µs and
// ClientTime+ClientMsgTime = 120 µs, identical to the pre-split
// calibration. The split itself (how much of each budget is framing
// and dispatch vs real per-op work) is what batching amortizes.
func DefaultParams(nodes, instancesPerNode int) Params {
	return Params{
		Nodes:            nodes,
		InstancesPerNode: instancesPerNode,
		ServerTime:       120e-6,
		ServerMsgTime:    60e-6,
		ClientTime:       70e-6,
		ClientMsgTime:    50e-6,
		NICTime:          60e-6,
		HopTime:          9e-6,
		RackSize:         1024,
		RackHopTime:      55e-6,
		RackLinkTime:     0.5e-6,
		FsyncTime:        100e-6,
	}
}

// batchSize returns the effective ops-per-message B (≥ 1).
func batchSize(p Params) int {
	if p.BatchSize > 1 {
		return p.BatchSize
	}
	return 1
}

// msgTimes returns per-MESSAGE client and server service times: B
// per-op costs plus one per-message overhead. Dividing by B gives the
// amortized per-op cost, which is what batching improves.
func msgTimes(p Params) (cliMsg, srvMsg float64) {
	b := float64(batchSize(p))
	srvMsg = b*p.ServerTime + p.ServerMsgTime
	switch p.Durability {
	case storage.DurabilitySync:
		srvMsg += b * p.FsyncTime // one fsync per op
	case storage.DurabilityGroup:
		srvMsg += p.FsyncTime // one fsync per commit batch
	}
	return b*p.ClientTime + p.ClientMsgTime, srvMsg
}

// Result reports one simulated configuration.
type Result struct {
	// Latency is the mean request latency in seconds.
	Latency float64
	// Throughput is aggregate operations/second.
	Throughput float64
	// AvgHops is the mean one-way torus hop count.
	AvgHops float64
	// NICUtilization is the mean utilization of a node's NIC queue.
	NICUtilization float64
}

// Efficiency computes the paper's efficiency metric: measured
// throughput over ideal throughput, where ideal extrapolates the
// best 2-node latency (§IV.E).
func Efficiency(r Result, p Params, twoNodeLatency float64) float64 {
	ideal := float64(p.Nodes*p.InstancesPerNode) / twoNodeLatency
	return r.Throughput / ideal
}

// torusDims factors n into the most cubic a×b×c shape.
func torusDims(n int) [3]int {
	best := [3]int{1, 1, n}
	bestScore := math.MaxFloat64
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			score := float64(a + b + c) // smaller sum = more cubic
			if score < bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best
}

// avgTorusHops returns the mean pairwise hop distance on a 3D torus
// of n nodes (uniform random source/destination).
func avgTorusHops(n int) float64 {
	if n <= 1 {
		return 0
	}
	d := torusDims(n)
	h := 0.0
	for _, dim := range d {
		h += avgRingDist(dim)
	}
	return h
}

// avgRingDist is the mean wraparound distance on a ring of k nodes.
func avgRingDist(k int) float64 {
	if k <= 1 {
		return 0
	}
	sum := 0
	for i := 0; i < k; i++ {
		dd := i
		if k-i < dd {
			dd = k - i
		}
		sum += dd
	}
	return float64(sum) / float64(k)
}

// networkTopo summarizes the topology-derived constants for a
// configuration: intra-rack propagation, inter-rack traffic fraction,
// and mean rack-network hop count.
type networkTopo struct {
	intraProp float64 // fixed intra-rack propagation, one way
	interFrac float64 // fraction of traffic crossing racks
	rackHops  float64 // mean rack-torus hops for crossing traffic
	hops      float64 // mean total hops, for reporting
}

func topo(p Params) networkTopo {
	sameNode := 1.0 / float64(p.Nodes)
	t := networkTopo{}
	t.hops = avgTorusHops(min(p.Nodes, p.RackSize))
	t.intraProp = t.hops * p.HopTime * (1 - sameNode)
	if p.Nodes > p.RackSize {
		racks := (p.Nodes + p.RackSize - 1) / p.RackSize
		t.interFrac = 1 - 1/float64(racks)
		t.rackHops = avgTorusHops(racks)
		t.hops += t.interFrac * t.rackHops
	}
	return t
}

// networkDelay is the uncongested one-way propagation delay between
// two uniformly random instances (used by the discrete-event engine
// for its hop report).
func networkDelay(p Params) (delay, hops float64) {
	t := topo(p)
	return t.intraProp + t.interFrac*t.rackHops*p.RackHopTime, t.hops
}

// replicationLegs splits the configured replica count into
// synchronous and asynchronous legs per §III.H/§IV.F: replication is
// asynchronous by default ("the asynchronous nature of the
// replication adds relatively little overhead"); SyncReplication
// models the estimated 100%-per-replica synchronous alternative.
func replicationLegs(p Params) (syncLegs, asyncLegs int) {
	if p.Replicas <= 0 {
		return 0, 0
	}
	if p.SyncReplication {
		return p.Replicas, 0
	}
	return 0, p.Replicas
}

// Analytic solves the closed-loop fixed point: every instance has one
// client with zero think time, so per-instance MESSAGE rate λ = 1/L,
// and L includes NIC, server, and rack-link queueing delays that
// themselves depend on λ. A message carries BatchSize ops, so per-op
// throughput is B·λ while NIC/propagation costs stay per message —
// that asymmetry is the batching-amortization curve.
func Analytic(p Params) (Result, error) {
	if err := validate(p); err != nil {
		return Result{}, err
	}
	t := topo(p)
	b := float64(batchSize(p))
	cliMsg, srvMsg := msgTimes(p)
	syncLegs, asyncLegs := replicationLegs(p)
	legs := float64(syncLegs + asyncLegs)
	// NIC passes per message at each involved node: request out,
	// request in, response out, response in = 4 total over 2 nodes →
	// 2 per node per message; each replication leg adds its own
	// request+ack (replication is batched too — one coalesced
	// envelope per replica per incoming batch).
	passesPerNode := 2.0 * (1 + legs)
	i := float64(p.InstancesPerNode)

	// Repair traffic: each of an instance's RepairRate digest round
	// trips costs 2 NIC passes at both ends (request out/in, response
	// out/in), a per-message server cost at the authority answering
	// it, and a per-message client cost at the replica issuing it. In
	// the uniform all-to-all picture every instance plays both roles
	// at the same rate.
	rr := p.RepairRate
	repairPasses := 4 * rr // per instance per second, both roles
	repairSrv := rr * (p.ServerMsgTime + p.ClientMsgTime)

	cap95 := func(x float64) float64 { return math.Min(0.95, x) }
	lat := cliMsg + srvMsg + 2*t.intraProp + 4*p.NICTime
	var rhoNIC, rhoSrv, rhoRack float64
	for iter := 0; iter < 500; iter++ {
		lambda := 1 / lat // messages/s per instance
		// NIC queue: i instances per node, passesPerNode messages
		// per batch round trip each, plus repair background passes.
		rhoNIC = cap95(i * (lambda*passesPerNode + repairPasses) * p.NICTime)
		nicDelay := p.NICTime / (1 - rhoNIC)
		// Server queue: each instance serves its own batches plus
		// replica batches from `legs` peers, each costing B per-op
		// applications plus one envelope decode; repair digest
		// serving and issuing is additional background occupancy.
		rhoSrv = cap95(lambda*(1+legs)*srvMsg + repairSrv)
		srvDelay := srvMsg * (1 + rhoSrv/(1-rhoSrv))
		// Inter-rack links: all-to-all traffic over a bundle count
		// that grows only as the rack torus, so utilization grows
		// with scale.
		rackDelay := 0.0
		if t.interFrac > 0 {
			msgRateNode := i * (lambda*passesPerNode + repairPasses)
			rhoRack = cap95(msgRateNode * float64(p.RackSize) * t.rackHops / 3 * p.RackLinkTime)
			rackDelay = t.interFrac * t.rackHops * p.RackHopTime / (1 - rhoRack)
		}
		prop := t.intraProp + rackDelay
		l := cliMsg + srvDelay + 2*prop + 4*nicDelay
		// Synchronous replica legs nest a full extra round trip.
		l += float64(syncLegs) * (srvDelay + 2*prop + 4*nicDelay)
		// Asynchronous legs do not extend the acknowledged path;
		// their cost enters via rhoNIC/rhoSrv/rhoRack load above.
		if math.Abs(l-lat) < 1e-12 {
			lat = l
			break
		}
		lat = 0.7*lat + 0.3*l // damped iteration
	}
	return Result{
		Latency:        lat,
		Throughput:     float64(p.Nodes*p.InstancesPerNode) * b / lat,
		AvgHops:        t.hops,
		NICUtilization: rhoNIC,
	}, nil
}

func validate(p Params) error {
	if p.Nodes <= 0 || p.InstancesPerNode <= 0 {
		return errors.New("sim: Nodes and InstancesPerNode must be positive")
	}
	if p.RackSize <= 0 {
		return errors.New("sim: RackSize must be positive")
	}
	if p.Replicas < 0 {
		return errors.New("sim: Replicas must be non-negative")
	}
	if p.BatchSize < 0 {
		return errors.New("sim: BatchSize must be non-negative")
	}
	if p.RepairRate < 0 {
		return errors.New("sim: RepairRate must be non-negative")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BootstrapModel reproduces Figure 5's components: the batch-system
// partition boot dominates; ZHT's own start (server fork + neighbor
// list generation) stays near-constant because static bootstrap needs
// no global communication (§III.H).
type BootstrapTimes struct {
	PartitionBoot float64 // Blue Gene/P partition boot, seconds
	NeighborList  float64 // membership/neighbor list generation
	ServerStart   float64 // ZHT server start
}

// Total is the full bootstrap latency.
func (b BootstrapTimes) Total() float64 {
	return b.PartitionBoot + b.NeighborList + b.ServerStart
}

// Bootstrap estimates bootstrap times for n nodes; calibrated to the
// paper's "batch job start ≈150 s at 1K nodes, ZHT bootstrap 8 s at
// 1K and 10 s at 8K" (§III.H).
func Bootstrap(n int) BootstrapTimes {
	return BootstrapTimes{
		PartitionBoot: 95 + 13.5*math.Log2(float64(n)/64+1),
		NeighborList:  0.00035 * float64(n),
		ServerStart:   7.1,
	}
}
