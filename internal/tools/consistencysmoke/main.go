// Command consistencysmoke is the `make consistency-smoke` gate: a
// short randomized check of the tunable-consistency contract
// (DESIGN.md §12) at Replicas=1, where QUORUM demands both copies
// (W+R>N ⇒ read-your-writes). Each iteration bootstraps an in-process
// deployment and drives sequential QUORUM writes, each followed
// immediately by a QUORUM read of the same key, through three fault
// phases: a clean warm-up, a replica partitioned away (still Alive in
// the table, so quorum-demanding writes into it must REFUSE — the
// refusals are themselves asserted), and a node crash with failure
// report and re-replication. The contract:
//
//   - a write that acks at QUORUM is immediately visible to a QUORUM
//     read (a read may refuse under faults; it may never be stale),
//   - at least one write refuses with quorum-not-met while the
//     replica is partitioned (the level is actually enforced), and
//   - zero acked QUORUM writes are lost once the deployment heals.
//
// Seeds are randomized per run but printed, so any failure is
// replayable with -seed. Run from the repository root:
// go run ./internal/tools/consistencysmoke
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"zht/internal/core"
	"zht/internal/hashing"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/wire"
)

func main() {
	iters := flag.Int("iters", 3, "fault-cycle iterations")
	ops := flag.Int("ops", 1200, "QUORUM write+read pairs per iteration")
	seed := flag.Int64("seed", 0, "base seed (0 = derive from time, printed for replay)")
	flag.Parse()

	base := *seed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	fmt.Printf("consistencysmoke: %d iters, %d ops each, base seed %d\n", *iters, *ops, base)

	for i := 0; i < *iters; i++ {
		if err := runOnce(base+int64(i), *ops); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL iter %d (seed %d): %v\n", i, base+int64(i), err)
			os.Exit(1)
		}
		fmt.Printf("iter %d ok\n", i)
	}
	fmt.Println("consistencysmoke PASS")
}

func runOnce(seed int64, ops int) error {
	mreg := metrics.NewRegistry()
	cfg := core.Config{
		NumPartitions: 32,
		Replicas:      1,
		AntiEntropy:   50 * time.Millisecond,
		OpRetries:     2,
		RetryBase:     time.Millisecond,
		RetryMax:      8 * time.Millisecond,
		OpDeadline:    2 * time.Second,
		Metrics:       mreg,
	}
	const n = 4
	d, reg, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		return err
	}
	defer d.Close()
	client, err := d.NewClient()
	if err != nil {
		return err
	}

	table := d.Instance(0).Table()
	partitioned := d.Instance(1) // phase 2: network-partitioned, stays Alive
	crashed := d.Instance(3)     // phase 3: crashed and failure-reported
	hashf := hashing.ByName("")

	// Keys owned by nodes that stay reachable, so acks depend only on
	// replica legs; keys replicated ON the partitioned node stay in the
	// pool on purpose — they produce the asserted quorum refusals.
	rng := rand.New(rand.NewSource(seed))
	var pool []string
	for i := 0; len(pool) < 400; i++ {
		key := fmt.Sprintf("csmk-%d-%04d", seed, i)
		owner := table.OwnerOf(table.Partition(hashf(key))).ID
		if owner == partitioned.ID() || owner == crashed.ID() {
			continue
		}
		pool = append(pool, key)
	}

	tolerable := func(err error) bool {
		return errors.Is(err, core.ErrUnavailable) ||
			strings.Contains(err.Error(), "quorum not met")
	}
	expected := make(map[string][]byte)
	// A refused quorum write is an ack refusal, NOT a rollback: the
	// primary already applied it, so its (newer-versioned) value may
	// legitimately win over the last acked one after handoff replay.
	// ambiguous holds the most recent refused value per key; a later
	// ack clears it.
	ambiguous := make(map[string][]byte)
	refused := 0
	// drive writes `count` QUORUM write+read pairs: acked writes must
	// read back their own value at QUORUM immediately.
	drive := func(count int) error {
		for i := 0; i < count; i++ {
			key := pool[rng.Intn(len(pool))]
			val := []byte(fmt.Sprintf("v%d-%d", seed, i))
			if err := client.InsertWith(key, val, wire.ConsistencyQuorum); err != nil {
				if !tolerable(err) {
					return fmt.Errorf("write %s: unexpected error class: %w", key, err)
				}
				refused++
				ambiguous[key] = val
				continue
			}
			expected[key] = val
			delete(ambiguous, key)
			var got []byte
			var rerr error
			for attempt := 0; attempt < 3; attempt++ {
				if got, rerr = client.LookupWith(key, wire.ConsistencyQuorum); rerr == nil {
					break
				}
				if errors.Is(rerr, core.ErrNotFound) || !tolerable(rerr) {
					return fmt.Errorf("read-your-write %s violated: %w", key, rerr)
				}
			}
			if rerr == nil && string(got) != string(val) {
				return fmt.Errorf("stale read-your-write on %s: got %q want %q", key, got, val)
			}
		}
		return nil
	}

	// Phase 1: clean warm-up.
	if err := drive(ops / 4); err != nil {
		return err
	}
	// Phase 2: replica partitioned away. Writes whose sole replica it
	// is must refuse; everything else keeps its read-your-writes.
	reg.SetDown(partitioned.Addr(), true)
	before := refused
	if err := drive(ops / 2); err != nil {
		return err
	}
	if refused == before {
		return fmt.Errorf("no quorum refusals while a replica was partitioned — the level is not enforced")
	}
	reg.SetDown(partitioned.Addr(), false)

	// Phase 3: crash a node for real — failure report, table
	// convergence, re-replication — then keep writing through it.
	reg.SetDown(crashed.Addr(), true)
	resp := d.Instance(0).Handle(&wire.Request{Op: wire.OpReport, Key: string(crashed.ID())})
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("failure report rejected: %v %s", resp.Status, resp.Err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, idx := range []int{0, 1, 2} {
		for {
			tab := d.Instance(idx).Table()
			if j := tab.IndexOf(crashed.ID()); j >= 0 && tab.Status[j] != ring.Alive {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("instance %d never learned of the crash", idx)
			}
			time.Sleep(time.Millisecond)
		}
	}
	d.Drain()
	if err := drive(ops / 4); err != nil {
		return err
	}

	// Settle, then the durability half: every acked QUORUM write reads
	// back at QUORUM through a fresh client.
	d.Drain()
	verifier, err := d.NewClient()
	if err != nil {
		return err
	}
	for key, want := range expected {
		v, err := verifier.LookupWith(key, wire.ConsistencyQuorum)
		if err == nil {
			if string(v) == string(want) {
				continue
			}
			// The no-rollback caveat: if the key's LAST write was a
			// refused one, its value winning is correct behavior.
			if alt, ok := ambiguous[key]; ok && string(v) == string(alt) {
				continue
			}
		}
		return fmt.Errorf("acked QUORUM write %s lost: %q %v", key, v, err)
	}
	if got := mreg.Counter("zht.consistency.quorum_writes").Value(); got < 1 {
		return fmt.Errorf("quorum_writes = %d; the smoke never exercised the quorum path", got)
	}
	if got := mreg.Counter("zht.consistency.quorum_reads").Value(); got < 1 {
		return fmt.Errorf("quorum_reads = %d; the smoke never exercised quorum reads", got)
	}
	return nil
}
