// Command churnsmoke is the `make churn-smoke` gate: a short
// randomized elastic-membership check for the gossip + online
// rebalancing path (internal/gossip, core.Join/Depart). Each
// iteration bootstraps an in-process deployment, keeps a mutating
// workload running while the cluster scales up by two instances and
// back down by two, and then requires the membership contract:
//
//   - zero acknowledged writes are lost: every key's final acked
//     state reads back through a fresh client after the churn,
//   - every surviving instance converges to the same ring epoch
//     within the deadline (odd iterations run gossip-only, with the
//     manager's delta broadcast suppressed, so convergence is carried
//     entirely by epoch piggybacking on request traffic), and
//   - data actually moved through the throttled migration engine:
//     the zht.migrate.* counters show completed cutovers and bytes.
//
// Seeds are randomized per run but printed, so any failure is
// replayable with -seed. Run from the repository root:
// go run ./internal/tools/churnsmoke
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"time"

	"zht/internal/core"
	"zht/internal/metrics"
	"zht/internal/ring"
)

func main() {
	iters := flag.Int("iters", 2, "scale-up/scale-down iterations (odd ones run gossip-only)")
	ops := flag.Int("ops", 1500, "approximate mutations per iteration")
	seed := flag.Int64("seed", 0, "base seed (0 = derive from time, printed for replay)")
	flag.Parse()

	base := *seed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	fmt.Printf("churnsmoke: %d iters, ~%d ops each, base seed %d\n", *iters, *ops, base)

	for i := 0; i < *iters; i++ {
		gossipOnly := i%2 == 1
		if err := runOnce(base+int64(i), *ops, gossipOnly); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL iter %d (seed %d, gossipOnly=%v): %v\n", i, base+int64(i), gossipOnly, err)
			os.Exit(1)
		}
		fmt.Printf("iter %d ok (gossipOnly=%v)\n", i, gossipOnly)
	}
	fmt.Println("churnsmoke PASS")
}

func runOnce(seed int64, ops int, gossipOnly bool) error {
	mreg := metrics.NewRegistry()
	cfg := core.Config{
		NumPartitions:  64,
		Replicas:       1,
		AntiEntropy:    25 * time.Millisecond,
		OpRetries:      3,
		RetryBase:      time.Millisecond,
		RetryMax:       10 * time.Millisecond,
		OpDeadline:     3 * time.Second,
		MigrateRate:    1 << 20,
		GossipCooldown: 2 * time.Millisecond,
		GossipOnly:     gossipOnly,
		Metrics:        mreg,
	}
	const n = 4
	d, _, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		return err
	}
	defer d.Close()
	client, err := d.NewClient()
	if err != nil {
		return err
	}

	// Mutating workload that runs across every membership change. Keys
	// enter expected only when the write is acked; a key whose op
	// errors is tainted (its state is ambiguous) until a later op on it
	// acks again.
	rng := rand.New(rand.NewSource(seed))
	expected := make(map[string][]byte)
	removed := make(map[string]bool)
	tainted := make(map[string]bool)
	var acked, errs int
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("churn-%d-%04d", seed, rng.Intn(400))
			switch r := rng.Float64(); {
			case r < 0.10:
				err := client.Remove(key)
				mu.Lock()
				if err == nil || errors.Is(err, core.ErrNotFound) {
					delete(expected, key)
					removed[key] = true
					delete(tainted, key)
					acked++
				} else {
					tainted[key] = true
					errs++
				}
				mu.Unlock()
			default:
				val := []byte(fmt.Sprintf("v%d-%d", seed, i))
				err := client.Insert(key, val)
				mu.Lock()
				if err == nil {
					expected[key] = val
					delete(removed, key)
					delete(tainted, key)
					acked++
				} else {
					tainted[key] = true
					errs++
				}
				mu.Unlock()
			}
			if i%64 == 0 {
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			done := acked >= ops
			mu.Unlock()
			if done {
				time.Sleep(time.Millisecond) // keep traffic flowing for gossip
			}
		}
	}()

	// Scale up by two, then back down to the original size, all under
	// load. Joins race live traffic and may lose an epoch contest even
	// after Join's internal retries, so each step gets a few attempts.
	churnErr := func() error {
		time.Sleep(50 * time.Millisecond)
		for j := 0; j < 2; j++ {
			ep := core.Endpoint{Addr: fmt.Sprintf("zht-grow-%d-%04d", seed%997, j), Node: fmt.Sprintf("node-grow-%04d", j)}
			var err error
			for attempt := 0; attempt < 10; attempt++ {
				if _, err = d.Join(ep); err == nil {
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("join %s: %w", ep.Addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		for d.Size() > n {
			var err error
			for attempt := 0; attempt < 10; attempt++ {
				if err = d.Depart(d.Size() - 1); err == nil {
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("depart: %w", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		return nil
	}()
	if churnErr != nil {
		close(stop)
		wg.Wait()
		return churnErr
	}

	// Epoch agreement among survivors. In gossip-only mode the worker
	// traffic above is the only carrier, so keep it running until the
	// poll succeeds.
	maxEpoch := func() uint64 {
		var m uint64
		for _, in := range d.Instances() {
			if e := in.Table().Epoch; e > m {
				m = e
			}
		}
		return m
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		want, lagging := maxEpoch(), ""
		for _, in := range d.Instances() {
			if e := in.Table().Epoch; e != want {
				lagging = fmt.Sprintf("%s at epoch %d, want %d", in.ID(), e, want)
				break
			}
		}
		if lagging == "" {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			return fmt.Errorf("epochs never agreed (%s; stale=%d pulls=%d advanced=%d)",
				lagging,
				mreg.Counter("zht.membership.stale_detected").Value(),
				mreg.Counter("zht.membership.gossip.pulls").Value(),
				mreg.Counter("zht.membership.gossip.advanced").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	d.Drain()

	// Replica digest convergence on the post-churn ring.
	final := d.Instance(0).Table()
	byID := make(map[ring.InstanceID]*core.Instance)
	for _, in := range d.Instances() {
		byID[in.ID()] = in
	}
	converged := func() (bool, string) {
		for p := 0; p < cfg.NumPartitions; p++ {
			owner := byID[final.OwnerOf(p).ID]
			if owner == nil {
				return false, fmt.Sprintf("partition %d owned by departed instance", p)
			}
			od := owner.PartitionDigest(p)
			for _, r := range final.ReplicasOf(p, cfg.Replicas) {
				rep := byID[r.ID]
				if rep == nil || r.ID == owner.ID() {
					continue
				}
				if !reflect.DeepEqual(od, rep.PartitionDigest(p)) {
					return false, fmt.Sprintf("partition %d replica %s", p, r.ID)
				}
			}
		}
		return true, ""
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		ok, where := converged()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never reached digest equality after churn (stuck at %s)", where)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Zero lost acked writes, read through a fresh client.
	verifier, err := d.NewClient()
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if acked < ops/2 {
		return fmt.Errorf("workload too thin: only %d acked ops (want >= %d, %d errors)", acked, ops/2, errs)
	}
	checked := 0
	for key, want := range expected {
		if tainted[key] {
			continue
		}
		v, err := verifier.Lookup(key)
		if err != nil {
			return fmt.Errorf("acked key %s unreadable: %w", key, err)
		}
		if string(v) != string(want) {
			return fmt.Errorf("acked state of %s lost: got %q want %q", key, v, want)
		}
		checked++
	}
	for key := range removed {
		if tainted[key] {
			continue
		}
		if v, err := verifier.Lookup(key); err == nil {
			return fmt.Errorf("removed key %s resurfaced as %q", key, v)
		} else if !errors.Is(err, core.ErrNotFound) {
			return fmt.Errorf("removed key %s: unexpected error %w", key, err)
		}
	}

	// The data must have moved through the throttled migration engine,
	// not a lucky empty ring.
	if c := mreg.Counter("zht.migrate.cutovers").Value(); c < 1 {
		return fmt.Errorf("no migration cutovers recorded")
	}
	if b := mreg.Counter("zht.migrate.bytes").Value(); b < 1 {
		return fmt.Errorf("no migrated bytes recorded")
	}
	if gossipOnly {
		if a := mreg.Counter("zht.membership.gossip.advanced").Value(); a < 1 {
			return fmt.Errorf("gossip-only run converged without a gossip advance")
		}
	}
	fmt.Printf("  %d acked (%d errs), %d keys verified; cutovers=%d pairs=%d bytes=%d stale=%d advanced=%d\n",
		acked, errs, checked,
		mreg.Counter("zht.migrate.cutovers").Value(),
		mreg.Counter("zht.migrate.pairs").Value(),
		mreg.Counter("zht.migrate.bytes").Value(),
		mreg.Counter("zht.membership.stale_detected").Value(),
		mreg.Counter("zht.membership.gossip.advanced").Value())
	return nil
}
