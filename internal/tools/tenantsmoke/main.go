// Command tenantsmoke is the `make tenant-smoke` gate: a short
// randomized check of the tenancy contract (DESIGN.md §13). Each
// iteration bootstraps an in-process deployment with two registered
// tenants — one whose token bucket is far below its offered load, one
// with ample quota — floods the first, paces the second, and asserts:
//
//   - the over-quota tenant is shed at the admission gate
//     (zht.tenant.shed and the per-tenant shed count both move),
//   - the in-quota tenant is NEVER shed and none of its ops fail,
//   - namespaces hold: each tenant reads back exactly what it wrote,
//     and the flood tenant's keys are invisible through the calm
//     tenant's scope, and
//   - TTL enforcement works end to end: an expired pair answers
//     NotFound (zht.tenant.expired_reads moves) and the reaper
//     riding the anti-entropy tick deletes it (zht.tenant.reaped).
//
// Seeds are randomized per run but printed, so any failure is
// replayable with -seed. Run from the repository root:
// go run ./internal/tools/tenantsmoke
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"zht/internal/core"
	"zht/internal/metrics"
	"zht/internal/tenant"
)

func main() {
	iters := flag.Int("iters", 3, "deployment iterations")
	ops := flag.Int("ops", 300, "paced in-quota op pairs per iteration")
	seed := flag.Int64("seed", 0, "base seed (0 = derive from time, printed for replay)")
	flag.Parse()

	base := *seed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	fmt.Printf("tenantsmoke: %d iters, %d ops each, base seed %d\n", *iters, *ops, base)

	for i := 0; i < *iters; i++ {
		if err := runOnce(base+int64(i), *ops); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL iter %d (seed %d): %v\n", i, base+int64(i), err)
			os.Exit(1)
		}
		fmt.Printf("iter %d ok\n", i)
	}
	fmt.Println("tenantsmoke PASS")
}

func runOnce(seed int64, ops int) error {
	treg := tenant.NewRegistry()
	if err := treg.Register(tenant.Tenant{Name: "flood", Rate: 500, Burst: 50}); err != nil {
		return err
	}
	if err := treg.Register(tenant.Tenant{Name: "calm", Rate: 1e7, Burst: 1e6}); err != nil {
		return err
	}
	mreg := metrics.NewRegistry()
	adm := tenant.NewAdmission(treg, tenant.AdmissionOptions{Metrics: mreg})
	cfg := core.Config{
		NumPartitions: 32,
		Replicas:      1,
		AntiEntropy:   25 * time.Millisecond,
		OpRetries:     1,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		OpDeadline:    2 * time.Second,
		Admission:     adm,
		Metrics:       mreg,
	}
	d, _, err := core.BootstrapInproc(cfg, 4)
	if err != nil {
		return err
	}
	defer d.Close()

	// Flood the capped tenant from 4 goroutines with no pacing; errors
	// after busy retries exhaust are the throttle working.
	var flooding atomic.Bool
	flooding.Store(true)
	var wg, started sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		started.Add(1)
		go func(g int) {
			defer wg.Done()
			fc, err := d.NewClient()
			if err != nil {
				started.Done()
				return
			}
			flood := tenant.NewClient(fc, tenant.Tenant{Name: "flood"})
			for i := 0; flooding.Load(); i++ {
				flood.Insert(fmt.Sprintf("f-%d-%d-%d", seed, g, i), []byte("x")) //nolint:errcheck
				if i == 0 {
					started.Done()
				}
			}
		}(g)
	}
	started.Wait()

	// The calm tenant's paced workload must be untouched by the flood:
	// no failures, no sheds, and read-your-writes within its namespace.
	cc, err := d.NewClient()
	if err != nil {
		return err
	}
	calm := tenant.NewClient(cc, tenant.Tenant{Name: "calm"})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("c-%d-%04d", seed, rng.Intn(ops))
		val := []byte(fmt.Sprintf("v-%d-%d", seed, i))
		if err := calm.Insert(key, val); err != nil {
			return fmt.Errorf("calm insert %s under flood: %w", key, err)
		}
		got, err := calm.Lookup(key)
		if err != nil {
			return fmt.Errorf("calm lookup %s under flood: %w", key, err)
		}
		if string(got) != string(val) {
			return fmt.Errorf("calm read-your-write %s: got %q want %q", key, got, val)
		}
	}
	flooding.Store(false)
	wg.Wait()

	// Namespace isolation: a key the flood tenant definitely wrote is
	// invisible through the calm tenant's scope.
	fc, err := d.NewClient()
	if err != nil {
		return err
	}
	flood := tenant.NewClient(fc, tenant.Tenant{Name: "flood"})
	if err := flood.Insert("iso", []byte("flood-owned")); err != nil {
		return fmt.Errorf("flood insert after quiesce: %w", err)
	}
	if _, err := calm.Lookup("iso"); !errors.Is(err, core.ErrNotFound) {
		return fmt.Errorf("namespace leak: calm tenant sees flood's key (err=%v)", err)
	}

	// Admission assertions.
	if got := adm.ShedCount("flood"); got < 1 {
		return fmt.Errorf("flood tenant was never shed (ShedCount = %d)", got)
	}
	if got := adm.ShedCount("calm"); got != 0 {
		return fmt.Errorf("calm tenant was shed %d times; its quota is ample", got)
	}
	if got := mreg.Counter("zht.tenant.shed").Value(); got < 1 {
		return fmt.Errorf("zht.tenant.shed = %d, want >= 1", got)
	}

	// TTL: an expired envelope answers NotFound on read and is deleted
	// by the reaper riding the anti-entropy tick.
	if err := cc.Insert("ttl-dead", tenant.Wrap([]byte("stale"), 0, time.Now().Add(-time.Second))); err != nil {
		return err
	}
	if _, err := cc.Lookup("ttl-dead"); !errors.Is(err, core.ErrNotFound) {
		return fmt.Errorf("expired lookup: got %v, want ErrNotFound", err)
	}
	if got := mreg.Counter("zht.tenant.expired_reads").Value(); got < 1 {
		return fmt.Errorf("zht.tenant.expired_reads = %d, want >= 1", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mreg.Counter("zht.tenant.reaped").Value() < 1 {
		if time.Now().After(deadline) {
			return errors.New("reaper never deleted the expired pair")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}
