// Command repairsmoke is the `make repair-smoke` gate: a short
// randomized convergence check for the replica repair subsystem
// (internal/repair). Each iteration bootstraps an in-process
// deployment with replication and a fast anti-entropy period,
// partitions one replica away mid-load (the membership table keeps it
// Alive, so primaries keep acking while their replication legs fail
// into hinted handoff), keeps mutating, heals the partition, and then
// requires the repair contract:
//
//   - every replica's partition digest converges to its primary's
//     within the deadline — through handoff replay plus the
//     anti-entropy loop's digest diff and range pulls, and
//   - zero acknowledged writes are lost: every key's final acked
//     state reads back afterwards.
//
// A deliberately small handoff cap forces overflow, so the
// anti-entropy backstop — not just replay — is exercised every run.
// Seeds are randomized per run but printed, so any failure is
// replayable with -seed. Run from the repository root:
// go run ./internal/tools/repairsmoke
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"zht/internal/core"
	"zht/internal/hashing"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/wire"
)

func main() {
	iters := flag.Int("iters", 3, "partition-heal-converge iterations")
	ops := flag.Int("ops", 3000, "mutations per iteration")
	seed := flag.Int64("seed", 0, "base seed (0 = derive from time, printed for replay)")
	flag.Parse()

	base := *seed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	fmt.Printf("repairsmoke: %d iters, %d ops each, base seed %d\n", *iters, *ops, base)

	for i := 0; i < *iters; i++ {
		if err := runOnce(base+int64(i), *ops); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL iter %d (seed %d): %v\n", i, base+int64(i), err)
			os.Exit(1)
		}
		fmt.Printf("iter %d ok\n", i)
	}
	fmt.Println("repairsmoke PASS")
}

func runOnce(seed int64, ops int) error {
	mreg := metrics.NewRegistry()
	cfg := core.Config{
		NumPartitions: 32,
		Replicas:      1,
		// The smoke deliberately writes through a replica-partition
		// window and relies on handoff + anti-entropy to converge —
		// the ONE contract. At the default QUORUM level those writes
		// would (correctly) refuse with copies=2 and the victim down.
		WriteLevel:  wire.ConsistencyOne,
		AntiEntropy: 50 * time.Millisecond,
		HandoffCap:  64, // small on purpose: overflow exercises the loop
		OpRetries:   2,
		RetryBase:   time.Millisecond,
		RetryMax:    8 * time.Millisecond,
		OpDeadline:  2 * time.Second,
		Metrics:     mreg,
	}
	const n = 4
	d, reg, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		return err
	}
	defer d.Close()
	client, err := d.NewClient()
	if err != nil {
		return err
	}

	table := d.Instance(0).Table()
	victim := d.Instance(1)
	byID := make(map[ring.InstanceID]*core.Instance)
	for _, in := range d.Instances() {
		byID[in.ID()] = in
	}
	hashf := hashing.ByName("")

	// Keys owned by reachable primaries: acks must not depend on the
	// victim being up, only the replica legs do.
	rng := rand.New(rand.NewSource(seed))
	var pool []string
	for i := 0; len(pool) < 500; i++ {
		key := fmt.Sprintf("smoke-%d-%04d", seed, i)
		if table.OwnerOf(table.Partition(hashf(key))).ID == victim.ID() {
			continue
		}
		pool = append(pool, key)
	}

	expected := make(map[string][]byte)
	mutate := func(count int) error {
		for i := 0; i < count; i++ {
			key := pool[rng.Intn(len(pool))]
			switch r := rng.Float64(); {
			case r < 0.15 && expected[key] != nil:
				if err := client.Remove(key); err != nil {
					return fmt.Errorf("remove %s: %w", key, err)
				}
				delete(expected, key)
			case r < 0.35:
				chunk := []byte(fmt.Sprintf("+%d", i))
				if err := client.Append(key, chunk); err != nil {
					return fmt.Errorf("append %s: %w", key, err)
				}
				expected[key] = append(expected[key], chunk...)
			default:
				val := []byte(fmt.Sprintf("v%d", i))
				if err := client.Insert(key, val); err != nil {
					return fmt.Errorf("insert %s: %w", key, err)
				}
				expected[key] = append([]byte(nil), val...)
			}
		}
		return nil
	}

	// Warm load, partition, load under the fault, heal.
	if err := mutate(ops / 4); err != nil {
		return err
	}
	reg.SetDown(victim.Addr(), true)
	if err := mutate(ops / 2); err != nil {
		return err
	}
	if q := mreg.Counter("zht.repair.handoff.queued").Value(); q < 1 {
		return fmt.Errorf("no legs entered hinted handoff during the partition")
	}
	reg.SetDown(victim.Addr(), false)
	if err := mutate(ops / 4); err != nil {
		return err
	}

	// Converge: every partition, every replica vs its primary.
	converged := func() (bool, string) {
		for p := 0; p < cfg.NumPartitions; p++ {
			owner := byID[table.OwnerOf(p).ID]
			od := owner.PartitionDigest(p)
			for _, r := range table.ReplicasOf(p, cfg.Replicas) {
				if r.ID == owner.ID() {
					continue
				}
				if !reflect.DeepEqual(od, byID[r.ID].PartitionDigest(p)) {
					return false, fmt.Sprintf("partition %d replica %s", p, r.ID)
				}
			}
		}
		return true, ""
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok, where := converged()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never reached digest equality (stuck at %s; syncs=%d pulls=%d queued=%d replayed=%d dropped=%d)",
				where,
				mreg.Counter("zht.repair.digest_syncs").Value(),
				mreg.Counter("zht.repair.ranges_pulled").Value(),
				mreg.Counter("zht.repair.handoff.queued").Value(),
				mreg.Counter("zht.repair.handoff.replayed").Value(),
				mreg.Counter("zht.repair.handoff.dropped").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mreg.Counter("zht.repair.digest_syncs").Value() < 1 {
		return fmt.Errorf("converged without a single digest sync")
	}

	// Zero lost acked writes.
	verifier, err := d.NewClient()
	if err != nil {
		return err
	}
	for _, key := range pool {
		want, present := expected[key]
		v, err := verifier.Lookup(key)
		switch {
		case present && err != nil:
			return fmt.Errorf("acked key %s unreadable: %w", key, err)
		case present && string(v) != string(want):
			return fmt.Errorf("acked state of %s lost: got %q want %q", key, v, want)
		case !present && err == nil:
			return fmt.Errorf("removed key %s resurfaced as %q", key, v)
		case !present && !errors.Is(err, core.ErrNotFound):
			return fmt.Errorf("removed key %s: unexpected error %w", key, err)
		}
	}
	return nil
}
