// Command storagesmoke is the `make storage-smoke` gate: a short
// randomized crash-recovery loop for the storage engine. Each
// iteration opens a NoVoHT store with an armed chaos.WALCrash fault
// (the write-ahead log tears at a seeded random byte offset and
// everything after it fails), drives concurrent mutations against it
// until the crash fires, then reopens the log without the fault and
// checks the recovery contract:
//
//   - every acknowledged mutation survives — the recovered state of
//     each key is at least its last acknowledged state, and
//   - recovery is prefix-consistent — the recovered state is one the
//     key's own submission order actually passed through, never an
//     invented one,
//   - and the reopened store still accepts writes and survives a
//     compaction plus a second clean reopen.
//
// Seeds are randomized per run but printed, so any failure is
// replayable with -seed. Run from the repository root:
// go run ./internal/tools/storagesmoke
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"zht/internal/chaos"
	"zht/internal/novoht"
	"zht/internal/storage"
)

func main() {
	iters := flag.Int("iters", 20, "crash-recovery iterations")
	seed := flag.Int64("seed", 0, "base seed (0 = derive from time, printed for replay)")
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("storage-smoke: %d iterations, seed %d\n", *iters, *seed)
	for i := 0; i < *iters; i++ {
		mode := storage.DurabilityGroup
		if i%3 == 2 {
			mode = storage.DurabilitySync
		}
		if err := crashIteration(*seed+int64(i), mode); err != nil {
			fmt.Fprintf(os.Stderr, "storage-smoke: FAIL iteration %d (seed %d, %s): %v\n",
				i, *seed+int64(i), mode, err)
			os.Exit(1)
		}
	}
	fmt.Println("storage-smoke: ok")
}

// history is one key's linear submission order: states[j] is the
// value after the j-th submitted mutation ("" means removed), and
// acked is the index of the last state whose mutation was
// acknowledged. Keys are disjoint per worker, so each history is
// exact without controlling cross-worker interleaving.
type history struct {
	states []string
	acked  int
}

func crashIteration(seed int64, mode storage.Durability) error {
	dir, err := os.MkdirTemp("", "zht-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "smoke.log")

	fault := chaos.NewWALCrash(seed, 1_000, 64_000)
	var s storage.KV
	s, err = novoht.Open(novoht.Options{
		Path: path, Durability: mode, Fault: fault,
		CompactEvery: 300, // force compactions into the crash window
	})
	if err != nil {
		return err
	}

	const workers, keysPer, opsPer = 4, 8, 2000
	hists := make([]map[string]*history, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hists[w] = make(map[string]*history)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(w+1)))
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("w%dk%d", w, rng.Intn(keysPer))
				h := hists[w][k]
				if h == nil {
					h = &history{states: []string{""}}
					hists[w][k] = h
				}
				cur := h.states[len(h.states)-1]
				var next string
				var err error
				switch op := rng.Intn(4); {
				case op == 0 && cur != "":
					next = ""
					h.states = append(h.states, next)
					_, err = s.Remove(k)
				case op == 1 && cur != "":
					next = cur + fmt.Sprintf("+a%d", i)
					h.states = append(h.states, next)
					err = s.Append(k, []byte(fmt.Sprintf("+a%d", i)))
				default:
					next = fmt.Sprintf("w%d-v%d", w, i)
					h.states = append(h.states, next)
					err = s.Put(k, []byte(next))
				}
				if err != nil {
					if errors.Is(err, storage.ErrBroken) {
						// The crash fired mid-mutation: this state is
						// submitted but not acknowledged. Stop here.
						return
					}
					// Any other error is a real bug; surface it as a
					// guaranteed-to-fail history.
					h.states = append(h.states, fmt.Sprintf("UNEXPECTED ERROR %v", err))
					return
				}
				h.acked = len(h.states) - 1
			}
		}(w)
	}
	wg.Wait()
	crashed := fault.Crashed()
	s.Close() // sticky error expected after a crash; the log is what matters

	var r storage.KV
	r, err = novoht.Open(novoht.Options{Path: path, Durability: mode})
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer r.Close()
	if !crashed {
		// Budget never ran out (rare with these op counts): the close
		// was clean, so recovery must be exact, which the prefix rule
		// below already implies (acked is the final state).
		fmt.Printf("  seed %d: crash did not fire; checking clean-close equivalence\n", seed)
	}
	for w := 0; w < workers; w++ {
		for k, h := range hists[w] {
			v, ok, err := r.Get(k)
			if err != nil {
				return fmt.Errorf("Get(%s): %w", k, err)
			}
			got := ""
			if ok {
				got = string(v)
			}
			// The recovered state must be one this key actually
			// passed through, at or after the last acknowledged one.
			valid := false
			for _, st := range h.states[h.acked:] {
				if got == st {
					valid = true
					break
				}
			}
			if !valid {
				return fmt.Errorf("key %s: recovered %q not in submitted suffix %q (acked index %d of %d)",
					k, got, h.states[h.acked:], h.acked, len(h.states)-1)
			}
		}
	}

	// The recovered store must be fully live: writable, compactable,
	// and stable across one more clean close/reopen.
	if err := r.Put("post-recovery", []byte("x")); err != nil {
		return fmt.Errorf("put after recovery: %w", err)
	}
	if nv, ok := r.(interface{ Compact() error }); ok {
		if err := nv.Compact(); err != nil {
			return fmt.Errorf("compact after recovery: %w", err)
		}
	}
	before := r.Len()
	if err := r.Close(); err != nil {
		return fmt.Errorf("clean close after recovery: %w", err)
	}
	r2, err := novoht.Open(novoht.Options{Path: path, Durability: mode})
	if err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	defer r2.Close()
	if r2.Len() != before {
		return fmt.Errorf("second reopen lost keys: %d != %d", r2.Len(), before)
	}
	return nil
}
