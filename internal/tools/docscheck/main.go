// Command docscheck is the `make docs-check` gate: it keeps the prose
// honest against the code. It fails when
//
//   - any package under internal/ or cmd/ lacks a package comment,
//   - a shell code block in README.md or OBSERVABILITY.md passes a
//     flag to a zht-* binary that the binary does not define, or
//   - a metric name registered anywhere in the source ("zht.*" string
//     literal) is missing from the OBSERVABILITY.md catalogue, or
//   - code outside internal/novoht names the concrete novoht.Store
//     type — consumers must hold stores as the storage.KV interface,
//     so the engine stays swappable (constructing one via
//     novoht.Open/novoht.Options is fine; depending on the concrete
//     type is not), or
//   - the replica repair contract is broken: the canonical
//     zht.repair.* metrics (digest syncs, ranges pulled, handoff
//     queued/replayed/dropped) must both be registered in
//     internal/repair or internal/core source AND be catalogued in
//     OBSERVABILITY.md — convergence debugging depends on them, so
//     neither side may silently drop one, or
//   - the pool contract is broken: the canonical pool health metrics
//     (zht.wire.pool.{gets,puts,misses}, zht.transport.buf.reuse)
//     must both be registered in internal/wire or internal/transport
//     source AND be catalogued in OBSERVABILITY.md — they are how a
//     pooled-buffer leak (gets outrunning puts) is diagnosed in the
//     field, or
//   - the consistency contract is broken: the canonical
//     zht.consistency.* metrics (quorum reads/writes, stale reads
//     repaired, version conflicts) must both be registered in
//     internal/core source AND be catalogued in OBSERVABILITY.md —
//     they are the observable surface of the tunable-consistency
//     subsystem (DESIGN.md §12), or
//   - the tenancy contract is broken: the canonical zht.tenant.* and
//     zht.memcached.* metrics (admission verdicts, in-flight gauge,
//     lazy-expiry reads, reaped pairs, front-door connections and
//     command/hit/miss counts) must both be registered in
//     internal/{tenant,memcached,core} source AND be catalogued in
//     OBSERVABILITY.md — they are how a shed tenant or a cold cache
//     is told apart from an outage (DESIGN.md §13).
//
// Run from the repository root: go run ./internal/tools/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkPackageComments(fail)
	cmdFlags := collectCmdFlags(fail)
	for _, doc := range []string{"README.md", "OBSERVABILITY.md"} {
		checkDocFlags(doc, cmdFlags, fail)
	}
	checkMetricCatalogue(fail)
	checkStorageBoundary(fail)
	checkRepairContract(fail)
	checkMembershipContract(fail)
	checkPoolContract(fail)
	checkConsistencyContract(fail)
	checkTenantContract(fail)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docs-check:", p)
		}
		os.Exit(1)
	}
	fmt.Println("docs-check: ok")
}

// goSourceDirs yields every directory under the given roots that
// contains at least one non-test .go file.
func goSourceDirs(roots ...string) []string {
	seen := map[string]bool{}
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") {
				return nil
			}
			seen[filepath.Dir(path)] = true
			return nil
		})
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs
}

// checkPackageComments requires a godoc package comment on every
// package under internal/ and cmd/ (on any one of its files).
func checkPackageComments(fail func(string, ...any)) {
	for _, dir := range goSourceDirs("internal", "cmd") {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			fail("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				fail("package %s (%s) has no package comment", name, dir)
			}
		}
	}
}

var flagDefRe = regexp.MustCompile(`flag\.(?:Bool|Int64|Int|String|Float64|Duration)\("([^"]+)"`)

// collectCmdFlags parses every cmd/<name>/*.go for flag definitions,
// returning command name → defined flag set.
func collectCmdFlags(fail func(string, ...any)) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		fail("reading cmd/: %v", err)
		return out
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		flags := map[string]bool{}
		files, _ := filepath.Glob(filepath.Join("cmd", e.Name(), "*.go"))
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				fail("%s: %v", f, err)
				continue
			}
			for _, m := range flagDefRe.FindAllStringSubmatch(string(src), -1) {
				flags[m[1]] = true
			}
		}
		out[e.Name()] = flags
	}
	return out
}

// checkDocFlags scans fenced code blocks in one markdown file; any
// line invoking a zht-* binary may only pass flags that binary
// defines.
func checkDocFlags(doc string, cmdFlags map[string]map[string]bool, fail func(string, ...any)) {
	src, err := os.ReadFile(doc)
	if err != nil {
		fail("%s: %v", doc, err)
		return
	}
	inBlock := false
	for i, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inBlock = !inBlock
			continue
		}
		if !inBlock {
			continue
		}
		cmd := invokedCommand(line, cmdFlags)
		if cmd == "" {
			continue
		}
		for _, flagName := range flagTokens(line) {
			if !cmdFlags[cmd][flagName] {
				fail("%s:%d: %s has no flag -%s", doc, i+1, cmd, flagName)
			}
		}
	}
}

// invokedCommand returns which cmd/ binary a shell line runs, if any.
// Matching the longest name first keeps zht-server from matching a
// hypothetical zht-serve.
func invokedCommand(line string, cmdFlags map[string]map[string]bool) string {
	names := make([]string, 0, len(cmdFlags))
	for name := range cmdFlags {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return len(names[i]) > len(names[j]) })
	for _, name := range names {
		for _, pat := range []string{name + " ", "/" + name, name + " -"} {
			if strings.Contains(line, pat) {
				return name
			}
		}
	}
	return ""
}

var flagNameRe = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// flagTokens extracts -flag names from a shell line, dropping values
// (-nodes 8, -fig=fig16) and anything not flag-shaped (prose like
// "-mix/-dist", digits, lone dashes).
func flagTokens(line string) []string {
	var out []string
	for _, tok := range strings.Fields(line) {
		if !strings.HasPrefix(tok, "-") || strings.HasPrefix(tok, "--") {
			continue
		}
		name := strings.TrimPrefix(tok, "-")
		if i := strings.IndexByte(name, '='); i >= 0 {
			name = name[:i]
		}
		if !flagNameRe.MatchString(name) {
			continue
		}
		out = append(out, name)
	}
	return out
}

var metricNameRe = regexp.MustCompile(`"(zht\.[a-z0-9_.]+)"`)

// checkMetricCatalogue requires every metric name registered in
// non-test source to appear in OBSERVABILITY.md.
func checkMetricCatalogue(fail func(string, ...any)) {
	catalogue, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		fail("OBSERVABILITY.md: %v", err)
		return
	}
	names := map[string][]string{} // metric → files registering it
	for _, root := range []string{"internal", "cmd"} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") ||
				strings.HasPrefix(path, filepath.Join("internal", "tools")) {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return nil
			}
			for _, m := range metricNameRe.FindAllStringSubmatch(string(src), -1) {
				names[m[1]] = append(names[m[1]], path)
			}
			return nil
		})
	}
	for _, name := range sortedKeys(names) {
		if !strings.Contains(string(catalogue), name) {
			fail("metric %q (registered in %s) is not catalogued in OBSERVABILITY.md",
				name, names[name][0])
		}
	}
}

var storeLeakRe = regexp.MustCompile(`novoht\.Store`)

// checkStorageBoundary enforces the storage.KV seam: no file outside
// internal/novoht may name the concrete novoht.Store type. Callers
// construct stores with novoht.Open and hold them as storage.KV, so
// the engine can be swapped without touching its consumers.
func checkStorageBoundary(fail func(string, ...any)) {
	for _, root := range []string{"internal", "cmd"} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasPrefix(path, filepath.Join("internal", "novoht")) ||
				strings.HasPrefix(path, filepath.Join("internal", "tools")) {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return nil
			}
			for i, line := range strings.Split(string(src), "\n") {
				if storeLeakRe.MatchString(line) {
					fail("%s:%d: names concrete type novoht.Store; hold stores as storage.KV", path, i+1)
				}
			}
			return nil
		})
	}
}

// repairMetrics is the canonical metric set of the replica repair
// subsystem (DESIGN.md §9). checkMetricCatalogue only verifies
// registered → catalogued; this check pins both directions for these
// names, so deleting either the registration or the catalogue row
// fails the gate.
var repairMetrics = []string{
	"zht.repair.digest_syncs",
	"zht.repair.ranges_pulled",
	"zht.repair.handoff.queued",
	"zht.repair.handoff.replayed",
	"zht.repair.handoff.dropped",
}

// checkRepairContract requires every canonical repair metric to be
// registered in internal/{repair,core} non-test source and catalogued
// in OBSERVABILITY.md, and internal/repair itself to exist (its
// package comment is enforced by checkPackageComments).
func checkRepairContract(fail func(string, ...any)) {
	if fi, err := os.Stat(filepath.Join("internal", "repair")); err != nil || !fi.IsDir() {
		fail("internal/repair is missing; the replica repair subsystem is mandatory")
		return
	}
	var src strings.Builder
	for _, root := range []string{filepath.Join("internal", "repair"), filepath.Join("internal", "core")} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if b, err := os.ReadFile(path); err == nil {
				src.Write(b)
			}
			return nil
		})
	}
	catalogue, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		fail("OBSERVABILITY.md: %v", err)
		return
	}
	for _, name := range repairMetrics {
		if !strings.Contains(src.String(), `"`+name+`"`) {
			fail("repair metric %q is not registered in internal/repair or internal/core", name)
		}
		if !strings.Contains(string(catalogue), name) {
			fail("repair metric %q is not catalogued in OBSERVABILITY.md", name)
		}
	}
}

// membershipMetrics is the canonical metric set of the elastic
// membership subsystem — epoch gossip plus the throttled online
// migration engine (DESIGN.md §10). As with the repair contract, both
// directions are pinned: registration in source and a catalogue row.
var membershipMetrics = []string{
	"zht.membership.epoch",
	"zht.membership.stale_detected",
	"zht.membership.gossip.pulls",
	"zht.membership.gossip.advanced",
	"zht.membership.gossip.full_tables",
	"zht.migrate.partitions",
	"zht.migrate.pairs",
	"zht.migrate.bytes",
	"zht.migrate.rounds",
	"zht.migrate.cutovers",
	"zht.migrate.aborts",
	"zht.migrate.throttle_ns",
}

// checkMembershipContract requires every canonical membership metric
// to be registered in internal/{gossip,core} non-test source and
// catalogued in OBSERVABILITY.md, and internal/gossip itself to
// exist.
func checkMembershipContract(fail func(string, ...any)) {
	if fi, err := os.Stat(filepath.Join("internal", "gossip")); err != nil || !fi.IsDir() {
		fail("internal/gossip is missing; the membership gossip subsystem is mandatory")
		return
	}
	var src strings.Builder
	for _, root := range []string{filepath.Join("internal", "gossip"), filepath.Join("internal", "core")} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if b, err := os.ReadFile(path); err == nil {
				src.Write(b)
			}
			return nil
		})
	}
	catalogue, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		fail("OBSERVABILITY.md: %v", err)
		return
	}
	for _, name := range membershipMetrics {
		if !strings.Contains(src.String(), `"`+name+`"`) {
			fail("membership metric %q is not registered in internal/gossip or internal/core", name)
		}
		if !strings.Contains(string(catalogue), name) {
			fail("membership metric %q is not catalogued in OBSERVABILITY.md", name)
		}
	}
}

// poolMetrics is the canonical metric set of the hot-path message and
// buffer pools (DESIGN.md §11). As with the repair and membership
// contracts, both directions are pinned: deleting either the
// registration (internal/wire or internal/transport) or the catalogue
// row in OBSERVABILITY.md fails the gate, because a pooled-buffer
// leak is diagnosed by exactly these counters.
var poolMetrics = []string{
	"zht.wire.pool.gets",
	"zht.wire.pool.puts",
	"zht.wire.pool.misses",
	"zht.transport.buf.reuse",
}

// checkPoolContract requires every canonical pool metric to be
// registered in internal/{wire,transport} non-test source and
// catalogued in OBSERVABILITY.md.
func checkPoolContract(fail func(string, ...any)) {
	var src strings.Builder
	for _, root := range []string{filepath.Join("internal", "wire"), filepath.Join("internal", "transport")} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if b, err := os.ReadFile(path); err == nil {
				src.Write(b)
			}
			return nil
		})
	}
	catalogue, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		fail("OBSERVABILITY.md: %v", err)
		return
	}
	for _, name := range poolMetrics {
		if !strings.Contains(src.String(), `"`+name+`"`) {
			fail("pool metric %q is not registered in internal/wire or internal/transport", name)
		}
		if !strings.Contains(string(catalogue), name) {
			fail("pool metric %q is not catalogued in OBSERVABILITY.md", name)
		}
	}
}

// consistencyMetrics is the canonical metric set of the tunable
// consistency subsystem (DESIGN.md §12). Both directions are pinned,
// as with the other contracts: quorum traffic, read-repair activity,
// and LWW conflict resolution must stay observable, and the
// catalogue may not advertise rows the code no longer registers.
var consistencyMetrics = []string{
	"zht.consistency.quorum_reads",
	"zht.consistency.quorum_writes",
	"zht.consistency.stale_reads_repaired",
	"zht.consistency.version_conflicts",
}

// checkConsistencyContract requires every canonical consistency
// metric to be registered in internal/core non-test source and
// catalogued in OBSERVABILITY.md.
func checkConsistencyContract(fail func(string, ...any)) {
	var src strings.Builder
	filepath.WalkDir(filepath.Join("internal", "core"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if b, err := os.ReadFile(path); err == nil {
			src.Write(b)
		}
		return nil
	})
	catalogue, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		fail("OBSERVABILITY.md: %v", err)
		return
	}
	for _, name := range consistencyMetrics {
		if !strings.Contains(src.String(), `"`+name+`"`) {
			fail("consistency metric %q is not registered in internal/core", name)
		}
		if !strings.Contains(string(catalogue), name) {
			fail("consistency metric %q is not catalogued in OBSERVABILITY.md", name)
		}
	}
}

// tenantMetrics is the canonical metric set of the multi-tenant front
// door (DESIGN.md §13): admission verdicts and in-flight pressure in
// internal/tenant, lazy-expiry/reaper activity in internal/core, and
// the memcached gateway's connection and command counters in
// internal/memcached. Both directions are pinned, as with the other
// contracts: a shed tenant or a cold cache is diagnosed with exactly
// these names, so neither the registration nor the catalogue row may
// silently disappear.
var tenantMetrics = []string{
	"zht.tenant.admitted",
	"zht.tenant.shed",
	"zht.tenant.inflight",
	"zht.tenant.expired_reads",
	"zht.tenant.reaped",
	"zht.memcached.conns",
	"zht.memcached.cmds",
	"zht.memcached.hits",
	"zht.memcached.misses",
	"zht.memcached.errors",
}

// checkTenantContract requires every canonical tenancy metric to be
// registered in internal/{tenant,memcached,core} non-test source and
// catalogued in OBSERVABILITY.md, and the tenant and memcached
// packages themselves to exist (their package comments are enforced
// by checkPackageComments).
func checkTenantContract(fail func(string, ...any)) {
	for _, dir := range []string{"tenant", "memcached"} {
		if fi, err := os.Stat(filepath.Join("internal", dir)); err != nil || !fi.IsDir() {
			fail("internal/%s is missing; the multi-tenant front door is mandatory", dir)
			return
		}
	}
	var src strings.Builder
	for _, root := range []string{
		filepath.Join("internal", "tenant"),
		filepath.Join("internal", "memcached"),
		filepath.Join("internal", "core"),
	} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if b, err := os.ReadFile(path); err == nil {
				src.Write(b)
			}
			return nil
		})
	}
	catalogue, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		fail("OBSERVABILITY.md: %v", err)
		return
	}
	for _, name := range tenantMetrics {
		if !strings.Contains(src.String(), `"`+name+`"`) {
			fail("tenancy metric %q is not registered in internal/tenant, internal/memcached, or internal/core", name)
		}
		if !strings.Contains(string(catalogue), name) {
			fail("tenancy metric %q is not catalogued in OBSERVABILITY.md", name)
		}
	}
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
