// Package hashing provides the customizable hash functions ZHT uses to
// map keys onto its 64-bit ring namespace.
//
// The paper (§III.E) calls for hash functions that minimize collisions,
// distribute signatures uniformly, exhibit an avalanche effect, and
// detect permutations. It explores Bob Jenkins' functions and FNV for
// their simple implementation and consistent behaviour on strings.
// Both families are implemented here from scratch; the ring accepts any
// Func, making the consistent-hashing function customizable as the
// paper requires.
package hashing

// Func maps an arbitrarily long key to a 64-bit index in the ZHT
// namespace.
type Func func(key string) uint64

// Named hash function identifiers accepted by ByName.
const (
	NameFNV1a    = "fnv1a"
	NameJenkins  = "jenkins"  // one-at-a-time
	NameLookup3  = "lookup3"  // Jenkins lookup3 (hashlittle2 folded to 64 bits)
	NameFNV1a32x = "fnv1a32x" // two independent 32-bit FNV passes packed to 64 bits
)

// Default is the hash function ZHT uses when none is configured:
// Jenkins lookup3, whose output is uniform across all 64 bits and so
// suits the ring's high-bit range partitioning.
var Default = Lookup3

// ByName returns the hash function registered under name, or nil if
// the name is unknown. Callers should treat nil as a configuration
// error. The empty name selects the Default (lookup3).
func ByName(name string) Func {
	switch name {
	case "":
		return Default
	case NameFNV1a:
		return FNV1a
	case NameJenkins:
		return Jenkins
	case NameLookup3:
		return Lookup3
	case NameFNV1a32x:
		return FNV1a32x
	}
	return nil
}

// FNV-1a constants (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNV1a is the 64-bit Fowler–Noll–Vo 1a hash.
//
// Note: FNV-1a's low-order bits are well distributed but its top bits
// mix slowly, and ZHT's ring partitions keys on contiguous high-bit
// ranges. Deployments that select FNV should either tolerate mild
// partition skew or prefer Lookup3 (the Default); this mirrors the
// paper's observation that the consistent-hash function is a pluggable
// policy choice (§III.E).
func FNV1a(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// FNV-1a constants (32-bit).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// FNV1a32x packs two decorrelated 32-bit FNV-1a passes (the second
// seeded differently) into a 64-bit value. It exists to demonstrate the
// pluggable-hash design with a distinct distribution profile.
func FNV1a32x(key string) uint64 {
	lo := uint32(fnvOffset32)
	hi := uint32(fnvOffset32 ^ 0x5bd1e995)
	for i := 0; i < len(key); i++ {
		c := uint32(key[i])
		lo ^= c
		lo *= fnvPrime32
		hi ^= c ^ 0xff
		hi *= fnvPrime32
	}
	return uint64(hi)<<32 | uint64(lo)
}

// Jenkins is Bob Jenkins' one-at-a-time hash widened to 64 bits by
// running two independently seeded passes and packing the results.
// A single pass carries only 32 bits of entropy, which would produce
// birthday collisions within a ZHT namespace of ~10^5 keys.
func Jenkins(key string) uint64 {
	lo := jenkinsOAAT(key, 0)
	hi := jenkinsOAAT(key, 0x9e3779b9)
	return mix64(uint64(hi)<<32 | uint64(lo))
}

func jenkinsOAAT(key string, seed uint32) uint32 {
	h := seed
	for i := 0; i < len(key); i++ {
		h += uint32(key[i])
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

// Lookup3 implements the core mixing of Bob Jenkins' lookup3
// (hashlittle2) over the key bytes, returning the two 32-bit results
// packed into one uint64.
func Lookup3(key string) uint64 {
	a := uint32(0xdeadbeef) + uint32(len(key))
	b := a
	c := a
	i := 0
	for len(key)-i > 12 {
		a += le32(key, i)
		b += le32(key, i+4)
		c += le32(key, i+8)
		a, b, c = lookup3Mix(a, b, c)
		i += 12
	}
	// Tail: consume the remaining 0..12 bytes.
	rest := key[i:]
	switch len(rest) {
	case 12:
		c += le32(rest, 8)
		b += le32(rest, 4)
		a += le32(rest, 0)
	case 11:
		c += uint32(rest[10]) << 16
		fallthrough
	case 10:
		c += uint32(rest[9]) << 8
		fallthrough
	case 9:
		c += uint32(rest[8])
		fallthrough
	case 8:
		b += le32(rest, 4)
		a += le32(rest, 0)
	case 7:
		b += uint32(rest[6]) << 16
		fallthrough
	case 6:
		b += uint32(rest[5]) << 8
		fallthrough
	case 5:
		b += uint32(rest[4])
		fallthrough
	case 4:
		a += le32(rest, 0)
	case 3:
		a += uint32(rest[2]) << 16
		fallthrough
	case 2:
		a += uint32(rest[1]) << 8
		fallthrough
	case 1:
		a += uint32(rest[0])
	case 0:
		return uint64(c)<<32 | uint64(b)
	}
	a, b, c = lookup3Final(a, b, c)
	return uint64(c)<<32 | uint64(b)
}

func le32(s string, i int) uint32 {
	switch len(s) - i {
	case 1:
		return uint32(s[i])
	case 2:
		return uint32(s[i]) | uint32(s[i+1])<<8
	case 3:
		return uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16
	default:
		return uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16 | uint32(s[i+3])<<24
	}
}

func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

func lookup3Mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rot(c, 4)
	c += b
	b -= a
	b ^= rot(a, 6)
	a += c
	c -= b
	c ^= rot(b, 8)
	b += a
	a -= c
	a ^= rot(c, 16)
	c += b
	b -= a
	b ^= rot(a, 19)
	a += c
	c -= b
	c ^= rot(b, 4)
	b += a
	return a, b, c
}

func lookup3Final(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return a, b, c
}

// mix64 is the 64-bit finalizer from MurmurHash3 (fmix64); it provides
// full avalanche over a 64-bit word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
