package hashing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

var allFuncs = map[string]Func{
	NameFNV1a:    FNV1a,
	NameJenkins:  Jenkins,
	NameLookup3:  Lookup3,
	NameFNV1a32x: FNV1a32x,
}

func TestByName(t *testing.T) {
	for name := range allFuncs {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("") == nil {
		t.Error("ByName(\"\") should return the default hash")
	}
	if ByName("nope") != nil {
		t.Error("ByName(\"nope\") should be nil")
	}
}

func TestDeterminism(t *testing.T) {
	for name, f := range allFuncs {
		f := f
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(func(s string) bool {
				return f(s) == f(s)
			}, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestKnownFNVVectors(t *testing.T) {
	// Published FNV-1a 64-bit test vectors.
	cases := map[string]uint64{
		"":    0xcbf29ce484222325,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
		"bar": 0x003934191339461a,
	}
	for in, want := range cases {
		if got := FNV1a(in); got != want {
			t.Errorf("FNV1a(%q) = %#x, want %#x", in, got, want)
		}
	}
}

// TestUniformity buckets hashes of sequential keys into 64 bins and
// requires each bin to hold within 25%% of the expected share. A
// grossly non-uniform hash would break partition load balance.
// FNV-1a is binned on its low bits — its high bits are documented to
// mix slowly, which is why it is not the ring default.
func TestUniformity(t *testing.T) {
	const nKeys = 1 << 16
	const bins = 64
	for name, f := range allFuncs {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			counts := make([]int, bins)
			for i := 0; i < nKeys; i++ {
				h := f(fmt.Sprintf("key-%d", i))
				if name == NameFNV1a {
					counts[h%bins]++
				} else {
					counts[h>>(64-6)]++
				}
			}
			expect := float64(nKeys) / bins
			for b, c := range counts {
				if math.Abs(float64(c)-expect) > expect*0.25 {
					t.Errorf("bin %d holds %d keys, expected %.0f±25%%", b, c, expect)
				}
			}
		})
	}
}

// TestAvalanche flips single input bits and requires, on average,
// roughly half of output bits to change (property 3 in §III.E).
func TestAvalanche(t *testing.T) {
	for name, f := range allFuncs {
		f := f
		t.Run(name, func(t *testing.T) {
			var flips, trials int
			for i := 0; i < 256; i++ {
				base := fmt.Sprintf("avalanche-key-%04d", i)
				h0 := f(base)
				bs := []byte(base)
				for bit := 0; bit < 8; bit++ {
					bs[0] ^= 1 << bit
					h1 := f(string(bs))
					bs[0] ^= 1 << bit
					flips += popcount(h0 ^ h1)
					trials++
				}
			}
			mean := float64(flips) / float64(trials)
			if mean < 24 || mean > 40 {
				t.Errorf("mean flipped output bits = %.1f, want ≈32", mean)
			}
		})
	}
}

// TestPermutationSensitivity checks property 4 in §III.E: reordering
// the input must change the hash for almost all inputs.
func TestPermutationSensitivity(t *testing.T) {
	for name, f := range allFuncs {
		f := f
		t.Run(name, func(t *testing.T) {
			same := 0
			for i := 0; i < 1000; i++ {
				a := fmt.Sprintf("ab%[1]d", i)
				b := fmt.Sprintf("ba%[1]d", i)
				if f(a) == f(b) {
					same++
				}
			}
			if same > 0 {
				t.Errorf("%d/1000 permuted pairs collided", same)
			}
		})
	}
}

// TestCollisionRate hashes 100K distinct short keys (the paper's keys
// are ~15-byte ASCII strings) and requires zero 64-bit collisions,
// which any of these functions should deliver at this scale.
func TestCollisionRate(t *testing.T) {
	const n = 100_000
	for name, f := range allFuncs {
		f := f
		t.Run(name, func(t *testing.T) {
			seen := make(map[uint64]string, n)
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("file-%09d.dat", i)
				h := f(k)
				if prev, ok := seen[h]; ok {
					t.Fatalf("collision: %q and %q both hash to %#x", prev, k, h)
				}
				seen[h] = k
			}
		})
	}
}

func TestLookup3TailLengths(t *testing.T) {
	// Exercise every tail-length branch (0..12 plus a multi-block key).
	base := "abcdefghijklmnopqrstuvwxyz"
	seen := map[uint64]int{}
	for n := 0; n <= len(base); n++ {
		h := Lookup3(base[:n])
		if prev, ok := seen[h]; ok {
			t.Errorf("prefix lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkHashFuncs(b *testing.B) {
	key := "some/typical/file/path/key-000042"
	for name, f := range allFuncs {
		f := f
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(key)))
			for i := 0; i < b.N; i++ {
				_ = f(key)
			}
		})
	}
}
