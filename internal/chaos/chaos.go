// Package chaos is a deterministic fault-injection layer over any
// transport.Caller.
//
// The paper's reliability mechanisms (§III.H–§III.J: lazy failure
// tagging with exponential backoff, replica failover, re-replication)
// only earn their keep under adversarial failure schedules — crashed
// nodes, partitions, lossy and slow links, duplicated datagrams.
// chaos.Caller wraps a real transport client (in-process, TCP, or
// UDP) and perturbs its traffic according to a scripted Scenario:
// each call consults the rule set active at the current offset into
// the scenario and may be dropped, delayed, duplicated, or blocked.
//
// Every decision derives from a stateless hash of (seed, destination,
// per-destination call counter, rule index, fault kind) — not from a
// shared RNG stream — so the same seed and the same per-destination
// call sequence reproduce exactly the same faults regardless of how
// calls to different destinations interleave. That makes failures
// replayable: a soak-test seed that loses a write is a repro case.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"zht/internal/metrics"
	"zht/internal/transport"
	"zht/internal/wire"
)

// Rule perturbs traffic on the links it matches. Empty From/To match
// any source/destination; Sym additionally matches the reverse
// direction. A rule matched in the request direction (src→dst)
// affects the request leg; a rule matched in the reply direction
// (dst→src) affects the response leg — so a one-way partition can
// deliver a request and still starve the caller of its ack, which is
// the failure mode that distinguishes "op lost" from "ack lost".
type Rule struct {
	From, To string
	Sym      bool

	// Down fails the destination fast (dial refused): the caller
	// gets transport.ErrUnreachable without the request running.
	Down bool
	// Cut blackholes the link (partition): the caller burns its
	// budget (or the emulated loss timeout) and gets ErrTimeout.
	Cut bool
	// Drop is the probability a request leg is lost in flight
	// (handler never runs); DropReply is the probability the same
	// link's response leg is lost after the handler ran — the op
	// applied but the caller times out. Both match in the request
	// direction.
	Drop, DropReply float64
	// Dup is the probability the request is delivered twice
	// (at-least-once datagram semantics; exercises idempotency).
	Dup float64
	// Latency is fixed added one-way delay; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency, Jitter time.Duration
}

// matches reports whether the rule applies to the directed link
// from→to.
func (r *Rule) matches(from, to string) bool {
	if (r.From == "" || r.From == from) && (r.To == "" || r.To == to) {
		return true
	}
	if r.Sym && (r.From == "" || r.From == to) && (r.To == "" || r.To == from) {
		return true
	}
	return false
}

// Convenience constructors for common faults.

// Down marks addr crashed: every call to it fails fast.
func Down(addr string) Rule { return Rule{To: addr, Down: true} }

// Partition cuts both directions between a and b ("" = everyone).
func Partition(a, b string) Rule { return Rule{From: a, To: b, Sym: true, Cut: true} }

// OneWay cuts only the from→to direction.
func OneWay(from, to string) Rule { return Rule{From: from, To: to, Cut: true} }

// SlowLink adds symmetric latency (+ jitter) between a and b.
func SlowLink(a, b string, lat, jitter time.Duration) Rule {
	return Rule{From: a, To: b, Sym: true, Latency: lat, Jitter: jitter}
}

// Lossy drops the from→to request leg with probability p.
func Lossy(from, to string, p float64) Rule { return Rule{From: from, To: to, Drop: p} }

// Duplicating delivers from→to requests twice with probability p.
func Duplicating(from, to string, p float64) Rule { return Rule{From: from, To: to, Dup: p} }

// Step is one stage of a scripted scenario: Rules becomes the active
// rule set At the given offset from the scenario's start (replacing
// the previous step's rules entirely — an empty Rules heals all
// faults).
type Step struct {
	At    time.Duration
	Label string
	Rules []Rule
}

// Scenario is a timed schedule of fault configurations.
type Scenario struct {
	Steps []Step
}

// active returns the rule set in force at elapsed time since start.
func (s *Scenario) active(elapsed time.Duration) []Rule {
	if s == nil || len(s.Steps) == 0 {
		return nil
	}
	// First step with At > elapsed; the one before it governs.
	i := sort.Search(len(s.Steps), func(i int) bool { return s.Steps[i].At > elapsed })
	if i == 0 {
		return nil
	}
	return s.Steps[i-1].Rules
}

// Options configures a chaos Caller.
type Options struct {
	// Source is this caller's endpoint identity for rule matching
	// (the From side of its requests). Empty matches only wildcard
	// From rules.
	Source string
	// Seed drives every probabilistic decision. The same seed and
	// per-destination call sequence reproduce the same faults.
	Seed int64
	// LossTimeout emulates how long a dropped or blackholed request
	// takes to surface as ErrTimeout when the request carries no
	// deadline budget; a budget, when present, bounds it instead.
	// 0 means DefaultLossTimeout.
	LossTimeout time.Duration
	// Trace records every decision for inspection via Trace().
	Trace bool
	// Metrics, when non-nil, counts every call through the layer
	// (zht.chaos.calls) and every injected fault by kind
	// (zht.chaos.faults.{down,cut,drop,dup,reply_lost}) — unlike the
	// trace, counting is cheap enough to leave on during soak runs.
	Metrics *metrics.Registry
}

// DefaultLossTimeout is the emulated loss-detection delay for calls
// without a deadline budget.
const DefaultLossTimeout = 100 * time.Millisecond

// Verdict labels what the chaos layer did to one call.
type Verdict string

// Verdicts recorded in the decision trace.
const (
	VerdictOK        Verdict = "ok"
	VerdictDown      Verdict = "down"
	VerdictCut       Verdict = "cut"
	VerdictDrop      Verdict = "drop"
	VerdictDup       Verdict = "dup"
	VerdictReplyLost Verdict = "reply-lost"
)

// Decision is one trace entry: the n'th call to Dst got Verdict with
// Delay of injected latency.
type Decision struct {
	Dst     string
	N       uint64
	Verdict Verdict
	Delay   time.Duration
}

// Caller wraps a transport.Caller with scripted fault injection. It
// is safe for concurrent use; determinism is per destination (the
// i'th call to one destination always sees the same faults for a
// given seed, however calls to other destinations interleave).
type Caller struct {
	inner transport.Caller
	src   string
	seed  uint64
	loss  time.Duration
	sc    *Scenario
	start time.Time

	mu       sync.Mutex
	counters map[string]uint64
	trace    []Decision
	traceOn  bool

	calls  *metrics.Counter             // zht.chaos.calls
	faults map[Verdict]*metrics.Counter // nil when metrics are off
}

var _ transport.Caller = (*Caller)(nil)

// Wrap builds a chaos Caller over inner. The scenario clock starts
// now; a nil scenario injects nothing.
func Wrap(inner transport.Caller, sc *Scenario, opts Options) *Caller {
	if opts.LossTimeout <= 0 {
		opts.LossTimeout = DefaultLossTimeout
	}
	c := &Caller{
		inner:    inner,
		src:      opts.Source,
		seed:     uint64(opts.Seed),
		loss:     opts.LossTimeout,
		sc:       sc,
		start:    time.Now(),
		counters: make(map[string]uint64),
		traceOn:  opts.Trace,
	}
	if reg := opts.Metrics; reg != nil {
		c.calls = reg.Counter("zht.chaos.calls")
		c.faults = map[Verdict]*metrics.Counter{
			VerdictDown:      reg.Counter("zht.chaos.faults.down"),
			VerdictCut:       reg.Counter("zht.chaos.faults.cut"),
			VerdictDrop:      reg.Counter("zht.chaos.faults.drop"),
			VerdictDup:       reg.Counter("zht.chaos.faults.dup"),
			VerdictReplyLost: reg.Counter("zht.chaos.faults.reply_lost"),
		}
	}
	return c
}

// Trace returns a copy of the recorded decisions (Options.Trace).
func (c *Caller) Trace() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.trace...)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// bijection used to derive independent decision bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashAddr(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Salt layout for decision derivation: ruleIdx*8 + fault kind.
const (
	saltDrop = iota
	saltDropReply
	saltDup
	saltJitterReq
	saltJitterReply
	saltKinds
)

// u01 derives a uniform float64 in [0,1) for decision n to dst under
// rule ri, fault kind k.
func (c *Caller) u01(dst string, n uint64, ri int, k int) float64 {
	x := splitmix64(c.seed ^ splitmix64(hashAddr(dst)))
	x = splitmix64(x ^ splitmix64(n))
	x = splitmix64(x ^ uint64(ri*saltKinds+k))
	return float64(x>>11) / float64(uint64(1)<<53)
}

// effects is the merged outcome of every rule matching one direction
// of one call.
type effects struct {
	down, cut, drop, dup, replyLost bool
	delay                           time.Duration
}

// resolve evaluates the active rules for call n in both directions.
func (c *Caller) resolve(rules []Rule, dst string, n uint64) (req, reply effects) {
	for ri := range rules {
		r := &rules[ri]
		if r.matches(c.src, dst) {
			if r.Down {
				req.down = true
			}
			if r.Cut {
				req.cut = true
			}
			if r.Drop > 0 && c.u01(dst, n, ri, saltDrop) < r.Drop {
				req.drop = true
			}
			if r.Dup > 0 && c.u01(dst, n, ri, saltDup) < r.Dup {
				req.dup = true
			}
			if r.DropReply > 0 && c.u01(dst, n, ri, saltDropReply) < r.DropReply {
				reply.replyLost = true
			}
			req.delay += r.Latency
			if r.Jitter > 0 {
				req.delay += time.Duration(c.u01(dst, n, ri, saltJitterReq) * float64(r.Jitter))
			}
		}
		if r.matches(dst, c.src) {
			if r.Cut {
				reply.cut = true
			}
			reply.delay += r.Latency
			if r.Jitter > 0 {
				reply.delay += time.Duration(c.u01(dst, n, ri, saltJitterReply) * float64(r.Jitter))
			}
		}
	}
	return req, reply
}

func (c *Caller) record(dst string, n uint64, v Verdict, delay time.Duration) {
	c.calls.Inc()
	if v != VerdictOK {
		c.faults[v].Inc() // nil-map lookup yields a nil (no-op) counter
	}
	if !c.traceOn {
		return
	}
	c.mu.Lock()
	c.trace = append(c.trace, Decision{Dst: dst, N: n, Verdict: v, Delay: delay})
	c.mu.Unlock()
}

// sleepLost burns the caller's loss-detection time for a blackholed
// leg — the request's remaining budget when it carries one, the
// emulated loss timeout otherwise — and returns ErrTimeout.
func (c *Caller) sleepLost(deadline time.Time) error {
	d := c.loss
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < d {
			d = rem
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
	return fmt.Errorf("%w: injected loss", transport.ErrTimeout)
}

// perturbed runs one message send through the fault pipeline: it
// resolves the active rules for this call, applies request-leg faults
// and latency, shrinks the forwarded budget by the time chaos
// consumed, invokes send (and sendDup on duplication), then applies
// reply-leg faults. Call and CallBatch share this pipeline — a batch
// envelope is one message on the wire, so one verdict covers every
// sub-operation in it.
func (c *Caller) perturbed(addr string, budget uint64, send func(fwdBudget uint64) error, sendDup func(fwdBudget uint64)) error {
	elapsed := time.Since(c.start)
	rules := c.sc.active(elapsed)

	c.mu.Lock()
	n := c.counters[addr]
	c.counters[addr] = n + 1
	c.mu.Unlock()

	if len(rules) == 0 {
		c.record(addr, n, VerdictOK, 0)
		return send(0)
	}
	reqFx, replyFx := c.resolve(rules, addr, n)

	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(time.Duration(budget))
	}
	if reqFx.down {
		c.record(addr, n, VerdictDown, 0)
		return fmt.Errorf("%w: injected crash of %q", transport.ErrUnreachable, addr)
	}
	if reqFx.cut || reqFx.drop {
		v := VerdictCut
		if reqFx.drop && !reqFx.cut {
			v = VerdictDrop
		}
		c.record(addr, n, v, 0)
		return c.sleepLost(deadline)
	}

	// Request-leg latency: the message arrives late; if it lands past
	// the deadline the ack cannot possibly return in time.
	if reqFx.delay > 0 {
		if !deadline.IsZero() && reqFx.delay >= time.Until(deadline) {
			c.record(addr, n, VerdictCut, reqFx.delay)
			return c.sleepLost(deadline)
		}
		time.Sleep(reqFx.delay)
	}

	// Shrink the forwarded budget by the time chaos consumed so the
	// wrapped transport still honors the end-to-end deadline.
	fwdBudget := uint64(0)
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= 0 {
			return c.sleepLost(deadline)
		}
		fwdBudget = uint64(rem)
	}
	err := send(fwdBudget)
	if reqFx.dup {
		// At-least-once delivery: the retransmitted duplicate lands
		// after the original; its response is discarded.
		sendDup(fwdBudget)
	}

	if err == nil && (replyFx.cut || replyFx.replyLost) {
		// The op ran — possibly mutating state — but its ack never
		// reaches us: indistinguishable from a lost request to the
		// caller, which is exactly the ambiguity worth testing.
		c.record(addr, n, VerdictReplyLost, reqFx.delay)
		return c.sleepLost(deadline)
	}
	if replyFx.delay > 0 && err == nil {
		if !deadline.IsZero() && replyFx.delay >= time.Until(deadline) {
			c.record(addr, n, VerdictReplyLost, reqFx.delay+replyFx.delay)
			return c.sleepLost(deadline)
		}
		time.Sleep(replyFx.delay)
	}
	v := VerdictOK
	if reqFx.dup {
		v = VerdictDup
	}
	c.record(addr, n, v, reqFx.delay+replyFx.delay)
	return err
}

// Call implements transport.Caller with fault injection around the
// wrapped caller.
func (c *Caller) Call(addr string, req *wire.Request) (*wire.Response, error) {
	var out *wire.Response
	err := c.perturbed(addr, req.Budget,
		func(b uint64) error {
			fwd := *req
			if b > 0 {
				fwd.Budget = b
			}
			var e error
			out, e = c.inner.Call(addr, &fwd)
			return e
		},
		func(b uint64) {
			dup := *req
			if b > 0 {
				dup.Budget = b
			}
			c.inner.Call(addr, &dup)
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CallBatch implements transport.Caller. The batch travels as one
// message, so the whole envelope shares a single fault verdict: a
// dropped batch loses every sub-operation, a duplicated one re-applies
// them all — the same blast-radius a real batched datagram or frame
// would have.
func (c *Caller) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	budget := uint64(0)
	for _, r := range reqs {
		if r.Budget > budget {
			budget = r.Budget
		}
	}
	shrunk := func(b uint64) []*wire.Request {
		if b == 0 {
			return reqs
		}
		fwd := make([]*wire.Request, len(reqs))
		for i, r := range reqs {
			cp := *r
			cp.Budget = b
			fwd[i] = &cp
		}
		return fwd
	}
	var out []*wire.Response
	err := c.perturbed(addr, budget,
		func(b uint64) error {
			var e error
			out, e = c.inner.CallBatch(addr, shrunk(b))
			return e
		},
		func(b uint64) {
			c.inner.CallBatch(addr, shrunk(b))
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close implements transport.Caller.
func (c *Caller) Close() error { return c.inner.Close() }
