package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/ring"
	"zht/internal/wire"
)

// The chaos soak: a replicated deployment driven through a scripted
// schedule of node kills, partitions, slow links, message loss, and
// ack loss. The invariants under test are the paper's reliability
// claims (§III.H–J) sharpened by this layer's deadline contract:
//
//  1. No acked write is ever lost — once Insert returns nil, the pair
//     survives every scheduled failure (kills are spaced so the
//     re-replication repair window closes between them, the paper's
//     standing assumption for tolerating repeated failures).
//  2. Every operation either resolves within the configured
//     OpDeadline (plus scheduling slack) or fails with
//     ErrUnavailable — never hangs, never retries unboundedly.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := core.Config{
		NumPartitions: 64,
		Replicas:      1, // first replica synchronous: acked ⇒ two copies
		OpRetries:     2,
		RetryBase:     time.Millisecond,
		RetryMax:      8 * time.Millisecond,
		OpDeadline:    600 * time.Millisecond,
	}
	const n = 6
	d, reg, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	everyone := "" // wildcard endpoint in rules
	sc := &Scenario{Steps: []Step{
		{At: 0, Label: "mild loss", Rules: []Rule{
			Lossy(everyone, everyone, 0.10),
		}},
		{At: 400 * time.Millisecond, Label: "slow + partition", Rules: []Rule{
			SlowLink(everyone, everyone, 200*time.Microsecond, time.Millisecond),
			Partition(everyone, d.Instance(4).Addr()),
		}},
		{At: 800 * time.Millisecond, Label: "loss + ack loss", Rules: []Rule{
			{To: everyone, Drop: 0.15, DropReply: 0.10},
		}},
		{At: 1200 * time.Millisecond, Label: "healed"},
	}}
	chaosCaller := Wrap(reg.NewClient(), sc, Options{Seed: 7, LossTimeout: 25 * time.Millisecond})
	t0 := time.Now() // scenario clock epoch (Wrap just started it)
	client, err := core.NewClient(cfg, d.Instance(0).Table(), chaosCaller)
	if err != nil {
		t.Fatal(err)
	}

	// Writer: sequential stream of inserts through the chaos caller,
	// recording acked keys, per-op latency, and error taxonomy.
	type opResult struct {
		key     string
		acked   bool
		latency time.Duration
		err     error
	}
	var (
		results []opResult
		stop    = make(chan struct{})
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("soak-%05d", i)
			start := time.Now()
			err := client.Insert(key, []byte("v:"+key))
			results = append(results, opResult{key, err == nil, time.Since(start), err})
		}
	}()

	// kill downs a node mid-traffic, files the failure report with a
	// live manager, waits until every survivor's table agrees, then
	// drains so re-replication has restored the replication factor —
	// the spacing that makes a subsequent kill survivable.
	alive := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}
	kill := func(idx int) {
		t.Helper()
		victim := d.Instance(idx)
		reg.SetDown(victim.Addr(), true)
		alive[idx] = false
		var mgr *core.Instance
		for i := 0; i < n; i++ {
			if alive[i] {
				mgr = d.Instance(i)
				break
			}
		}
		resp := mgr.Handle(&wire.Request{Op: wire.OpReport, Key: string(victim.ID())})
		if resp.Status != wire.StatusOK {
			t.Fatalf("failure report for %s rejected: %v %s", victim.ID(), resp.Status, resp.Err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for {
				tab := d.Instance(i).Table()
				if j := tab.IndexOf(victim.ID()); j >= 0 && tab.Status[j] != ring.Alive {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("instance %d never learned of %s's failure", i, victim.ID())
				}
				time.Sleep(time.Millisecond)
			}
		}
		d.Drain()
	}

	sleepUntil := func(offset time.Duration) {
		if rem := time.Until(t0.Add(offset)); rem > 0 {
			time.Sleep(rem)
		}
	}

	sleepUntil(250 * time.Millisecond)
	kill(1)
	sleepUntil(600 * time.Millisecond)
	kill(3)
	sleepUntil(1300 * time.Millisecond) // past the healing step
	close(stop)
	<-done
	d.Drain()

	// Invariant 2: bounded resolution. Every op either succeeded or
	// failed with ErrUnavailable, within the deadline plus slack. The
	// deadline check in the client happens between calls, so the last
	// in-flight leg can overshoot by one bounded sleep (≤ LossTimeout
	// under chaos); the rest of the slack absorbs race-detector
	// scheduling, which is far coarser than a RetryBase tick.
	slack := 25*time.Millisecond + 250*time.Millisecond
	acked := 0
	var worst time.Duration
	for _, r := range results {
		if r.err != nil && !errors.Is(r.err, core.ErrUnavailable) {
			t.Errorf("op %s: unexpected error class: %v", r.key, r.err)
		}
		if r.latency > cfg.OpDeadline+slack {
			t.Errorf("op %s took %v, deadline %v+%v", r.key, r.latency, cfg.OpDeadline, slack)
		}
		if r.latency > worst {
			worst = r.latency
		}
		if r.acked {
			acked++
		}
	}
	if len(results) == 0 || acked == 0 {
		t.Fatalf("soak made no progress: %d ops, %d acked", len(results), acked)
	}
	t.Logf("soak: %d ops, %d acked, %d unavailable, worst latency %v, over %v",
		len(results), acked, len(results)-acked, worst, time.Since(t0))

	// Invariant 1: durability of every acked write, read back through
	// a fresh fault-free client after healing.
	verifier, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, r := range results {
		if !r.acked {
			continue
		}
		v, err := verifier.Lookup(r.key)
		if err != nil || string(v) != "v:"+r.key {
			lost++
			t.Errorf("acked write %s lost: %q %v", r.key, v, err)
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost after two kills + partitions", lost)
	}
}
