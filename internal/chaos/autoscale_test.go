package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/metrics"
	"zht/internal/ring"
)

// The autoscale chaos soak (acceptance criterion for the elastic
// membership layer): double a loaded deployment one join at a time,
// then halve it one departure at a time, while (a) every worker
// client runs behind a seeded lossy network and (b) one fixed victim
// instance crashes (transport-down) for a window overlapping each
// membership change — so broadcasts are missed, migrations fail
// mid-flight and roll back, and stale members must converge through
// epoch gossip. The victim may end up failure-reported and marked
// Failed (the ring's fail-stop model has no rejoin), which is itself
// part of the chaos: failover promotion must then keep its keys
// readable. The invariants:
//
//  1. No acked write is ever lost: every key whose last mutation was
//     acknowledged (and never followed by an ambiguous failure) reads
//     back with that state after the churn heals.
//  2. Every instance still Alive in the final table converges to the
//     final ring epoch, and every alive replica's partition digest
//     matches its partition authority's.
//  3. Client latency stays bounded through the churn: the overall p99
//     never exceeds the operation deadline.
func TestAutoscaleChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscale soak skipped in -short mode")
	}
	mreg := metrics.NewRegistry()
	cfg := core.Config{
		NumPartitions:  64,
		Replicas:       1,
		AntiEntropy:    25 * time.Millisecond,
		OpRetries:      3,
		RetryBase:      time.Millisecond,
		RetryMax:       10 * time.Millisecond,
		OpDeadline:     3 * time.Second,
		MigrateRate:    1 << 20, // 1 MiB/s keeps rebalances from starving traffic
		GossipCooldown: 5 * time.Millisecond,
		Metrics:        mreg,
	}
	const n = 4
	d, reg, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Workers: each owns a chaos-wrapped client (steady seeded packet
	// loss), a private key space, and its own view of acked state. An
	// op error taints the key (its state is ambiguous: the mutation may
	// or may not have applied); a later acked op on the same key
	// untaints it. Only untainted keys are verified — that is exactly
	// the "no acked write lost" contract.
	const workers = 4
	const keysPerWorker = 300
	type workerState struct {
		expected map[string][]byte
		removed  map[string]bool // last acked op was a remove
		tainted  map[string]bool
		acked    int
		errs     int
	}
	states := make([]*workerState, workers)
	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		ws := &workerState{
			expected: make(map[string][]byte),
			removed:  make(map[string]bool),
			tainted:  make(map[string]bool),
		}
		states[w] = ws
		sc := &Scenario{Steps: []Step{
			{At: 0, Label: "steady loss", Rules: []Rule{Lossy("", "", 0.05)}},
		}}
		chaosCaller := Wrap(reg.NewClient(), sc, Options{Seed: int64(100 + w), LossTimeout: 10 * time.Millisecond})
		client, err := core.NewClient(cfg, d.Instance(0).Table(), chaosCaller)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, ws *workerState) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("as-%d-%04d", w, rng.Intn(keysPerWorker))
				switch r := rng.Float64(); {
				case r < 0.10 && ws.expected[key] != nil:
					if err := client.Remove(key); err != nil {
						ws.tainted[key] = true
						ws.errs++
						continue
					}
					delete(ws.expected, key)
					ws.removed[key] = true
					delete(ws.tainted, key)
					ws.acked++
				case r < 0.30:
					client.Lookup(key) // read traffic; no state to track
				default:
					val := []byte(fmt.Sprintf("w%d-%d", w, i))
					if err := client.Insert(key, val); err != nil {
						ws.tainted[key] = true
						ws.errs++
						continue
					}
					ws.expected[key] = val
					delete(ws.removed, key)
					delete(ws.tainted, key)
					ws.acked++
				}
			}
		}(w, ws)
	}

	// Preload, then snapshot the quiet-cluster latency baseline.
	time.Sleep(300 * time.Millisecond)
	latHist := mreg.Histogram("zht.client.op.all.latency_ns")
	baselineP99 := latHist.Quantile(0.99)

	// One fixed sacrificial victim for every crash window. Failure
	// reports filed while it is down mark it Failed permanently (the
	// ring is fail-stop); using one victim bounds the damage to a
	// single instance while still faulting every membership change.
	victim := d.Instance(1)
	chaosWindow := func() *sync.WaitGroup {
		var cw sync.WaitGroup
		cw.Add(1)
		go func() {
			defer cw.Done()
			reg.SetDown(victim.Addr(), true)
			time.Sleep(80 * time.Millisecond)
			reg.SetDown(victim.Addr(), false)
		}()
		return &cw
	}

	// Scale up: double 4 → 8, one join per crash window. Fault-induced
	// failures are acceptable (the giver or a replica may be the downed
	// victim); the join must roll back cleanly and eventually land.
	for j := 0; j < n; j++ {
		cw := chaosWindow()
		ep := core.Endpoint{Addr: fmt.Sprintf("zht-grow-%04d", j), Node: fmt.Sprintf("node-grow-%04d", j)}
		var jerr error
		for attempt := 0; attempt < 10; attempt++ {
			if _, jerr = d.Join(ep); jerr == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		cw.Wait()
		if jerr != nil {
			t.Fatalf("join %d never landed: %v", j, jerr)
		}
	}
	if got := d.Size(); got != 2*n {
		t.Fatalf("scale-up ended with %d instances, want %d", got, 2*n)
	}

	// Scale down: halve 8 → 4, departing the most recent joiner each
	// round, again with a crash window overlapping the migration.
	for j := 0; j < n; j++ {
		cw := chaosWindow()
		var derr error
		for attempt := 0; attempt < 10; attempt++ {
			if derr = d.Depart(d.Size() - 1); derr == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		cw.Wait()
		if derr != nil {
			t.Fatalf("departure %d never landed: %v", j, derr)
		}
	}
	if got := d.Size(); got != n {
		t.Fatalf("scale-down ended with %d instances, want %d", got, n)
	}

	close(stop)
	wg.Wait()
	d.Drain()

	// The authoritative view: the freshest table among survivors (the
	// final departure broadcast its delta to every gaining peer, so at
	// least one survivor holds the last epoch).
	byID := make(map[ring.InstanceID]*core.Instance)
	var final *ring.Table
	for _, in := range d.Instances() {
		byID[in.ID()] = in
		if tab := in.Table(); final == nil || tab.Epoch > final.Epoch {
			final = tab
		}
	}
	alive := func(id ring.InstanceID) bool {
		i := final.IndexOf(id)
		return i >= 0 && final.Status[i] == ring.Alive
	}
	// Invariant 2a: every instance still Alive agrees on the final
	// epoch (anyone who missed broadcasts during crash windows must
	// have converged through gossip). A Failed victim is exempt: the
	// ring stops talking to it, so it has no traffic to gossip over.
	deadline := time.Now().Add(20 * time.Second)
	for {
		lagging := ""
		for _, in := range d.Instances() {
			if alive(in.ID()) && in.Table().Epoch != final.Epoch {
				lagging = fmt.Sprintf("%s at %d, want %d", in.ID(), in.Table().Epoch, final.Epoch)
				break
			}
		}
		if lagging == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alive instances never agreed on the final epoch: %s (stale=%d pulls=%d advanced=%d full=%d)",
				lagging,
				mreg.Counter("zht.membership.stale_detected").Value(),
				mreg.Counter("zht.membership.gossip.pulls").Value(),
				mreg.Counter("zht.membership.gossip.advanced").Value(),
				mreg.Counter("zht.membership.gossip.full_tables").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Invariant 2b: alive replicas' digests converge to their partition
	// authority's (the owner, or its first alive replica when the owner
	// is the Failed victim).
	authority := func(p int) *core.Instance {
		if own := final.OwnerOf(p); alive(own.ID) {
			return byID[own.ID]
		}
		for _, r := range final.ReplicasOf(p, 1) {
			if alive(r.ID) {
				return byID[r.ID]
			}
		}
		return nil
	}
	converged := func() (bool, string) {
		for p := 0; p < cfg.NumPartitions; p++ {
			auth := authority(p)
			if auth == nil {
				return false, fmt.Sprintf("partition %d has no alive authority", p)
			}
			ad := auth.PartitionDigest(p)
			for _, r := range final.ReplicasOf(p, cfg.Replicas) {
				if r.ID == auth.ID() || !alive(r.ID) {
					continue
				}
				if !reflect.DeepEqual(ad, byID[r.ID].PartitionDigest(p)) {
					return false, fmt.Sprintf("partition %d replica %s", p, r.ID)
				}
			}
		}
		return true, ""
	}
	for {
		ok, where := converged()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never reached digest equality (stuck at %s)", where)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Invariant 1: every untainted acked key reads back with its last
	// acked state through a fresh fault-free client.
	verifier, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	lost, verified, acked, errsTotal := 0, 0, 0, 0
	for w, ws := range states {
		acked += ws.acked
		errsTotal += ws.errs
		for i := 0; i < keysPerWorker; i++ {
			key := fmt.Sprintf("as-%d-%04d", w, i)
			if ws.tainted[key] {
				continue
			}
			want, present := ws.expected[key]
			v, err := verifier.Lookup(key)
			switch {
			case present && (err != nil || string(v) != string(want)):
				lost++
				t.Errorf("acked write %s lost: got %q/%v want %q", key, v, err, want)
			case !present && ws.removed[key] && !errors.Is(err, core.ErrNotFound):
				lost++
				t.Errorf("acked removal of %s did not stick: got %q/%v", key, v, err)
			}
			verified++
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost across %d joins + %d departures under chaos", lost, n, n)
	}
	if acked == 0 {
		t.Fatal("soak made no progress: zero acked ops")
	}

	// Invariant 3: bounded latency inflation. The histogram is
	// cumulative, so the final p99 includes the churn window.
	p99 := latHist.Quantile(0.99)
	if p99 >= int64(cfg.OpDeadline) {
		t.Fatalf("p99 latency %v reached the op deadline %v", time.Duration(p99), cfg.OpDeadline)
	}
	t.Logf("autoscale soak: %d acked, %d ambiguous, %d keys verified, victim alive=%v; p99 %v (baseline %v); migrated %d partitions / %d pairs / %d bytes in %d cutovers (%d catch-up rounds, %d aborts, throttled %v)",
		acked, errsTotal, verified, alive(victim.ID()),
		time.Duration(p99), time.Duration(baselineP99),
		mreg.Counter("zht.migrate.partitions").Value(),
		mreg.Counter("zht.migrate.pairs").Value(),
		mreg.Counter("zht.migrate.bytes").Value(),
		mreg.Counter("zht.migrate.cutovers").Value(),
		mreg.Counter("zht.migrate.rounds").Value(),
		mreg.Counter("zht.migrate.aborts").Value(),
		time.Duration(mreg.Counter("zht.migrate.throttle_ns").Value()))
	t.Logf("membership: stale detections %d, gossip pulls %d, advanced %d, full tables %d",
		mreg.Counter("zht.membership.stale_detected").Value(),
		mreg.Counter("zht.membership.gossip.pulls").Value(),
		mreg.Counter("zht.membership.gossip.advanced").Value(),
		mreg.Counter("zht.membership.gossip.full_tables").Value())
	if mv := mreg.Counter("zht.migrate.cutovers").Value(); mv == 0 {
		t.Error("no migration cutovers recorded across 8 membership changes")
	}
	if mb := mreg.Counter("zht.migrate.bytes").Value(); mb == 0 {
		t.Error("no bytes streamed by the migration engine")
	}
}

// The gossip-only convergence test (acceptance criterion for the
// epoch piggyback): with the manager's delta broadcast suppressed for
// everyone but the instances gaining partitions, bystanders can learn
// of a membership change only by noticing newer epochs on ordinary
// traffic and pulling the missing deltas. After a join and a
// departure under load, every instance must still agree on the epoch.
func TestGossipOnlyEpochConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("gossip convergence soak skipped in -short mode")
	}
	mreg := metrics.NewRegistry()
	cfg := core.Config{
		NumPartitions:  64,
		Replicas:       1,
		AntiEntropy:    25 * time.Millisecond,
		OpRetries:      3,
		RetryBase:      time.Millisecond,
		RetryMax:       10 * time.Millisecond,
		OpDeadline:     2 * time.Second,
		GossipCooldown: 2 * time.Millisecond,
		GossipOnly:     true,
		Metrics:        mreg,
	}
	const n = 5
	d, _, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for w := 0; w < 3; w++ {
		client, err := d.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("go-%d-%04d", w, i%200)
				if err := client.Insert(key, []byte("x")); err != nil && !errors.Is(err, core.ErrUnavailable) {
					t.Errorf("insert %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)

	if _, err := d.Join(core.Endpoint{Addr: "zht-gossip-join", Node: "node-gossip"}); err != nil {
		t.Fatalf("join: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // let traffic carry the new epoch around
	if err := d.Depart(1); err != nil {
		t.Fatalf("depart: %v", err)
	}

	// Keep load flowing while polling: the piggyback needs traffic.
	deadline := time.Now().Add(15 * time.Second)
	for {
		epochs := make(map[uint64]bool)
		for _, in := range d.Instances() {
			epochs[in.Table().Epoch] = true
		}
		if len(epochs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("gossip-only epochs never converged: %v", epochs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	d.Drain()

	// With broadcasts suppressed, convergence can only have come from
	// gossip pulls — they must have fired.
	if adv := mreg.Counter("zht.membership.gossip.advanced").Value(); adv == 0 {
		t.Error("epochs converged but no gossip pull ever advanced a table — broadcast suppression is not in effect")
	}
	t.Logf("gossip-only: stale detections %d, pulls %d, advanced %d, full tables %d",
		mreg.Counter("zht.membership.stale_detected").Value(),
		mreg.Counter("zht.membership.gossip.pulls").Value(),
		mreg.Counter("zht.membership.gossip.advanced").Value(),
		mreg.Counter("zht.membership.gossip.full_tables").Value())
}
