package chaos

import (
	"errors"
	"fmt"
	"sync"
)

// ErrWALCrash is the error a WALCrash injects once its byte budget
// runs out. The storage layer wraps it in storage.ErrBroken, so
// callers match it with errors.Is on either sentinel.
var ErrWALCrash = errors.New("chaos: injected WAL crash")

// WALCrash is a storage.Fault that kills a write-ahead log after a
// seeded pseudo-random number of appended bytes, tearing the record
// in flight at a pseudo-random interior offset — the on-disk state a
// power loss mid-write leaves behind. Everything before the crash
// point reaches the file untouched; everything after it (including
// every later fsync) fails, which is exactly the contract a real
// dead disk presents. The crash point derives only from the seed, so
// a failing run is replayable byte for byte.
type WALCrash struct {
	mu      sync.Mutex
	budget  int64 // appended bytes remaining before the crash
	crashed bool
}

// NewWALCrash arms a crash after budget bytes in [minBytes,
// maxBytes), chosen deterministically from seed.
func NewWALCrash(seed int64, minBytes, maxBytes int) *WALCrash {
	if maxBytes <= minBytes {
		maxBytes = minBytes + 1
	}
	span := uint64(maxBytes - minBytes)
	return &WALCrash{budget: int64(minBytes) + int64(splitmix(uint64(seed))%span)}
}

// splitmix is SplitMix64: one multiply-xor-shift chain turns a seed
// into a well-mixed value without dragging in a shared RNG stream,
// matching how the rest of the package derives faults.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BeforeWrite implements storage.Fault: it passes records through
// until the budget crosses zero inside one, then delivers only the
// bytes up to the crash point and the injected error.
func (w *WALCrash) BeforeWrite(n int) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crashed {
		return 0, fmt.Errorf("%w (post-crash write)", ErrWALCrash)
	}
	if int64(n) <= w.budget {
		w.budget -= int64(n)
		return n, nil
	}
	keep := int(w.budget)
	w.crashed = true
	return keep, fmt.Errorf("%w (torn at byte %d of %d)", ErrWALCrash, keep, n)
}

// BeforeSync implements storage.Fault: fsync fails once the crash
// has fired.
func (w *WALCrash) BeforeSync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crashed {
		return fmt.Errorf("%w (post-crash fsync)", ErrWALCrash)
	}
	return nil
}

// Crashed reports whether the injected crash has fired yet.
func (w *WALCrash) Crashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}
