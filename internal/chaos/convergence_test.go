package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/hashing"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/wire"
)

// The anti-entropy convergence soak (acceptance criterion for the
// repair subsystem): partition one replica away, drive 10k mixed
// mutations under load, heal, and require that
//
//  1. every replica's partition digest equals its primary's — the
//     partitioned node converges through hinted-handoff replay plus
//     the anti-entropy loop (legs past the handoff cap are dropped
//     and counted; the loop is their backstop), within one
//     anti-entropy period of the handoff queue draining; and
//  2. zero acknowledged writes are lost: every key's final acked
//     state is readable afterwards.
//
// The victim is never failure-reported, so the membership table keeps
// it Alive throughout: this is a pure network partition, the exact
// fault write-time replication cannot heal on its own.
func TestAntiEntropyConvergesAfterPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence soak skipped in -short mode")
	}
	mreg := metrics.NewRegistry()
	const antiEntropy = 150 * time.Millisecond
	cfg := core.Config{
		NumPartitions: 32,
		Replicas:      1,
		AntiEntropy:   antiEntropy,
		HandoffCap:    256, // force overflow: ~2.5k legs target the victim
		OpRetries:     2,
		RetryBase:     time.Millisecond,
		RetryMax:      8 * time.Millisecond,
		OpDeadline:    2 * time.Second,
		// ONE: the whole soak writes into a partition whose sole replica
		// is unreachable — the point is that primaries keep acking while
		// handoff + anti-entropy carry the repair debt.
		WriteLevel: wire.ConsistencyOne,
		Metrics:    mreg,
	}
	const n = 4
	d, reg, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	table := d.Instance(0).Table()
	victim := d.Instance(1)
	byID := make(map[ring.InstanceID]*core.Instance)
	for _, in := range d.Instances() {
		byID[in.ID()] = in
	}
	hashf := hashing.ByName("")

	// Partition the victim: unreachable, but still Alive in every
	// table — primaries keep acking and their sync legs to it fail.
	reg.SetDown(victim.Addr(), true)

	// 10k mixed mutations over keys owned by reachable primaries
	// (keys owned by the victim would just go unavailable — a
	// different test's concern). expected tracks each key's final
	// acked state; nil means removed.
	rng := rand.New(rand.NewSource(11))
	expected := make(map[string][]byte)
	var pool []string
	for i := 0; len(pool) < 2000; i++ {
		key := fmt.Sprintf("conv-%05d", i)
		p := table.Partition(hashf(key))
		if table.OwnerOf(p).ID == victim.ID() {
			continue
		}
		pool = append(pool, key)
	}
	const ops = 10000
	for i := 0; i < ops; i++ {
		key := pool[rng.Intn(len(pool))]
		switch r := rng.Float64(); {
		case r < 0.15 && expected[key] != nil:
			if err := client.Remove(key); err != nil {
				t.Fatalf("remove %s: %v", key, err)
			}
			delete(expected, key)
		case r < 0.40:
			chunk := []byte(fmt.Sprintf("+%d", i))
			if err := client.Append(key, chunk); err != nil {
				t.Fatalf("append %s: %v", key, err)
			}
			expected[key] = append(expected[key], chunk...)
		default:
			val := []byte(fmt.Sprintf("v%d", i))
			if err := client.Insert(key, val); err != nil {
				t.Fatalf("insert %s: %v", key, err)
			}
			expected[key] = append([]byte(nil), val...)
		}
	}
	if q := mreg.Counter("zht.repair.handoff.queued").Value(); q < 1 {
		t.Fatalf("no legs entered hinted handoff during the partition (queued=%d)", q)
	}
	if dr := mreg.Counter("zht.repair.handoff.dropped").Value(); dr < 1 {
		t.Fatalf("handoff cap never overflowed (dropped=%d); the anti-entropy backstop went unexercised", dr)
	}

	// Heal and wait for digest equality: every partition, every
	// replica vs its primary.
	reg.SetDown(victim.Addr(), false)
	healed := time.Now()
	converged := func() (bool, string) {
		for p := 0; p < cfg.NumPartitions; p++ {
			owner := byID[table.OwnerOf(p).ID]
			od := owner.PartitionDigest(p)
			for _, r := range table.ReplicasOf(p, cfg.Replicas) {
				if r.ID == owner.ID() {
					continue
				}
				if !reflect.DeepEqual(od, byID[r.ID].PartitionDigest(p)) {
					return false, fmt.Sprintf("partition %d replica %s", p, r.ID)
				}
			}
		}
		return true, ""
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok, where := converged()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never reached digest equality (stuck at %s)", where)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("digest equality %v after heal (anti-entropy period %v; handoff queued=%d replayed=%d dropped=%d, digest syncs=%d, ranges pulled=%d)",
		time.Since(healed).Round(time.Millisecond), antiEntropy,
		mreg.Counter("zht.repair.handoff.queued").Value(),
		mreg.Counter("zht.repair.handoff.replayed").Value(),
		mreg.Counter("zht.repair.handoff.dropped").Value(),
		mreg.Counter("zht.repair.digest_syncs").Value(),
		mreg.Counter("zht.repair.ranges_pulled").Value())
	if got := mreg.Counter("zht.repair.digest_syncs").Value(); got < 1 {
		t.Fatalf("digest_syncs = %d, want >= 1", got)
	}

	// Zero lost acked writes: every key's final acked state survives.
	verifier, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, key := range pool {
		want, present := expected[key]
		v, err := verifier.Lookup(key)
		switch {
		case present && (err != nil || string(v) != string(want)):
			lost++
			t.Errorf("acked state of %s lost: got %q/%v want %q", key, v, err, want)
		case !present && err == nil:
			lost++
			t.Errorf("removed key %s resurfaced as %q", key, v)
		case !present && !errors.Is(err, core.ErrNotFound):
			// a removed key must read back as not-found, not an error
			if err != nil && !errors.Is(err, core.ErrNotFound) {
				t.Errorf("removed key %s: unexpected error %v", key, err)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost across partition + heal", lost)
	}
}
