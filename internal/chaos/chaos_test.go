package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"zht/internal/transport"
	"zht/internal/wire"
)

// chaosHarness is an inproc endpoint with a call counter, so tests
// can distinguish "request never delivered" from "ack lost".
type chaosHarness struct {
	reg   *transport.Registry
	calls atomic.Int64
}

func newHarness(t *testing.T, addr string) *chaosHarness {
	t.Helper()
	h := &chaosHarness{reg: transport.NewRegistry()}
	_, err := h.reg.Listen(addr, func(req *wire.Request) *wire.Response {
		h.calls.Add(1)
		return &wire.Response{Status: wire.StatusOK, Value: []byte(req.Key)}
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func always(sc []Rule) *Scenario { return &Scenario{Steps: []Step{{At: 0, Rules: sc}}} }

func TestDeterministicPerSeed(t *testing.T) {
	// Probabilistic rules on two destinations: same seed must yield an
	// identical decision trace; a different seed must diverge.
	rules := []Rule{
		{To: "a", Drop: 0.5, Dup: 0.3},
		{To: "b", DropReply: 0.5, Jitter: time.Millisecond},
	}
	run := func(seed int64) []Decision {
		h := newHarness(t, "a")
		if _, err := h.reg.Listen("b", func(req *wire.Request) *wire.Response {
			return &wire.Response{Status: wire.StatusOK}
		}); err != nil {
			t.Fatal(err)
		}
		c := Wrap(h.reg.NewClient(), always(rules), Options{
			Seed: seed, LossTimeout: time.Microsecond, Trace: true,
		})
		for i := 0; i < 40; i++ {
			c.Call("a", &wire.Request{Op: wire.OpLookup, Key: fmt.Sprint(i)})
			c.Call("b", &wire.Request{Op: wire.OpPing})
		}
		return c.Trace()
	}
	t1, t2, t3 := run(42), run(42), run(43)
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ for same seed: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	differs := len(t3) != len(t1)
	for i := 0; !differs && i < len(t1); i++ {
		differs = t1[i].Verdict != t3[i].Verdict || t1[i].Delay != t3[i].Delay
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical traces over 80 probabilistic calls")
	}
}

func TestDownFailsFast(t *testing.T) {
	h := newHarness(t, "a")
	c := Wrap(h.reg.NewClient(), always([]Rule{Down("a")}), Options{LossTimeout: time.Millisecond})
	_, err := c.Call("a", &wire.Request{Op: wire.OpPing})
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
	if n := h.calls.Load(); n != 0 {
		t.Fatalf("handler ran %d times on a downed endpoint", n)
	}
}

func TestDropLosesRequestBeforeHandler(t *testing.T) {
	h := newHarness(t, "a")
	c := Wrap(h.reg.NewClient(), always([]Rule{Lossy("", "a", 1.0)}), Options{LossTimeout: time.Millisecond})
	_, err := c.Call("a", &wire.Request{Op: wire.OpInsert, Key: "k", Value: []byte("v")})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if n := h.calls.Load(); n != 0 {
		t.Fatalf("handler ran %d times for a dropped request", n)
	}
}

func TestReplyLostAfterHandlerRan(t *testing.T) {
	// The ack-lost ambiguity: the op applies server-side but the
	// caller sees the same ErrTimeout as a lost request.
	h := newHarness(t, "a")
	c := Wrap(h.reg.NewClient(), always([]Rule{{To: "a", DropReply: 1.0}}), Options{LossTimeout: time.Millisecond})
	_, err := c.Call("a", &wire.Request{Op: wire.OpInsert, Key: "k", Value: []byte("v")})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if n := h.calls.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (op applied, ack lost)", n)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	h := newHarness(t, "a")
	c := Wrap(h.reg.NewClient(), always([]Rule{Duplicating("", "a", 1.0)}), Options{})
	resp, err := c.Call("a", &wire.Request{Op: wire.OpInsert, Key: "k", Value: []byte("v")})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("dup call failed: %+v %v", resp, err)
	}
	if n := h.calls.Load(); n != 2 {
		t.Fatalf("handler ran %d times, want 2 (original + duplicate)", n)
	}
}

func TestSlowLinkRespectsBudget(t *testing.T) {
	// Injected latency larger than the request budget must surface as
	// ErrTimeout in about the budget's time, not the latency's.
	h := newHarness(t, "a")
	c := Wrap(h.reg.NewClient(), always([]Rule{SlowLink("", "a", time.Minute, 0)}), Options{})
	start := time.Now()
	_, err := c.Call("a", &wire.Request{Op: wire.OpPing, Budget: uint64(20 * time.Millisecond)})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("budget-bounded loss took %v", el)
	}
}

func TestPartitionIsSymmetric(t *testing.T) {
	h := newHarness(t, "a")
	// Our source is "x": Partition("x","a") matched in either
	// direction cuts the call.
	c := Wrap(h.reg.NewClient(), always([]Rule{Partition("x", "a")}),
		Options{Source: "x", LossTimeout: time.Millisecond})
	if _, err := c.Call("a", &wire.Request{Op: wire.OpPing}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	// A different source is unaffected.
	c2 := Wrap(h.reg.NewClient(), always([]Rule{Partition("x", "a")}),
		Options{Source: "y", LossTimeout: time.Millisecond})
	if resp, err := c2.Call("a", &wire.Request{Op: wire.OpPing}); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("unpartitioned source blocked: %+v %v", resp, err)
	}
}

func TestScenarioSchedule(t *testing.T) {
	sc := &Scenario{Steps: []Step{
		{At: 0, Label: "healthy"},
		{At: 10 * time.Second, Label: "kill a", Rules: []Rule{Down("a")}},
		{At: 20 * time.Second, Label: "heal"},
	}}
	if got := sc.active(5 * time.Second); len(got) != 0 {
		t.Fatalf("t=5s: want no rules, got %+v", got)
	}
	if got := sc.active(15 * time.Second); len(got) != 1 || !got[0].Down {
		t.Fatalf("t=15s: want the Down rule, got %+v", got)
	}
	if got := sc.active(25 * time.Second); len(got) != 0 {
		t.Fatalf("t=25s: want healed, got %+v", got)
	}
	// Before the first step and with a nil scenario: no rules.
	var nilSc *Scenario
	if got := nilSc.active(time.Second); got != nil {
		t.Fatalf("nil scenario returned rules: %+v", got)
	}
}

func TestNoScenarioPassesThrough(t *testing.T) {
	h := newHarness(t, "a")
	c := Wrap(h.reg.NewClient(), nil, Options{Trace: true})
	resp, err := c.Call("a", &wire.Request{Op: wire.OpLookup, Key: "k"})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("passthrough failed: %+v %v", resp, err)
	}
	tr := c.Trace()
	if len(tr) != 1 || tr[0].Verdict != VerdictOK {
		t.Fatalf("trace = %+v, want one ok decision", tr)
	}
}
