package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zht/internal/transport"
	"zht/internal/wire"
)

// Pipelining under chaos: many concurrent callers share ONE
// multiplexed TCP connection, the server answers out of order, and the
// chaos layer injects delay and drop on top. Whatever interleaving
// results, every caller must receive the response to its own request —
// a demux bug (responses matched to the wrong sequence ID) shows up
// here as a value mismatch, not a hang.

// startEchoTCP runs a TCP server whose handler echoes the request key
// after a key-derived delay, so responses on a shared connection
// systematically overtake each other.
func startEchoTCP(t *testing.T) *transport.TCPServer {
	t.Helper()
	var echo func(req *wire.Request) *wire.Response
	echo = func(req *wire.Request) *wire.Response {
		if req.Op == wire.OpBatch {
			subs, err := wire.DecodeOps(req.Aux)
			if err != nil {
				return &wire.Response{Status: wire.StatusError, Err: err.Error()}
			}
			rs := make([]*wire.Response, len(subs))
			for i, s := range subs {
				rs[i] = echo(s)
			}
			return wire.NewBatchResponse(rs)
		}
		// Stagger: even sequence keys answer slowly, odd ones fast.
		var d time.Duration
		if len(req.Key) > 0 && req.Key[len(req.Key)-1]%2 == 0 {
			d = 3 * time.Millisecond
		}
		time.Sleep(d)
		return &wire.Response{Status: wire.StatusOK, Value: []byte("echo:" + req.Key)}
	}
	srv, err := transport.ListenTCP("127.0.0.1:0", echo, transport.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestPipelinedResponsesMatchCallersUnderDelay(t *testing.T) {
	srv := startEchoTCP(t)
	tcp := transport.NewTCPClient(transport.TCPClientOptions{
		ConnCache: true,
		Timeout:   5 * time.Second,
	})
	defer tcp.Close()
	// Jittered link: request and reply legs see different injected
	// delays per call, reordering arrivals even further.
	c := Wrap(tcp, always([]Rule{
		{To: srv.Addr(), Sym: true, Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
	}), Options{Seed: 11})

	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%02d-i%02d", w, i)
				resp, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpLookup, Key: key})
				if err != nil {
					errs <- fmt.Errorf("%s: %v", key, err)
					return
				}
				if string(resp.Value) != "echo:"+key {
					errs <- fmt.Errorf("caller %s got response %q: demux mismatch", key, resp.Value)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tcp.CachedConns() != 1 {
		t.Fatalf("pipelined callers used %d connections, want 1 shared", tcp.CachedConns())
	}
}

func TestPipelinedCallsSurviveDropsOnSharedConn(t *testing.T) {
	srv := startEchoTCP(t)
	tcp := transport.NewTCPClient(transport.TCPClientOptions{
		ConnCache: true,
		Timeout:   5 * time.Second,
	})
	defer tcp.Close()
	// 30% of requests are lost in flight; the caller gets a retriable
	// timeout. Survivors sharing the connection must still demux to
	// the right caller.
	c := Wrap(tcp, always([]Rule{
		{To: srv.Addr(), Drop: 0.3},
	}), Options{Seed: 5, LossTimeout: time.Millisecond})

	const workers, perWorker = 8, 20
	var ok, dropped atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("d%02d-i%02d", w, i)
				resp, err := c.Call(srv.Addr(), &wire.Request{Op: wire.OpLookup, Key: key})
				if err != nil {
					if !errors.Is(err, transport.ErrTimeout) && !errors.Is(err, transport.ErrUnreachable) {
						errs <- fmt.Errorf("%s: non-retriable error %v", key, err)
						return
					}
					dropped.Add(1)
					continue
				}
				if string(resp.Value) != "echo:"+key {
					errs <- fmt.Errorf("caller %s got response %q: demux mismatch after drops", key, resp.Value)
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ok.Load() == 0 || dropped.Load() == 0 {
		t.Fatalf("wanted a mix of outcomes, got ok=%d dropped=%d", ok.Load(), dropped.Load())
	}
}

func TestBatchEnvelopeSharesOneFaultVerdict(t *testing.T) {
	// A batch is one message: when the chaos layer drops it, every
	// sub-op fails together; when it passes, every sub-response must
	// line up with its sub-request positionally.
	srv := startEchoTCP(t)
	tcp := transport.NewTCPClient(transport.TCPClientOptions{
		ConnCache: true,
		Timeout:   5 * time.Second,
	})
	defer tcp.Close()
	c := Wrap(tcp, always([]Rule{
		{To: srv.Addr(), Drop: 0.4},
	}), Options{Seed: 3, LossTimeout: time.Millisecond})

	var delivered, lost int
	for round := 0; round < 30; round++ {
		reqs := make([]*wire.Request, 8)
		for i := range reqs {
			reqs[i] = &wire.Request{Op: wire.OpLookup, Key: fmt.Sprintf("b%02d-%d", round, i)}
		}
		rs, err := c.CallBatch(srv.Addr(), reqs)
		if err != nil {
			lost++ // whole envelope shares the verdict
			continue
		}
		delivered++
		if len(rs) != len(reqs) {
			t.Fatalf("round %d: %d sub-responses for %d sub-requests", round, len(rs), len(reqs))
		}
		for i, r := range rs {
			if string(r.Value) != "echo:"+reqs[i].Key {
				t.Fatalf("round %d sub %d: got %q, want echo of %q", round, i, r.Value, reqs[i].Key)
			}
		}
	}
	if delivered == 0 || lost == 0 {
		t.Fatalf("wanted both delivered and lost envelopes, got delivered=%d lost=%d", delivered, lost)
	}
}
