package chaos

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"zht/internal/core"
	"zht/internal/hashing"
	"zht/internal/metrics"
	"zht/internal/ring"
	"zht/internal/wire"
)

// pickReplicatedKey returns a key (and its partition) whose owner is
// not the victim and whose sole replica (Replicas=1) is the victim.
func pickReplicatedKey(t *testing.T, table *ring.Table, victim ring.InstanceID) (string, int) {
	t.Helper()
	hashf := hashing.ByName("")
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("lvl-%d", i)
		p := table.Partition(hashf(key))
		reps := table.ReplicasOf(p, 1)
		if table.OwnerOf(p).ID != victim && len(reps) == 1 && reps[0].ID == victim {
			return key, p
		}
	}
	t.Fatal("no key found with the victim as sole replica")
	return "", 0
}

// replicaRead reads a key straight off one instance's local copy via
// the replica-read fast path (no routing, no fan-out) — the probe the
// consistency tests use to inspect individual copies.
func replicaRead(in *core.Instance, p int, key string) ([]byte, bool) {
	resp := in.Handle(&wire.Request{
		Op: wire.OpLookup, Partition: int64(p), Key: key,
		Flags: wire.FlagReplicaRead,
	})
	if resp.Status != wire.StatusOK {
		return nil, false
	}
	return resp.Value, true
}

// TestQuorumReadYourWritesUnderChaos is the W+R>N acceptance soak:
// QUORUM writes followed immediately by QUORUM reads of the same key,
// under seeded message loss, ack loss, and one node crash mid-run.
// Every write that acks must be read back at its written value — a
// read may refuse (quorum unreachable) but may never return a stale
// value — and zero acked writes may be lost once the dust settles.
func TestQuorumReadYourWritesUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("consistency chaos soak skipped in -short mode")
	}
	cfg := core.Config{
		NumPartitions: 64,
		Replicas:      1, // copies=2 ⇒ QUORUM = both ⇒ W+R > N
		OpRetries:     2,
		RetryBase:     time.Millisecond,
		RetryMax:      8 * time.Millisecond,
		OpDeadline:    600 * time.Millisecond,
	}
	const n = 5
	d, reg, err := core.BootstrapInproc(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	everyone := ""
	sc := &Scenario{Steps: []Step{
		{At: 0, Label: "mild loss", Rules: []Rule{Lossy(everyone, everyone, 0.08)}},
		{At: 500 * time.Millisecond, Label: "loss + ack loss", Rules: []Rule{
			{To: everyone, Drop: 0.10, DropReply: 0.08},
		}},
		{At: 1000 * time.Millisecond, Label: "healed"},
	}}
	chaosCaller := Wrap(reg.NewClient(), sc, Options{Seed: 23, LossTimeout: 25 * time.Millisecond})
	t0 := time.Now()
	client, err := core.NewClient(cfg, d.Instance(0).Table(), chaosCaller)
	if err != nil {
		t.Fatal(err)
	}

	// kill: crash a node mid-traffic (soak_test.go's recipe: down it,
	// file the failure report, wait for every survivor's table, drain
	// so re-replication restores the factor).
	alive := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	kill := func(idx int) {
		t.Helper()
		victim := d.Instance(idx)
		reg.SetDown(victim.Addr(), true)
		alive[idx] = false
		var mgr *core.Instance
		for i := 0; i < n; i++ {
			if alive[i] {
				mgr = d.Instance(i)
				break
			}
		}
		resp := mgr.Handle(&wire.Request{Op: wire.OpReport, Key: string(victim.ID())})
		if resp.Status != wire.StatusOK {
			t.Fatalf("failure report rejected: %v %s", resp.Status, resp.Err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for {
				tab := d.Instance(i).Table()
				if j := tab.IndexOf(victim.ID()); j >= 0 && tab.Status[j] != ring.Alive {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("instance %d never learned of the crash", i)
				}
				time.Sleep(time.Millisecond)
			}
		}
		d.Drain()
	}

	tolerable := func(err error) bool {
		return errors.Is(err, core.ErrUnavailable) ||
			strings.Contains(err.Error(), "quorum not met")
	}

	acked := map[string][]byte{}
	staleReads, refusedReads, killed := 0, 0, false
	for i := 0; time.Since(t0) < 1200*time.Millisecond; i++ {
		if !killed && time.Since(t0) > 400*time.Millisecond {
			kill(2)
			killed = true
		}
		key := fmt.Sprintf("ryw-%05d", i)
		val := []byte("v:" + key)
		if err := client.InsertWith(key, val, wire.ConsistencyQuorum); err != nil {
			if !tolerable(err) {
				t.Fatalf("write %s: unexpected error class: %v", key, err)
			}
			continue // refused writes carry no read-back obligation
		}
		acked[key] = val
		// Read-your-writes: the immediate QUORUM read may refuse under
		// loss (retry a few times), but a returned value must be ours.
		var got []byte
		var rerr error
		for attempt := 0; attempt < 3; attempt++ {
			if got, rerr = client.LookupWith(key, wire.ConsistencyQuorum); rerr == nil {
				break
			}
			if !tolerable(rerr) && !errors.Is(rerr, core.ErrNotFound) {
				t.Fatalf("read %s: unexpected error class: %v", key, rerr)
			}
		}
		switch {
		case rerr != nil && errors.Is(rerr, core.ErrNotFound):
			staleReads++
			t.Errorf("acked write %s invisible to immediate QUORUM read", key)
		case rerr != nil:
			refusedReads++ // refusal is the permitted failure mode
		case string(got) != string(val):
			staleReads++
			t.Errorf("stale read-your-write on %s: got %q want %q", key, got, val)
		}
	}
	if len(acked) == 0 {
		t.Fatal("soak acked nothing; no invariant exercised")
	}
	if staleReads > 0 {
		t.Fatalf("%d stale or lost read-your-writes under chaos", staleReads)
	}

	// Quiesce, then the durability half: every acked write readable at
	// QUORUM through a fault-free client.
	d.Drain()
	verifier, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for key, want := range acked {
		v, err := verifier.LookupWith(key, wire.ConsistencyQuorum)
		if err != nil || string(v) != string(want) {
			lost++
			t.Errorf("acked QUORUM write %s lost: %q %v", key, v, err)
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked QUORUM writes lost across chaos + crash", lost)
	}
	t.Logf("read-your-writes soak: %d acked, %d reads refused (permitted), 0 stale", len(acked), refusedReads)
}

// TestOneStalenessAndQuorumRefusal is the deterministic contrast
// between the levels at Replicas=1: with the sole replica
// unreachable, a QUORUM write refuses while a ONE write acks — and
// the acked ONE write leaves the replica's copy observably stale
// (exactly the staleness ONE trades for availability, DESIGN.md §12)
// until hinted handoff replays the leg after the replica heals.
func TestOneStalenessAndQuorumRefusal(t *testing.T) {
	cfg := core.Config{
		NumPartitions: 32, Replicas: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
	}
	d, reg, err := core.BootstrapInproc(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	table := d.Instance(0).Table()
	victim := d.Instance(2)
	key, p := pickReplicatedKey(t, table, victim.ID())
	var owner *core.Instance
	for _, in := range d.Instances() {
		if in.ID() == table.OwnerOf(p).ID {
			owner = in
		}
	}

	// Both copies hold v1, then the replica drops off the network
	// (still Alive in every table: a partition, not a crash).
	if err := client.InsertWith(key, []byte("v1"), wire.ConsistencyAll); err != nil {
		t.Fatal(err)
	}
	reg.SetDown(victim.Addr(), true)

	// QUORUM refuses (needs 2/2, the replica can't ack)...
	if err := client.InsertWith(key, []byte("v2"), wire.ConsistencyQuorum); err == nil ||
		!strings.Contains(err.Error(), "quorum not met") {
		t.Fatalf("QUORUM write with replica partitioned: err = %v, want quorum-not-met", err)
	}
	// ...while ONE acks through the primary alone.
	if err := client.InsertWith(key, []byte("v2"), wire.ConsistencyOne); err != nil {
		t.Fatalf("ONE write with replica partitioned: %v", err)
	}

	// The documented ONE staleness window, made visible: the primary's
	// copy moved on, the replica's did not — a failover read served
	// from the replica right now would return v1.
	if v, ok := replicaRead(owner, p, key); !ok || string(v) != "v2" {
		t.Fatalf("primary copy = %q %v, want v2", v, ok)
	}
	if v, ok := replicaRead(victim, p, key); !ok || string(v) != "v1" {
		t.Fatalf("replica copy = %q %v, want stale v1 while partitioned", v, ok)
	}

	// Heal: hinted handoff replays the dropped leg and the staleness
	// window closes without any read traffic.
	reg.SetDown(victim.Addr(), false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := replicaRead(victim, p, key); ok && string(v) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			v, ok := replicaRead(victim, p, key)
			t.Fatalf("replica never converged after heal: %q %v", v, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRepairNeverRegressesVersions soaks the version-aware repair
// plumbing: sequential acked overwrites of a fixed key set while the
// replica's connectivity flaps and a fast anti-entropy loop runs
// throughout. Whatever interleaving of hinted-handoff replays and
// Merkle repair rounds occurs, no copy may end up holding anything
// older than the last acked write — repair must never resurrect an
// overwritten value.
func TestRepairNeverRegressesVersions(t *testing.T) {
	if testing.Short() {
		t.Skip("repair regression soak skipped in -short mode")
	}
	mreg := metrics.NewRegistry()
	cfg := core.Config{
		NumPartitions: 32, Replicas: 1,
		AntiEntropy: 20 * time.Millisecond,
		HandoffCap:  8, // overflow under the flap → anti-entropy must close the gap
		RetryBase:   time.Millisecond, RetryMax: 4 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
		// ONE: writes keep acking while the replica flaps; every ack is
		// a version the repair machinery must preserve.
		WriteLevel: wire.ConsistencyOne,
		Metrics:    mreg,
	}
	d, reg, err := core.BootstrapInproc(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client, err := d.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	table := d.Instance(0).Table()
	victim := d.Instance(1)
	hashf := hashing.ByName("")
	byID := map[ring.InstanceID]*core.Instance{}
	for _, in := range d.Instances() {
		byID[in.ID()] = in
	}

	// Keys owned by the two stable nodes (so every write acks) spread
	// across partitions; many have the flapping victim as replica.
	var keys []string
	for i := 0; len(keys) < 40; i++ {
		key := fmt.Sprintf("regress-%04d", i)
		if table.OwnerOf(table.Partition(hashf(key))).ID != victim.ID() {
			keys = append(keys, key)
		}
	}

	expected := map[string]string{}
	const rounds = 24
	for r := 0; r < rounds; r++ {
		reg.SetDown(victim.Addr(), r%6 >= 3) // flap: 3 rounds up, 3 down
		for _, key := range keys {
			val := fmt.Sprintf("round-%02d:%s", r, key)
			if err := client.Insert(key, []byte(val)); err != nil {
				t.Fatalf("round %d insert %s: %v", r, key, err)
			}
			expected[key] = val
		}
		time.Sleep(5 * time.Millisecond) // let anti-entropy interleave
	}

	// Heal and require convergence of EVERY copy to the final acked
	// value — an older round's value on any copy is a repair
	// regression.
	reg.SetDown(victim.Addr(), false)
	d.Drain()
	stale := func() (int, string) {
		for _, key := range keys {
			p := table.Partition(hashf(key))
			want := expected[key]
			for _, rep := range append([]ring.Instance{table.OwnerOf(p)}, table.ReplicasOf(p, 1)...) {
				v, ok := replicaRead(byID[rep.ID], p, key)
				if !ok || string(v) != want {
					return 1, fmt.Sprintf("%s on %s: %q (ok=%v) want %q", key, rep.ID, v, ok, want)
				}
			}
		}
		return 0, ""
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, where := stale()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("copies never converged to the last acked versions (stuck at %s)", where)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := mreg.Counter("zht.repair.digest_syncs").Value(); got < 1 {
		t.Fatalf("digest_syncs = %d; the soak never exercised anti-entropy", got)
	}
	t.Logf("version regression soak: %d keys x %d rounds, digest_syncs=%d handoff replayed=%d dropped=%d conflicts=%d",
		len(keys), rounds,
		mreg.Counter("zht.repair.digest_syncs").Value(),
		mreg.Counter("zht.repair.handoff.replayed").Value(),
		mreg.Counter("zht.repair.handoff.dropped").Value(),
		mreg.Counter("zht.consistency.version_conflicts").Value())
}
