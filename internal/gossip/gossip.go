// Package gossip implements anti-entropy membership dissemination for
// ZHT: every instance piggybacks its ring epoch on normal
// request/response traffic (wire.Request.Epoch / wire.Response.Epoch),
// and a holder that observes a newer epoch pulls the missing
// ring.Deltas — or the full table when the peer's delta log no longer
// covers the gap — from the peer it just talked to. The central
// manager broadcast (core.Manager) thus becomes a best-effort latency
// optimization rather than a correctness requirement: a partitioned or
// crashed node re-converges on its own, the way epoch-stamped
// single-hop DHTs (Monnerat, arXiv:1408.7070) keep full routing tables
// fresh with low maintenance traffic.
//
// The package owns the mechanism — staleness detection, single-flight
// rate-limited pull rounds, and the pull payload codec — while
// internal/core owns the policy: what a pull fetches (wire.OpDeltaPull
// against the instance's ring.DeltaLog) and how frames apply to the
// local table.
package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"zht/internal/metrics"
)

// DefaultCooldown is the minimum interval between pull rounds. Epoch
// mismatches arrive with every message from a newer peer; the cooldown
// collapses those bursts into one catch-up pull per interval.
const DefaultCooldown = 25 * time.Millisecond

// DefaultMaxFallback bounds how many fallback peers one round tries
// when the staleness signal names no source (an inbound request from
// an unknown sender carried the newer epoch).
const DefaultMaxFallback = 3

// Options configures a Service. Epoch and Pull are mandatory.
type Options struct {
	// Epoch returns the holder's current membership epoch.
	Epoch func() uint64
	// Pull fetches missing membership state from addr and applies it
	// locally, reporting whether the local epoch advanced. The
	// implementation decides between delta replay and full-table
	// adoption (see wire.OpDeltaPull).
	Pull func(addr string) bool
	// Peers returns fallback pull sources (peer addresses, excluding
	// the holder) consulted when a round's named source is empty or
	// exhausted. May be nil: rounds then only use the named source.
	Peers func() []string
	// Cooldown is the minimum interval between pull rounds; 0 means
	// DefaultCooldown.
	Cooldown time.Duration
	// MaxFallback bounds fallback sources tried per round; 0 means
	// DefaultMaxFallback.
	MaxFallback int
	// Metrics, when non-nil, receives the zht.membership.* gossip
	// instruments.
	Metrics *metrics.Registry
}

// Service watches epoch observations and runs catch-up pulls. All
// methods are safe for concurrent use and nil-safe, so holders without
// gossip (disabled via configuration) pass a nil *Service around.
type Service struct {
	opts Options

	mu       sync.Mutex
	inflight bool
	last     time.Time
	closed   bool
	rot      int // fallback rotation cursor, so retries spread over peers
	wg       sync.WaitGroup

	staleDetected *metrics.Counter // zht.membership.stale_detected
	pulls         *metrics.Counter // zht.membership.gossip.pulls
	advanced      *metrics.Counter // zht.membership.gossip.advanced
}

// New creates a Service. It returns an error if Epoch or Pull is nil.
func New(opts Options) (*Service, error) {
	if opts.Epoch == nil || opts.Pull == nil {
		return nil, errors.New("gossip: Epoch and Pull are required")
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	if opts.MaxFallback <= 0 {
		opts.MaxFallback = DefaultMaxFallback
	}
	return &Service{
		opts:          opts,
		staleDetected: opts.Metrics.Counter("zht.membership.stale_detected"),
		pulls:         opts.Metrics.Counter("zht.membership.gossip.pulls"),
		advanced:      opts.Metrics.Counter("zht.membership.gossip.advanced"),
	}, nil
}

// Observe reports that traffic with addr carried peerEpoch. When the
// peer is ahead of the local table, a background pull round starts —
// from addr when known (the peer that proved it has newer state is the
// best source), falling back to Peers() otherwise — unless a round is
// already running or ran within the cooldown. addr may be empty: an
// inbound request revealed the staleness but not a reachable sender.
func (s *Service) Observe(addr string, peerEpoch uint64) {
	if s == nil || peerEpoch == 0 || peerEpoch <= s.opts.Epoch() {
		return
	}
	s.staleDetected.Inc()
	s.mu.Lock()
	if s.closed || s.inflight || time.Since(s.last) < s.opts.Cooldown {
		s.mu.Unlock()
		return
	}
	s.inflight = true
	s.wg.Add(1)
	s.mu.Unlock()
	go s.round(addr, peerEpoch)
}

// round runs one catch-up pull: the named source first, then up to
// MaxFallback peers, stopping as soon as the local epoch reaches the
// observed target (later observations start fresh rounds for anything
// newer still).
func (s *Service) round(addr string, target uint64) {
	defer func() {
		s.mu.Lock()
		s.inflight = false
		s.last = time.Now()
		s.mu.Unlock()
		s.wg.Done()
	}()
	try := func(a string) bool {
		if a == "" {
			return false
		}
		s.pulls.Inc()
		if s.opts.Pull(a) {
			s.advanced.Inc()
			return true
		}
		return false
	}
	try(addr)
	if s.opts.Epoch() >= target || s.opts.Peers == nil {
		return
	}
	peers := s.opts.Peers()
	if len(peers) == 0 {
		return
	}
	s.mu.Lock()
	start := s.rot
	s.rot++
	s.mu.Unlock()
	for i := 0; i < len(peers) && i < s.opts.MaxFallback; i++ {
		p := peers[(start+i)%len(peers)]
		if p == addr {
			continue
		}
		try(p)
		if s.opts.Epoch() >= target {
			return
		}
	}
}

// Close stops the service: no new rounds start, and Close returns once
// the in-flight round (if any) finishes.
func (s *Service) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Pull payload codec: the Value of a wire.OpDeltaPull response.
//
//	'G' 'D' count {len frame}...   ordered delta frames to replay
//	'G' 'T' table                  full encoded table (gap fallback)
const (
	payloadMagic  = 'G'
	payloadDeltas = 'D'
	payloadTable  = 'T'
)

// maxPullFrames guards the decoder against corrupt counts; no honest
// delta log retains anywhere near this many entries.
const maxPullFrames = 1 << 16

var errMalformed = errors.New("gossip: malformed pull payload")

// EncodeDeltas packs ordered delta frames into a pull payload. A nil
// or empty frames slice is valid: "you are already current".
func EncodeDeltas(frames [][]byte) []byte {
	n := 3
	for _, f := range frames {
		n += binary.MaxVarintLen64 + len(f)
	}
	out := make([]byte, 2, n)
	out[0], out[1] = payloadMagic, payloadDeltas
	out = binary.AppendUvarint(out, uint64(len(frames)))
	for _, f := range frames {
		out = binary.AppendUvarint(out, uint64(len(f)))
		out = append(out, f...)
	}
	return out
}

// EncodeFullTable packs an encoded ring table into a pull payload —
// the fallback when the delta log cannot cover the requester's gap.
func EncodeFullTable(encTable []byte) []byte {
	out := make([]byte, 0, 2+len(encTable))
	out = append(out, payloadMagic, payloadTable)
	return append(out, encTable...)
}

// DecodePull parses a pull payload: exactly one of frames and table is
// non-nil on success (an empty delta payload yields frames == nil,
// table == nil, err == nil — "already current"). Returned slices alias
// b; callers that retain them must copy.
func DecodePull(b []byte) (frames [][]byte, table []byte, err error) {
	if len(b) < 2 || b[0] != payloadMagic {
		return nil, nil, errMalformed
	}
	switch b[1] {
	case payloadTable:
		if len(b) == 2 {
			return nil, nil, errMalformed
		}
		return nil, b[2:], nil
	case payloadDeltas:
		rest := b[2:]
		n, m := binary.Uvarint(rest)
		if m <= 0 || n > maxPullFrames {
			return nil, nil, errMalformed
		}
		rest = rest[m:]
		for i := uint64(0); i < n; i++ {
			l, m := binary.Uvarint(rest)
			if m <= 0 || uint64(len(rest[m:])) < l {
				return nil, nil, errMalformed
			}
			frames = append(frames, rest[m:m+int(l)])
			rest = rest[m+int(l):]
		}
		if len(rest) != 0 {
			return nil, nil, errMalformed
		}
		return frames, nil, nil
	}
	return nil, nil, fmt.Errorf("%w: kind %q", errMalformed, b[1])
}
