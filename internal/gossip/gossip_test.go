package gossip

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zht/internal/metrics"
)

// harness wires a Service to a fake epoch and a recording Pull.
type harness struct {
	epoch  atomic.Uint64
	mu     sync.Mutex
	pulled []string
	// advanceTo, when nonzero, is the epoch a successful pull jumps to.
	advanceTo atomic.Uint64
	peers     func() []string
}

func (h *harness) pull(addr string) bool {
	h.mu.Lock()
	h.pulled = append(h.pulled, addr)
	h.mu.Unlock()
	if to := h.advanceTo.Load(); to > h.epoch.Load() {
		h.epoch.Store(to)
		return true
	}
	return false
}

func (h *harness) sources() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.pulled...)
}

func newHarness(t *testing.T, opts Options) (*harness, *Service) {
	t.Helper()
	h := &harness{}
	opts.Epoch = h.epoch.Load
	opts.Pull = h.pull
	if opts.Peers == nil {
		opts.Peers = func() []string {
			if h.peers == nil {
				return nil
			}
			return h.peers()
		}
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return h, s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestObservePullsFromNamedSource(t *testing.T) {
	h, s := newHarness(t, Options{Cooldown: time.Millisecond})
	h.epoch.Store(3)
	h.advanceTo.Store(7)
	s.Observe("peer-a", 7)
	waitFor(t, "pull from peer-a", func() bool {
		src := h.sources()
		return len(src) == 1 && src[0] == "peer-a"
	})
	if h.epoch.Load() != 7 {
		t.Fatalf("epoch = %d, want 7", h.epoch.Load())
	}
}

func TestObserveIgnoresStaleAndEqualEpochs(t *testing.T) {
	h, s := newHarness(t, Options{Cooldown: time.Millisecond})
	h.epoch.Store(5)
	s.Observe("peer-a", 0)
	s.Observe("peer-a", 4)
	s.Observe("peer-a", 5)
	time.Sleep(20 * time.Millisecond)
	if n := len(h.sources()); n != 0 {
		t.Fatalf("%d pulls for non-newer epochs, want 0", n)
	}
}

func TestObserveCoalescesBursts(t *testing.T) {
	h, s := newHarness(t, Options{Cooldown: time.Second})
	h.advanceTo.Store(9)
	for i := 0; i < 50; i++ {
		s.Observe("peer-a", 9)
	}
	waitFor(t, "first pull", func() bool { return len(h.sources()) >= 1 })
	// Within the cooldown every further observation must be swallowed.
	for i := 0; i < 50; i++ {
		s.Observe("peer-a", 11)
	}
	time.Sleep(20 * time.Millisecond)
	if n := len(h.sources()); n != 1 {
		t.Fatalf("%d pulls during cooldown, want 1", n)
	}
}

func TestFallbackPeersWhenSourceUnknown(t *testing.T) {
	h, s := newHarness(t, Options{Cooldown: time.Millisecond, MaxFallback: 2})
	h.peers = func() []string { return []string{"p1", "p2", "p3"} }
	// Pull never advances, so the round walks the fallback list.
	s.Observe("", 5)
	waitFor(t, "fallback pulls", func() bool { return len(h.sources()) >= 2 })
	time.Sleep(20 * time.Millisecond)
	if n := len(h.sources()); n != 2 {
		t.Fatalf("%d pulls, want exactly MaxFallback=2", n)
	}
	for _, src := range h.sources() {
		if src == "" {
			t.Fatal("round pulled from the empty source")
		}
	}
}

func TestFallbackStopsOnceCurrent(t *testing.T) {
	h, s := newHarness(t, Options{Cooldown: time.Millisecond, MaxFallback: 3})
	h.peers = func() []string { return []string{"p1", "p2", "p3"} }
	h.advanceTo.Store(6)
	s.Observe("", 6)
	waitFor(t, "one pull", func() bool { return len(h.sources()) >= 1 })
	time.Sleep(20 * time.Millisecond)
	if n := len(h.sources()); n != 1 {
		t.Fatalf("%d pulls after reaching target, want 1", n)
	}
}

func TestCloseWaitsAndStopsRounds(t *testing.T) {
	h, s := newHarness(t, Options{Cooldown: time.Millisecond})
	h.advanceTo.Store(2)
	s.Observe("peer-a", 2)
	s.Close()
	before := len(h.sources())
	s.Observe("peer-a", 99)
	time.Sleep(20 * time.Millisecond)
	if n := len(h.sources()); n != before {
		t.Fatalf("pull after Close: %d -> %d", before, n)
	}
}

func TestNilServiceIsSafe(t *testing.T) {
	var s *Service
	s.Observe("peer", 99)
	s.Close()
}

func TestNewRequiresCallbacks(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted empty Options")
	}
	if _, err := New(Options{Epoch: func() uint64 { return 0 }}); err == nil {
		t.Fatal("New accepted Options without Pull")
	}
}

func TestMetricsCount(t *testing.T) {
	reg := metrics.NewRegistry()
	h := &harness{}
	s, err := New(Options{
		Epoch:    h.epoch.Load,
		Pull:     h.pull,
		Cooldown: time.Millisecond,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h.advanceTo.Store(4)
	s.Observe("peer-a", 4)
	waitFor(t, "metrics", func() bool {
		return reg.Counter("zht.membership.gossip.advanced").Value() == 1
	})
	if v := reg.Counter("zht.membership.stale_detected").Value(); v != 1 {
		t.Fatalf("stale_detected = %d, want 1", v)
	}
	if v := reg.Counter("zht.membership.gossip.pulls").Value(); v != 1 {
		t.Fatalf("pulls = %d, want 1", v)
	}
}

func TestPayloadDeltasRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{[]byte("one")},
		{[]byte("a"), []byte(""), []byte("ccc")},
		{bytes.Repeat([]byte{0xfe}, 300)},
	}
	for i, frames := range cases {
		got, table, err := DecodePull(EncodeDeltas(frames))
		if err != nil || table != nil {
			t.Fatalf("case %d: err=%v table=%v", i, err, table)
		}
		if len(got) != len(frames) {
			t.Fatalf("case %d: %d frames, want %d", i, len(got), len(frames))
		}
		for j := range frames {
			if !bytes.Equal(got[j], frames[j]) {
				t.Fatalf("case %d frame %d mismatch", i, j)
			}
		}
	}
}

func TestPayloadTableRoundTrip(t *testing.T) {
	enc := []byte("ZHTT-encoded-table")
	frames, table, err := DecodePull(EncodeFullTable(enc))
	if err != nil || frames != nil {
		t.Fatalf("err=%v frames=%v", err, frames)
	}
	if !bytes.Equal(table, enc) {
		t.Fatalf("table = %q, want %q", table, enc)
	}
}

func TestPayloadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'G'},
		{'X', 'D', 0},
		{'G', 'Z', 1},
		{'G', 'T'},            // table kind with no table
		{'G', 'D', 2, 1, 'a'}, // count 2 but one frame
		{'G', 'D', 1, 5, 'a'}, // frame length overruns
		append(EncodeDeltas([][]byte{[]byte("x")}), 0), // trailing junk
		{'G', 'D', 0xff, 0xff, 0xff, 0xff, 0x7f},       // count bomb
	}
	for i, b := range cases {
		if _, _, err := DecodePull(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
