package wire

import "testing"

func TestConsistencyAcks(t *testing.T) {
	cases := []struct {
		level  Consistency
		copies int
		want   int
	}{
		// ONE: always a single copy, regardless of the copy count.
		{ConsistencyOne, 1, 1},
		{ConsistencyOne, 3, 1},
		{ConsistencyOne, 0, 1}, // degenerate copy counts clamp to 1
		// QUORUM: floor(copies/2)+1 — majorities of 1..5 copies.
		{ConsistencyQuorum, 1, 1},
		{ConsistencyQuorum, 2, 2},
		{ConsistencyQuorum, 3, 2},
		{ConsistencyQuorum, 4, 3},
		{ConsistencyQuorum, 5, 3},
		// ALL: every copy.
		{ConsistencyAll, 1, 1},
		{ConsistencyAll, 3, 3},
		// Default resolves as Quorum (the paper-equivalent mode).
		{ConsistencyDefault, 3, 2},
		{ConsistencyDefault, 1, 1},
	}
	for _, c := range cases {
		if got := c.level.Acks(c.copies); got != c.want {
			t.Errorf("%v.Acks(%d) = %d, want %d", c.level, c.copies, got, c.want)
		}
	}
}

func TestParseConsistency(t *testing.T) {
	for s, want := range map[string]Consistency{
		"":        ConsistencyDefault,
		"default": ConsistencyDefault,
		"one":     ConsistencyOne,
		"ONE":     ConsistencyOne,
		"1":       ConsistencyOne,
		"quorum":  ConsistencyQuorum,
		"QUORUM":  ConsistencyQuorum,
		"all":     ConsistencyAll,
		"ALL":     ConsistencyAll,
	} {
		got, err := ParseConsistency(s)
		if err != nil || got != want {
			t.Errorf("ParseConsistency(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseConsistency("most"); err == nil {
		t.Error("ParseConsistency must reject unknown level names")
	}
	for _, lvl := range []Consistency{ConsistencyDefault, ConsistencyOne, ConsistencyQuorum, ConsistencyAll} {
		if back, err := ParseConsistency(lvl.String()); err != nil || back != lvl {
			t.Errorf("String/Parse roundtrip of %v: %v, %v", lvl, back, err)
		}
	}
}
