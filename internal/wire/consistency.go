package wire

import "fmt"

// Consistency is the per-request consistency level carried in the
// request envelope. The paper fixes replication at "synchronous first
// replica, asynchronous rest" (§III.J); the level generalizes that
// single point into the Dynamo-style tunable spectrum. For writes it
// names how many copies (primary + replicas) must acknowledge before
// the client's op returns; for reads, how many copies are consulted
// before the newest version wins.
type Consistency uint8

const (
	// ConsistencyDefault defers to the node's configured default
	// (Config.WriteLevel / Config.ReadLevel). Zero on the wire, so
	// envelopes from older senders decode as "use the default" and the
	// field costs nothing when unused.
	ConsistencyDefault Consistency = iota
	// ConsistencyOne acks after a single copy: the primary's apply for
	// writes (every replica leg goes async), the first reachable
	// copy's answer for reads.
	ConsistencyOne
	// ConsistencyQuorum requires floor(copies/2)+1 copies, where
	// copies = 1 primary + Config.Replicas. At Replicas ≤ 2 this is
	// the paper's mode: primary plus one synchronous replica leg.
	ConsistencyQuorum
	// ConsistencyAll requires every copy. For writes this subsumes the
	// legacy SyncReplication=true mode.
	ConsistencyAll
	consistencyMax
)

func (c Consistency) String() string {
	switch c {
	case ConsistencyDefault:
		return "default"
	case ConsistencyOne:
		return "one"
	case ConsistencyQuorum:
		return "quorum"
	case ConsistencyAll:
		return "all"
	}
	return fmt.Sprintf("consistency(%d)", uint8(c))
}

// ParseConsistency maps a level name (as accepted by CLI flags and
// config files) to its Consistency value.
func ParseConsistency(s string) (Consistency, error) {
	switch s {
	case "", "default":
		return ConsistencyDefault, nil
	case "one", "ONE", "1":
		return ConsistencyOne, nil
	case "quorum", "QUORUM":
		return ConsistencyQuorum, nil
	case "all", "ALL":
		return ConsistencyAll, nil
	}
	return 0, fmt.Errorf("wire: unknown consistency level %q", s)
}

// Acks returns how many copies the level requires out of the given
// copy count (primary + replicas). Default resolves as Quorum, the
// paper-equivalent mode.
func (c Consistency) Acks(copies int) int {
	if copies < 1 {
		copies = 1
	}
	switch c {
	case ConsistencyOne:
		return 1
	case ConsistencyAll:
		return copies
	default: // Default, Quorum
		return copies/2 + 1
	}
}
