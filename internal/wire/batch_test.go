package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func sampleOps() []*Request {
	return []*Request{
		{Op: OpInsert, Key: "alpha", Value: []byte("v1"), Epoch: 3, Budget: 1000},
		{Op: OpLookup, Key: "beta", Epoch: 3},
		{Op: OpRemove, Key: "gamma", Epoch: 7},
		{Op: OpAppend, Key: "alpha", Value: []byte("+more"), Aux: []byte("aux")},
		{Op: OpReplicate, Partition: 42, Key: "delta", Value: []byte("rv"), Flags: FlagNoReplicate},
	}
}

func TestBatchOpsRoundTrip(t *testing.T) {
	in := sampleOps()
	enc := EncodeOps(nil, in)
	out, err := DecodeOps(enc)
	if err != nil {
		t.Fatalf("DecodeOps: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Op != in[i].Op || out[i].Key != in[i].Key ||
			!bytes.Equal(out[i].Value, in[i].Value) || !bytes.Equal(out[i].Aux, in[i].Aux) ||
			out[i].Epoch != in[i].Epoch || out[i].Budget != in[i].Budget ||
			out[i].Partition != in[i].Partition || out[i].Flags != in[i].Flags {
			t.Fatalf("op %d does not round-trip: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchResponsesRoundTrip(t *testing.T) {
	in := []*Response{
		{Status: StatusOK, Value: []byte("hit")},
		{Status: StatusNotFound},
		{Status: StatusWrongOwner, Table: []byte("tbl")},
		{Status: StatusError, Err: "boom"},
		{Status: StatusBusy, RetryAfter: 12345},
	}
	enc := EncodeResponses(nil, in)
	out, err := DecodeResponses(enc)
	if err != nil {
		t.Fatalf("DecodeResponses: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d responses, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Status != in[i].Status || !bytes.Equal(out[i].Value, in[i].Value) ||
			!bytes.Equal(out[i].Table, in[i].Table) || out[i].Err != in[i].Err ||
			out[i].RetryAfter != in[i].RetryAfter {
			t.Fatalf("response %d does not round-trip: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchEnvelopeThroughMessageCodec(t *testing.T) {
	subs := sampleOps()
	env := NewBatchRequest(subs)
	if env.Op != OpBatch {
		t.Fatalf("envelope op = %v", env.Op)
	}
	if env.Epoch != 7 || env.Budget != 1000 {
		t.Fatalf("envelope should inherit max epoch/budget, got epoch=%d budget=%d", env.Epoch, env.Budget)
	}
	dec, err := DecodeRequest(EncodeRequest(nil, env))
	if err != nil {
		t.Fatalf("envelope through message codec: %v", err)
	}
	got, err := DecodeOps(dec.Aux)
	if err != nil || len(got) != len(subs) {
		t.Fatalf("sub-ops after transit: %d, %v", len(got), err)
	}
}

func TestDecodeOpsRejectsNestedBatch(t *testing.T) {
	inner := NewBatchRequest([]*Request{{Op: OpLookup, Key: "k"}})
	enc := EncodeOps(nil, []*Request{inner})
	if _, err := DecodeOps(enc); err == nil {
		t.Fatal("nested batch accepted")
	}
}

func TestUnpackBatchResponses(t *testing.T) {
	subs := []*Response{{Status: StatusOK, Value: []byte("a")}, {Status: StatusNotFound}}
	env := NewBatchResponse(subs)
	got, err := UnpackBatchResponses(env, 2)
	if err != nil || len(got) != 2 || got[0].Status != StatusOK || got[1].Status != StatusNotFound {
		t.Fatalf("unpack: %v %+v", err, got)
	}
	// Count mismatch is a protocol violation, not silently tolerated.
	if _, err := UnpackBatchResponses(env, 3); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// A message-level verdict (busy shed) fans out to every sub-slot.
	busy := &Response{Status: StatusBusy, RetryAfter: 99}
	got, err = UnpackBatchResponses(busy, 2)
	if err != nil || len(got) != 2 {
		t.Fatalf("fan-out: %v", err)
	}
	for _, r := range got {
		if r.Status != StatusBusy || r.RetryAfter != 99 {
			t.Fatalf("fan-out response = %+v", r)
		}
	}
}

// TestBatchDecodeNeverPanics is the batch codec's fuzzer, mirroring
// TestDecodeNeverPanics: random soup and bit-flipped valid payloads
// must error or round-trip, never panic.
func TestBatchDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	validOps := EncodeOps(nil, sampleOps())
	validResps := EncodeResponses(nil, []*Response{
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusWrongOwner, Table: []byte("t")},
	})
	for i := 0; i < 5000; i++ {
		var b []byte
		switch i % 3 {
		case 0: // pure noise
			b = make([]byte, rng.Intn(128))
			rng.Read(b)
		case 1: // mutated valid op batch
			b = append([]byte(nil), validOps...)
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		case 2: // mutated valid response batch
			b = append([]byte(nil), validResps...)
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		if ops, err := DecodeOps(b); err == nil {
			re := EncodeOps(nil, ops)
			if rt, err2 := DecodeOps(re); err2 != nil || len(rt) != len(ops) {
				t.Fatalf("accepted op batch does not round-trip: %v", err2)
			}
		}
		if rs, err := DecodeResponses(b); err == nil {
			re := EncodeResponses(nil, rs)
			if rt, err2 := DecodeResponses(re); err2 != nil || len(rt) != len(rs) {
				t.Fatalf("accepted response batch does not round-trip: %v", err2)
			}
		}
	}
}

// FuzzBatchDecode is the native fuzz entry point for the batch codec;
// `go test` runs it over the seed corpus, `go test -fuzz` explores.
func FuzzBatchDecode(f *testing.F) {
	f.Add(EncodeOps(nil, sampleOps()))
	f.Add(EncodeResponses(nil, []*Response{{Status: StatusOK}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if ops, err := DecodeOps(b); err == nil {
			if _, err2 := DecodeOps(EncodeOps(nil, ops)); err2 != nil {
				t.Fatalf("accepted op batch does not round-trip: %v", err2)
			}
		}
		if rs, err := DecodeResponses(b); err == nil {
			if _, err2 := DecodeResponses(EncodeResponses(nil, rs)); err2 != nil {
				t.Fatalf("accepted response batch does not round-trip: %v", err2)
			}
		}
	})
}
