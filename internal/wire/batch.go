package wire

import (
	"encoding/binary"
	"fmt"
)

// Batch envelope codec. A batch is an ordinary Request with Op ==
// OpBatch whose Aux carries N encoded sub-requests; its response is an
// ordinary Response whose Value carries the N sub-responses in the
// same order. Reusing the single-message framing means every
// transport, admission gate, and fault-injection layer handles batches
// with no special cases: a batch is one message on the wire, and the
// amortization of per-message overhead across its sub-operations is
// exactly the win the paper's connection-caching ablation (§III.F)
// chases at the connection level.

// MaxBatchOps bounds the sub-operations one envelope may carry,
// guarding the decoder against corrupt counts allocating unbounded
// memory.
const MaxBatchOps = 1 << 16

// EncodeOps appends count + length-prefixed encoded sub-requests to
// dst and returns it.
func EncodeOps(dst []byte, reqs []*Request) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(reqs)))
	item := GetBuffer()
	for _, r := range reqs {
		item = EncodeRequest(item[:0], r)
		dst = binary.AppendUvarint(dst, uint64(len(item)))
		dst = append(dst, item...)
	}
	PutBuffer(item)
	return dst
}

// DecodeOps parses the sub-requests of a batch envelope. Nested
// batches are rejected: an envelope inside an envelope has no valid
// meaning and would let a hostile peer build decoding bombs. Decoded
// requests alias b (see DecodeRequest).
func DecodeOps(b []byte) ([]*Request, error) {
	n, b, err := uvar(b)
	if err != nil {
		return nil, err
	}
	if n > MaxBatchOps {
		return nil, fmt.Errorf("%w: batch of %d ops exceeds limit", errMalformed, n)
	}
	reqs := make([]*Request, 0, n)
	fail := func(err error) ([]*Request, error) {
		ReleaseOps(reqs)
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var item []byte
		if item, b, err = bytesField(b); err != nil {
			return fail(err)
		}
		r, err := DecodeRequestPooled(item)
		if err != nil {
			return fail(err)
		}
		if r.Op == OpBatch {
			PutRequest(r)
			return fail(fmt.Errorf("%w: nested batch", errMalformed))
		}
		reqs = append(reqs, r)
	}
	if len(b) != 0 {
		return fail(errMalformed)
	}
	return reqs, nil
}

// ReleaseOps returns every sub-request decoded by DecodeOps to the
// pool. Callers that let the slice go to the GC instead merely lose
// the reuse, never correctness.
func ReleaseOps(reqs []*Request) {
	for _, r := range reqs {
		PutRequest(r)
	}
}

// EncodeResponses appends count + length-prefixed encoded
// sub-responses to dst and returns it.
func EncodeResponses(dst []byte, rs []*Response) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rs)))
	item := GetBuffer()
	for _, r := range rs {
		item = EncodeResponse(item[:0], r)
		dst = binary.AppendUvarint(dst, uint64(len(item)))
		dst = append(dst, item...)
	}
	PutBuffer(item)
	return dst
}

// DecodeResponses parses the sub-responses of a batch envelope's
// response. Decoded responses alias b (see DecodeResponse).
func DecodeResponses(b []byte) ([]*Response, error) {
	n, b, err := uvar(b)
	if err != nil {
		return nil, err
	}
	if n > MaxBatchOps {
		return nil, fmt.Errorf("%w: batch of %d responses exceeds limit", errMalformed, n)
	}
	rs := make([]*Response, 0, n)
	fail := func(err error) ([]*Response, error) {
		ReleaseResponses(rs)
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var item []byte
		if item, b, err = bytesField(b); err != nil {
			return fail(err)
		}
		r, err := DecodeResponsePooled(item)
		if err != nil {
			return fail(err)
		}
		rs = append(rs, r)
	}
	if len(b) != 0 {
		return fail(errMalformed)
	}
	return rs, nil
}

// ReleaseResponses returns every sub-response decoded by
// DecodeResponses to the pool.
func ReleaseResponses(rs []*Response) {
	for _, r := range rs {
		PutResponse(r)
	}
}

// NewBatchRequest packs sub-requests into an OpBatch envelope. The
// envelope inherits the largest Epoch and Budget among its
// sub-requests so stale-table detection and deadline propagation keep
// working at the message level.
func NewBatchRequest(reqs []*Request) *Request {
	env := GetRequest()
	env.Op = OpBatch
	env.Aux = EncodeOps(GetBuffer(), reqs)
	for _, r := range reqs {
		if r.Epoch > env.Epoch {
			env.Epoch = r.Epoch
		}
		if r.Budget > env.Budget {
			env.Budget = r.Budget
		}
	}
	return env
}

// ReleaseBatchRequest returns an envelope built by NewBatchRequest —
// struct and encoded Aux payload — to the pools. Call it only after
// the transport call using the envelope has returned.
func ReleaseBatchRequest(env *Request) {
	if env == nil {
		return
	}
	PutBuffer(env.Aux)
	PutRequest(env)
}

// NewBatchResponse packs sub-responses into a batch envelope's
// response. The envelope is pooled and its Value payload is marked
// pool-owned, so the transport writer reclaims both after encoding.
func NewBatchResponse(rs []*Response) *Response {
	r := GetResponse()
	r.Status = StatusOK
	r.SetPooledValue(EncodeResponses(GetBuffer(), rs))
	return r
}

// UnpackBatchResponses extracts n sub-responses from an envelope's
// response. When the server answered with a message-level verdict
// instead of a batch payload — shed with StatusBusy, rejected by a
// batch-unaware handler, or any top-level error — that verdict is
// fanned out to every sub-slot so callers can treat each sub-response
// uniformly.
func UnpackBatchResponses(resp *Response, n int) ([]*Response, error) {
	if resp.Status == StatusOK {
		rs, err := DecodeResponses(resp.Value)
		if err == nil && len(rs) == n {
			return rs, nil
		}
		if err == nil {
			return nil, fmt.Errorf("%w: batch answered %d of %d sub-responses", errMalformed, len(rs), n)
		}
		return nil, err
	}
	rs := make([]*Response, n)
	for i := range rs {
		cp := *resp
		rs[i] = &cp
	}
	return rs, nil
}
