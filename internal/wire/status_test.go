package wire

import "testing"

// StatusTooLarge is the terminal verdict of the size-limit gate
// (core.Config MaxKeyLen/MaxValueLen); this test pins its spelling and
// its survival through the response codec, so a client always sees the
// exact status the server issued.
func TestStatusTooLarge(t *testing.T) {
	if got := StatusTooLarge.String(); got != "too-large" {
		t.Errorf("StatusTooLarge.String() = %q, want %q", got, "too-large")
	}
	// Every named status must stringify to a name, not the numeric
	// fallback — a new status silently missing from String() would
	// make shed/error logs unreadable.
	for s := StatusOK; s <= StatusTooLarge; s++ {
		if got := s.String(); len(got) >= 7 && got[:7] == "status(" {
			t.Errorf("status %d has no name", uint8(s))
		}
	}
	enc := EncodeResponse(nil, &Response{Status: StatusTooLarge, Err: "core: value exceeds MaxValueLen"})
	dec, err := DecodeResponse(enc)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if dec.Status != StatusTooLarge {
		t.Errorf("round-tripped status = %v, want %v", dec.Status, StatusTooLarge)
	}
	if dec.Err != "core: value exceeds MaxValueLen" {
		t.Errorf("round-tripped err = %q", dec.Err)
	}
}
