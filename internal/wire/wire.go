// Package wire defines ZHT's message schema and compact binary codec.
//
// The paper (§III.G) serializes requests with Google Protocol Buffers:
// an operation indicator plus the key/value pair, encapsulated into a
// plain string and sent over the network. This package plays that role
// with a hand-written varint codec (see DESIGN.md substitutions): the
// schema is the same — op indicator, key, value — extended with the
// fields the rest of the protocol needs (client membership epoch for
// lazy table refresh, sequence numbers for UDP matching, and
// server-to-server partition/replication payloads).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is the operation indicator carried by every request.
type Op uint8

// Client-facing and server-to-server operations.
const (
	OpNop Op = iota
	// The four basic ZHT operations (§III.A).
	OpInsert
	OpLookup
	OpRemove
	OpAppend
	// OpCas is a compare-and-swap extension used by MATRIX-style
	// clients that need atomic read-modify-write.
	OpCas
	// OpBroadcast delivers a key/value pair to every instance via a
	// spanning tree (future-work broadcast primitive, implemented).
	OpBroadcast
	// OpReplicate forwards a mutation from a primary to a replica.
	OpReplicate
	// OpMembership requests the server's current membership table.
	OpMembership
	// OpDelta carries an incremental membership update broadcast by a
	// manager.
	OpDelta
	// OpMigrate transfers a whole partition's contents to a new
	// owner (migration moves partitions, never rehashes pairs).
	OpMigrate
	// OpPing is the failure detector's liveness probe.
	OpPing
	// OpReport informs a manager that the sender observed an
	// instance failing repeatedly (Key holds the instance ID); the
	// manager verifies, fails the node over, and broadcasts the
	// membership change (§III.C unplanned departures).
	OpReport
	// OpBatch is an envelope carrying N encoded sub-requests in Aux;
	// the response carries the N sub-responses in Value (see batch.go).
	// Batching amortizes per-message cost across operations the same
	// way connection caching (§III.F) amortizes per-connection cost.
	OpBatch
	// OpDigest asks a peer for its Merkle digest of one partition
	// (Partition names it); the response Value carries the encoded
	// leaf hashes (internal/repair). Replicas diff digests against
	// the partition's authority to find divergence cheaply.
	OpDigest
	// OpRepairPull moves divergent leaf contents between replicas.
	// Aux always carries the leaf set. With Value empty it is a pull:
	// the receiver answers with its pairs in those leaves. With Value
	// set (encoded pairs, never empty — the count prefix is always
	// present) it is a push: the receiver replaces its leaf contents
	// with the authoritative set.
	OpRepairPull
	// OpDeltaPull asks a peer for the membership deltas between the
	// requester's epoch (Request.Epoch) and the peer's current epoch.
	// The response Value carries an internal/gossip pull payload:
	// either the ordered delta frames to replay, or the peer's full
	// table when its delta log no longer covers the gap
	// (ring.ErrEpochMismatch territory). This is the anti-entropy
	// membership pull a stale instance issues after noticing a newer
	// epoch piggybacked on normal traffic.
	OpDeltaPull
	opMax
)

func (o Op) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpInsert:
		return "insert"
	case OpLookup:
		return "lookup"
	case OpRemove:
		return "remove"
	case OpAppend:
		return "append"
	case OpCas:
		return "cas"
	case OpBroadcast:
		return "broadcast"
	case OpReplicate:
		return "replicate"
	case OpMembership:
		return "membership"
	case OpDelta:
		return "delta"
	case OpMigrate:
		return "migrate"
	case OpPing:
		return "ping"
	case OpReport:
		return "report"
	case OpBatch:
		return "batch"
	case OpDigest:
		return "digest"
	case OpRepairPull:
		return "repair-pull"
	case OpDeltaPull:
		return "delta-pull"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is the result code of a response. The paper's API returns 0
// for success and non-zero codes describing the error.
type Status uint8

const (
	// StatusOK — operation applied (return code 0 in the paper).
	StatusOK Status = iota
	// StatusNotFound — lookup/remove/append on an absent key.
	StatusNotFound
	// StatusWrongOwner — the receiving instance does not own the
	// key's partition; the response carries the server's current
	// membership table so the client can lazily refresh (§III.C).
	StatusWrongOwner
	// StatusMigrating — the partition is locked for migration; the
	// request was queued and answered with a redirect to the new
	// location once the move completed, or the client should retry
	// at the address in Redirect.
	StatusMigrating
	// StatusCasMismatch — compare-and-swap expectation failed; the
	// current value is returned.
	StatusCasMismatch
	// StatusExists — insert with IfAbsent flag on a present key.
	StatusExists
	// StatusError — server-side failure; Err holds detail.
	StatusError
	// StatusBusy — the server's admission gate shed the request
	// because too many were already in flight. The response's
	// RetryAfter carries a backoff hint; clients retry with full
	// jitter. Busy is an overload signal, not a failure: it must not
	// count toward failure detection.
	StatusBusy
	// StatusTooLarge — the request's key or value exceeds the
	// receiving deployment's configured size limits (core.Config
	// MaxKeyLen/MaxValueLen, off by default). Terminal: retrying the
	// same payload cannot succeed, so clients surface it immediately
	// instead of re-routing.
	StatusTooLarge
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusWrongOwner:
		return "wrong-owner"
	case StatusMigrating:
		return "migrating"
	case StatusCasMismatch:
		return "cas-mismatch"
	case StatusExists:
		return "exists"
	case StatusError:
		return "error"
	case StatusBusy:
		return "busy"
	case StatusTooLarge:
		return "too-large"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Request flag bits.
const (
	// FlagNoReplicate marks a mutation already traveling along the
	// replica chain; the receiver must not re-replicate it.
	FlagNoReplicate uint8 = 1 << iota
	// FlagIfAbsent makes insert fail with StatusExists when the key
	// is already present.
	FlagIfAbsent
	// FlagSyncReplica marks the synchronous (secondary) replication
	// leg; async legs omit it.
	FlagSyncReplica
	// FlagReplicaRead marks a lookup addressed to a replica rather
	// than the partition's owner: the receiver serves it from its
	// local copy (with its stored version) instead of answering
	// WrongOwner. Quorum reads fan these out alongside the owner read.
	FlagReplicaRead
	// FlagWholesale marks a repair-pull push whose pair set is the
	// partition owner's complete image for the pushed leaves: the
	// receiver may delete local keys absent from it. Pushes without
	// the flag (an acting authority that is itself a replica) only
	// upsert — the pusher's image may be missing acked writes, so
	// deleting against it could lose them.
	FlagWholesale
)

// Request is a ZHT protocol request.
type Request struct {
	Op    Op
	Flags uint8
	// Seq matches responses to requests on connectionless
	// transports.
	Seq uint64
	// Epoch is the sender's membership epoch; servers use it to
	// detect stale clients.
	Epoch uint64
	// Partition addresses server-to-server partition operations
	// (replication, migration); -1 when unused.
	Partition int64
	Key       string
	Value     []byte
	// Aux carries secondary payloads: expected value for CAS,
	// encoded deltas/tables, or a migration image.
	Aux []byte
	// Hop counts spanning-tree depth for OpBroadcast.
	Hop uint32
	// Budget is the operation's remaining time budget in nanoseconds
	// at send time; 0 means no deadline. It is a relative duration —
	// not an absolute timestamp — so it survives clock skew between
	// machines. Transports bound their blocking (dial, round trip,
	// retransmission) by it, and servers may propagate it into nested
	// server-to-server calls so one client operation's retries,
	// redirects, and failovers share a single end-to-end deadline.
	Budget uint64
	// Consistency selects the per-request consistency level for KV
	// reads and writes. ConsistencyDefault (zero) defers to the
	// receiving node's configured default, which keeps the field free
	// on the wire for senders that never set it.
	Consistency Consistency
	// Version is the HLC version stamp a mutation carries along the
	// replica chain and through repair pushes, so every copy applies
	// it last-writer-wins. Zero means unversioned: the receiver stamps
	// (primary apply) or applies blindly (legacy path).
	Version uint64
}

// Response is a ZHT protocol response.
type Response struct {
	Status Status
	Seq    uint64
	Value  []byte
	// Table, when present, is an encoded up-to-date membership table
	// (sent with StatusWrongOwner and membership fetches).
	Table []byte
	// Redirect is the address now serving the request's partition
	// (sent after a migration completes).
	Redirect string
	// Err carries human-readable detail for StatusError.
	Err string
	// RetryAfter is a backoff hint in nanoseconds sent with
	// StatusBusy: the shed client should wait at least this long
	// (with jitter) before retrying. 0 means no hint.
	RetryAfter uint64
	// Epoch is the responder's membership epoch, piggybacked on every
	// instance response so peers and clients detect staleness from
	// normal traffic instead of waiting for a manager broadcast
	// (gossip-driven membership; see internal/gossip). 0 means the
	// responder does not participate (non-instance handlers).
	Epoch uint64
	// Version is the stored HLC version of the value a lookup
	// returned; quorum reads compare versions across copies and the
	// newest wins. Zero means the serving copy predates versioning or
	// the op does not carry one.
	Version uint64
	// pooledValue marks Value's backing array as owned by this
	// package's buffer pool (set via SetPooledValue); PutResponse
	// recycles it. See pool.go.
	pooledValue bool
}

// maxString caps any single field to guard against corrupt length
// prefixes allocating unbounded memory.
const maxString = 64 << 20

var errMalformed = errors.New("wire: malformed message")

// EncodeRequest appends the encoded request to dst and returns it.
func EncodeRequest(dst []byte, r *Request) []byte {
	dst = append(dst, 'Q', byte(r.Op), r.Flags)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, r.Epoch)
	dst = binary.AppendVarint(dst, r.Partition)
	dst = binary.AppendUvarint(dst, uint64(r.Hop))
	dst = binary.AppendUvarint(dst, r.Budget)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Aux)))
	dst = append(dst, r.Aux...)
	dst = append(dst, byte(r.Consistency))
	dst = binary.AppendUvarint(dst, r.Version)
	return dst
}

// DecodeRequest parses a request. The returned request aliases b's
// backing array for Value/Aux; callers that retain those must copy.
func DecodeRequest(b []byte) (*Request, error) {
	r := &Request{}
	if err := decodeRequestInto(r, b); err != nil {
		return nil, err
	}
	return r, nil
}

func decodeRequestInto(r *Request, b []byte) error {
	if len(b) < 3 || b[0] != 'Q' {
		return errMalformed
	}
	r.Op, r.Flags = Op(b[1]), b[2]
	if r.Op == OpNop || r.Op >= opMax {
		return fmt.Errorf("%w: bad op %d", errMalformed, b[1])
	}
	b = b[3:]
	var err error
	if r.Seq, b, err = uvar(b); err != nil {
		return err
	}
	if r.Epoch, b, err = uvar(b); err != nil {
		return err
	}
	if r.Partition, b, err = svar(b); err != nil {
		return err
	}
	var hop uint64
	if hop, b, err = uvar(b); err != nil {
		return err
	}
	r.Hop = uint32(hop)
	if r.Budget, b, err = uvar(b); err != nil {
		return err
	}
	var key []byte
	if key, b, err = bytesField(b); err != nil {
		return err
	}
	r.Key = string(key)
	if r.Value, b, err = bytesField(b); err != nil {
		return err
	}
	if r.Aux, b, err = bytesField(b); err != nil {
		return err
	}
	if len(b) < 1 {
		return errMalformed
	}
	r.Consistency = Consistency(b[0])
	if r.Consistency >= consistencyMax {
		return fmt.Errorf("%w: bad consistency %d", errMalformed, b[0])
	}
	b = b[1:]
	if r.Version, b, err = uvar(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return errMalformed
	}
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Aux) == 0 {
		r.Aux = nil
	}
	return nil
}

// EncodeResponse appends the encoded response to dst and returns it.
func EncodeResponse(dst []byte, r *Response) []byte {
	dst = append(dst, 'S', byte(r.Status))
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Table)))
	dst = append(dst, r.Table...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Redirect)))
	dst = append(dst, r.Redirect...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Err)))
	dst = append(dst, r.Err...)
	dst = binary.AppendUvarint(dst, r.RetryAfter)
	dst = binary.AppendUvarint(dst, r.Epoch)
	dst = binary.AppendUvarint(dst, r.Version)
	return dst
}

// DecodeResponse parses a response. Value/Table alias b.
func DecodeResponse(b []byte) (*Response, error) {
	r := &Response{}
	if err := decodeResponseInto(r, b); err != nil {
		return nil, err
	}
	return r, nil
}

func decodeResponseInto(r *Response, b []byte) error {
	if len(b) < 2 || b[0] != 'S' {
		return errMalformed
	}
	r.Status = Status(b[1])
	b = b[2:]
	var err error
	if r.Seq, b, err = uvar(b); err != nil {
		return err
	}
	if r.Value, b, err = bytesField(b); err != nil {
		return err
	}
	if r.Table, b, err = bytesField(b); err != nil {
		return err
	}
	var s []byte
	if s, b, err = bytesField(b); err != nil {
		return err
	}
	r.Redirect = string(s)
	if s, b, err = bytesField(b); err != nil {
		return err
	}
	r.Err = string(s)
	if r.RetryAfter, b, err = uvar(b); err != nil {
		return err
	}
	if r.Epoch, b, err = uvar(b); err != nil {
		return err
	}
	if r.Version, b, err = uvar(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return errMalformed
	}
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Table) == 0 {
		r.Table = nil
	}
	return nil
}

func uvar(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errMalformed
	}
	return v, b[n:], nil
}

func svar(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errMalformed
	}
	return v, b[n:], nil
}

func bytesField(b []byte) ([]byte, []byte, error) {
	n, rest, err := uvar(b)
	if err != nil {
		return nil, nil, err
	}
	if n > maxString || uint64(len(rest)) < n {
		return nil, nil, errMalformed
	}
	return rest[:n], rest[n:], nil
}
