package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpInsert, Key: "k", Value: []byte("v")},
		{Op: OpLookup, Seq: 42, Epoch: 7, Key: "some/longer/key-000001"},
		{Op: OpRemove, Key: ""},
		{Op: OpAppend, Key: "dir", Value: []byte("entry,"), Flags: FlagNoReplicate},
		{Op: OpCas, Key: "task", Value: []byte("new"), Aux: []byte("old")},
		{Op: OpMigrate, Partition: 1023, Aux: bytes.Repeat([]byte{0xab}, 4096)},
		{Op: OpReplicate, Partition: -1, Flags: FlagSyncReplica, Key: "k", Value: []byte("v")},
		{Op: OpBroadcast, Hop: 12, Key: "announce", Value: []byte("x")},
		{Op: OpPing, Seq: 1<<63 + 5},
		{Op: OpDelta, Aux: []byte("ZHTD...")},
		{Op: OpInsert, Key: "deadline", Value: []byte("v"), Budget: 1_500_000_000},
		{Op: OpInsert, Key: "lvl", Value: []byte("v"), Consistency: ConsistencyAll},
		{Op: OpLookup, Key: "lvl", Consistency: ConsistencyQuorum, Flags: FlagReplicaRead},
		{Op: OpReplicate, Partition: 3, Key: "ver", Value: []byte("v"), Version: 1<<48 + 9},
	}
	for i, r := range cases {
		enc := EncodeRequest(nil, r)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Errorf("case %d:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK},
		{Status: StatusOK, Seq: 9, Value: []byte("hello")},
		{Status: StatusNotFound, Seq: 1},
		{Status: StatusWrongOwner, Table: []byte("ZHTT-encoded")},
		{Status: StatusMigrating, Redirect: "10.0.0.9:5000"},
		{Status: StatusCasMismatch, Value: []byte("current")},
		{Status: StatusError, Err: "novoht: disk full"},
		{Status: StatusBusy, Seq: 3, RetryAfter: 2_000_000},
		{Status: StatusOK, Seq: 4, Epoch: 17},
		{Status: StatusWrongOwner, Table: []byte("ZHTT-encoded"), Epoch: 1<<40 + 3},
		{Status: StatusOK, Value: []byte("versioned"), Version: 1<<52 + 77},
	}
	for i, r := range cases {
		got, err := DecodeResponse(EncodeResponse(nil, r))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Errorf("case %d:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seq, epoch, budget, version uint64, part int64, key string, val, aux []byte, flags, level uint8, hop uint32) bool {
		in := &Request{
			Op: OpInsert, Flags: flags, Seq: seq, Epoch: epoch,
			Partition: part, Key: key, Value: val, Aux: aux, Hop: hop,
			Budget:      budget,
			Consistency: Consistency(level % uint8(consistencyMax)),
			Version:     version,
		}
		if len(in.Value) == 0 {
			in.Value = nil
		}
		if len(in.Aux) == 0 {
			in.Aux = nil
		}
		got, err := DecodeRequest(EncodeRequest(nil, in))
		return err == nil && reflect.DeepEqual(in, got)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seq, retryAfter, epoch, version uint64, val, table []byte, redirect, errs string, status uint8) bool {
		in := &Response{
			Status: Status(status % 8), Seq: seq, Value: val,
			Table: table, Redirect: redirect, Err: errs,
			RetryAfter: retryAfter, Epoch: epoch, Version: version,
		}
		if len(in.Value) == 0 {
			in.Value = nil
		}
		if len(in.Table) == 0 {
			in.Table = nil
		}
		got, err := DecodeResponse(EncodeResponse(nil, in))
		return err == nil && reflect.DeepEqual(in, got)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'Q'},
		{'X', 1, 0},
		{'Q', 0, 0},    // OpNop invalid on the wire
		{'Q', 200, 0},  // op out of range
		{'Q', 1, 0, 0}, // truncated after flags+one varint byte
	}
	for i, b := range cases {
		if _, err := DecodeRequest(b); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestDecodeRequestTruncation(t *testing.T) {
	full := EncodeRequest(nil, &Request{
		Op: OpCas, Seq: 300, Epoch: 9, Partition: 77,
		Key: "task-00042", Value: []byte("running"), Aux: []byte("queued"),
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	// Trailing junk must also be rejected.
	if _, err := DecodeRequest(append(full, 0)); err == nil {
		t.Error("trailing junk accepted")
	}
}

func TestDecodeResponseTruncation(t *testing.T) {
	full := EncodeResponse(nil, &Response{
		Status: StatusWrongOwner, Seq: 12, Value: []byte("v"),
		Table: []byte("table-bytes"), Redirect: "a:1", Err: "e",
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeResponse(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestDecodeLengthBomb(t *testing.T) {
	// A request whose key length claims 2^40 bytes must be rejected
	// without allocating.
	b := []byte{'Q', byte(OpLookup), 0, 0, 0, 0, 0}
	b = append(b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^40
	if _, err := DecodeRequest(b); err == nil {
		t.Error("length bomb accepted")
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	out := EncodeRequest(prefix, &Request{Op: OpPing})
	if !bytes.HasPrefix(out, prefix) {
		t.Error("EncodeRequest did not append to dst")
	}
	got, err := DecodeRequest(out[len(prefix):])
	if err != nil || got.Op != OpPing {
		t.Errorf("decode after prefix: %v %+v", err, got)
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < opMax; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty string", op)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Error("unknown op should format numerically")
	}
}

func TestStatusStrings(t *testing.T) {
	for s := StatusOK; s <= StatusError; s++ {
		if s.String() == "" {
			t.Errorf("status %d has empty string", s)
		}
	}
	if Status(99).String() != "status(99)" {
		t.Error("unknown status should format numerically")
	}
}

// The paper's workload: 15-byte keys, 132-byte values. Encoding must
// stay compact — within a few bytes of the raw payload.
func TestEncodingOverhead(t *testing.T) {
	r := &Request{Op: OpInsert, Key: "key-0000000001", Value: bytes.Repeat([]byte{'v'}, 132)}
	enc := EncodeRequest(nil, r)
	overhead := len(enc) - len(r.Key) - len(r.Value)
	if overhead > 16 {
		t.Errorf("encoding overhead %d bytes for the paper workload; want <= 16", overhead)
	}
}

func BenchmarkEncodeRequest(b *testing.B) {
	r := &Request{Op: OpInsert, Key: "key-0000000001", Value: bytes.Repeat([]byte{'v'}, 132)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeRequest(buf[:0], r)
	}
}

func BenchmarkDecodeRequest(b *testing.B) {
	enc := EncodeRequest(nil, &Request{Op: OpInsert, Key: "key-0000000001", Value: bytes.Repeat([]byte{'v'}, 132)})
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(enc); err != nil {
			b.Fatal(err)
		}
	}
}
