package wire

import (
	"bytes"
	"testing"
)

// The pool tests run with poisoning on: every buffer released to the
// pool is overwritten with PoisonByte, so any path that reads pooled
// memory after releasing it sees deterministic corruption instead of
// a heisenbug. SetPoolPoison is global — always restore it.

func TestPutBufferPoisonsBacking(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)

	b := GetBuffer()
	b = append(b, []byte("live payload")...)
	alias := b
	PutBuffer(b)
	for i, c := range alias {
		if c != PoisonByte {
			t.Fatalf("byte %d survived release: %#x (want poison %#x)", i, c, PoisonByte)
		}
	}
}

func TestPutResponseRecyclesPooledValue(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)

	v := GetBuffer()
	v = append(v, []byte("pooled value")...)
	alias := v
	r := GetResponse()
	r.Status = StatusOK
	r.SetPooledValue(v)
	PutResponse(r)
	for i, c := range alias {
		if c != PoisonByte {
			t.Fatalf("pooled value byte %d survived PutResponse: %#x", i, c)
		}
	}
}

// TestShallowCopyNeverOwnsValue pins the fan-out contract: releasing
// a ShallowCopy recycles only the struct, so N copies of one verdict
// can each be released without double-freeing the shared Value.
func TestShallowCopyNeverOwnsValue(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)

	v := GetBuffer()
	v = append(v, []byte("shared verdict")...)
	r := GetResponse()
	r.Status = StatusOK
	r.SetPooledValue(v)

	want := append([]byte(nil), r.Value...)
	for i := 0; i < 4; i++ {
		cp := r.ShallowCopy()
		PutResponse(cp)
		if !bytes.Equal(r.Value, want) {
			t.Fatalf("releasing shallow copy %d corrupted the original's value: %q", i, r.Value)
		}
	}
	alias := r.Value
	PutResponse(r) // the original owns the value; now it gets recycled
	for i, c := range alias {
		if c != PoisonByte {
			t.Fatalf("owned value byte %d survived final release: %#x", i, c)
		}
	}
}

// TestDecodePooledReleaseDoesNotReachCopies walks the ownership chain
// a client follows: decode a response from a frame, copy the value
// out for the application, release struct and frame. The application
// copy must be untouched while the frame itself is poisoned.
func TestDecodePooledReleaseDoesNotReachCopies(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)

	src := &Response{Status: StatusOK, Value: []byte("frame-backed value")}
	frame := EncodeResponse(GetBuffer(), src)

	dec, err := DecodeResponsePooled(frame)
	if err != nil {
		t.Fatal(err)
	}
	appCopy := append([]byte(nil), dec.Value...)
	frameAlias := dec.Value // aliases frame's backing array

	PutResponse(dec) // not a pooled value: struct only
	PutBuffer(frame)

	if !bytes.Equal(appCopy, src.Value) {
		t.Fatalf("application copy corrupted by release: %q", appCopy)
	}
	for i, c := range frameAlias {
		if c != PoisonByte {
			t.Fatalf("frame byte %d survived PutBuffer: %#x", i, c)
		}
	}
}

// TestBatchReleaseRoundTrip poisons through the batch envelope path:
// encode ops, decode them pooled, release, and check that nothing the
// caller kept is reachable from the recycled frames.
func TestBatchReleaseRoundTrip(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)

	ops := []*Request{
		{Op: OpInsert, Key: "k1", Value: []byte("v1")},
		{Op: OpLookup, Key: "k2"},
	}
	env := EncodeOps(GetBuffer(), ops)

	dec, err := DecodeOps(env)
	if err != nil {
		t.Fatal(err)
	}
	kept := append([]byte(nil), dec[0].Value...)
	ReleaseOps(dec)
	PutBuffer(env)

	if !bytes.Equal(kept, []byte("v1")) {
		t.Fatalf("copied sub-op value corrupted by release: %q", kept)
	}
}
