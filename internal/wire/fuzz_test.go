package wire

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds random byte soup and mutated valid
// messages to the decoders: they must return errors, never panic, and
// re-encoding anything they accept must round-trip.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	valid := EncodeRequest(nil, &Request{Op: OpInsert, Key: "key", Value: []byte("value"), Aux: []byte("aux")})
	validResp := EncodeResponse(nil, &Response{Status: StatusOK, Value: []byte("v"), Table: []byte("t"), Redirect: "r", Err: "e"})
	for i := 0; i < 5000; i++ {
		var b []byte
		switch i % 3 {
		case 0: // pure noise
			b = make([]byte, rng.Intn(64))
			rng.Read(b)
		case 1: // mutated valid request
			b = append([]byte(nil), valid...)
			if len(b) > 0 {
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
		case 2: // mutated valid response
			b = append([]byte(nil), validResp...)
			if len(b) > 0 {
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
		}
		if req, err := DecodeRequest(b); err == nil {
			re := EncodeRequest(nil, req)
			if rt, err2 := DecodeRequest(re); err2 != nil || rt.Op != req.Op || rt.Key != req.Key {
				t.Fatalf("accepted request does not round-trip: %v", err2)
			}
		}
		if resp, err := DecodeResponse(b); err == nil {
			re := EncodeResponse(nil, resp)
			if rt, err2 := DecodeResponse(re); err2 != nil || rt.Status != resp.Status {
				t.Fatalf("accepted response does not round-trip: %v", err2)
			}
		}
	}
}
