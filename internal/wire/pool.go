// Message and buffer pools for the hot path.
//
// Every request that crosses the wire needs a Request struct, a
// Response struct, and a handful of byte buffers (encode scratch, the
// framed payload, value scratch). At millions of ops per second those
// allocations dominate the profile, so the hot path recycles all of
// them here. Ownership rules are documented in DESIGN.md §11; the
// short version:
//
//   - A decoded *Request and the frame it aliases belong to the
//     transport. Handlers may use them only until they return.
//   - A *Response produced by a handler is released by whoever
//     encodes it (the transport writer); marking it with
//     SetPooledValue also returns its Value scratch to the pool.
//   - Buffers from GetBuffer are single-owner: whoever holds one
//     either passes it on or returns it with PutBuffer, never both.
//
// Structs are pooled with sync.Pool. Byte buffers use a fixed-size
// channel freelist instead: handing a []byte through sync.Pool boxes
// the slice header (an allocation per Put, defeating the point),
// while a channel send copies it. The freelist is deliberately
// bounded — overflow is dropped for the GC — and buffers above
// maxPooledBuf are never retained, so a burst of large values cannot
// pin memory.
package wire

import (
	"sync"
	"sync/atomic"

	"zht/internal/metrics"
)

const (
	// pooledBufCap is the initial capacity of freshly allocated pool
	// buffers: big enough for a typical request frame (paper-scale
	// keys and values are tens of bytes) without being wasteful.
	pooledBufCap = 1 << 10
	// maxPooledBuf caps the capacity of buffers the pool retains.
	// Larger buffers (bulk migration images, batch envelopes) are
	// left to the GC so the freelist stays small and hot.
	maxPooledBuf = 64 << 10
	// bufFreeListSize bounds the freelist; with maxPooledBuf this
	// caps pool-pinned memory at 16 MiB worst case.
	bufFreeListSize = 256
)

// poolMetrics holds the pool's instruments; all fields are nil-safe
// (see internal/metrics), so a nil *poolMetrics pointer means
// "metrics off" and costs one atomic pointer load.
type poolMetrics struct {
	gets   *metrics.Counter // zht.wire.pool.gets
	puts   *metrics.Counter // zht.wire.pool.puts
	misses *metrics.Counter // zht.wire.pool.misses
}

var poolMet atomic.Pointer[poolMetrics]

// EnablePoolMetrics points the package-level pools at reg. The pools
// are process-global, so the last registry wins; passing nil turns
// accounting off again. gets counts every pooled acquisition
// (structs and buffers), misses the subset that had to allocate, and
// puts every successful return — a healthy steady state shows
// gets ≈ puts with misses flat.
func EnablePoolMetrics(reg *metrics.Registry) {
	if reg == nil {
		poolMet.Store(nil)
		return
	}
	poolMet.Store(&poolMetrics{
		gets:   reg.Counter("zht.wire.pool.gets"),
		puts:   reg.Counter("zht.wire.pool.puts"),
		misses: reg.Counter("zht.wire.pool.misses"),
	})
}

// poisonPool, when set, makes PutBuffer overwrite returned buffers
// with poisonByte before pooling them. Tests enable it to turn any
// use-after-release of a pooled buffer into a loud, deterministic
// corruption instead of a silent heisenbug.
var poisonPool atomic.Bool

// PoisonByte is the filler SetPoolPoison writes over released
// buffers; exported so regression tests can assert against it.
const PoisonByte = 0xDB

// SetPoolPoison toggles poisoning of released buffers. Test-only:
// it is global and costs a memset per PutBuffer.
func SetPoolPoison(on bool) { poisonPool.Store(on) }

// PoolPoisonEnabled reports whether buffer poisoning is on; the
// transport's own buffer pool honors the same switch.
func PoolPoisonEnabled() bool { return poisonPool.Load() }

var requestPool = sync.Pool{New: func() any {
	if m := poolMet.Load(); m != nil {
		m.misses.Inc()
	}
	return new(Request)
}}

var responsePool = sync.Pool{New: func() any {
	if m := poolMet.Load(); m != nil {
		m.misses.Inc()
	}
	return new(Response)
}}

// GetRequest returns a zeroed Request from the pool.
func GetRequest() *Request {
	if m := poolMet.Load(); m != nil {
		m.gets.Inc()
	}
	return requestPool.Get().(*Request)
}

// PutRequest zeroes r and returns it to the pool. r's Key, Value,
// and Aux are merely dropped, never recycled — the pool does not own
// them. Callers must not touch r afterwards.
func PutRequest(r *Request) {
	if r == nil {
		return
	}
	*r = Request{}
	requestPool.Put(r)
	if m := poolMet.Load(); m != nil {
		m.puts.Inc()
	}
}

// GetResponse returns a zeroed Response from the pool.
func GetResponse() *Response {
	if m := poolMet.Load(); m != nil {
		m.gets.Inc()
	}
	return responsePool.Get().(*Response)
}

// PutResponse zeroes r and returns it to the pool. If r's Value was
// attached with SetPooledValue, the scratch buffer goes back to the
// buffer pool too. Callers must not touch r (or a pooled Value)
// afterwards, and must not release a Response whose struct they
// copied — the copy would alias the recycled Value.
func PutResponse(r *Response) {
	if r == nil {
		return
	}
	if r.pooledValue {
		PutBuffer(r.Value)
	}
	*r = Response{}
	responsePool.Put(r)
	if m := poolMet.Load(); m != nil {
		m.puts.Inc()
	}
}

// SetPooledValue sets r.Value to v and marks the backing array as
// pool-owned, so PutResponse recycles it. v must come from GetBuffer
// and ownership transfers to r — the caller must not use or PutBuffer
// it afterwards.
func (r *Response) SetPooledValue(v []byte) {
	r.Value = v
	r.pooledValue = true
}

// ShallowCopy returns a pooled Response with the same visible fields
// as r. The copy shares r's Value/Table backing but never owns it:
// releasing the copy recycles only the struct, so fanning one verdict
// out to many slots stays single-owner per slot.
func (r *Response) ShallowCopy() *Response {
	cp := GetResponse()
	*cp = *r
	cp.pooledValue = false
	return cp
}

// bufFree is the byte-buffer freelist. A channel rather than a
// sync.Pool: slice headers move through it by value, so neither
// GetBuffer nor PutBuffer allocates.
var bufFree = make(chan []byte, bufFreeListSize)

// GetBuffer returns an empty (length-0) scratch buffer from the
// pool. Append to it; hand it back with PutBuffer or transfer
// ownership exactly once.
func GetBuffer() []byte {
	if m := poolMet.Load(); m != nil {
		m.gets.Inc()
	}
	select {
	case b := <-bufFree:
		return b
	default:
		if m := poolMet.Load(); m != nil {
			m.misses.Inc()
		}
		return make([]byte, 0, pooledBufCap)
	}
}

// PutBuffer returns b's backing array to the pool. Oversized buffers
// and overflow beyond the freelist's capacity are dropped for the GC.
// The caller must not retain any slice of b.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:cap(b)]
	if poisonPool.Load() {
		for i := range b {
			b[i] = PoisonByte
		}
	}
	select {
	case bufFree <- b[:0]:
		if m := poolMet.Load(); m != nil {
			m.puts.Inc()
		}
	default:
	}
}

// DecodeRequestPooled is DecodeRequest into a pooled struct: release
// the result with PutRequest once the handler is done with it. The
// request aliases b exactly like DecodeRequest's does.
func DecodeRequestPooled(b []byte) (*Request, error) {
	r := GetRequest()
	if err := decodeRequestInto(r, b); err != nil {
		PutRequest(r)
		return nil, err
	}
	return r, nil
}

// DecodeResponsePooled is DecodeResponse into a pooled struct:
// release the result with PutResponse. Value/Table alias b.
func DecodeResponsePooled(b []byte) (*Response, error) {
	r := GetResponse()
	if err := decodeResponseInto(r, b); err != nil {
		PutResponse(r)
		return nil, err
	}
	return r, nil
}
