// Package transport provides ZHT's 1-to-1 communication layer
// (paper §III.F "Lightweight 1-1 Communication").
//
// Three interchangeable transports implement the same Caller/listener
// contract:
//
//   - TCP with an LRU connection cache, "which makes TCP work almost
//     as fast as UDP does" (the paper's preferred configuration);
//   - TCP without connection caching (a dial per request — the
//     baseline the paper measures the cache against);
//   - UDP, acknowledge-message based: every request datagram is
//     answered by a response datagram, with timeout-driven
//     retransmission;
//   - an in-process transport used to deploy hundreds of instances
//     inside one OS process for tests and scale benchmarks, with
//     hooks for failure injection.
//
// Servers come in two architectures mirroring the paper's §III.D
// ablation: the event-driven model (the production choice, analogous
// to the epoll server — Go's netpoller is epoll underneath) and a
// spawn-per-request model (the discarded multithreaded prototype).
package transport

import (
	"errors"

	"zht/internal/wire"
)

// Handler processes one request and returns its response. Handlers
// must be safe for concurrent use.
//
// Buffer ownership (DESIGN.md §11): the request, its Key/Value/Aux,
// and the frame they alias belong to the transport and are recycled
// the moment the handler returns — a handler that retains any of
// them must copy. The returned response transfers to the transport,
// which recycles it (and any wire.SetPooledValue scratch) after
// encoding: handlers must return a response they exclusively own —
// freshly built or pool-drawn, never shared between calls — and its
// fields must not alias request memory.
type Handler func(req *wire.Request) *wire.Response

// Caller issues requests to remote instances. Implementations must be
// safe for concurrent use.
type Caller interface {
	// Call sends req to addr and returns the response.
	Call(addr string, req *wire.Request) (*wire.Response, error)
	// CallBatch sends reqs to addr as one batched message (or as few
	// as the transport's message size budget allows) and returns
	// exactly len(reqs) sub-responses in request order. When the
	// server answers with a message-level verdict instead of a batch
	// payload (StatusBusy shed, batch-unaware handler), that verdict
	// is fanned out to every sub-response. An error means the whole
	// batch failed in transit and is retriable like a failed Call.
	CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error)
	// Close releases client resources (cached connections).
	Close() error
}

// EnvelopeCallBatch implements CallBatch for any transport whose
// message size is unconstrained: it packs the sub-requests into one
// wire.OpBatch envelope, issues it as a single Call, and unpacks the
// sub-responses. Transports with a message size budget (UDP) split
// batches themselves instead.
func EnvelopeCallBatch(c Caller, addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	env := wire.NewBatchRequest(reqs)
	resp, err := c.Call(addr, env)
	wire.ReleaseBatchRequest(env)
	if err != nil {
		return nil, err
	}
	rs, err := wire.UnpackBatchResponses(resp, len(reqs))
	if err != nil {
		return nil, err
	}
	// The sub-responses carry (or alias) everything the caller needs;
	// the envelope struct itself can go back to the pool. Its Value
	// backing stays alive through the sub-response aliases.
	wire.PutResponse(resp)
	return rs, nil
}

// Listener is a running server endpoint.
type Listener interface {
	// Addr returns the address clients should dial.
	Addr() string
	// Close stops serving.
	Close() error
}

// ServerMode selects the request dispatch architecture (§III.D).
type ServerMode int

const (
	// EventDriven handles requests inline on the connection's reader
	// goroutine — the streamlined architecture the paper converged
	// on (its epoll server; 3x faster than the multithread design).
	EventDriven ServerMode = iota
	// SpawnPerRequest creates a fresh goroutine per request with a
	// synchronized handoff, reproducing the overhead profile of the
	// discarded thread-per-request prototype.
	SpawnPerRequest
)

// ErrTimeout reports that a request exceeded its deadline (including
// all retransmissions for UDP).
var ErrTimeout = errors.New("transport: request timed out")

// ErrUnreachable reports that the destination could not be contacted.
var ErrUnreachable = errors.New("transport: destination unreachable")
