package transport

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// Frame format on TCP: uvarint length followed by the encoded message.
const maxFrame = 128 << 20

func writeFrame(w *bufio.Writer, payload []byte) error {
	if err := writeFrameNoFlush(w, payload); err != nil {
		return err
	}
	return w.Flush()
}

// writeFrameNoFlush stages a frame into the buffered writer without
// flushing, letting writer loops amortize one flush across a burst of
// frames.
func writeFrameNoFlush(w *bufio.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TCPServer serves ZHT requests over TCP.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	mode    ServerMode
	gate    *gate
	met     srvMetrics
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// ListenTCP starts a TCP server on addr (use ":0" for an ephemeral
// port) dispatching to h with the given mode. Options configure the
// admission gate (WithMaxInflight) shedding excess load as
// StatusBusy.
func ListenTCP(addr string, h Handler, mode ServerMode, opts ...ServerOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	s := &TCPServer{
		ln: ln, handler: h, mode: mode,
		gate:  newGate(o),
		met:   newSrvMetrics(o.Metrics),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// serveConn pipelines one connection: the reader loop never blocks on
// a handler, so a multiplexing peer can keep many requests in flight
// on a single cached connection. Handlers complete out of order and a
// dedicated writer goroutine serializes their responses back onto the
// wire (the client demultiplexes by sequence ID). Never blocking the
// reader on handler execution also breaks the distributed deadlock
// that inline handling would create when two servers hold nested RPCs
// to each other over one shared connection each (sync replication,
// delta broadcast, failure-report pings). The admission gate remains
// the concurrency bound.
func (s *TCPServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	s.met.conns.Inc()
	defer func() {
		s.met.conns.Dec()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	out := make(chan *wire.Response, 128)
	writerDone := make(chan struct{})
	go s.writeLoop(c, out, writerDone)
	var hwg sync.WaitGroup
	for {
		// Fresh buffer per frame: the decoded request aliases it and
		// handlers run concurrently with subsequent reads.
		frame, err := readFrame(br, nil)
		if err != nil {
			break
		}
		s.met.bytesIn.Add(int64(len(frame)))
		req, err := wire.DecodeRequest(frame)
		if err != nil {
			break // protocol violation: drop the connection
		}
		s.met.requests.Inc()
		if !s.gate.tryAcquire() {
			// Saturated: shed without touching the handler so the
			// reader loop stays responsive under overload.
			s.met.sheds.Inc()
			out <- s.gate.busy(req.Seq)
			continue
		}
		hwg.Add(1)
		switch s.mode {
		case EventDriven:
			go func(req *wire.Request) {
				defer hwg.Done()
				s.met.inflight.Inc()
				resp := s.handler(req)
				s.met.inflight.Dec()
				s.gate.release()
				resp.Seq = req.Seq
				out <- resp
			}(req)
		case SpawnPerRequest:
			// The multithreaded prototype spun up a thread per
			// request and paid a synchronized handoff on top;
			// reproduce that cost profile: copy the request, spawn a
			// worker, and rendezvous through a channel before the
			// response reaches the writer.
			reqCopy := *req
			reqCopy.Value = append([]byte(nil), req.Value...)
			reqCopy.Aux = append([]byte(nil), req.Aux...)
			done := make(chan *wire.Response, 1)
			go func() {
				s.met.inflight.Inc()
				r := s.handler(&reqCopy)
				s.met.inflight.Dec()
				s.gate.release()
				done <- r
			}()
			go func(seq uint64) {
				defer hwg.Done()
				resp := <-done
				resp.Seq = seq
				out <- resp
			}(req.Seq)
		}
	}
	hwg.Wait()
	close(out)
	<-writerDone
}

// writeLoop drains completed responses onto the connection, flushing
// only when the queue momentarily empties. After a write error it
// keeps draining so no handler ever blocks on a dead connection.
func (s *TCPServer) writeLoop(c net.Conn, out <-chan *wire.Response, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(c, 64<<10)
	var wbuf []byte
	dead := false
	for resp := range out {
		if dead {
			continue
		}
		wbuf = wire.EncodeResponse(wbuf[:0], resp)
		s.met.bytesOut.Add(int64(len(wbuf)))
		if err := writeFrameNoFlush(bw, wbuf); err != nil {
			dead = true
			c.Close()
			continue
		}
		if len(out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
				c.Close()
			}
		}
	}
}

// Close stops accepting, closes all connections, and waits for
// in-flight handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPClientOptions configures a TCP client.
type TCPClientOptions struct {
	// ConnCache enables the multiplexed connection cache: one
	// full-duplex connection per destination shared by all concurrent
	// calls. Without it every Call dials a fresh connection and runs
	// in lockstep (the paper's "TCP without connection caching"
	// configuration).
	ConnCache bool
	// MaxCached bounds the number of cached connections across all
	// destinations; the least recently used is evicted (idle ones
	// first). 0 means DefaultMaxCached.
	MaxCached int
	// Timeout bounds dial + round trip per call. 0 means
	// DefaultTimeout.
	Timeout time.Duration
	// Metrics, when non-nil, receives the caller-side instruments
	// (zht.transport.* — calls, dials, cache hits, bytes).
	Metrics *metrics.Registry
}

// Defaults for TCPClientOptions zero values.
const (
	DefaultMaxCached = 1024
	DefaultTimeout   = 10 * time.Second
)

var (
	errClientClosed = errors.New("transport: client closed")
	errConnEvicted  = errors.New("transport: connection evicted from cache")
	errDialRace     = errors.New("transport: lost dial race")
)

// TCPClient issues requests over TCP. With ConnCache enabled each
// destination gets one full-duplex multiplexed connection (§III.F):
// a writer goroutine pipelines encoded requests onto the wire and a
// demux reader matches responses back to callers by sequence ID, so
// any number of concurrent calls share the connection. When a
// connection fails, every call in flight on it fails with a retriable
// error (ErrUnreachable taxonomy) — the caller does not know whether
// its request executed.
type TCPClient struct {
	opts TCPClientOptions
	met  cliMetrics

	mu     sync.Mutex
	lru    *list.List // of *muxConn, front = most recently used
	byAddr map[string]*list.Element
	closed bool
}

// muxConn is one multiplexed connection: callers register a sequence
// ID and parking channel, push the encoded frame to the writer, and
// wait for the demux reader to deliver their response.
type muxConn struct {
	addr    string
	c       net.Conn
	wch     chan []byte
	closed  chan struct{}
	timeout time.Duration
	met     *cliMetrics

	mu       sync.Mutex
	seq      uint64
	inflight map[uint64]chan *wire.Response
	failed   bool
	err      error
}

// cachedConn is a non-multiplexed connection used by the lockstep
// (ConnCache=false) path and as the raw dial result.
type cachedConn struct {
	addr string
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewTCPClient creates a client.
func NewTCPClient(opts TCPClientOptions) *TCPClient {
	if opts.MaxCached == 0 {
		opts.MaxCached = DefaultMaxCached
	}
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	return &TCPClient{
		opts:   opts,
		met:    newCliMetrics(opts.Metrics),
		lru:    list.New(),
		byAddr: make(map[string]*list.Element),
	}
}

// Call implements Caller. The call deadline is the client's configured
// timeout bounded by the request's remaining budget
// (wire.Request.Budget), so one over-deadline call can never block
// past the operation's end-to-end deadline.
func (c *TCPClient) Call(addr string, req *wire.Request) (*wire.Response, error) {
	c.met.calls.Inc()
	deadline := callDeadline(req, c.opts.Timeout)
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return nil, fmt.Errorf("%w: budget exhausted before dial", ErrTimeout)
	}
	if !c.opts.ConnCache {
		return c.callLockstep(addr, req, deadline)
	}
	mc, err := c.muxFor(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	resp, err := mc.roundTrip(req, deadline)
	if err == nil {
		return resp, nil
	}
	if errors.Is(err, ErrTimeout) {
		return nil, err
	}
	// The multiplexed connection failed (stale cache entry, server
	// restart, mid-flight reset): retry exactly once on a fresh dial.
	c.drop(mc)
	mc, derr := c.muxFor(addr, deadline)
	if derr != nil {
		return nil, fmt.Errorf("%w: %v", classify(derr), derr)
	}
	return mc.roundTrip(req, deadline)
}

// CallBatch implements Caller by packing the sub-requests into one
// OpBatch envelope: a batch is a single message on the (multiplexed)
// connection, amortizing framing, syscalls, and scheduling across its
// sub-operations.
func (c *TCPClient) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	c.met.batches.Inc()
	c.met.batchSubs.Observe(int64(len(reqs)))
	return EnvelopeCallBatch(c, addr, reqs)
}

// callLockstep is the uncached configuration: dial, one round trip,
// close.
func (c *TCPClient) callLockstep(addr string, req *wire.Request, deadline time.Time) (*wire.Response, error) {
	cc, err := c.dial(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	defer cc.c.Close()
	cc.c.SetDeadline(deadline)
	resp, err := c.roundTrip(cc, req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	return resp, nil
}

func (c *TCPClient) roundTrip(cc *cachedConn, req *wire.Request) (*wire.Response, error) {
	out := wire.EncodeRequest(nil, req)
	c.met.bytesOut.Add(int64(len(out)))
	if err := writeFrame(cc.bw, out); err != nil {
		return nil, err
	}
	frame, err := readFrame(cc.br, nil)
	if err != nil {
		return nil, err
	}
	c.met.bytesIn.Add(int64(len(frame)))
	return wire.DecodeResponse(frame)
}

// muxFor returns the destination's multiplexed connection, dialing
// one if absent. Concurrent dials to the same address are resolved by
// keeping the first registered connection.
func (c *TCPClient) muxFor(addr string, deadline time.Time) (*muxConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	if el, ok := c.byAddr[addr]; ok {
		c.lru.MoveToFront(el)
		mc := el.Value.(*muxConn)
		c.mu.Unlock()
		c.met.cachedHits.Inc()
		return mc, nil
	}
	c.mu.Unlock()
	mc, err := c.dialMux(addr, deadline)
	if err != nil {
		return nil, err
	}
	var evicted []*muxConn
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		mc.fail(errClientClosed)
		return nil, errClientClosed
	}
	if el, ok := c.byAddr[addr]; ok {
		c.lru.MoveToFront(el)
		winner := el.Value.(*muxConn)
		c.mu.Unlock()
		mc.fail(errDialRace)
		return winner, nil
	}
	c.byAddr[addr] = c.lru.PushFront(mc)
	for c.lru.Len() > c.opts.MaxCached {
		el := c.evictable()
		if el == nil {
			break
		}
		victim := el.Value.(*muxConn)
		c.lru.Remove(el)
		delete(c.byAddr, victim.addr)
		evicted = append(evicted, victim)
	}
	c.mu.Unlock()
	for _, v := range evicted {
		v.fail(errConnEvicted)
	}
	return mc, nil
}

// evictable picks the LRU victim, preferring connections with no
// calls in flight; the front (most recent) element is never evicted.
func (c *TCPClient) evictable() *list.Element {
	for el := c.lru.Back(); el != nil && el != c.lru.Front(); el = el.Prev() {
		if el.Value.(*muxConn).idle() {
			return el
		}
	}
	if el := c.lru.Back(); el != nil && el != c.lru.Front() {
		return el
	}
	return nil
}

func (c *TCPClient) dialMux(addr string, deadline time.Time) (*muxConn, error) {
	cc, err := c.dial(addr, deadline)
	if err != nil {
		return nil, err
	}
	mc := &muxConn{
		addr:     addr,
		c:        cc.c,
		wch:      make(chan []byte, 128),
		closed:   make(chan struct{}),
		timeout:  c.opts.Timeout,
		met:      &c.met,
		inflight: make(map[uint64]chan *wire.Response),
	}
	go mc.writeLoop(cc.bw)
	go c.readLoop(mc, cc.br)
	return mc, nil
}

func (c *TCPClient) dial(addr string, deadline time.Time) (*cachedConn, error) {
	c.met.dials.Inc()
	d := net.Dialer{Deadline: deadline}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &cachedConn{
		addr: addr,
		c:    conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// drop removes mc from the cache if it is still the registered
// connection for its address (a replacement may already be in place).
func (c *TCPClient) drop(mc *muxConn) {
	c.mu.Lock()
	if el, ok := c.byAddr[mc.addr]; ok && el.Value.(*muxConn) == mc {
		c.lru.Remove(el)
		delete(c.byAddr, mc.addr)
	}
	c.mu.Unlock()
}

// readLoop demultiplexes responses to their registered callers by
// sequence ID. Any read or decode error fails the connection and
// every call in flight on it.
func (c *TCPClient) readLoop(mc *muxConn, br *bufio.Reader) {
	for {
		frame, err := readFrame(br, nil)
		if err != nil {
			c.drop(mc)
			mc.fail(err)
			return
		}
		c.met.bytesIn.Add(int64(len(frame)))
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			c.drop(mc)
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		ch := mc.inflight[resp.Seq]
		delete(mc.inflight, resp.Seq)
		mc.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// writeLoop pushes encoded frames onto the wire, flushing only when
// the queue momentarily empties so bursts of pipelined requests share
// one flush.
func (mc *muxConn) writeLoop(bw *bufio.Writer) {
	for {
		var buf []byte
		select {
		case buf = <-mc.wch:
		case <-mc.closed:
			return
		}
		if mc.timeout > 0 {
			mc.c.SetWriteDeadline(time.Now().Add(mc.timeout))
		}
		if err := writeFrameNoFlush(bw, buf); err != nil {
			mc.fail(err)
			return
		}
	drain:
		for {
			select {
			case buf = <-mc.wch:
				if err := writeFrameNoFlush(bw, buf); err != nil {
					mc.fail(err)
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			mc.fail(err)
			return
		}
	}
}

// roundTrip issues one request over the multiplexed connection and
// waits for its demultiplexed response or the deadline.
func (mc *muxConn) roundTrip(req *wire.Request, deadline time.Time) (*wire.Response, error) {
	mc.mu.Lock()
	if mc.failed {
		err := mc.err
		mc.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	mc.seq++
	seq := mc.seq
	ch := make(chan *wire.Response, 1)
	mc.inflight[seq] = ch
	mc.mu.Unlock()
	mc.met.muxInflight.Inc()
	defer mc.met.muxInflight.Dec()

	r := *req // callers may reuse req concurrently; never mutate it
	r.Seq = seq
	buf := wire.EncodeRequest(nil, &r)
	mc.met.bytesOut.Add(int64(len(buf)))

	var expire <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case mc.wch <- buf:
	case <-mc.closed:
		mc.deregister(seq)
		err := mc.failure()
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	case <-expire:
		mc.deregister(seq)
		return nil, fmt.Errorf("%w: no response within deadline", ErrTimeout)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// The connection failed with this call in flight. The
			// error is retriable, but the request may or may not have
			// executed on the server.
			err := mc.failure()
			return nil, fmt.Errorf("%w: in-flight call failed: %v", classify(err), err)
		}
		return resp, nil
	case <-expire:
		mc.deregister(seq)
		return nil, fmt.Errorf("%w: no response within deadline", ErrTimeout)
	}
}

func (mc *muxConn) deregister(seq uint64) {
	mc.mu.Lock()
	delete(mc.inflight, seq)
	mc.mu.Unlock()
}

func (mc *muxConn) failure() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.err == nil {
		return errors.New("transport: connection closed")
	}
	return mc.err
}

func (mc *muxConn) idle() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.inflight) == 0
}

// fail marks the connection dead exactly once: it closes the socket
// (stopping both loops) and closes every in-flight caller's channel so
// all of them fail promptly with a retriable error.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.failed {
		mc.mu.Unlock()
		return
	}
	mc.failed = true
	mc.err = err
	pending := mc.inflight
	mc.inflight = make(map[uint64]chan *wire.Response)
	mc.mu.Unlock()
	close(mc.closed)
	mc.c.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// CachedConns reports the number of cached multiplexed connections
// (for tests and monitoring).
func (c *TCPClient) CachedConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Close drops all cached connections, failing any calls in flight on
// them.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	c.closed = true
	var conns []*muxConn
	for el := c.lru.Front(); el != nil; el = el.Next() {
		conns = append(conns, el.Value.(*muxConn))
	}
	c.lru.Init()
	c.byAddr = make(map[string]*list.Element)
	c.mu.Unlock()
	for _, mc := range conns {
		mc.fail(errClientClosed)
	}
	return nil
}
