package transport

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// Frame format on TCP: uvarint length followed by the encoded message.
const maxFrame = 128 << 20

func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TCPServer serves ZHT requests over TCP.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	mode    ServerMode
	gate    *gate
	met     srvMetrics
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// ListenTCP starts a TCP server on addr (use ":0" for an ephemeral
// port) dispatching to h with the given mode. Options configure the
// admission gate (WithMaxInflight) shedding excess load as
// StatusBusy.
func ListenTCP(addr string, h Handler, mode ServerMode, opts ...ServerOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	s := &TCPServer{
		ln: ln, handler: h, mode: mode,
		gate:  newGate(o),
		met:   newSrvMetrics(o.Metrics),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *TCPServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	s.met.conns.Inc()
	defer func() {
		s.met.conns.Dec()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var rbuf, wbuf []byte
	var wmu sync.Mutex // SpawnPerRequest writers race on bw
	for {
		frame, err := readFrame(br, rbuf)
		if err != nil {
			return
		}
		rbuf = frame
		s.met.bytesIn.Add(int64(len(frame)))
		req, err := wire.DecodeRequest(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		s.met.requests.Inc()
		if !s.gate.tryAcquire() {
			// Saturated: shed without touching the handler so the
			// reader loop stays responsive under overload.
			s.met.sheds.Inc()
			wbuf = wire.EncodeResponse(wbuf[:0], s.gate.busy(req.Seq))
			s.met.bytesOut.Add(int64(len(wbuf)))
			wmu.Lock()
			err := writeFrame(bw, wbuf)
			wmu.Unlock()
			if err != nil {
				return
			}
			continue
		}
		switch s.mode {
		case EventDriven:
			s.met.inflight.Inc()
			resp := s.handler(req)
			s.met.inflight.Dec()
			s.gate.release()
			resp.Seq = req.Seq
			wbuf = wire.EncodeResponse(wbuf[:0], resp)
			s.met.bytesOut.Add(int64(len(wbuf)))
			if err := writeFrame(bw, wbuf); err != nil {
				return
			}
		case SpawnPerRequest:
			// The multithreaded prototype spun up a thread per
			// request; its costs were thread creation and handoff
			// synchronization. DecodeRequest aliases the read
			// buffer, so the spawned goroutine needs its own copy.
			reqCopy := *req
			reqCopy.Value = append([]byte(nil), req.Value...)
			reqCopy.Aux = append([]byte(nil), req.Aux...)
			done := make(chan *wire.Response, 1)
			go func() {
				s.met.inflight.Inc()
				r := s.handler(&reqCopy)
				s.met.inflight.Dec()
				s.gate.release()
				done <- r
			}()
			resp := <-done
			resp.Seq = req.Seq
			wmu.Lock()
			out := wire.EncodeResponse(nil, resp)
			s.met.bytesOut.Add(int64(len(out)))
			err := writeFrame(bw, out)
			wmu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// Close stops accepting, closes all connections, and waits for
// in-flight handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPClientOptions configures a TCP client.
type TCPClientOptions struct {
	// ConnCache enables the LRU connection cache. Without it every
	// Call dials a fresh connection (the paper's "TCP without
	// connection caching" configuration).
	ConnCache bool
	// MaxCached bounds the total number of cached idle connections
	// across all destinations; the least recently used is evicted.
	// 0 means DefaultMaxCached.
	MaxCached int
	// Timeout bounds dial + round trip per call. 0 means
	// DefaultTimeout.
	Timeout time.Duration
	// Metrics, when non-nil, receives the caller-side instruments
	// (zht.transport.* — calls, dials, cache hits, bytes).
	Metrics *metrics.Registry
}

// Defaults for TCPClientOptions zero values.
const (
	DefaultMaxCached = 1024
	DefaultTimeout   = 10 * time.Second
)

// TCPClient issues requests over TCP, optionally caching connections
// in an LRU pool keyed by destination address (§III.F).
type TCPClient struct {
	opts TCPClientOptions
	met  cliMetrics

	mu     sync.Mutex
	lru    *list.List                 // of *cachedConn, front = most recent
	byAddr map[string][]*list.Element // idle conns per destination
	size   int
	closed bool
}

type cachedConn struct {
	addr string
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewTCPClient creates a client.
func NewTCPClient(opts TCPClientOptions) *TCPClient {
	if opts.MaxCached == 0 {
		opts.MaxCached = DefaultMaxCached
	}
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	return &TCPClient{
		opts:   opts,
		met:    newCliMetrics(opts.Metrics),
		lru:    list.New(),
		byAddr: make(map[string][]*list.Element),
	}
}

// Call implements Caller. The connection deadline is the client's
// configured timeout bounded by the request's remaining budget
// (wire.Request.Budget), so one over-deadline call can never block
// past the operation's end-to-end deadline.
func (c *TCPClient) Call(addr string, req *wire.Request) (*wire.Response, error) {
	c.met.calls.Inc()
	deadline := callDeadline(req, c.opts.Timeout)
	if !time.Now().Before(deadline) {
		return nil, fmt.Errorf("%w: budget exhausted before dial", ErrTimeout)
	}
	cc, err := c.get(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	cc.c.SetDeadline(deadline)
	resp, err := c.roundTrip(cc, req)
	if err != nil {
		cc.c.Close()
		// A cached connection may have gone stale (server restart,
		// idle timeout): retry exactly once on a fresh dial.
		cc, derr := c.dial(addr, deadline)
		if derr != nil {
			return nil, fmt.Errorf("%w: %v", classify(derr), derr)
		}
		cc.c.SetDeadline(deadline)
		resp, err = c.roundTrip(cc, req)
		if err != nil {
			cc.c.Close()
			return nil, fmt.Errorf("%w: %v", classify(err), err)
		}
		c.put(cc)
		return resp, nil
	}
	c.put(cc)
	return resp, nil
}

func (c *TCPClient) roundTrip(cc *cachedConn, req *wire.Request) (*wire.Response, error) {
	out := wire.EncodeRequest(nil, req)
	c.met.bytesOut.Add(int64(len(out)))
	if err := writeFrame(cc.bw, out); err != nil {
		return nil, err
	}
	frame, err := readFrame(cc.br, nil)
	if err != nil {
		return nil, err
	}
	c.met.bytesIn.Add(int64(len(frame)))
	resp, err := wire.DecodeResponse(frame)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// get returns a cached idle connection for addr or dials a new one.
func (c *TCPClient) get(addr string, deadline time.Time) (*cachedConn, error) {
	if c.opts.ConnCache {
		c.mu.Lock()
		if els := c.byAddr[addr]; len(els) > 0 {
			el := els[len(els)-1]
			c.byAddr[addr] = els[:len(els)-1]
			cc := el.Value.(*cachedConn)
			c.lru.Remove(el)
			c.size--
			c.mu.Unlock()
			c.met.cachedHits.Inc()
			return cc, nil
		}
		c.mu.Unlock()
	}
	return c.dial(addr, deadline)
}

func (c *TCPClient) dial(addr string, deadline time.Time) (*cachedConn, error) {
	c.met.dials.Inc()
	d := net.Dialer{Deadline: deadline}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &cachedConn{
		addr: addr,
		c:    conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// put returns a connection to the cache (or closes it when caching is
// off or the cache is full, evicting the LRU entry).
func (c *TCPClient) put(cc *cachedConn) {
	if !c.opts.ConnCache {
		cc.c.Close()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cc.c.Close()
		return
	}
	for c.size >= c.opts.MaxCached {
		el := c.lru.Back()
		if el == nil {
			break
		}
		victim := el.Value.(*cachedConn)
		c.removeLocked(el, victim)
		victim.c.Close()
	}
	el := c.lru.PushFront(cc)
	c.byAddr[cc.addr] = append(c.byAddr[cc.addr], el)
	c.size++
}

func (c *TCPClient) removeLocked(el *list.Element, cc *cachedConn) {
	c.lru.Remove(el)
	els := c.byAddr[cc.addr]
	for i, e := range els {
		if e == el {
			c.byAddr[cc.addr] = append(els[:i], els[i+1:]...)
			break
		}
	}
	if len(c.byAddr[cc.addr]) == 0 {
		delete(c.byAddr, cc.addr)
	}
	c.size--
}

// CachedConns reports the number of idle cached connections (for
// tests and monitoring).
func (c *TCPClient) CachedConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Close drops all cached connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for el := c.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*cachedConn).c.Close()
	}
	c.lru.Init()
	c.byAddr = make(map[string][]*list.Element)
	c.size = 0
	return nil
}
