package transport

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"zht/internal/metrics"
	"zht/internal/wire"
)

// Frame format on TCP: uvarint length followed by the encoded message.
const maxFrame = 128 << 20

func writeFrame(w *bufio.Writer, payload []byte) error {
	if err := writeFrameNoFlush(w, payload); err != nil {
		return err
	}
	return w.Flush()
}

// writeFrameNoFlush stages a frame into the buffered writer without
// flushing, letting writer loops amortize one flush across a burst of
// frames.
func writeFrameNoFlush(w *bufio.Writer, payload []byte) error {
	// The uvarint length goes out byte-by-byte: a local header array
	// passed to Write escapes to the heap (the writer may hand the
	// slice to its underlying io.Writer), costing an allocation per
	// frame on the hot path.
	n := uint64(len(payload))
	for n >= 0x80 {
		if err := w.WriteByte(byte(n) | 0x80); err != nil {
			return err
		}
		n >>= 7
	}
	if err := w.WriteByte(byte(n)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TCPServer serves ZHT requests over TCP.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	mode    ServerMode
	gate    *gate
	met     srvMetrics
	jobs    chan srvJob
	quit    chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// srvJob is one decoded request plus everything its worker needs to
// answer it and recycle its buffers.
type srvJob struct {
	req   *wire.Request
	frame []byte
	out   chan<- *wire.Response
	hwg   *sync.WaitGroup
}

// ListenTCP starts a TCP server on addr (use ":0" for an ephemeral
// port) dispatching to h with the given mode. Options configure the
// admission gate (WithMaxInflight) shedding excess load as
// StatusBusy.
func ListenTCP(addr string, h Handler, mode ServerMode, opts ...ServerOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	s := &TCPServer{
		ln: ln, handler: h, mode: mode,
		gate:  newGate(o),
		met:   newSrvMetrics(o.Metrics),
		jobs:  make(chan srvJob),
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// serveConn pipelines one connection: the reader loop never blocks on
// a handler, so a multiplexing peer can keep many requests in flight
// on a single cached connection. Handlers complete out of order and a
// dedicated writer goroutine serializes their responses back onto the
// wire (the client demultiplexes by sequence ID). Never blocking the
// reader on handler execution also breaks the distributed deadlock
// that inline handling would create when two servers hold nested RPCs
// to each other over one shared connection each (sync replication,
// delta broadcast, failure-report pings). The admission gate remains
// the concurrency bound.
func (s *TCPServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	s.met.conns.Inc()
	defer func() {
		s.met.conns.Dec()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	out := make(chan *wire.Response, 128)
	writerDone := make(chan struct{})
	go s.writeLoop(c, out, writerDone)
	var hwg sync.WaitGroup
	for {
		// Pooled buffer per frame: the decoded request aliases it and
		// handlers run concurrently with subsequent reads, so the
		// buffer only returns to the pool after its handler finishes.
		frame, err := readFrame(br, getFrameBuf())
		if err != nil {
			break
		}
		s.met.bytesIn.Add(int64(len(frame)))
		req, err := wire.DecodeRequestPooled(frame)
		if err != nil {
			putFrameBuf(frame)
			break // protocol violation: drop the connection
		}
		s.met.requests.Inc()
		if !s.gate.tryAcquire() {
			// Saturated: shed without touching the handler so the
			// reader loop stays responsive under overload.
			s.met.sheds.Inc()
			seq := req.Seq
			wire.PutRequest(req)
			putFrameBuf(frame)
			out <- s.gate.busy(seq)
			continue
		}
		hwg.Add(1)
		switch s.mode {
		case EventDriven:
			// Hand off to a parked worker when one is free; spawn
			// one otherwise. Workers park on s.jobs after each job,
			// so a steady request rate reuses a small goroutine set
			// instead of allocating a closure and stack per request.
			job := srvJob{req: req, frame: frame, out: out, hwg: &hwg}
			select {
			case s.jobs <- job:
			default:
				s.wg.Add(1)
				go s.worker(job)
			}
		case SpawnPerRequest:
			// The multithreaded prototype spun up a thread per
			// request and paid a synchronized handoff on top;
			// reproduce that cost profile: copy the request, spawn a
			// worker, and rendezvous through a channel before the
			// response reaches the writer.
			reqCopy := *req
			reqCopy.Value = append([]byte(nil), req.Value...)
			reqCopy.Aux = append([]byte(nil), req.Aux...)
			seq := req.Seq
			wire.PutRequest(req)
			putFrameBuf(frame)
			done := make(chan *wire.Response, 1)
			go func() {
				s.met.inflight.Inc()
				r := s.handler(&reqCopy)
				s.met.inflight.Dec()
				s.gate.release()
				done <- r
			}()
			go func() {
				defer hwg.Done()
				resp := <-done
				resp.Seq = seq
				out <- resp
			}()
		}
	}
	hwg.Wait()
	close(out)
	<-writerDone
}

// worker runs job, then parks on the shared job channel so subsequent
// requests reuse this goroutine. Parked workers exit when the server
// closes.
func (s *TCPServer) worker(job srvJob) {
	defer s.wg.Done()
	for {
		s.runJob(job)
		select {
		case job = <-s.jobs:
		case <-s.quit:
			return
		}
	}
}

// runJob invokes the handler and recycles the request and its frame.
// The Handler contract (see Handler) guarantees neither outlives the
// call: the response may not alias request memory, and the handler
// may not retain it, so both go back to their pools before the
// response is queued for the writer.
func (s *TCPServer) runJob(job srvJob) {
	s.met.inflight.Inc()
	resp := s.handler(job.req)
	s.met.inflight.Dec()
	s.gate.release()
	resp.Seq = job.req.Seq
	wire.PutRequest(job.req)
	putFrameBuf(job.frame)
	job.out <- resp
	job.hwg.Done()
}

// writeLoop drains completed responses onto the connection, flushing
// only when the queue momentarily empties. After a write error it
// keeps draining so no handler ever blocks on a dead connection.
func (s *TCPServer) writeLoop(c net.Conn, out <-chan *wire.Response, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(c, 64<<10)
	wbuf := wire.GetBuffer()
	defer func() { wire.PutBuffer(wbuf) }()
	dead := false
	for resp := range out {
		if dead {
			// Still release: the writer owns every queued response.
			wire.PutResponse(resp)
			continue
		}
		wbuf = wire.EncodeResponse(wbuf[:0], resp)
		wire.PutResponse(resp)
		s.met.bytesOut.Add(int64(len(wbuf)))
		if err := writeFrameNoFlush(bw, wbuf); err != nil {
			dead = true
			c.Close()
			continue
		}
		if len(out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
				c.Close()
			}
		}
	}
}

// Close stops accepting, closes all connections, and waits for
// in-flight handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit) // parked workers exit
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPClientOptions configures a TCP client.
type TCPClientOptions struct {
	// ConnCache enables the multiplexed connection cache: one
	// full-duplex connection per destination shared by all concurrent
	// calls. Without it every Call dials a fresh connection and runs
	// in lockstep (the paper's "TCP without connection caching"
	// configuration).
	ConnCache bool
	// MaxCached bounds the number of cached connections across all
	// destinations; the least recently used is evicted (idle ones
	// first). 0 means DefaultMaxCached.
	MaxCached int
	// Timeout bounds dial + round trip per call. 0 means
	// DefaultTimeout.
	Timeout time.Duration
	// Metrics, when non-nil, receives the caller-side instruments
	// (zht.transport.* — calls, dials, cache hits, bytes).
	Metrics *metrics.Registry
}

// Defaults for TCPClientOptions zero values.
const (
	DefaultMaxCached = 1024
	DefaultTimeout   = 10 * time.Second
)

var (
	errClientClosed = errors.New("transport: client closed")
	errConnEvicted  = errors.New("transport: connection evicted from cache")
	errDialRace     = errors.New("transport: lost dial race")
)

// TCPClient issues requests over TCP. With ConnCache enabled each
// destination gets one full-duplex multiplexed connection (§III.F):
// a writer goroutine pipelines encoded requests onto the wire and a
// demux reader matches responses back to callers by sequence ID, so
// any number of concurrent calls share the connection. When a
// connection fails, every call in flight on it fails with a retriable
// error (ErrUnreachable taxonomy) — the caller does not know whether
// its request executed.
type TCPClient struct {
	opts TCPClientOptions
	met  cliMetrics

	mu     sync.Mutex
	lru    *list.List // of *muxConn, front = most recently used
	byAddr map[string]*list.Element
	closed bool
}

// muxConn is one multiplexed connection: callers register a sequence
// ID and parking channel, push the encoded frame to the writer, and
// wait for the demux reader to deliver their response.
type muxConn struct {
	addr    string
	c       net.Conn
	wch     chan []byte
	closed  chan struct{}
	timeout time.Duration
	met     *cliMetrics

	mu       sync.Mutex
	seq      uint64
	inflight map[uint64]chan *wire.Response
	failed   bool
	err      error
}

// cachedConn is a non-multiplexed connection used by the lockstep
// (ConnCache=false) path and as the raw dial result.
type cachedConn struct {
	addr string
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewTCPClient creates a client.
func NewTCPClient(opts TCPClientOptions) *TCPClient {
	if opts.MaxCached == 0 {
		opts.MaxCached = DefaultMaxCached
	}
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	return &TCPClient{
		opts:   opts,
		met:    newCliMetrics(opts.Metrics),
		lru:    list.New(),
		byAddr: make(map[string]*list.Element),
	}
}

// Call implements Caller. The call deadline is the client's configured
// timeout bounded by the request's remaining budget
// (wire.Request.Budget), so one over-deadline call can never block
// past the operation's end-to-end deadline.
func (c *TCPClient) Call(addr string, req *wire.Request) (*wire.Response, error) {
	c.met.calls.Inc()
	deadline := callDeadline(req, c.opts.Timeout)
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return nil, fmt.Errorf("%w: budget exhausted before dial", ErrTimeout)
	}
	if !c.opts.ConnCache {
		return c.callLockstep(addr, req, deadline)
	}
	mc, err := c.muxFor(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	resp, err := mc.roundTrip(req, deadline)
	if err == nil {
		return resp, nil
	}
	if errors.Is(err, ErrTimeout) {
		return nil, err
	}
	// The multiplexed connection failed (stale cache entry, server
	// restart, mid-flight reset): retry exactly once on a fresh dial.
	c.drop(mc)
	mc, derr := c.muxFor(addr, deadline)
	if derr != nil {
		return nil, fmt.Errorf("%w: %v", classify(derr), derr)
	}
	return mc.roundTrip(req, deadline)
}

// CallBatch implements Caller by packing the sub-requests into one
// OpBatch envelope: a batch is a single message on the (multiplexed)
// connection, amortizing framing, syscalls, and scheduling across its
// sub-operations.
func (c *TCPClient) CallBatch(addr string, reqs []*wire.Request) ([]*wire.Response, error) {
	c.met.batches.Inc()
	c.met.batchSubs.Observe(int64(len(reqs)))
	return EnvelopeCallBatch(c, addr, reqs)
}

// callLockstep is the uncached configuration: dial, one round trip,
// close.
func (c *TCPClient) callLockstep(addr string, req *wire.Request, deadline time.Time) (*wire.Response, error) {
	cc, err := c.dial(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	defer cc.c.Close()
	cc.c.SetDeadline(deadline)
	resp, err := c.roundTrip(cc, req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	return resp, nil
}

func (c *TCPClient) roundTrip(cc *cachedConn, req *wire.Request) (*wire.Response, error) {
	out := wire.EncodeRequest(wire.GetBuffer(), req)
	c.met.bytesOut.Add(int64(len(out)))
	err := writeFrame(cc.bw, out)
	wire.PutBuffer(out)
	if err != nil {
		return nil, err
	}
	frame, err := readFrame(cc.br, nil)
	if err != nil {
		return nil, err
	}
	c.met.bytesIn.Add(int64(len(frame)))
	return wire.DecodeResponse(frame)
}

// muxFor returns the destination's multiplexed connection, dialing
// one if absent. Concurrent dials to the same address are resolved by
// keeping the first registered connection.
func (c *TCPClient) muxFor(addr string, deadline time.Time) (*muxConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	if el, ok := c.byAddr[addr]; ok {
		c.lru.MoveToFront(el)
		mc := el.Value.(*muxConn)
		c.mu.Unlock()
		c.met.cachedHits.Inc()
		return mc, nil
	}
	c.mu.Unlock()
	mc, err := c.dialMux(addr, deadline)
	if err != nil {
		return nil, err
	}
	var evicted []*muxConn
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		mc.fail(errClientClosed)
		return nil, errClientClosed
	}
	if el, ok := c.byAddr[addr]; ok {
		c.lru.MoveToFront(el)
		winner := el.Value.(*muxConn)
		c.mu.Unlock()
		mc.fail(errDialRace)
		return winner, nil
	}
	c.byAddr[addr] = c.lru.PushFront(mc)
	for c.lru.Len() > c.opts.MaxCached {
		el := c.evictable()
		if el == nil {
			break
		}
		victim := el.Value.(*muxConn)
		c.lru.Remove(el)
		delete(c.byAddr, victim.addr)
		evicted = append(evicted, victim)
	}
	c.mu.Unlock()
	for _, v := range evicted {
		v.fail(errConnEvicted)
	}
	return mc, nil
}

// evictable picks the LRU victim, preferring connections with no
// calls in flight; the front (most recent) element is never evicted.
func (c *TCPClient) evictable() *list.Element {
	for el := c.lru.Back(); el != nil && el != c.lru.Front(); el = el.Prev() {
		if el.Value.(*muxConn).idle() {
			return el
		}
	}
	if el := c.lru.Back(); el != nil && el != c.lru.Front() {
		return el
	}
	return nil
}

func (c *TCPClient) dialMux(addr string, deadline time.Time) (*muxConn, error) {
	cc, err := c.dial(addr, deadline)
	if err != nil {
		return nil, err
	}
	mc := &muxConn{
		addr:     addr,
		c:        cc.c,
		wch:      make(chan []byte, 128),
		closed:   make(chan struct{}),
		timeout:  c.opts.Timeout,
		met:      &c.met,
		inflight: make(map[uint64]chan *wire.Response),
	}
	go mc.writeLoop(cc.bw)
	go c.readLoop(mc, cc.br)
	return mc, nil
}

func (c *TCPClient) dial(addr string, deadline time.Time) (*cachedConn, error) {
	c.met.dials.Inc()
	d := net.Dialer{Deadline: deadline}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &cachedConn{
		addr: addr,
		c:    conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// drop removes mc from the cache if it is still the registered
// connection for its address (a replacement may already be in place).
func (c *TCPClient) drop(mc *muxConn) {
	c.mu.Lock()
	if el, ok := c.byAddr[mc.addr]; ok && el.Value.(*muxConn) == mc {
		c.lru.Remove(el)
		delete(c.byAddr, mc.addr)
	}
	c.mu.Unlock()
}

// readLoop demultiplexes responses to their registered callers by
// sequence ID. Any read or decode error fails the connection and
// every call in flight on it.
//
// The frame buffer is reused across responses whenever the decoded
// response carries no aliasing payload (no Value, no Table) — the
// common case for mutation acks. When it does alias, ownership of
// the frame transfers to the caller along with the response (a
// Lookup's Value IS the frame) and the loop takes a fresh buffer.
func (c *TCPClient) readLoop(mc *muxConn, br *bufio.Reader) {
	var frame []byte
	for {
		if frame == nil {
			frame = getFrameBuf()
		}
		f, err := readFrame(br, frame)
		if err != nil {
			c.drop(mc)
			mc.fail(err)
			return
		}
		frame = f
		c.met.bytesIn.Add(int64(len(f)))
		resp, err := wire.DecodeResponsePooled(f)
		if err != nil {
			c.drop(mc)
			mc.fail(err)
			return
		}
		aliases := resp.Value != nil || resp.Table != nil
		// Deliver while holding the lock: a send can then never race
		// deregister, so a caller that gives up on its sequence ID
		// knows no response will arrive afterwards and may safely
		// recycle its parking channel.
		mc.mu.Lock()
		ch := mc.inflight[resp.Seq]
		delete(mc.inflight, resp.Seq)
		if ch != nil {
			ch <- resp // cap 1, one send per seq: never blocks
		}
		mc.mu.Unlock()
		if ch == nil {
			// No waiter (timed out and deregistered): the response
			// and its frame stay ours.
			wire.PutResponse(resp)
			continue
		}
		if aliases {
			frame = nil
		}
	}
}

// writeLoop pushes encoded frames onto the wire, flushing only when
// the queue momentarily empties so bursts of pipelined requests share
// one flush.
func (mc *muxConn) writeLoop(bw *bufio.Writer) {
	for {
		var buf []byte
		select {
		case buf = <-mc.wch:
		case <-mc.closed:
			return
		}
		if mc.timeout > 0 {
			mc.c.SetWriteDeadline(time.Now().Add(mc.timeout))
		}
		err := writeFrameNoFlush(bw, buf)
		wire.PutBuffer(buf)
		if err != nil {
			mc.fail(err)
			return
		}
	drain:
		for {
			select {
			case buf = <-mc.wch:
				err := writeFrameNoFlush(bw, buf)
				wire.PutBuffer(buf)
				if err != nil {
					mc.fail(err)
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			mc.fail(err)
			return
		}
	}
}

// respChPool recycles the cap-1 parking channels callers wait on.
// Safe because a channel only returns to the pool when its owner can
// prove no further send or close can touch it: after receiving the
// response (the demux sends at most once per sequence ID), or after
// deregistering on a healthy connection (sends happen under mc.mu,
// so deregister ordering is exact). Channels on a failed connection
// are closed by fail and never pooled.
var respChPool = sync.Pool{New: func() any { return make(chan *wire.Response, 1) }}

// timerPool recycles deadline timers: time.NewTimer allocates the
// timer, its runtime state, and its channel, which dominated the
// hot-path allocation profile at one timer per round trip.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops t, drains a tick that may have fired between the
// caller's last select and the Stop, and pools it. The caller must be
// the only receiver on t.C.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// reclaimRespCh drains a possibly-delivered response and pools the
// channel. Used on abandonment paths where a response may have
// landed between the send and the caller giving up.
func reclaimRespCh(ch chan *wire.Response) {
	select {
	case resp := <-ch:
		wire.PutResponse(resp)
	default:
	}
	respChPool.Put(ch)
}

// roundTrip issues one request over the multiplexed connection and
// waits for its demultiplexed response or the deadline.
func (mc *muxConn) roundTrip(req *wire.Request, deadline time.Time) (*wire.Response, error) {
	ch := respChPool.Get().(chan *wire.Response)
	mc.mu.Lock()
	if mc.failed {
		err := mc.err
		mc.mu.Unlock()
		respChPool.Put(ch)
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	}
	mc.seq++
	seq := mc.seq
	mc.inflight[seq] = ch
	mc.mu.Unlock()
	mc.met.muxInflight.Inc()
	defer mc.met.muxInflight.Dec()

	r := *req // callers may reuse req concurrently; never mutate it
	r.Seq = seq
	buf := wire.EncodeRequest(wire.GetBuffer(), &r)
	mc.met.bytesOut.Add(int64(len(buf)))

	var expire <-chan time.Time
	if !deadline.IsZero() {
		timer := getTimer(time.Until(deadline))
		defer putTimer(timer)
		expire = timer.C
	}
	select {
	case mc.wch <- buf: // writer loop now owns buf
	case <-mc.closed:
		wire.PutBuffer(buf)
		if mc.deregister(seq) {
			reclaimRespCh(ch)
		}
		err := mc.failure()
		return nil, fmt.Errorf("%w: %v", classify(err), err)
	case <-expire:
		wire.PutBuffer(buf)
		if mc.deregister(seq) {
			reclaimRespCh(ch)
		}
		return nil, fmt.Errorf("%w: no response within deadline", ErrTimeout)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// The connection failed with this call in flight. The
			// error is retriable, but the request may or may not have
			// executed on the server. fail closed ch; it is not
			// reusable.
			err := mc.failure()
			return nil, fmt.Errorf("%w: in-flight call failed: %v", classify(err), err)
		}
		// The demux deleted seq before sending, so nothing can touch
		// ch again: recycle it.
		respChPool.Put(ch)
		return resp, nil
	case <-expire:
		if mc.deregister(seq) {
			reclaimRespCh(ch)
		}
		return nil, fmt.Errorf("%w: no response within deadline", ErrTimeout)
	}
}

// deregister removes seq from the inflight table and reports whether
// the caller still owns its parking channel: false once the
// connection has failed, because fail closes every registered
// channel and a closed channel must never return to the pool.
func (mc *muxConn) deregister(seq uint64) bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	delete(mc.inflight, seq)
	return !mc.failed
}

func (mc *muxConn) failure() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.err == nil {
		return errors.New("transport: connection closed")
	}
	return mc.err
}

func (mc *muxConn) idle() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.inflight) == 0
}

// fail marks the connection dead exactly once: it closes the socket
// (stopping both loops) and closes every in-flight caller's channel so
// all of them fail promptly with a retriable error. The channels are
// closed while holding mc.mu so that deregister's failed check is
// exact: a caller that deregisters on a healthy connection can never
// have its channel closed afterwards.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.failed {
		mc.mu.Unlock()
		return
	}
	mc.failed = true
	mc.err = err
	for seq, ch := range mc.inflight {
		close(ch)
		delete(mc.inflight, seq)
	}
	mc.mu.Unlock()
	close(mc.closed)
	mc.c.Close()
}

// CachedConns reports the number of cached multiplexed connections
// (for tests and monitoring).
func (c *TCPClient) CachedConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Close drops all cached connections, failing any calls in flight on
// them.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	c.closed = true
	var conns []*muxConn
	for el := c.lru.Front(); el != nil; el = el.Next() {
		conns = append(conns, el.Value.(*muxConn))
	}
	c.lru.Init()
	c.byAddr = make(map[string]*list.Element)
	c.mu.Unlock()
	for _, mc := range conns {
		mc.fail(errClientClosed)
	}
	return nil
}
